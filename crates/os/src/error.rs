//! Errno-style error type for the simulated kernel.

use laminar_difc::{FlowError, LabelChangeError};
use std::error::Error;
use std::fmt;

/// Result alias used by every syscall.
pub type OsResult<T> = Result<T, OsError>;

/// Kernel error codes, modelled on the errno values a Linux LSM returns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OsError {
    /// `ENOENT`: path component does not exist.
    NotFound,
    /// `EEXIST`: path already exists.
    Exists,
    /// `ENOTDIR`: a non-directory appeared where a directory was needed.
    NotADirectory,
    /// `EISDIR`: a directory appeared where a file was needed.
    IsADirectory,
    /// `EBADF`: file descriptor not open (or wrong mode).
    BadFd,
    /// `EINVAL`: malformed argument.
    InvalidArgument(&'static str),
    /// `EPERM` from the security module: a DIFC flow rule failed.
    FlowDenied(FlowError),
    /// `EPERM`: a label change was rejected by the label-change rule.
    LabelChangeDenied(LabelChangeError),
    /// `EPERM`: generic permission failure (non-flow).
    PermissionDenied(&'static str),
    /// `ESRCH`: no such task.
    NoSuchTask,
    /// `EAGAIN`: operation would block (never blocks in a DIFC pipe).
    WouldBlock,
    /// `EFAULT`: access to an unmapped or protection-violating address.
    Fault,
    /// `ENOTEMPTY`: directory not empty.
    NotEmpty,
    /// `ENOSYS`-ish: the operation is not supported on this inode kind.
    Unsupported(&'static str),
    /// `ELOOP`: too many levels of symbolic links during resolution.
    SymlinkLoop,
    /// `EDQUOT`-style: a resource quota (fds, inodes, tags) is exhausted.
    /// The payload names the exhausted resource; the operation had no
    /// effect and succeeds again once the resource is released.
    QuotaExceeded(&'static str),
    /// An internal kernel fault was caught at the syscall boundary. The
    /// transaction was rolled back: fail-closed, the syscall had no
    /// effect on any security state.
    Internal,
    /// Internal control-flow sentinel: the syscall body needs a shard
    /// lock (identified by the raw [`ShardKey`] payload) that cannot be
    /// acquired without violating the total lock order. The dispatcher
    /// rolls back, widens the lock footprint, and restarts the syscall.
    /// Never escapes the kernel: user-visible results never carry it.
    ///
    /// [`ShardKey`]: https://docs.rs/laminar-os
    #[doc(hidden)]
    Retry(u16),
}

impl OsError {
    /// A short static name for the audit trail's `denied` field (stable
    /// across payload details, never allocates).
    #[must_use]
    pub fn audit_name(&self) -> &'static str {
        match self {
            OsError::NotFound => "not_found",
            OsError::Exists => "exists",
            OsError::NotADirectory => "not_a_directory",
            OsError::IsADirectory => "is_a_directory",
            OsError::BadFd => "bad_fd",
            OsError::InvalidArgument(_) => "invalid_argument",
            OsError::FlowDenied(_) => "flow",
            OsError::LabelChangeDenied(_) => "label_change",
            OsError::PermissionDenied(_) => "permission",
            OsError::NoSuchTask => "no_such_task",
            OsError::WouldBlock => "would_block",
            OsError::Fault => "fault",
            OsError::NotEmpty => "not_empty",
            OsError::Unsupported(_) => "unsupported",
            OsError::SymlinkLoop => "symlink_loop",
            OsError::QuotaExceeded(_) => "quota",
            OsError::Internal => "internal",
            OsError::Retry(_) => "retry",
        }
    }
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound => f.write_str("no such file or directory"),
            OsError::Exists => f.write_str("file exists"),
            OsError::NotADirectory => f.write_str("not a directory"),
            OsError::IsADirectory => f.write_str("is a directory"),
            OsError::BadFd => f.write_str("bad file descriptor"),
            OsError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            OsError::FlowDenied(e) => write!(f, "operation not permitted: {e}"),
            OsError::LabelChangeDenied(e) => {
                write!(f, "operation not permitted: {e}")
            }
            OsError::PermissionDenied(what) => {
                write!(f, "operation not permitted: {what}")
            }
            OsError::NoSuchTask => f.write_str("no such task"),
            OsError::WouldBlock => f.write_str("resource temporarily unavailable"),
            OsError::Fault => f.write_str("bad address"),
            OsError::NotEmpty => f.write_str("directory not empty"),
            OsError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            OsError::SymlinkLoop => f.write_str("too many levels of symbolic links"),
            OsError::QuotaExceeded(what) => write!(f, "quota exceeded: {what}"),
            OsError::Internal => {
                f.write_str("internal kernel fault (syscall rolled back)")
            }
            OsError::Retry(shard) => {
                write!(f, "kernel-internal restart for shard {shard:#x}")
            }
        }
    }
}

impl Error for OsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OsError::FlowDenied(e) => Some(e),
            OsError::LabelChangeDenied(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for OsError {
    fn from(e: FlowError) -> Self {
        OsError::FlowDenied(e)
    }
}

impl From<LabelChangeError> for OsError {
    fn from(e: LabelChangeError) -> Self {
        OsError::LabelChangeDenied(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::Label;

    #[test]
    fn displays_are_nonempty_and_lowercase() {
        let errs = [
            OsError::NotFound,
            OsError::BadFd,
            OsError::FlowDenied(FlowError::Secrecy {
                source: Label::empty(),
                dest: Label::empty(),
                leaked: Label::empty(),
            }),
            OsError::PermissionDenied("x"),
            OsError::SymlinkLoop,
            OsError::QuotaExceeded("file descriptors"),
            OsError::Internal,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn flow_error_is_source() {
        let fe = FlowError::Secrecy {
            source: Label::empty(),
            dest: Label::empty(),
            leaked: Label::empty(),
        };
        let e = OsError::from(fe.clone());
        assert!(Error::source(&e).is_some());
        assert!(matches!(e, OsError::FlowDenied(inner) if inner == fe));
    }
}
