//! The simulated kernel: sharded task/process/inode tables, boot, login,
//! the parallel syscall dispatcher, and the glue that invokes LSM hooks.
//!
//! The Laminar OS "extends a standard operating system with a Laminar
//! security module for information flow control" (§4.1). Here the
//! "standard operating system" is this crate's simulated kernel; the
//! security module is pluggable ([`crate::lsm::SecurityModule`]) so the
//! very same kernel can run with [`crate::lsm::NullModule`] (stock Linux
//! baseline) or [`crate::laminar_lsm::LaminarModule`] — which is exactly
//! how Table 2 of the paper compares unmodified Linux against Laminar.
//!
//! Since PR 4 the kernel has no big lock: state lives in the sharded
//! tables of [`crate::shard`], syscalls lock only the shards they touch
//! (in the total order), and syscalls from distinct tasks on disjoint
//! shards run in parallel. Each committing syscall takes an atomic
//! *commit ticket* while still holding its shard locks; the resulting
//! ticket order is a linearization witness the conformance testkit
//! replays through its single-threaded oracle.

use crate::error::{OsError, OsResult};
use crate::lsm::{Access, SecurityModule};
use crate::shard::{ShardKey, Tables, SHARD_COUNT};
use crate::task::{ProcessId, ProcessStruct, TaskId, TaskSec, TaskStruct, UserId};
use crate::txn::{IdCache, Quotas, Txn};
use crate::vfs::inode::{Inode, InodeId, InodeKind, Xattrs};
use laminar_difc::{CapSet, Label, SecPair, Tag, TagAllocator};
use laminar_util::sync::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One entry of the commit-order log: syscall `seq` (the commit ticket)
/// was committed on behalf of `task`. Tickets are taken while the
/// syscall still holds its shard locks, so for any two syscalls that
/// touched a common shard the ticket order matches the order their
/// effects were applied — the log is a valid linearization witness.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CommitRecord {
    /// Global commit ticket (1-based, dense across all threads).
    pub seq: u64,
    /// Task the syscall ran as.
    pub task: TaskId,
}

thread_local! {
    static LAST_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// The commit ticket of the most recent syscall dispatched *on this
/// thread* (0 before any). Lets a test thread pair each syscall's
/// outcome with its position in the kernel-wide commit order.
#[must_use]
pub fn last_syscall_seq() -> u64 {
    LAST_SEQ.with(Cell::get)
}

/// A one-shot failpoint armed inside the kernel by the conformance
/// testkit. Exactly one may be armed at a time; it fires at most once
/// (disarming itself) and records that it fired.
#[cfg(feature = "fault-injection")]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SyscallFailpoint {
    /// Panic inside the next LSM hook invocation — an internal fault in
    /// the middle of a syscall body, after some state may have been
    /// staged.
    PanicAtHook,
    /// Panic after the next syscall body *succeeds*, just before commit —
    /// a mid-syscall abort at the latest possible point.
    AbortLate,
    /// Make the next resource allocation (inode, fd, tag) report quota
    /// exhaustion.
    QuotaNext,
}

/// Shared failpoint state (see [`SyscallFailpoint`]).
#[cfg(feature = "fault-injection")]
#[derive(Default)]
pub(crate) struct Failpoints {
    armed: std::sync::atomic::AtomicU8,
    fired: AtomicBool,
}

#[cfg(feature = "fault-injection")]
impl Failpoints {
    const NONE: u8 = 0;
    const PANIC_AT_HOOK: u8 = 1;
    const ABORT_LATE: u8 = 2;
    const QUOTA_NEXT: u8 = 3;

    fn code(fp: SyscallFailpoint) -> u8 {
        match fp {
            SyscallFailpoint::PanicAtHook => Self::PANIC_AT_HOOK,
            SyscallFailpoint::AbortLate => Self::ABORT_LATE,
            SyscallFailpoint::QuotaNext => Self::QUOTA_NEXT,
        }
    }

    fn arm(&self, fp: SyscallFailpoint) {
        self.fired.store(false, Ordering::SeqCst);
        self.armed.store(Self::code(fp), Ordering::SeqCst);
    }

    fn take_fired(&self) -> bool {
        self.armed.store(Self::NONE, Ordering::SeqCst);
        self.fired.swap(false, Ordering::SeqCst)
    }

    fn take_if(&self, code: u8) -> bool {
        if self
            .armed
            .compare_exchange(code, Self::NONE, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.fired.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Snapshot of the armed/fired flags, taken before each dispatch
    /// attempt so a footprint restart can rewind a consumed-but-unfired
    /// arming. A failpoint that genuinely fired ends its attempt with a
    /// non-restart outcome, so restores never resurrect a fired one.
    pub(crate) fn snapshot(&self) -> (u8, bool) {
        (self.armed.load(Ordering::SeqCst), self.fired.load(Ordering::SeqCst))
    }

    pub(crate) fn restore(&self, (armed, fired): (u8, bool)) {
        self.armed.store(armed, Ordering::SeqCst);
        self.fired.store(fired, Ordering::SeqCst);
    }

    pub(crate) fn fire_panic_at_hook(&self) {
        if self.take_if(Self::PANIC_AT_HOOK) {
            panic!("injected failpoint: panic inside LSM hook");
        }
    }

    pub(crate) fn fire_abort_late(&self) {
        if self.take_if(Self::ABORT_LATE) {
            panic!("injected failpoint: abort before syscall commit");
        }
    }

    pub(crate) fn take_quota(&self) -> bool {
        self.take_if(Self::QUOTA_NEXT)
    }
}

/// The simulated kernel. Create one with [`Kernel::boot`], obtain task
/// handles with [`Kernel::login`], and issue syscalls through
/// [`TaskHandle`] methods.
///
/// # Examples
///
/// ```
/// use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
///
/// # fn main() -> Result<(), laminar_os::OsError> {
/// let kernel = Kernel::boot(LaminarModule);
/// kernel.add_user(UserId(1), "alice");
/// let shell = kernel.login(UserId(1))?;
/// let fd = shell.create("notes.txt")?;
/// shell.write(fd, b"hello")?;
/// shell.close(fd)?;
/// let fd = shell.open("notes.txt", OpenMode::Read)?;
/// assert_eq!(shell.read(fd, 64)?, b"hello");
/// # Ok(())
/// # }
/// ```
pub struct Kernel {
    pub(crate) tables: Tables,
    /// The root inode id — fixed at boot, so reads need no lock.
    pub(crate) root: InodeId,
    pub(crate) next_task: AtomicU64,
    pub(crate) next_proc: AtomicU64,
    pub(crate) next_inode: AtomicU64,
    /// Live-inode count for the quota (approximate under races by at
    /// most the number of in-flight transactions; exact when quiescent).
    pub(crate) inode_count: AtomicU64,
    /// Monotonic count of LSM hook invocations.
    pub(crate) hook_counter: AtomicU64,
    /// Commit-ticket source (see [`CommitRecord`]).
    commit_seq: AtomicU64,
    commit_log_on: AtomicBool,
    commit_log: Mutex<Vec<CommitRecord>>,
    /// When set, every syscall additionally serialises on `serial_lock`,
    /// emulating the pre-shard big kernel lock (bench baseline mode).
    serial_on: AtomicBool,
    serial_lock: Mutex<()>,
    pub(crate) module: Box<dyn SecurityModule>,
    pub(crate) tags: TagAllocator,
    pub(crate) quotas: Quotas,
    #[cfg(feature = "fault-injection")]
    pub(crate) failpoints: Failpoints,
    tcb_tag: Tag,
    admin_tag: Tag,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("module", &self.module.name())
            .field("inodes", &self.inode_count.load(Ordering::Relaxed))
            .field("commits", &self.commit_seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A handle through which one kernel task issues syscalls.
///
/// Clone-able and `Send`: a `TaskHandle` can be moved into the OS thread
/// that plays the corresponding principal. All methods take `&self`;
/// the kernel serialises state access internally.
#[derive(Clone, Debug)]
pub struct TaskHandle {
    pub(crate) kernel: Arc<Kernel>,
    pub(crate) tid: TaskId,
}

impl Kernel {
    /// Boots a kernel with the given security module and installs the
    /// initial filesystem: `/`, `/etc`, `/home` (integrity-labeled with
    /// the system administrator's tag, §5.2), plus unlabeled `/tmp`,
    /// `/dev` and the `/dev/null` device.
    pub fn boot<M: SecurityModule + 'static>(module: M) -> Arc<Kernel> {
        Self::boot_with_quotas(module, Quotas::default())
    }

    /// Like [`Kernel::boot`] but with explicit resource quotas (see
    /// [`Quotas`]); the defaults are generous enough that ordinary
    /// workloads never hit them.
    pub fn boot_with_quotas<M: SecurityModule + 'static>(
        module: M,
        quotas: Quotas,
    ) -> Arc<Kernel> {
        let tags = TagAllocator::new();
        let tcb_tag = tags.fresh();
        let admin_tag = tags.fresh();
        let admin_integrity = SecPair::integrity_only(Label::singleton(admin_tag));

        let kernel = Kernel {
            tables: Tables::new(),
            root: InodeId(1),
            next_task: AtomicU64::new(1),
            next_proc: AtomicU64::new(1),
            next_inode: AtomicU64::new(7),
            inode_count: AtomicU64::new(0),
            hook_counter: AtomicU64::new(0),
            commit_seq: AtomicU64::new(0),
            commit_log_on: AtomicBool::new(false),
            commit_log: Mutex::new(Vec::new()),
            serial_on: AtomicBool::new(false),
            serial_lock: Mutex::new(()),
            module: Box::new(module),
            tags,
            quotas,
            #[cfg(feature = "fault-injection")]
            failpoints: Failpoints::default(),
            tcb_tag,
            admin_tag,
        };

        // Fixed boot layout: 1=/ 2=/etc 3=/home 4=/tmp 5=/dev 6=/dev/null.
        let dir = |entries: BTreeMap<String, InodeId>| InodeKind::Dir { entries };
        let boot_nodes: [(InodeId, InodeKind, SecPair); 6] = [
            (
                InodeId(1),
                dir(BTreeMap::from([
                    ("etc".into(), InodeId(2)),
                    ("home".into(), InodeId(3)),
                    ("tmp".into(), InodeId(4)),
                    ("dev".into(), InodeId(5)),
                ])),
                admin_integrity.clone(),
            ),
            (InodeId(2), dir(BTreeMap::new()), admin_integrity.clone()),
            (InodeId(3), dir(BTreeMap::new()), admin_integrity),
            (InodeId(4), dir(BTreeMap::new()), SecPair::unlabeled()),
            (
                InodeId(5),
                dir(BTreeMap::from([("null".into(), InodeId(6))])),
                SecPair::unlabeled(),
            ),
            (InodeId(6), InodeKind::NullDevice, SecPair::unlabeled()),
        ];
        for (id, kind, labels) in boot_nodes {
            kernel.insert_inode_direct(id, kind, labels);
        }
        Arc::new(kernel)
    }

    /// The resource quotas this kernel was booted with.
    #[must_use]
    pub fn quotas(&self) -> &Quotas {
        &self.quotas
    }

    /// Runs one syscall body as a transaction under a panic boundary,
    /// with two-phase shard locking and footprint restart.
    ///
    /// The body runs against a [`Txn`] that pre-locks the calling task's
    /// shard and acquires further shards on demand in ascending key
    /// order. If the body needs a shard below one it already holds, the
    /// accessor returns the internal [`OsError::Retry`] sentinel; the
    /// journal is rolled back, the shard joins the lock footprint, and
    /// the body reruns with the whole footprint pre-locked — ids minted
    /// by the attempt replay positionally (see [`IdCache`]), so the
    /// footprint converges and the loop terminates within
    /// `SHARD_COUNT + 8` attempts (fail-closed [`OsError::Internal`]
    /// otherwise).
    ///
    /// On `Ok` the transaction commits; on `Err` *or* a caught panic the
    /// undo journal restores every mutated entry — touching only held
    /// shards — and the caller sees a typed error, while the kernel
    /// keeps serving every other task. Every non-restart exit takes a
    /// commit ticket while the shard locks are still held.
    pub(crate) fn syscall_on<T>(
        &self,
        tid: TaskId,
        name: &'static str,
        mut f: impl FnMut(&mut Txn<'_>) -> OsResult<T>,
    ) -> OsResult<T> {
        // Audit span: `None` (one atomic load) while tracing is
        // disabled. Events the body emits are staged on the span and
        // reach the ring only on a final outcome; footprint restarts
        // discard the attempt's stage so decisions record exactly once.
        let span = laminar_obs::syscall_begin(name);
        // Big-lock emulation mode for the bench baseline: one global
        // mutex spans the entire dispatch, serialising all syscalls.
        let _serial = if self.serial_on.load(Ordering::Relaxed) {
            Some(self.serial_lock.lock())
        } else {
            None
        };
        let mut footprint: BTreeSet<ShardKey> = BTreeSet::new();
        footprint.insert(ShardKey::task(tid));
        let mut ids = IdCache::default();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            #[cfg(feature = "fault-injection")]
            let fp_snapshot = self.failpoints.snapshot();
            let mut txn = Txn::begin(self, &footprint, &mut ids);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let r = f(&mut txn);
                #[cfg(feature = "fault-injection")]
                if r.is_ok() {
                    self.failpoints.fire_abort_late();
                }
                r
            }));
            match outcome {
                Ok(Ok(v)) => {
                    txn.flush_hooks();
                    let ticket = self.commit_ticket(tid);
                    drop(txn);
                    if let Some(span) = span {
                        span.commit(ticket, None);
                    }
                    return Ok(v);
                }
                Ok(Err(OsError::Retry(k))) => {
                    txn.rollback();
                    if let Some(span) = &span {
                        span.retry();
                    }
                    if attempts > SHARD_COUNT + 8 {
                        // Should be unreachable: the footprint only grows
                        // and there are SHARD_COUNT shards. Fail closed.
                        txn.flush_hooks();
                        let ticket = self.commit_ticket(tid);
                        drop(txn);
                        crate::stats::note_syscall_rolled_back();
                        if let Some(span) = span {
                            span.rollback(ticket);
                        }
                        return Err(OsError::Internal);
                    }
                    drop(txn);
                    #[cfg(feature = "fault-injection")]
                    self.failpoints.restore(fp_snapshot);
                    footprint.insert(ShardKey(k));
                }
                Ok(Err(e)) => {
                    txn.rollback();
                    txn.flush_hooks();
                    let ticket = self.commit_ticket(tid);
                    drop(txn);
                    // A typed denial is a final, visible outcome: its
                    // staged decision events (the deny verdicts) flush
                    // like a commit.
                    if let Some(span) = span {
                        span.commit(ticket, Some(e.audit_name()));
                    }
                    return Err(e);
                }
                Err(_panic) => {
                    txn.rollback();
                    txn.flush_hooks();
                    let ticket = self.commit_ticket(tid);
                    drop(txn);
                    crate::stats::note_syscall_rolled_back();
                    // The body's effects were undone; its staged
                    // decisions are discarded with them.
                    if let Some(span) = span {
                        span.rollback(ticket);
                    }
                    return Err(OsError::Internal);
                }
            }
        }
    }

    /// Takes the next commit ticket (while the caller still holds its
    /// shard locks) and records it in the commit log when enabled.
    /// Returns the ticket so the audit trail can correlate with the
    /// linearization witness.
    fn commit_ticket(&self, tid: TaskId) -> u64 {
        let seq = self.commit_seq.fetch_add(1, Ordering::SeqCst) + 1;
        LAST_SEQ.with(|c| c.set(seq));
        if self.commit_log_on.load(Ordering::Relaxed) {
            self.commit_log.lock().push(CommitRecord { seq, task: tid });
        }
        seq
    }

    /// Snapshots the trusted audit log (all threads' rings, merged in
    /// event order). **Trusted API**: this lives on [`Kernel`], not
    /// [`TaskHandle`](crate::TaskHandle) — no syscall exposes audit
    /// data, because a subject that could see its own silent drops would
    /// have exactly the covert channel §5.2 closes.
    #[must_use]
    pub fn audit_snapshot(&self) -> laminar_obs::AuditLog {
        laminar_obs::snapshot()
    }

    /// Enables or disables the decision trace process-wide (disabled by
    /// default; disabled emit points cost one atomic load).
    pub fn set_audit_enabled(&self, on: bool) {
        laminar_obs::set_enabled(on);
    }

    /// Enables (clearing any previous contents) or disables the
    /// commit-order log consumed by the concurrent conformance regime.
    pub fn set_commit_log_enabled(&self, on: bool) {
        if on {
            self.commit_log.lock().clear();
        }
        self.commit_log_on.store(on, Ordering::SeqCst);
    }

    /// Drains the commit-order log, sorted by commit ticket. Records may
    /// be appended out of ticket order (the log mutex is taken after the
    /// ticket), so the drain sorts before returning.
    pub fn drain_commit_log(&self) -> Vec<CommitRecord> {
        let mut log = std::mem::take(&mut *self.commit_log.lock());
        log.sort_by_key(|r| r.seq);
        log
    }

    /// Switches big-lock emulation on or off: when on, every syscall
    /// additionally serialises on one global mutex. This is the
    /// pre-shard baseline the SMP benchmark compares against.
    pub fn set_serial_mode(&self, on: bool) {
        self.serial_on.store(on, Ordering::SeqCst);
    }

    /// Runs `f(worker_index, task_set)` on one OS thread per task set,
    /// concurrently, returning each worker's result in order. Each
    /// worker owns a *disjoint* set of tasks and issues real syscalls
    /// through its handles; the sharded kernel executes them in
    /// parallel.
    ///
    /// # Panics
    /// Panics if a handle belongs to another kernel, if two sets share a
    /// task id, or (propagated) if a worker panics.
    pub fn run_parallel<R, F>(
        self: &Arc<Self>,
        task_sets: Vec<Vec<TaskHandle>>,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[TaskHandle]) -> R + Sync,
    {
        let mut seen = std::collections::HashSet::new();
        for set in &task_sets {
            for h in set {
                assert!(
                    Arc::ptr_eq(&h.kernel, self),
                    "run_parallel: handle from another kernel"
                );
                assert!(
                    seen.insert(h.tid),
                    "run_parallel: task sets must be disjoint ({} appears twice)",
                    h.tid
                );
            }
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = task_sets
                .iter()
                .enumerate()
                .map(|(i, set)| s.spawn(move || f(i, set)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        })
    }

    /// Arms a one-shot [`SyscallFailpoint`] (conformance testkit).
    #[cfg(feature = "fault-injection")]
    pub fn arm_failpoint_for_test(self: &Arc<Self>, fp: SyscallFailpoint) {
        self.failpoints.arm(fp);
    }

    /// Reports whether the armed failpoint fired, clearing both the
    /// fired flag and any still-armed failpoint.
    #[cfg(feature = "fault-injection")]
    pub fn take_failpoint_fired(self: &Arc<Self>) -> bool {
        self.failpoints.take_fired()
    }

    /// The special `tcb` integrity tag (§4.4): only a task whose
    /// integrity label carries it may call `drop_label_tcb`.
    #[must_use]
    pub fn tcb_tag(&self) -> Tag {
        self.tcb_tag
    }

    /// The system administrator's integrity tag, applied to `/`, `/etc`
    /// and `/home` at install time (§5.2).
    #[must_use]
    pub fn admin_tag(&self) -> Tag {
        self.admin_tag
    }

    /// Name of the loaded security module.
    #[must_use]
    pub fn module_name(&self) -> &'static str {
        self.module.name()
    }

    /// Number of LSM hook invocations so far (for tests and benches).
    #[must_use]
    pub fn hook_calls(&self) -> u64 {
        self.hook_counter.load(Ordering::Relaxed)
    }

    /// Inserts a fully formed inode outside any transaction (boot and
    /// install-time administration; locks exactly one shard).
    fn insert_inode_direct(&self, id: InodeId, kind: InodeKind, labels: SecPair) {
        self.tables
            .inodes_for(id)
            .insert(id, Inode { id, kind, xattrs: Xattrs { labels }, nlink: 1 });
        self.inode_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocates and inserts a fresh inode outside any transaction.
    fn alloc_inode_direct(&self, kind: InodeKind, labels: SecPair) -> InodeId {
        let id = InodeId(self.next_inode.fetch_add(1, Ordering::Relaxed));
        self.insert_inode_direct(id, kind, labels);
        id
    }

    /// Registers a user account and creates their home directory
    /// `/home/<name>` (unlabeled, so the user does not need the
    /// administrator's integrity tag to use it).
    pub fn add_user(self: &Arc<Self>, user: UserId, name: &str) {
        let id = self.alloc_inode_direct(
            InodeKind::Dir { entries: BTreeMap::new() },
            SecPair::unlabeled(),
        );
        let home = {
            let root_shard = self.tables.inodes_for(self.root);
            match root_shard.get(&self.root).map(|n| &n.kind) {
                Some(InodeKind::Dir { entries }) => entries.get("home").copied(),
                _ => None,
            }
        };
        if let Some(h) = home {
            let mut shard = self.tables.inodes_for(h);
            if let Some(InodeKind::Dir { entries }) =
                shard.get_mut(&h).map(|n| &mut n.kind)
            {
                entries.insert(name.to_string(), id);
            }
        }
        let mut reg = self.tables.registry();
        reg.homes.insert(user, id);
        reg.persistent_caps.entry(user).or_default();
    }

    /// Install-time administration: creates a directory with the given
    /// labels, bypassing the DIFC checks. §5.2 labels system directories
    /// "when the system is installed"; strict Biba traversal makes an
    /// integrity-labeled subtree impossible to grow from inside the
    /// rules (the design tension the paper discusses), so endowing one
    /// is an administrator action, like the admin labels on `/`.
    ///
    /// # Errors
    /// [`OsError::NotFound`]/[`OsError::Exists`] on path problems.
    pub fn install_dir(self: &Arc<Self>, path: &str, labels: SecPair) -> OsResult<()> {
        self.install_node(path, InodeKind::Dir { entries: BTreeMap::new() }, labels)
    }

    /// Install-time administration: creates a labeled file with initial
    /// contents, bypassing the DIFC checks (see [`Kernel::install_dir`]).
    ///
    /// # Errors
    /// [`OsError::NotFound`]/[`OsError::Exists`] on path problems.
    pub fn install_file(
        self: &Arc<Self>,
        path: &str,
        labels: SecPair,
        data: &[u8],
    ) -> OsResult<()> {
        self.install_node(path, InodeKind::File { data: data.to_vec() }, labels)
    }

    fn install_node(
        self: &Arc<Self>,
        path: &str,
        kind: InodeKind,
        labels: SecPair,
    ) -> OsResult<()> {
        let (parent, name) = self.admin_resolve(path)?;
        {
            let shard = self.tables.inodes_for(parent);
            match shard.get(&parent).map(|n| &n.kind) {
                Some(InodeKind::Dir { entries }) => {
                    if entries.contains_key(&name) {
                        return Err(OsError::Exists);
                    }
                }
                _ => return Err(OsError::NotADirectory),
            }
        }
        // The parent guard is dropped before allocating: the child may
        // hash to the same (or a lower-ranked) inode shard.
        let id = self.alloc_inode_direct(kind, labels);
        let mut shard = self.tables.inodes_for(parent);
        match shard.get_mut(&parent).map(|n| &mut n.kind) {
            Some(InodeKind::Dir { entries }) => {
                if entries.contains_key(&name) {
                    // Lost an install race; undo the allocation.
                    drop(shard);
                    self.tables.inodes_for(id).remove(&id);
                    self.inode_count.fetch_sub(1, Ordering::Relaxed);
                    return Err(OsError::Exists);
                }
                entries.insert(name, id);
                Ok(())
            }
            _ => Err(OsError::NotADirectory),
        }
    }

    /// Reads one directory entry, locking only that directory's shard.
    fn admin_lookup_child(&self, dir: InodeId, name: &str) -> OsResult<InodeId> {
        let shard = self.tables.inodes_for(dir);
        match shard.get(&dir).map(|n| &n.kind) {
            Some(InodeKind::Dir { entries }) => {
                entries.get(name).copied().ok_or(OsError::NotFound)
            }
            Some(_) => Err(OsError::NotADirectory),
            None => Err(OsError::NotFound),
        }
    }

    /// Checkless absolute-path resolution for install-time operations.
    /// Locks one directory shard at a time (never two at once).
    fn admin_resolve(&self, path: &str) -> OsResult<(InodeId, String)> {
        let rel = path
            .strip_prefix('/')
            .ok_or(OsError::InvalidArgument("install paths must be absolute"))?;
        let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
        let (last, dirs) =
            comps.split_last().ok_or(OsError::InvalidArgument("empty path"))?;
        let mut cur = self.root;
        for c in dirs {
            cur = self.admin_lookup_child(cur, c)?;
        }
        Ok((cur, (*last).to_string()))
    }

    /// Conformance/test inspection: resolves an *absolute* `path` with
    /// **no security checks** and returns the inode's labels plus its
    /// contents (`None` for non-files). The model-based testkit uses
    /// this to diff kernel state against its reference oracle without
    /// perturbing hook counters or cache statistics; it is not part of
    /// the paper's API (exposing it to untrusted code would be a
    /// channel).
    ///
    /// # Errors
    /// [`OsError::NotFound`] if the path names no inode;
    /// [`OsError::InvalidArgument`] for relative paths.
    pub fn inspect_node_for_test(
        self: &Arc<Self>,
        path: &str,
    ) -> OsResult<(SecPair, Option<Vec<u8>>)> {
        let (parent, name) = self.admin_resolve(path)?;
        let id = self.admin_lookup_child(parent, &name)?;
        let shard = self.tables.inodes_for(id);
        let inode = shard.get(&id).ok_or(OsError::NotFound)?;
        let data = match &inode.kind {
            InodeKind::File { data } => Some(data.clone()),
            _ => None,
        };
        Ok((inode.labels().clone(), data))
    }

    /// Fault injection for the conformance testkit: poisons the mutex of
    /// the shard with the given flat ordinal (`0..KERNEL_SHARDS`,
    /// wrapping), so the next syscall touching that shard takes the
    /// poison-recovery path of [`laminar_util::sync::Mutex`]. Verdicts
    /// must be unaffected, and *other* shards keep serving syscalls
    /// without recovering anything.
    #[cfg(feature = "fault-injection")]
    pub fn poison_shard_for_test(self: &Arc<Self>, ordinal: usize) {
        self.tables.poison(ShardKey::from_ordinal(ordinal));
    }

    /// Poisons the task-table shard holding `tid` (fault injection).
    #[cfg(feature = "fault-injection")]
    pub fn poison_task_shard_for_test(self: &Arc<Self>, tid: TaskId) {
        self.tables.poison(ShardKey::task(tid));
    }

    /// Poisons the inode-table shard holding `ino` (fault injection).
    #[cfg(feature = "fault-injection")]
    pub fn poison_inode_shard_for_test(self: &Arc<Self>, ino: InodeId) {
        self.tables.poison(ShardKey::inode(ino));
    }

    /// Resolves `path` to its inode id with no DIFC checks (fault
    /// injection: lets a test aim [`Kernel::poison_inode_shard_for_test`]
    /// at the shard actually holding a given file).
    ///
    /// # Errors
    /// [`OsError::NotFound`] if the path names no inode;
    /// [`OsError::InvalidArgument`] for relative paths.
    #[cfg(feature = "fault-injection")]
    pub fn inode_of_for_test(self: &Arc<Self>, path: &str) -> OsResult<InodeId> {
        let (parent, name) = self.admin_resolve(path)?;
        self.admin_lookup_child(parent, &name)
    }

    /// Logs a user in: spawns a fresh process with one task whose
    /// capability set is the user's persistent capabilities and whose cwd
    /// is their home directory (§4.4's login-shell grant).
    ///
    /// # Errors
    ///
    /// Fails with [`OsError::NoSuchTask`] if the user was never added.
    pub fn login(self: &Arc<Self>, user: UserId) -> OsResult<TaskHandle> {
        let (cwd, caps) = {
            let reg = self.tables.registry();
            let cwd = *reg.homes.get(&user).ok_or(OsError::NoSuchTask)?;
            let caps = reg.persistent_caps.get(&user).cloned().unwrap_or_default();
            (cwd, caps)
        };
        let tid = self.spawn_process_direct(user, cwd, caps);
        Ok(TaskHandle { kernel: Arc::clone(self), tid })
    }

    /// Spawns a process outside any transaction (login/boot path).
    fn spawn_process_direct(&self, user: UserId, cwd: InodeId, caps: CapSet) -> TaskId {
        let pid = ProcessId(self.next_proc.fetch_add(1, Ordering::Relaxed));
        let tid = TaskId(self.next_task.fetch_add(1, Ordering::Relaxed));
        self.tables.procs_for(pid).insert(pid, ProcessStruct::fresh(pid, tid, cwd));
        self.tables.tasks_for(tid).insert(
            tid,
            TaskStruct::fresh(tid, pid, user, TaskSec::new(SecPair::unlabeled(), caps)),
        );
        tid
    }

    /// Grants the calling runtime the privileges of a trusted VM: marks
    /// the task's process as `trusted_vm` (its threads may then hold
    /// heterogeneous labels, §4.1) and grants the task the `tcb+`
    /// capability so a dedicated thread can assume the `tcb` integrity
    /// tag (§4.4). This models booting the (audited, trusted) Laminar VM
    /// binary; it is a boot-time decision, not a syscall untrusted code
    /// can reach.
    ///
    /// # Errors
    ///
    /// Fails with [`OsError::NoSuchTask`] if the handle's task has exited.
    pub fn bless_vm_process(self: &Arc<Self>, task: &TaskHandle) -> OsResult<()> {
        let tcb = self.tcb_tag;
        let pid = {
            let mut shard = self.tables.tasks_for(task.tid);
            let t = shard.get_mut(&task.tid).ok_or(OsError::NoSuchTask)?;
            t.security.caps_mut().grant_both(tcb);
            t.process
        };
        self.tables.procs_for(pid).get_mut(&pid).ok_or(OsError::Internal)?.trusted_vm =
            true;
        Ok(())
    }

    /// Sets the persistent capabilities stored for a user (the on-disk
    /// capability file of §4.4). Takes effect at the next login.
    pub fn set_persistent_caps(self: &Arc<Self>, user: UserId, caps: CapSet) {
        self.tables.registry().persistent_caps.insert(user, caps);
    }

    /// Reads back a user's persistent capabilities.
    #[must_use]
    pub fn persistent_caps(self: &Arc<Self>, user: UserId) -> CapSet {
        self.tables.registry().persistent_caps.get(&user).cloned().unwrap_or_default()
    }

    /// Invokes the `inode_permission` hook, counting it.
    pub(crate) fn hook_inode_permission(
        &self,
        st: &mut Txn<'_>,
        task: &TaskSec,
        ino: InodeId,
        mask: Access,
    ) -> OsResult<()> {
        st.count_hook();
        let labels = st.inode_labels(ino)?;
        self.module.inode_permission(task, &labels, mask)
    }

    /// Resolves `path` for task `tid`, checking a read permission on
    /// every directory traversed (directory contents — names and labels
    /// of children — are protected by the directory's own label) and
    /// *following symbolic links*, each of which is itself a mediated
    /// read of the link inode (so a task that rejects the link's
    /// integrity cannot be redirected through it — §5.2's symlink
    /// concern).
    ///
    /// Returns the parent directory, the final component name, and the
    /// target inode if it exists.
    pub(crate) fn resolve(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
    ) -> OsResult<Resolved> {
        self.resolve_full(st, tid, path, true)
    }

    /// Like [`Kernel::resolve`] but does not follow a symlink in the
    /// final component (for `readlink`/`lstat`).
    pub(crate) fn resolve_nofollow(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
    ) -> OsResult<Resolved> {
        self.resolve_full(st, tid, path, false)
    }

    fn resolve_full(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
        follow_final: bool,
    ) -> OsResult<Resolved> {
        let task = st.task_sec(tid)?;
        if path.is_empty() {
            return Err(OsError::InvalidArgument("empty path"));
        }
        let (start, rel): (InodeId, &str) = if let Some(stripped) = path.strip_prefix('/')
        {
            (self.root, stripped)
        } else {
            let proc_id = st.task(tid)?.process;
            (st.proc(proc_id)?.cwd, path)
        };
        let comps: Vec<String> = rel
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .map(str::to_string)
            .collect();
        self.walk(st, &task, start, comps, follow_final, 0)
    }

    fn walk(
        &self,
        st: &mut Txn<'_>,
        task: &TaskSec,
        start: InodeId,
        comps: Vec<String>,
        follow_final: bool,
        depth: u32,
    ) -> OsResult<Resolved> {
        if depth > 8 {
            return Err(OsError::SymlinkLoop);
        }
        if comps.is_empty() {
            return Ok(Resolved {
                parent: None,
                name: String::new(),
                inode: Some(start),
            });
        }
        let mut stack: Vec<InodeId> = vec![start];
        let mut cur = start;
        for (i, comp) in comps.iter().enumerate() {
            let last = i + 1 == comps.len();
            // Looking up a name inside `cur` reads `cur`.
            self.hook_inode_permission(st, task, cur, Access::Read)?;
            if comp == ".." {
                if stack.len() > 1 {
                    stack.pop();
                }
                cur = *stack.last().ok_or(OsError::Internal)?;
                if last {
                    return Ok(Resolved {
                        parent: None,
                        name: String::new(),
                        inode: Some(cur),
                    });
                }
                continue;
            }
            let child = {
                let node = st.inode_opt(cur)?.ok_or(OsError::NotFound)?;
                match &node.kind {
                    InodeKind::Dir { entries } => entries.get(comp.as_str()).copied(),
                    _ => return Err(OsError::NotADirectory),
                }
            };
            match child {
                Some(child) => {
                    // Symlink in the path: follow it (mediated).
                    let link_target = match st.inode_opt(child)?.map(|n| &n.kind) {
                        Some(InodeKind::Symlink { target }) => Some(target.clone()),
                        _ => None,
                    };
                    if let Some(target) = link_target {
                        if last && !follow_final {
                            return Ok(Resolved {
                                parent: Some(cur),
                                name: comp.clone(),
                                inode: Some(child),
                            });
                        }
                        // Following reads the link inode itself.
                        self.hook_inode_permission(st, task, child, Access::Read)?;
                        let (nstart, mut ncomps): (InodeId, Vec<String>) =
                            if let Some(strip) = target.strip_prefix('/') {
                                (
                                    self.root,
                                    strip
                                        .split('/')
                                        .filter(|c| !c.is_empty() && *c != ".")
                                        .map(str::to_string)
                                        .collect(),
                                )
                            } else {
                                (
                                    cur,
                                    target
                                        .split('/')
                                        .filter(|c| !c.is_empty() && *c != ".")
                                        .map(str::to_string)
                                        .collect(),
                                )
                            };
                        ncomps.extend(comps[i + 1..].iter().cloned());
                        return self.walk(
                            st,
                            task,
                            nstart,
                            ncomps,
                            follow_final,
                            depth + 1,
                        );
                    }
                    if last {
                        return Ok(Resolved {
                            parent: Some(cur),
                            name: comp.clone(),
                            inode: Some(child),
                        });
                    }
                    stack.push(child);
                    cur = child;
                }
                None => {
                    if last {
                        return Ok(Resolved {
                            parent: Some(cur),
                            name: comp.clone(),
                            inode: None,
                        });
                    }
                    return Err(OsError::NotFound);
                }
            }
        }
        // The loop always returns on the last component; reaching here
        // would be an internal invariant failure, reported fail-closed.
        Err(OsError::Internal)
    }
}

pub(crate) struct Resolved {
    /// Parent directory (None when the path names the root / cwd itself).
    pub parent: Option<InodeId>,
    pub name: String,
    pub inode: Option<InodeId>,
}

impl TaskHandle {
    /// The task's kernel id.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.tid
    }

    /// The kernel this task runs on.
    #[must_use]
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laminar_lsm::LaminarModule;
    use crate::lsm::NullModule;

    #[test]
    fn boot_installs_system_tree() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        // Home directory exists and is the cwd.
        let md = sh.stat(".").unwrap();
        assert!(md.is_dir);
        // System tree is reachable.
        assert!(sh.stat("/etc").unwrap().is_dir);
        assert!(sh.stat("/tmp").unwrap().is_dir);
        assert!(sh.stat("/dev/null").is_ok());
    }

    #[test]
    fn system_dirs_carry_admin_integrity() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        let md = sh.stat("/etc").unwrap();
        assert!(md.labels.integrity().contains(k.admin_tag()));
        // Home dirs are unlabeled.
        let md = sh.stat(".").unwrap();
        assert!(md.labels.is_unlabeled());
    }

    #[test]
    fn login_requires_known_user() {
        let k = Kernel::boot(NullModule);
        assert!(matches!(k.login(UserId(7)), Err(OsError::NoSuchTask)));
    }

    #[test]
    fn login_grants_persistent_caps() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let tag = k.tags.fresh();
        let mut caps = CapSet::new();
        caps.grant_both(tag);
        k.set_persistent_caps(UserId(1), caps.clone());
        let sh = k.login(UserId(1)).unwrap();
        assert_eq!(sh.current_caps().unwrap(), caps);
    }

    #[test]
    fn hook_counter_increases_under_laminar() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        let before = k.hook_calls();
        let _ = sh.stat("/tmp");
        assert!(k.hook_calls() > before);
    }

    #[test]
    fn commit_tickets_are_dense_and_thread_visible() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        k.set_commit_log_enabled(true);
        let _ = sh.stat("/tmp");
        let s1 = last_syscall_seq();
        let _ = sh.stat("/etc");
        let s2 = last_syscall_seq();
        assert!(s2 > s1);
        let log = k.drain_commit_log();
        assert!(log.iter().any(|r| r.seq == s1 && r.task == sh.id()));
        assert!(log.iter().any(|r| r.seq == s2 && r.task == sh.id()));
        k.set_commit_log_enabled(false);
    }

    #[test]
    fn run_parallel_executes_disjoint_task_sets() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        k.add_user(UserId(2), "bob");
        let a = k.login(UserId(1)).unwrap();
        let b = k.login(UserId(2)).unwrap();
        let results = k.run_parallel(vec![vec![a], vec![b]], |i, set| {
            let h = &set[0];
            let mut ok = 0u32;
            for n in 0..50 {
                let name = format!("f{i}_{n}");
                let fd = h.create(&name).unwrap();
                h.write(fd, b"x").unwrap();
                h.close(fd).unwrap();
                h.unlink(&name).unwrap();
                ok += 1;
            }
            ok
        });
        assert_eq!(results, vec![50, 50]);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn run_parallel_rejects_overlapping_sets() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let a = k.login(UserId(1)).unwrap();
        let b = a.clone();
        let _ = k.run_parallel(vec![vec![a], vec![b]], |_, _| ());
    }

    #[test]
    fn serial_mode_still_serves_syscalls() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        k.set_serial_mode(true);
        let fd = sh.create("f").unwrap();
        sh.write(fd, b"hello").unwrap();
        sh.close(fd).unwrap();
        assert!(sh.stat("f").is_ok());
        k.set_serial_mode(false);
        assert!(sh.stat("f").is_ok());
    }
}
