//! The simulated kernel: task/process/inode tables, boot, login, and the
//! glue that invokes the LSM hooks.
//!
//! The Laminar OS "extends a standard operating system with a Laminar
//! security module for information flow control" (§4.1). Here the
//! "standard operating system" is this crate's simulated kernel; the
//! security module is pluggable ([`crate::lsm::SecurityModule`]) so the
//! very same kernel can run with [`crate::lsm::NullModule`] (stock Linux
//! baseline) or [`crate::laminar_lsm::LaminarModule`] — which is exactly
//! how Table 2 of the paper compares unmodified Linux against Laminar.

use crate::error::{OsError, OsResult};
use crate::lsm::{Access, SecurityModule};
use crate::task::{ProcessId, ProcessStruct, TaskId, TaskSec, TaskStruct, UserId};
use crate::txn::{Quotas, Txn};
use crate::vfs::file::FdTable;
use crate::vfs::inode::{Inode, InodeId, InodeKind, Xattrs};
use laminar_difc::{CapSet, Label, SecPair, Tag, TagAllocator};
use laminar_util::sync::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Mutable kernel state, guarded by the big kernel lock.
pub(crate) struct KState {
    pub tasks: HashMap<TaskId, TaskStruct>,
    pub processes: HashMap<ProcessId, ProcessStruct>,
    pub inodes: HashMap<InodeId, Inode>,
    pub root: InodeId,
    pub next_task: u64,
    pub next_proc: u64,
    pub next_inode: u64,
    /// Persistent per-user capability store (§4.4: "The OS stores the
    /// persistent capabilities for each user in a file. On login, the OS
    /// gives the login shell all of the user's persistent capabilities").
    pub persistent_caps: HashMap<UserId, CapSet>,
    pub homes: HashMap<UserId, InodeId>,
    /// Count of LSM hook invocations (observability for tests/benches).
    pub hook_calls: u64,
    /// Tags minted per user via `alloc_tag` (for the tag quota).
    pub tags_minted: HashMap<UserId, u64>,
}

/// A one-shot failpoint armed inside the kernel by the conformance
/// testkit. Exactly one may be armed at a time; it fires at most once
/// (disarming itself) and records that it fired.
#[cfg(feature = "fault-injection")]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SyscallFailpoint {
    /// Panic inside the next LSM hook invocation — an internal fault in
    /// the middle of a syscall body, after some state may have been
    /// staged.
    PanicAtHook,
    /// Panic after the next syscall body *succeeds*, just before commit —
    /// a mid-syscall abort at the latest possible point.
    AbortLate,
    /// Make the next resource allocation (inode, fd, tag) report quota
    /// exhaustion.
    QuotaNext,
}

/// Shared failpoint state (see [`SyscallFailpoint`]).
#[cfg(feature = "fault-injection")]
#[derive(Default)]
pub(crate) struct Failpoints {
    armed: std::sync::atomic::AtomicU8,
    fired: std::sync::atomic::AtomicBool,
}

#[cfg(feature = "fault-injection")]
impl Failpoints {
    const NONE: u8 = 0;
    const PANIC_AT_HOOK: u8 = 1;
    const ABORT_LATE: u8 = 2;
    const QUOTA_NEXT: u8 = 3;

    fn code(fp: SyscallFailpoint) -> u8 {
        match fp {
            SyscallFailpoint::PanicAtHook => Self::PANIC_AT_HOOK,
            SyscallFailpoint::AbortLate => Self::ABORT_LATE,
            SyscallFailpoint::QuotaNext => Self::QUOTA_NEXT,
        }
    }

    fn arm(&self, fp: SyscallFailpoint) {
        use std::sync::atomic::Ordering;
        self.fired.store(false, Ordering::SeqCst);
        self.armed.store(Self::code(fp), Ordering::SeqCst);
    }

    fn take_fired(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.armed.store(Self::NONE, Ordering::SeqCst);
        self.fired.swap(false, Ordering::SeqCst)
    }

    fn take_if(&self, code: u8) -> bool {
        use std::sync::atomic::Ordering;
        if self
            .armed
            .compare_exchange(code, Self::NONE, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.fired.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    pub(crate) fn fire_panic_at_hook(&self) {
        if self.take_if(Self::PANIC_AT_HOOK) {
            panic!("injected failpoint: panic inside LSM hook");
        }
    }

    pub(crate) fn fire_abort_late(&self) {
        if self.take_if(Self::ABORT_LATE) {
            panic!("injected failpoint: abort before syscall commit");
        }
    }

    pub(crate) fn take_quota(&self) -> bool {
        self.take_if(Self::QUOTA_NEXT)
    }
}

/// The simulated kernel. Create one with [`Kernel::boot`], obtain task
/// handles with [`Kernel::login`], and issue syscalls through
/// [`TaskHandle`] methods.
///
/// # Examples
///
/// ```
/// use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
///
/// # fn main() -> Result<(), laminar_os::OsError> {
/// let kernel = Kernel::boot(LaminarModule);
/// kernel.add_user(UserId(1), "alice");
/// let shell = kernel.login(UserId(1))?;
/// let fd = shell.create("notes.txt")?;
/// shell.write(fd, b"hello")?;
/// shell.close(fd)?;
/// let fd = shell.open("notes.txt", OpenMode::Read)?;
/// assert_eq!(shell.read(fd, 64)?, b"hello");
/// # Ok(())
/// # }
/// ```
pub struct Kernel {
    pub(crate) state: Mutex<KState>,
    pub(crate) module: Box<dyn SecurityModule>,
    pub(crate) tags: TagAllocator,
    pub(crate) quotas: Quotas,
    #[cfg(feature = "fault-injection")]
    pub(crate) failpoints: Failpoints,
    tcb_tag: Tag,
    admin_tag: Tag,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Kernel")
            .field("module", &self.module.name())
            .field("tasks", &st.tasks.len())
            .field("inodes", &st.inodes.len())
            .finish()
    }
}

/// A handle through which one kernel task issues syscalls.
///
/// Clone-able and `Send`: a `TaskHandle` can be moved into the OS thread
/// that plays the corresponding principal. All methods take `&self`;
/// the kernel serialises state access internally.
#[derive(Clone, Debug)]
pub struct TaskHandle {
    pub(crate) kernel: Arc<Kernel>,
    pub(crate) tid: TaskId,
}

impl Kernel {
    /// Boots a kernel with the given security module and installs the
    /// initial filesystem: `/`, `/etc`, `/home` (integrity-labeled with
    /// the system administrator's tag, §5.2), plus unlabeled `/tmp`,
    /// `/dev` and the `/dev/null` device.
    pub fn boot<M: SecurityModule + 'static>(module: M) -> Arc<Kernel> {
        Self::boot_with_quotas(module, Quotas::default())
    }

    /// Like [`Kernel::boot`] but with explicit resource quotas (see
    /// [`Quotas`]); the defaults are generous enough that ordinary
    /// workloads never hit them.
    pub fn boot_with_quotas<M: SecurityModule + 'static>(
        module: M,
        quotas: Quotas,
    ) -> Arc<Kernel> {
        let tags = TagAllocator::new();
        let tcb_tag = tags.fresh();
        let admin_tag = tags.fresh();
        let admin_integrity = SecPair::integrity_only(Label::singleton(admin_tag));

        let mut inodes = HashMap::new();
        let mut next_inode = 1u64;
        let mut mkino = |kind: InodeKind, labels: SecPair| {
            let id = InodeId(next_inode);
            next_inode += 1;
            inodes.insert(id, Inode { id, kind, xattrs: Xattrs { labels }, nlink: 1 });
            id
        };

        let root =
            mkino(InodeKind::Dir { entries: BTreeMap::new() }, admin_integrity.clone());
        let etc =
            mkino(InodeKind::Dir { entries: BTreeMap::new() }, admin_integrity.clone());
        let home =
            mkino(InodeKind::Dir { entries: BTreeMap::new() }, admin_integrity.clone());
        let tmp =
            mkino(InodeKind::Dir { entries: BTreeMap::new() }, SecPair::unlabeled());
        let dev =
            mkino(InodeKind::Dir { entries: BTreeMap::new() }, SecPair::unlabeled());
        let null = mkino(InodeKind::NullDevice, SecPair::unlabeled());

        if let Some(InodeKind::Dir { entries }) =
            inodes.get_mut(&root).map(|n| &mut n.kind)
        {
            entries.insert("etc".into(), etc);
            entries.insert("home".into(), home);
            entries.insert("tmp".into(), tmp);
            entries.insert("dev".into(), dev);
        }
        if let Some(InodeKind::Dir { entries }) =
            inodes.get_mut(&dev).map(|n| &mut n.kind)
        {
            entries.insert("null".into(), null);
        }

        Arc::new(Kernel {
            state: Mutex::new(KState {
                tasks: HashMap::new(),
                processes: HashMap::new(),
                inodes,
                root,
                next_task: 1,
                next_proc: 1,
                next_inode,
                persistent_caps: HashMap::new(),
                homes: HashMap::new(),
                hook_calls: 0,
                tags_minted: HashMap::new(),
            }),
            module: Box::new(module),
            tags,
            quotas,
            #[cfg(feature = "fault-injection")]
            failpoints: Failpoints::default(),
            tcb_tag,
            admin_tag,
        })
    }

    /// The resource quotas this kernel was booted with.
    #[must_use]
    pub fn quotas(&self) -> &Quotas {
        &self.quotas
    }

    /// Runs one syscall body as a transaction under a panic boundary.
    ///
    /// The big kernel lock is held across the whole dispatch, including
    /// the `catch_unwind`, so an internal fault can never poison it. On
    /// `Ok` the transaction commits; on `Err` *or* a caught panic the
    /// undo journal restores every mutated entry and the caller sees a
    /// typed error — [`OsError::Internal`] for faults — while the kernel
    /// keeps serving every other task.
    pub(crate) fn syscall<T>(
        &self,
        f: impl FnOnce(&mut Txn<'_>) -> OsResult<T>,
    ) -> OsResult<T> {
        let mut st = self.state.lock();
        let mut txn = Txn::new(
            &mut st,
            &self.quotas,
            #[cfg(feature = "fault-injection")]
            &self.failpoints,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let r = f(&mut txn);
            #[cfg(feature = "fault-injection")]
            if r.is_ok() {
                self.failpoints.fire_abort_late();
            }
            r
        }));
        match outcome {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => {
                txn.rollback();
                Err(e)
            }
            Err(_panic) => {
                txn.rollback();
                crate::stats::note_syscall_rolled_back();
                Err(OsError::Internal)
            }
        }
    }

    /// Arms a one-shot [`SyscallFailpoint`] (conformance testkit).
    #[cfg(feature = "fault-injection")]
    pub fn arm_failpoint_for_test(self: &Arc<Self>, fp: SyscallFailpoint) {
        self.failpoints.arm(fp);
    }

    /// Reports whether the armed failpoint fired, clearing both the
    /// fired flag and any still-armed failpoint.
    #[cfg(feature = "fault-injection")]
    pub fn take_failpoint_fired(self: &Arc<Self>) -> bool {
        self.failpoints.take_fired()
    }

    /// The special `tcb` integrity tag (§4.4): only a task whose
    /// integrity label carries it may call `drop_label_tcb`.
    #[must_use]
    pub fn tcb_tag(&self) -> Tag {
        self.tcb_tag
    }

    /// The system administrator's integrity tag, applied to `/`, `/etc`
    /// and `/home` at install time (§5.2).
    #[must_use]
    pub fn admin_tag(&self) -> Tag {
        self.admin_tag
    }

    /// Name of the loaded security module.
    #[must_use]
    pub fn module_name(&self) -> &'static str {
        self.module.name()
    }

    /// Number of LSM hook invocations so far (for tests and benches).
    #[must_use]
    pub fn hook_calls(&self) -> u64 {
        self.state.lock().hook_calls
    }

    /// Registers a user account and creates their home directory
    /// `/home/<name>` (unlabeled, so the user does not need the
    /// administrator's integrity tag to use it).
    pub fn add_user(self: &Arc<Self>, user: UserId, name: &str) {
        let mut st = self.state.lock();
        let id = InodeId(st.next_inode);
        st.next_inode += 1;
        st.inodes.insert(
            id,
            Inode {
                id,
                kind: InodeKind::Dir { entries: BTreeMap::new() },
                xattrs: Xattrs::default(),
                nlink: 1,
            },
        );
        let root = st.root;
        let home = match st.inodes.get(&root).map(|n| &n.kind) {
            Some(InodeKind::Dir { entries }) => entries.get("home").copied(),
            _ => None,
        };
        if let Some(InodeKind::Dir { entries }) =
            home.and_then(|h| st.inodes.get_mut(&h)).map(|n| &mut n.kind)
        {
            entries.insert(name.to_string(), id);
        }
        st.homes.insert(user, id);
        st.persistent_caps.entry(user).or_default();
    }

    /// Install-time administration: creates a directory with the given
    /// labels, bypassing the DIFC checks. §5.2 labels system directories
    /// "when the system is installed"; strict Biba traversal makes an
    /// integrity-labeled subtree impossible to grow from inside the
    /// rules (the design tension the paper discusses), so endowing one
    /// is an administrator action, like the admin labels on `/`.
    ///
    /// # Errors
    /// [`OsError::NotFound`]/[`OsError::Exists`] on path problems.
    pub fn install_dir(self: &Arc<Self>, path: &str, labels: SecPair) -> OsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = Self::admin_resolve(&st, path)?;
        let id = Kernel::alloc_inode(
            &mut st,
            InodeKind::Dir { entries: BTreeMap::new() },
            labels,
        );
        match st.inodes.get_mut(&parent).map(|n| &mut n.kind) {
            Some(InodeKind::Dir { entries }) => {
                if entries.contains_key(&name) {
                    return Err(OsError::Exists);
                }
                entries.insert(name, id);
                Ok(())
            }
            _ => Err(OsError::NotADirectory),
        }
    }

    /// Install-time administration: creates a labeled file with initial
    /// contents, bypassing the DIFC checks (see [`Kernel::install_dir`]).
    ///
    /// # Errors
    /// [`OsError::NotFound`]/[`OsError::Exists`] on path problems.
    pub fn install_file(
        self: &Arc<Self>,
        path: &str,
        labels: SecPair,
        data: &[u8],
    ) -> OsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = Self::admin_resolve(&st, path)?;
        let id =
            Kernel::alloc_inode(&mut st, InodeKind::File { data: data.to_vec() }, labels);
        match st.inodes.get_mut(&parent).map(|n| &mut n.kind) {
            Some(InodeKind::Dir { entries }) => {
                if entries.contains_key(&name) {
                    return Err(OsError::Exists);
                }
                entries.insert(name, id);
                Ok(())
            }
            _ => Err(OsError::NotADirectory),
        }
    }

    /// Checkless absolute-path resolution for install-time operations.
    fn admin_resolve(st: &KState, path: &str) -> OsResult<(InodeId, String)> {
        let rel = path
            .strip_prefix('/')
            .ok_or(OsError::InvalidArgument("install paths must be absolute"))?;
        let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
        let (last, dirs) =
            comps.split_last().ok_or(OsError::InvalidArgument("empty path"))?;
        let mut cur = st.root;
        for c in dirs {
            let node = st.inodes.get(&cur).ok_or(OsError::NotFound)?;
            match &node.kind {
                InodeKind::Dir { entries } => {
                    cur = *entries.get(*c).ok_or(OsError::NotFound)?;
                }
                _ => return Err(OsError::NotADirectory),
            }
        }
        Ok((cur, (*last).to_string()))
    }

    /// Conformance/test inspection: resolves an *absolute* `path` with
    /// **no security checks** and returns the inode's labels plus its
    /// contents (`None` for non-files). The model-based testkit uses
    /// this to diff kernel state against its reference oracle without
    /// perturbing hook counters or cache statistics; it is not part of
    /// the paper's API (exposing it to untrusted code would be a
    /// channel).
    ///
    /// # Errors
    /// [`OsError::NotFound`] if the path names no inode;
    /// [`OsError::InvalidArgument`] for relative paths.
    pub fn inspect_node_for_test(
        self: &Arc<Self>,
        path: &str,
    ) -> OsResult<(SecPair, Option<Vec<u8>>)> {
        let st = self.state.lock();
        let (parent, name) = Self::admin_resolve(&st, path)?;
        let id = match &st.inodes.get(&parent).ok_or(OsError::NotFound)?.kind {
            InodeKind::Dir { entries } => *entries.get(&name).ok_or(OsError::NotFound)?,
            _ => return Err(OsError::NotADirectory),
        };
        let inode = st.inodes.get(&id).ok_or(OsError::NotFound)?;
        let data = match &inode.kind {
            InodeKind::File { data } => Some(data.clone()),
            _ => None,
        };
        Ok((inode.labels().clone(), data))
    }

    /// Fault injection for the conformance testkit: poisons the big
    /// kernel lock so the next syscall takes the poison-recovery path of
    /// [`laminar_util::sync::Mutex`]. Verdicts must be unaffected.
    #[cfg(feature = "fault-injection")]
    pub fn poison_big_lock_for_test(self: &Arc<Self>) {
        self.state.poison_for_test();
    }

    /// Logs a user in: spawns a fresh process with one task whose
    /// capability set is the user's persistent capabilities and whose cwd
    /// is their home directory (§4.4's login-shell grant).
    ///
    /// # Errors
    ///
    /// Fails with [`OsError::NoSuchTask`] if the user was never added.
    pub fn login(self: &Arc<Self>, user: UserId) -> OsResult<TaskHandle> {
        let mut st = self.state.lock();
        let cwd = *st.homes.get(&user).ok_or(OsError::NoSuchTask)?;
        let caps = st.persistent_caps.get(&user).cloned().unwrap_or_default();
        let tid = Self::spawn_process_locked(&mut st, user, cwd, caps);
        Ok(TaskHandle { kernel: Arc::clone(self), tid })
    }

    /// Grants the calling runtime the privileges of a trusted VM: marks
    /// the task's process as `trusted_vm` (its threads may then hold
    /// heterogeneous labels, §4.1) and grants the task the `tcb+`
    /// capability so a dedicated thread can assume the `tcb` integrity
    /// tag (§4.4). This models booting the (audited, trusted) Laminar VM
    /// binary; it is a boot-time decision, not a syscall untrusted code
    /// can reach.
    ///
    /// # Errors
    ///
    /// Fails with [`OsError::NoSuchTask`] if the handle's task has exited.
    pub fn bless_vm_process(self: &Arc<Self>, task: &TaskHandle) -> OsResult<()> {
        let mut st = self.state.lock();
        let tcb = self.tcb_tag;
        let t = st.tasks.get_mut(&task.tid).ok_or(OsError::NoSuchTask)?;
        t.security.caps_mut().grant_both(tcb);
        let pid = t.process;
        st.processes.get_mut(&pid).ok_or(OsError::Internal)?.trusted_vm = true;
        Ok(())
    }

    /// Sets the persistent capabilities stored for a user (the on-disk
    /// capability file of §4.4). Takes effect at the next login.
    pub fn set_persistent_caps(self: &Arc<Self>, user: UserId, caps: CapSet) {
        self.state.lock().persistent_caps.insert(user, caps);
    }

    /// Reads back a user's persistent capabilities.
    #[must_use]
    pub fn persistent_caps(self: &Arc<Self>, user: UserId) -> CapSet {
        self.state.lock().persistent_caps.get(&user).cloned().unwrap_or_default()
    }

    pub(crate) fn spawn_process_locked(
        st: &mut KState,
        user: UserId,
        cwd: InodeId,
        caps: CapSet,
    ) -> TaskId {
        let pid = ProcessId(st.next_proc);
        st.next_proc += 1;
        let tid = TaskId(st.next_task);
        st.next_task += 1;
        st.processes.insert(
            pid,
            ProcessStruct {
                id: pid,
                tasks: vec![tid],
                fds: FdTable::new(),
                cwd,
                trusted_vm: false,
                vm_areas: Vec::new(),
                next_mmap_page: 0x1000,
                binary: "init".into(),
            },
        );
        st.tasks.insert(
            tid,
            TaskStruct {
                id: tid,
                process: pid,
                user,
                security: TaskSec::new(SecPair::unlabeled(), caps),
                pending_signals: Default::default(),
                alive: true,
            },
        );
        tid
    }

    pub(crate) fn task_sec(st: &KState, tid: TaskId) -> OsResult<TaskSec> {
        st.tasks
            .get(&tid)
            .filter(|t| t.alive)
            .map(|t| t.security.clone())
            .ok_or(OsError::NoSuchTask)
    }

    pub(crate) fn inode_labels(st: &KState, ino: InodeId) -> OsResult<SecPair> {
        st.inodes.get(&ino).map(|i| i.labels().clone()).ok_or(OsError::NotFound)
    }

    /// Invokes the `inode_permission` hook, counting it.
    pub(crate) fn hook_inode_permission(
        &self,
        st: &mut Txn<'_>,
        task: &TaskSec,
        ino: InodeId,
        mask: Access,
    ) -> OsResult<()> {
        st.count_hook();
        let labels = Self::inode_labels(st, ino)?;
        self.module.inode_permission(task, &labels, mask)
    }

    /// Resolves `path` for task `tid`, checking a read permission on
    /// every directory traversed (directory contents — names and labels
    /// of children — are protected by the directory's own label) and
    /// *following symbolic links*, each of which is itself a mediated
    /// read of the link inode (so a task that rejects the link's
    /// integrity cannot be redirected through it — §5.2's symlink
    /// concern).
    ///
    /// Returns the parent directory, the final component name, and the
    /// target inode if it exists.
    pub(crate) fn resolve(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
    ) -> OsResult<Resolved> {
        self.resolve_full(st, tid, path, true)
    }

    /// Like [`Kernel::resolve`] but does not follow a symlink in the
    /// final component (for `readlink`/`lstat`).
    pub(crate) fn resolve_nofollow(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
    ) -> OsResult<Resolved> {
        self.resolve_full(st, tid, path, false)
    }

    fn resolve_full(
        &self,
        st: &mut Txn<'_>,
        tid: TaskId,
        path: &str,
        follow_final: bool,
    ) -> OsResult<Resolved> {
        let task = Self::task_sec(st, tid)?;
        if path.is_empty() {
            return Err(OsError::InvalidArgument("empty path"));
        }
        let (start, rel): (InodeId, &str) = if let Some(stripped) = path.strip_prefix('/')
        {
            (st.root, stripped)
        } else {
            let proc_id = st.tasks.get(&tid).ok_or(OsError::NoSuchTask)?.process;
            (st.processes.get(&proc_id).ok_or(OsError::Internal)?.cwd, path)
        };
        let comps: Vec<String> = rel
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .map(str::to_string)
            .collect();
        self.walk(st, &task, start, comps, follow_final, 0)
    }

    fn walk(
        &self,
        st: &mut Txn<'_>,
        task: &TaskSec,
        start: InodeId,
        comps: Vec<String>,
        follow_final: bool,
        depth: u32,
    ) -> OsResult<Resolved> {
        if depth > 8 {
            return Err(OsError::SymlinkLoop);
        }
        if comps.is_empty() {
            return Ok(Resolved {
                parent: None,
                name: String::new(),
                inode: Some(start),
            });
        }
        let mut stack: Vec<InodeId> = vec![start];
        let mut cur = start;
        for (i, comp) in comps.iter().enumerate() {
            let last = i + 1 == comps.len();
            // Looking up a name inside `cur` reads `cur`.
            self.hook_inode_permission(st, task, cur, Access::Read)?;
            if comp == ".." {
                if stack.len() > 1 {
                    stack.pop();
                }
                cur = *stack.last().ok_or(OsError::Internal)?;
                if last {
                    return Ok(Resolved {
                        parent: None,
                        name: String::new(),
                        inode: Some(cur),
                    });
                }
                continue;
            }
            let node = st.inodes.get(&cur).ok_or(OsError::NotFound)?;
            let entries = match &node.kind {
                InodeKind::Dir { entries } => entries,
                _ => return Err(OsError::NotADirectory),
            };
            match entries.get(comp.as_str()) {
                Some(&child) => {
                    // Symlink in the path: follow it (mediated).
                    let link_target = match &st.inodes.get(&child).map(|n| &n.kind) {
                        Some(InodeKind::Symlink { target }) => Some(target.clone()),
                        _ => None,
                    };
                    if let Some(target) = link_target {
                        if last && !follow_final {
                            return Ok(Resolved {
                                parent: Some(cur),
                                name: comp.clone(),
                                inode: Some(child),
                            });
                        }
                        // Following reads the link inode itself.
                        self.hook_inode_permission(st, task, child, Access::Read)?;
                        let (nstart, mut ncomps): (InodeId, Vec<String>) =
                            if let Some(strip) = target.strip_prefix('/') {
                                (
                                    st.root,
                                    strip
                                        .split('/')
                                        .filter(|c| !c.is_empty() && *c != ".")
                                        .map(str::to_string)
                                        .collect(),
                                )
                            } else {
                                (
                                    cur,
                                    target
                                        .split('/')
                                        .filter(|c| !c.is_empty() && *c != ".")
                                        .map(str::to_string)
                                        .collect(),
                                )
                            };
                        ncomps.extend(comps[i + 1..].iter().cloned());
                        return self.walk(
                            st,
                            task,
                            nstart,
                            ncomps,
                            follow_final,
                            depth + 1,
                        );
                    }
                    if last {
                        return Ok(Resolved {
                            parent: Some(cur),
                            name: comp.clone(),
                            inode: Some(child),
                        });
                    }
                    stack.push(child);
                    cur = child;
                }
                None => {
                    if last {
                        return Ok(Resolved {
                            parent: Some(cur),
                            name: comp.clone(),
                            inode: None,
                        });
                    }
                    return Err(OsError::NotFound);
                }
            }
        }
        // The loop always returns on the last component; reaching here
        // would be an internal invariant failure, reported fail-closed.
        Err(OsError::Internal)
    }

    pub(crate) fn alloc_inode(
        st: &mut KState,
        kind: InodeKind,
        labels: SecPair,
    ) -> InodeId {
        let id = InodeId(st.next_inode);
        st.next_inode += 1;
        st.inodes.insert(id, Inode { id, kind, xattrs: Xattrs { labels }, nlink: 1 });
        id
    }
}

pub(crate) struct Resolved {
    /// Parent directory (None when the path names the root / cwd itself).
    pub parent: Option<InodeId>,
    pub name: String,
    pub inode: Option<InodeId>,
}

impl TaskHandle {
    /// The task's kernel id.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.tid
    }

    /// The kernel this task runs on.
    #[must_use]
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laminar_lsm::LaminarModule;
    use crate::lsm::NullModule;

    #[test]
    fn boot_installs_system_tree() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        // Home directory exists and is the cwd.
        let md = sh.stat(".").unwrap();
        assert!(md.is_dir);
        // System tree is reachable.
        assert!(sh.stat("/etc").unwrap().is_dir);
        assert!(sh.stat("/tmp").unwrap().is_dir);
        assert!(sh.stat("/dev/null").is_ok());
    }

    #[test]
    fn system_dirs_carry_admin_integrity() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        let md = sh.stat("/etc").unwrap();
        assert!(md.labels.integrity().contains(k.admin_tag()));
        // Home dirs are unlabeled.
        let md = sh.stat(".").unwrap();
        assert!(md.labels.is_unlabeled());
    }

    #[test]
    fn login_requires_known_user() {
        let k = Kernel::boot(NullModule);
        assert!(matches!(k.login(UserId(7)), Err(OsError::NoSuchTask)));
    }

    #[test]
    fn login_grants_persistent_caps() {
        let k = Kernel::boot(NullModule);
        k.add_user(UserId(1), "alice");
        let tag = k.tags.fresh();
        let mut caps = CapSet::new();
        caps.grant_both(tag);
        k.set_persistent_caps(UserId(1), caps.clone());
        let sh = k.login(UserId(1)).unwrap();
        assert_eq!(sh.current_caps().unwrap(), caps);
    }

    #[test]
    fn hook_counter_increases_under_laminar() {
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "alice");
        let sh = k.login(UserId(1)).unwrap();
        let before = k.hook_calls();
        let _ = sh.stat("/tmp");
        assert!(k.hook_calls() > before);
    }
}
