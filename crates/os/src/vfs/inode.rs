//! Inodes of the simulated filesystem.
//!
//! Secrecy and integrity labels live in the inode's *extended
//! attributes*, as in the real Laminar LSM ("Secrecy and integrity labels
//! for files are persistently stored in the file's extended attributes",
//! §5.2). The label of an inode protects its contents and metadata; the
//! *name* and the *label itself* are protected by the label of the parent
//! directory.

use crate::vfs::pipe::PipeBuffer;
use laminar_difc::SecPair;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an inode.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InodeId(pub u64);

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// What kind of object an inode is.
#[derive(Clone, Debug)]
pub(crate) enum InodeKind {
    /// Regular file with byte contents.
    File { data: Vec<u8> },
    /// Directory mapping names to child inodes.
    Dir { entries: BTreeMap<String, InodeId> },
    /// A DIFC pipe (message buffer labeled by its inode).
    Pipe { buffer: PipeBuffer },
    /// A bidirectional local socket: two buffers, one per direction
    /// (end A writes `ab` and reads `ba`; end B the opposite). Same
    /// silent-drop mediation as pipes.
    Socket { ab: PipeBuffer, ba: PipeBuffer },
    /// A symbolic link. Following it *reads* the link inode, so a task
    /// that does not accept the link's integrity cannot be tricked
    /// through it — the §5.2 symlink-attack defence.
    Symlink { target: String },
    /// A sink device like `/dev/null`: reads return nothing, writes
    /// disappear. Used by the "null I/O" microbenchmark of Table 2.
    NullDevice,
}

impl InodeKind {
    pub(crate) fn is_dir(&self) -> bool {
        matches!(self, InodeKind::Dir { .. })
    }
}

/// Extended attributes: where DIFC labels persist.
#[derive(Clone, Debug, Default)]
pub struct Xattrs {
    /// The `security.laminar` labels of the inode.
    pub labels: SecPair,
}

/// Kernel-side inode state.
#[derive(Clone, Debug)]
pub(crate) struct Inode {
    #[allow(dead_code)] // inode number, shown in Debug dumps
    pub id: InodeId,
    pub kind: InodeKind,
    pub xattrs: Xattrs,
    /// Link count; inode is reclaimed when it reaches zero and no fd is
    /// open (we keep reclamation simple: unlink drops the entry).
    pub nlink: u32,
}

impl Inode {
    pub(crate) fn labels(&self) -> &SecPair {
        &self.xattrs.labels
    }
}

/// Public metadata returned by `stat`.
#[derive(Clone, Debug)]
pub struct Metadata {
    /// Inode number.
    pub inode: InodeId,
    /// Is this a directory?
    pub is_dir: bool,
    /// File size in bytes (0 for directories, pipes and devices).
    pub size: u64,
    /// DIFC labels from the extended attributes.
    pub labels: SecPair,
    /// Link count.
    pub nlink: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_kind_discriminates_dirs() {
        assert!(InodeKind::Dir { entries: BTreeMap::new() }.is_dir());
        assert!(!InodeKind::File { data: vec![] }.is_dir());
        assert!(!InodeKind::NullDevice.is_dir());
    }

    #[test]
    fn default_xattrs_are_unlabeled() {
        assert!(Xattrs::default().labels.is_unlabeled());
    }
}
