//! DIFC pipes (§5.2, "Pipes").
//!
//! Laminar mediates IPC over pipes by labeling the inode associated with
//! the pipe's message buffer. Message delivery is **unreliable**: an
//! error code due to an incorrect label or a full buffer can leak
//! information, so undeliverable messages are *silently dropped*. Reads
//! are **nonblocking**, and readers cannot rely on an explicit EOF when
//! the writer may change labels — a reader simply sees "no data".
//!
//! The buffer also carries capability messages for the
//! `write_capability` syscall (Fig. 3): capability passing is mediated by
//! the kernel over the same labeled channel.

use laminar_difc::Capability;
use std::collections::VecDeque;

/// Default capacity of a pipe buffer in bytes (64 KiB, like Linux).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// Maximum queued messages (byte chunks + capabilities) per pipe. The
/// byte budget alone does not bound the queue: capabilities carry no
/// bytes, and a stream of tiny writes costs a `PipeMsg` allocation each,
/// so the message count needs its own ceiling.
pub const PIPE_MSG_LIMIT: usize = 4096;

/// One in-flight message: either bytes or a kernel-mediated capability.
#[derive(Clone, Debug)]
pub(crate) enum PipeMsg {
    Bytes(Vec<u8>),
    Cap(Capability),
}

/// The kernel-side message buffer of a pipe inode.
#[derive(Clone, Debug)]
pub(crate) struct PipeBuffer {
    msgs: VecDeque<PipeMsg>,
    bytes_queued: usize,
    capacity: usize,
    readers: u32,
    writers: u32,
}

impl PipeBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        PipeBuffer {
            msgs: VecDeque::new(),
            bytes_queued: 0,
            capacity,
            readers: 1,
            writers: 1,
        }
    }

    /// Attempts to enqueue bytes. Returns `true` if the message was
    /// queued, `false` if it was dropped because the buffer is full —
    /// callers must NOT surface the distinction to the writer (silent
    /// drop semantics).
    ///
    /// A zero-byte write is a successful no-op: it conveys nothing, so
    /// queueing an empty message would only let a writer grow the queue
    /// without ever touching the byte budget.
    pub(crate) fn push_bytes(&mut self, data: &[u8]) -> bool {
        if data.is_empty() {
            return true;
        }
        if self.bytes_queued + data.len() > self.capacity
            || self.msgs.len() >= PIPE_MSG_LIMIT
        {
            return false;
        }
        self.bytes_queued += data.len();
        self.msgs.push_back(PipeMsg::Bytes(data.to_vec()));
        true
    }

    /// Enqueues a capability message (capabilities are small; they bypass
    /// the byte budget but still drop once [`PIPE_MSG_LIMIT`] messages
    /// are queued).
    pub(crate) fn push_cap(&mut self, cap: Capability) -> bool {
        if self.msgs.len() >= PIPE_MSG_LIMIT {
            return false;
        }
        self.msgs.push_back(PipeMsg::Cap(cap));
        true
    }

    /// Nonblocking read of at most `max` bytes. Skips over capability
    /// messages is not allowed — byte reads only consume byte messages at
    /// the head; a capability at the head yields "no data" until it is
    /// claimed with [`Self::pop_cap`].
    pub(crate) fn pop_bytes(&mut self, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.msgs.front_mut() {
                Some(PipeMsg::Bytes(b)) => {
                    let take = (max - out.len()).min(b.len());
                    out.extend_from_slice(&b[..take]);
                    if take == b.len() {
                        self.msgs.pop_front();
                    } else {
                        b.drain(..take);
                    }
                    self.bytes_queued -= take;
                }
                _ => break,
            }
        }
        out
    }

    /// Nonblocking receive of a capability message at the head of the
    /// queue, if any.
    pub(crate) fn pop_cap(&mut self) -> Option<Capability> {
        match self.msgs.front() {
            Some(PipeMsg::Cap(_)) => match self.msgs.pop_front() {
                Some(PipeMsg::Cap(c)) => Some(c),
                _ => unreachable!(),
            },
            _ => None,
        }
    }

    pub(crate) fn add_reader(&mut self) {
        self.readers += 1;
    }
    pub(crate) fn add_writer(&mut self) {
        self.writers += 1;
    }
    pub(crate) fn drop_reader(&mut self) {
        self.readers = self.readers.saturating_sub(1);
    }
    pub(crate) fn drop_writer(&mut self) {
        self.writers = self.writers.saturating_sub(1);
    }

    /// Bytes currently queued.
    pub(crate) fn queued(&self) -> usize {
        self.bytes_queued
    }

    /// Messages currently queued (byte chunks and capabilities).
    pub(crate) fn msg_count(&self) -> usize {
        self.msgs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::Tag;

    #[test]
    fn bytes_round_trip() {
        let mut p = PipeBuffer::new(16);
        assert!(p.push_bytes(b"hello"));
        assert_eq!(p.pop_bytes(3), b"hel");
        assert_eq!(p.pop_bytes(10), b"lo");
        assert_eq!(p.pop_bytes(10), b"");
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn full_buffer_drops_silently() {
        let mut p = PipeBuffer::new(4);
        assert!(p.push_bytes(b"abcd"));
        // Over capacity: dropped, not partially written.
        assert!(!p.push_bytes(b"e"));
        assert_eq!(p.pop_bytes(16), b"abcd");
    }

    #[test]
    fn caps_are_ordered_with_bytes() {
        let mut p = PipeBuffer::new(64);
        let c = Capability::plus(Tag::from_raw(1));
        assert!(p.push_bytes(b"x"));
        assert!(p.push_cap(c));
        // Byte read stops at the capability boundary only after draining
        // preceding bytes.
        assert_eq!(p.pop_bytes(8), b"x");
        assert_eq!(p.pop_bytes(8), b"");
        assert_eq!(p.pop_cap(), Some(c));
        assert_eq!(p.pop_cap(), None);
    }

    #[test]
    fn cap_at_head_blocks_byte_reads() {
        let mut p = PipeBuffer::new(64);
        let c = Capability::minus(Tag::from_raw(2));
        assert!(p.push_cap(c));
        assert!(p.push_bytes(b"later"));
        assert_eq!(p.pop_bytes(8), b"");
        assert_eq!(p.pop_cap(), Some(c));
        assert_eq!(p.pop_bytes(8), b"later");
    }

    /// Regression: zero-byte writes used to enqueue a fresh empty
    /// `PipeMsg::Bytes` each, growing `msgs` without bound (the byte
    /// budget never filled). They are now a no-op success.
    #[test]
    fn zero_byte_write_is_a_noop_success() {
        let mut p = PipeBuffer::new(4);
        for _ in 0..10_000 {
            assert!(p.push_bytes(b""), "zero-byte write must report success");
        }
        assert_eq!(p.msg_count(), 0, "zero-byte writes must not queue messages");
        assert_eq!(p.queued(), 0);
        // Even on a full buffer a zero-byte write succeeds (no drop).
        assert!(p.push_bytes(b"abcd"));
        assert!(p.push_bytes(b""));
        assert_eq!(p.pop_bytes(8), b"abcd");
    }

    /// Regression: the message-count ceiling applies to byte messages
    /// too — tiny writes can no longer queue unboundedly many chunks
    /// under a large byte budget.
    #[test]
    fn byte_messages_respect_the_message_limit() {
        let mut p = PipeBuffer::new(PIPE_CAPACITY);
        for _ in 0..PIPE_MSG_LIMIT {
            assert!(p.push_bytes(b"x"));
        }
        assert!(!p.push_bytes(b"x"), "message {PIPE_MSG_LIMIT} must drop");
        assert_eq!(p.msg_count(), PIPE_MSG_LIMIT);
    }

    /// Regression: `push_cap` used `> 4096`, admitting 4097 messages.
    /// The boundary is now `>=` against the named constant.
    #[test]
    fn cap_queue_boundary_is_exact() {
        let mut p = PipeBuffer::new(8);
        let c = Capability::plus(Tag::from_raw(3));
        for i in 0..PIPE_MSG_LIMIT {
            assert!(p.push_cap(c), "cap {i} should fit");
        }
        assert_eq!(p.msg_count(), PIPE_MSG_LIMIT);
        assert!(!p.push_cap(c), "cap {PIPE_MSG_LIMIT} must drop, not be admitted");
        assert_eq!(p.msg_count(), PIPE_MSG_LIMIT);
    }

    #[test]
    fn reader_writer_counts() {
        let mut p = PipeBuffer::new(8);
        p.add_reader();
        p.add_writer();
        p.drop_reader();
        p.drop_reader();
        p.drop_reader(); // saturates at zero
        p.drop_writer();
    }
}
