//! The simulated virtual filesystem: inodes, directories, file
//! descriptors and DIFC pipes.

pub mod file;
pub mod inode;
pub mod pipe;
