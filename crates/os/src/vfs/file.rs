//! File descriptors and per-process fd tables.

use crate::vfs::inode::InodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A file descriptor (index into the owning process's fd table).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Open-mode flags for `open`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpenMode {
    /// Read only.
    Read,
    /// Write only.
    Write,
    /// Read and write.
    ReadWrite,
}

impl OpenMode {
    /// May this mode read?
    #[must_use]
    pub fn readable(self) -> bool {
        matches!(self, OpenMode::Read | OpenMode::ReadWrite)
    }

    /// May this mode write?
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, OpenMode::Write | OpenMode::ReadWrite)
    }
}

/// Which end of a pipe an fd refers to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PipeEnd {
    /// The read end.
    Read,
    /// The write end.
    Write,
}

/// Which end of a socket pair an fd refers to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SocketEnd {
    /// The first endpoint.
    A,
    /// The second endpoint.
    B,
}

/// Kernel-side open-file description.
#[derive(Clone, Debug)]
pub(crate) struct OpenFile {
    pub inode: InodeId,
    pub mode: OpenMode,
    pub offset: u64,
    pub pipe_end: Option<PipeEnd>,
    pub socket_end: Option<SocketEnd>,
}

/// A process's table of open files.
///
/// `Clone` exists so the syscall undo journal can snapshot a process
/// entry before mutating it.
#[derive(Clone, Debug, Default)]
pub(crate) struct FdTable {
    files: BTreeMap<Fd, OpenFile>,
    next: u32,
}

impl FdTable {
    pub(crate) fn insert(&mut self, file: OpenFile) -> Fd {
        let fd = Fd(self.next);
        self.next += 1;
        self.files.insert(fd, file);
        fd
    }

    pub(crate) fn get(&self, fd: Fd) -> Option<&OpenFile> {
        self.files.get(&fd)
    }

    pub(crate) fn get_mut(&mut self, fd: Fd) -> Option<&mut OpenFile> {
        self.files.get_mut(&fd)
    }

    pub(crate) fn remove(&mut self, fd: Fd) -> Option<OpenFile> {
        self.files.remove(&fd)
    }

    /// Duplicate for fork(): the child gets copies of every open file
    /// description (offsets are copied, not shared — a simplification).
    pub(crate) fn clone_for_fork(&self) -> FdTable {
        FdTable { files: self.files.clone(), next: self.next }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&Fd, &OpenFile)> {
        self.files.iter()
    }

    /// Number of open descriptors (what the per-process fd quota counts).
    pub(crate) fn len(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_mode_predicates() {
        assert!(OpenMode::Read.readable() && !OpenMode::Read.writable());
        assert!(!OpenMode::Write.readable() && OpenMode::Write.writable());
        assert!(OpenMode::ReadWrite.readable() && OpenMode::ReadWrite.writable());
    }

    #[test]
    fn fd_table_alloc_and_remove() {
        let mut t = FdTable::default();
        let f0 = t.insert(OpenFile {
            inode: InodeId(1),
            mode: OpenMode::Read,
            offset: 0,
            pipe_end: None,
            socket_end: None,
        });
        let f1 = t.insert(OpenFile {
            inode: InodeId(2),
            mode: OpenMode::Write,
            offset: 0,
            pipe_end: None,
            socket_end: None,
        });
        assert_ne!(f0, f1);
        assert_eq!(t.len(), 2);
        assert!(t.remove(f0).is_some());
        assert!(t.get(f0).is_none());
        assert!(t.get(f1).is_some());
        // Fds are not reused.
        let f2 = t.insert(OpenFile {
            inode: InodeId(3),
            mode: OpenMode::Read,
            offset: 0,
            pipe_end: None,
            socket_end: None,
        });
        assert_ne!(f2, f0);
    }

    #[test]
    fn fork_copies_table() {
        let mut t = FdTable::default();
        let fd = t.insert(OpenFile {
            inode: InodeId(1),
            mode: OpenMode::ReadWrite,
            offset: 5,
            pipe_end: None,
            socket_end: None,
        });
        let copy = t.clone_for_fork();
        assert_eq!(copy.get(fd).unwrap().offset, 5);
        assert_eq!(copy.len(), 1);
    }
}
