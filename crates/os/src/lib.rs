//! # laminar-os — the OS half of Laminar
//!
//! A user-space simulation of the operating-system side of *Laminar*
//! (PLDI 2009): a small kernel (tasks, processes, a VFS with extended
//! attributes, pipes, signals, memory maps) instrumented with Linux
//! Security Module-style hooks, plus the Laminar security module that
//! implements the DIFC checks at every hook.
//!
//! The real Laminar adds a ~1,000-line LSM and ~500 lines of kernel
//! changes to Linux 2.6.22 (§5.2). This environment has no kernel to
//! modify, so the kernel itself is simulated — but the *architecture* is
//! preserved: the kernel only places hooks; all policy lives in a
//! pluggable [`SecurityModule`]. Running the same kernel with
//! [`NullModule`] gives the "unmodified Linux" baseline of the paper's
//! Table 2; running it with [`LaminarModule`] gives the Laminar OS.
//!
//! ## Quick tour
//!
//! ```
//! use laminar_difc::{Label, LabelType, SecPair};
//! use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
//!
//! # fn main() -> Result<(), laminar_os::OsError> {
//! let kernel = Kernel::boot(LaminarModule);
//! kernel.add_user(UserId(1), "alice");
//! let alice = kernel.login(UserId(1))?;
//!
//! // Alice mints a secrecy tag and pre-creates a labeled calendar file.
//! let a = alice.alloc_tag()?;
//! let secret = SecPair::secrecy_only(Label::singleton(a));
//! let fd = alice.create_file_labeled("calendar.ics", secret.clone())?;
//! alice.write(fd, b"BEGIN:VCALENDAR")?;
//! alice.close(fd)?;
//!
//! // An unlabeled open fails: no read up.
//! assert!(alice.open("calendar.ics", OpenMode::Read).is_err());
//!
//! // After tainting herself with {S(a)} the read succeeds.
//! alice.set_task_label(LabelType::Secrecy, Label::singleton(a))?;
//! let fd = alice.open("calendar.ics", OpenMode::Read)?;
//! assert!(!alice.read(fd, 64)?.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod kernel;
mod laminar_lsm;
mod lsm;
mod shard;
pub mod stats;
mod syscalls;
mod task;
mod txn;
mod vfs;

pub use error::{OsError, OsResult};
#[cfg(feature = "fault-injection")]
pub use kernel::SyscallFailpoint;
pub use kernel::{last_syscall_seq, CommitRecord, Kernel, TaskHandle};
pub use laminar_lsm::LaminarModule;
pub use lsm::{Access, DeliveryVerdict, NullModule, SecurityModule};
pub use shard::{ShardKey, INODE_SHARDS, PROC_SHARDS, SHARD_COUNT, TASK_SHARDS};
pub use stats::{reset_syscalls_rolled_back, syscalls_rolled_back};
pub use task::{ProcessId, Signal, TaskId, TaskSec, UserId, VmArea};
pub use txn::Quotas;
pub use vfs::file::{Fd, OpenMode, PipeEnd, SocketEnd};
pub use vfs::inode::{InodeId, Metadata, Xattrs};
pub use vfs::pipe::{PIPE_CAPACITY, PIPE_MSG_LIMIT};
