//! Kernel tasks — the principals of Laminar (§3: "Principals in Laminar
//! are kernel threads").
//!
//! Each task's `security` field holds its current [`SecPair`] and
//! [`CapSet`], exactly as the Laminar LSM stores labels and capabilities
//! in the opaque security field of `task_struct` (§5.2). Tasks belong to
//! processes; a process groups the address space (fd table, cwd, memory
//! maps). Threads of a process may carry *heterogeneous* labels only if
//! the process runs a trusted VM — otherwise the kernel forces all
//! threads of the process to share labels (§4.1).

use crate::vfs::file::FdTable;
use crate::vfs::inode::InodeId;
use laminar_difc::{CapSet, SecPair};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifier of a kernel task (thread).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Identifier of a process (a group of tasks sharing an address space).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub u64);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Identifier of a user account (for the persistent capability store).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub u32);

/// A pending signal queued for a task.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Signal(pub i32);

/// The security context of a task: its labels plus its capability set.
///
/// This is what LSM hooks receive for the "task side" of a check. The
/// capability set sits behind an [`Arc`] with copy-on-write mutation, so
/// the per-syscall context clone a hook needs is two reference-count
/// bumps — capability checks are on every hot path (Table 2), label
/// *changes* are rare.
#[derive(Clone, Debug)]
pub struct TaskSec {
    /// Current secrecy/integrity labels of the task.
    pub labels: SecPair,
    /// Current capability set of the task (shared, copy-on-write).
    pub caps: Arc<CapSet>,
}

impl TaskSec {
    pub(crate) fn new(labels: SecPair, caps: CapSet) -> Self {
        TaskSec { labels, caps: Arc::new(caps) }
    }

    /// Mutable access to the capability set (clones on shared access).
    pub(crate) fn caps_mut(&mut self) -> &mut CapSet {
        Arc::make_mut(&mut self.caps)
    }
}

/// One memory mapping of a process (for the mmap/mprotect/fault
/// microbenchmarks of Table 2).
#[derive(Clone, Debug)]
pub struct VmArea {
    /// First page of the mapping.
    pub start: u64,
    /// Length in pages.
    pub pages: u64,
    /// Readable?
    pub read: bool,
    /// Writable?
    pub write: bool,
}

/// Kernel-side task state.
///
/// `Clone` exists so the syscall undo journal ([`crate::txn`]) can
/// snapshot an entry before the first in-transaction mutation.
#[derive(Clone, Debug)]
pub(crate) struct TaskStruct {
    #[allow(dead_code)] // kept for parity with task_struct; shown in Debug dumps
    pub id: TaskId,
    pub process: ProcessId,
    pub user: UserId,
    pub security: TaskSec,
    pub pending_signals: VecDeque<Signal>,
    pub alive: bool,
}

impl TaskStruct {
    /// A freshly spawned, alive task with the given security context.
    pub(crate) fn fresh(
        id: TaskId,
        process: ProcessId,
        user: UserId,
        security: TaskSec,
    ) -> Self {
        TaskStruct {
            id,
            process,
            user,
            security,
            pending_signals: VecDeque::new(),
            alive: true,
        }
    }
}

/// Kernel-side process state.
///
/// `Clone` exists for the syscall undo journal (see [`TaskStruct`]).
#[derive(Clone, Debug)]
pub(crate) struct ProcessStruct {
    #[allow(dead_code)] // kept for parity with the kernel's process table
    pub id: ProcessId,
    pub tasks: Vec<TaskId>,
    pub fds: FdTable,
    pub cwd: InodeId,
    /// Set for processes running a trusted VM: allows heterogeneous
    /// per-thread labels within one address space (§4.1).
    pub trusted_vm: bool,
    pub vm_areas: Vec<VmArea>,
    pub next_mmap_page: u64,
    /// Name of the binary last `exec`ed; purely informational.
    pub binary: String,
}

impl ProcessStruct {
    /// A fresh single-task process with an empty fd table.
    pub(crate) fn fresh(id: ProcessId, task: TaskId, cwd: InodeId) -> Self {
        ProcessStruct {
            id,
            tasks: vec![task],
            fds: FdTable::default(),
            cwd,
            trusted_vm: false,
            vm_areas: Vec::new(),
            next_mmap_page: 0x1000,
            binary: String::from("init"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(TaskId(3).to_string(), "tid3");
        assert_eq!(ProcessId(7).to_string(), "pid7");
    }

    #[test]
    fn task_sec_clones_independently() {
        let mut sec = TaskSec::new(SecPair::unlabeled(), CapSet::new());
        let c = sec.clone();
        assert!(c.labels.is_unlabeled());
        assert!(c.caps.is_empty());
        // Copy-on-write: mutating one does not affect the clone.
        sec.caps_mut().grant_both(laminar_difc::Tag::from_raw(1));
        assert!(c.caps.is_empty());
        assert!(!sec.caps.is_empty());
    }
}
