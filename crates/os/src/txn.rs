//! The syscall transaction: an undo journal over [`KState`].
//!
//! Every syscall body runs against a [`Txn`] instead of the raw kernel
//! state. Reads pass through (`Txn` derefs to `&KState`); the *first*
//! mutation of any table entry snapshots that entry into the journal.
//! The dispatch loop in [`crate::kernel::Kernel::syscall`] then either
//! commits (drops the journal) or rolls back — on an internal panic
//! caught at the syscall boundary *or* on an error return — restoring
//! every journalled entry in reverse order, so a failed or faulted
//! syscall is a byte-for-byte no-op on the security state (labels,
//! capabilities, fd tables, inodes, pipe buffers).
//!
//! Two deliberate exceptions to journalling:
//!
//! * `hook_calls` is monotonic observability (tests pin that it only
//!   grows), not security state — it is never rolled back.
//! * The [`laminar_difc::TagAllocator`] lives outside `KState`; a tag id
//!   minted by an aborted `alloc_tag` is simply never used, which is
//!   invisible (tag ids are opaque and unique).
//!
//! Resource quotas ([`Quotas`]) are enforced here too, at the points
//! where a transaction allocates: inode creation, fd insertion and tag
//! minting. Exhaustion returns [`OsError::QuotaExceeded`] — typed,
//! side-effect free (the transaction rolls back), and transient: the
//! operation succeeds again once the resource is released.

use crate::error::{OsError, OsResult};
use crate::kernel::KState;
use crate::task::{ProcessId, ProcessStruct, TaskId, TaskSec, TaskStruct, UserId};
use crate::vfs::file::{Fd, OpenFile};
use crate::vfs::inode::{Inode, InodeId, InodeKind, Xattrs};
use laminar_difc::{CapSet, SecPair};

/// Resource limits enforced per kernel instance (fixed at boot).
///
/// Exhaustion degrades gracefully: the failing syscall returns
/// [`OsError::QuotaExceeded`] naming the resource, changes nothing, and
/// the same call succeeds after a `close`/`unlink` frees the resource.
#[derive(Clone, Debug)]
pub struct Quotas {
    /// Maximum simultaneously open descriptors per process.
    pub max_fds_per_process: usize,
    /// Maximum live inodes (files, dirs, pipes, sockets, symlinks).
    pub max_inodes: usize,
    /// Byte capacity of newly created pipe buffers.
    pub pipe_capacity: usize,
    /// Maximum tags a single user may mint via `alloc_tag`.
    pub max_tags_per_user: u64,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            max_fds_per_process: 4096,
            max_inodes: 1 << 20,
            pipe_capacity: crate::vfs::pipe::PIPE_CAPACITY,
            max_tags_per_user: 1 << 16,
        }
    }
}

/// One undo record: the state of an entry before its first mutation in
/// this transaction (`None` = the entry did not exist).
enum Undo {
    Task(TaskId, Option<TaskStruct>),
    Proc(ProcessId, Option<ProcessStruct>),
    Inode(InodeId, Option<Inode>),
    /// Fine-grained record for regular-file writes: restoring `old_len`
    /// and the overwritten byte range avoids cloning whole files on the
    /// write hot path.
    FileRange {
        ino: InodeId,
        offset: usize,
        old_len: usize,
        old_bytes: Vec<u8>,
    },
    /// Fine-grained record for fd offset bumps on the read/write paths.
    FdOffset(ProcessId, Fd, u64),
    PersistentCaps(UserId, Option<CapSet>),
    TagsMinted(UserId, Option<u64>),
}

/// An in-flight syscall transaction (see the module docs).
pub(crate) struct Txn<'a> {
    st: &'a mut KState,
    quotas: &'a Quotas,
    #[cfg(feature = "fault-injection")]
    failpoints: &'a crate::kernel::Failpoints,
    journal: Vec<Undo>,
    next_ids: (u64, u64, u64),
}

impl std::ops::Deref for Txn<'_> {
    type Target = KState;
    fn deref(&self) -> &KState {
        self.st
    }
}

impl<'a> Txn<'a> {
    pub(crate) fn new(
        st: &'a mut KState,
        quotas: &'a Quotas,
        #[cfg(feature = "fault-injection")] failpoints: &'a crate::kernel::Failpoints,
    ) -> Self {
        let next_ids = (st.next_task, st.next_proc, st.next_inode);
        Txn {
            st,
            quotas,
            #[cfg(feature = "fault-injection")]
            failpoints,
            journal: Vec::new(),
            next_ids,
        }
    }

    /// Restores every journalled entry (reverse order) and the id
    /// counters, making the transaction a no-op on kernel state.
    pub(crate) fn rollback(&mut self) {
        while let Some(entry) = self.journal.pop() {
            match entry {
                Undo::Task(id, Some(t)) => {
                    self.st.tasks.insert(id, t);
                }
                Undo::Task(id, None) => {
                    self.st.tasks.remove(&id);
                }
                Undo::Proc(id, Some(p)) => {
                    self.st.processes.insert(id, p);
                }
                Undo::Proc(id, None) => {
                    self.st.processes.remove(&id);
                }
                Undo::Inode(id, Some(i)) => {
                    self.st.inodes.insert(id, i);
                }
                Undo::Inode(id, None) => {
                    self.st.inodes.remove(&id);
                }
                Undo::FileRange { ino, offset, old_len, old_bytes } => {
                    if let Some(InodeKind::File { data }) =
                        self.st.inodes.get_mut(&ino).map(|i| &mut i.kind)
                    {
                        data.truncate(old_len);
                        let end = (offset + old_bytes.len()).min(data.len());
                        if offset <= end {
                            data[offset..end].copy_from_slice(&old_bytes[..end - offset]);
                        }
                    }
                }
                Undo::FdOffset(pid, fd, off) => {
                    if let Some(f) =
                        self.st.processes.get_mut(&pid).and_then(|p| p.fds.get_mut(fd))
                    {
                        f.offset = off;
                    }
                }
                Undo::PersistentCaps(user, Some(c)) => {
                    self.st.persistent_caps.insert(user, c);
                }
                Undo::PersistentCaps(user, None) => {
                    self.st.persistent_caps.remove(&user);
                }
                Undo::TagsMinted(user, Some(n)) => {
                    self.st.tags_minted.insert(user, n);
                }
                Undo::TagsMinted(user, None) => {
                    self.st.tags_minted.remove(&user);
                }
            }
        }
        self.st.next_task = self.next_ids.0;
        self.st.next_proc = self.next_ids.1;
        self.st.next_inode = self.next_ids.2;
    }

    /// Bumps the (unjournalled, monotonic) LSM hook counter; the
    /// panic-at-hook failpoint fires here.
    pub(crate) fn count_hook(&mut self) {
        self.st.hook_calls += 1;
        #[cfg(feature = "fault-injection")]
        self.failpoints.fire_panic_at_hook();
    }

    fn save_task(&mut self, id: TaskId) {
        if !self.journal.iter().any(|u| matches!(u, Undo::Task(t, _) if *t == id)) {
            self.journal.push(Undo::Task(id, self.st.tasks.get(&id).cloned()));
        }
    }

    fn save_proc(&mut self, id: ProcessId) {
        if !self.journal.iter().any(|u| matches!(u, Undo::Proc(p, _) if *p == id)) {
            self.journal.push(Undo::Proc(id, self.st.processes.get(&id).cloned()));
        }
    }

    fn save_inode(&mut self, id: InodeId) {
        if !self.journal.iter().any(|u| matches!(u, Undo::Inode(i, _) if *i == id)) {
            self.journal.push(Undo::Inode(id, self.st.inodes.get(&id).cloned()));
        }
    }

    // --- journalled mutators -------------------------------------------------

    pub(crate) fn task_mut(&mut self, id: TaskId) -> OsResult<&mut TaskStruct> {
        self.save_task(id);
        self.st.tasks.get_mut(&id).ok_or(OsError::NoSuchTask)
    }

    pub(crate) fn proc_mut(&mut self, id: ProcessId) -> OsResult<&mut ProcessStruct> {
        self.save_proc(id);
        self.st.processes.get_mut(&id).ok_or(OsError::Internal)
    }

    pub(crate) fn inode_mut(&mut self, id: InodeId) -> OsResult<&mut Inode> {
        self.save_inode(id);
        self.st.inodes.get_mut(&id).ok_or(OsError::NotFound)
    }

    pub(crate) fn remove_task(&mut self, id: TaskId) {
        self.save_task(id);
        self.st.tasks.remove(&id);
    }

    pub(crate) fn remove_process(&mut self, id: ProcessId) {
        self.save_proc(id);
        self.st.processes.remove(&id);
    }

    pub(crate) fn remove_inode(&mut self, id: InodeId) {
        self.save_inode(id);
        self.st.inodes.remove(&id);
    }

    /// Allocates a fresh inode, enforcing the inode quota.
    pub(crate) fn alloc_inode(
        &mut self,
        kind: InodeKind,
        labels: SecPair,
    ) -> OsResult<InodeId> {
        #[cfg(feature = "fault-injection")]
        if self.failpoints.take_quota() {
            return Err(OsError::QuotaExceeded("injected allocation failure"));
        }
        if self.st.inodes.len() >= self.quotas.max_inodes {
            return Err(OsError::QuotaExceeded("inodes"));
        }
        let id = InodeId(self.st.next_inode);
        self.st.next_inode += 1;
        self.journal.push(Undo::Inode(id, None));
        self.st
            .inodes
            .insert(id, Inode { id, kind, xattrs: Xattrs { labels }, nlink: 1 });
        Ok(id)
    }

    /// Inserts an open file into a process's fd table, enforcing the
    /// per-process fd quota (which counts *open* descriptors, so closing
    /// frees quota even though fd numbers are never reused).
    pub(crate) fn fd_insert(&mut self, pid: ProcessId, file: OpenFile) -> OsResult<Fd> {
        #[cfg(feature = "fault-injection")]
        if self.failpoints.take_quota() {
            return Err(OsError::QuotaExceeded("injected allocation failure"));
        }
        let open = self.st.processes.get(&pid).map_or(0, |p| p.fds.len());
        if open >= self.quotas.max_fds_per_process {
            return Err(OsError::QuotaExceeded("file descriptors"));
        }
        Ok(self.proc_mut(pid)?.fds.insert(file))
    }

    /// Sets an fd's offset via a fine-grained undo record (avoids
    /// snapshotting the whole process on the read/write hot paths).
    pub(crate) fn fd_set_offset(
        &mut self,
        pid: ProcessId,
        fd: Fd,
        offset: u64,
    ) -> OsResult<()> {
        let f = self
            .st
            .processes
            .get_mut(&pid)
            .and_then(|p| p.fds.get_mut(fd))
            .ok_or(OsError::BadFd)?;
        let old = f.offset;
        f.offset = offset;
        self.journal.push(Undo::FdOffset(pid, fd, old));
        Ok(())
    }

    /// Journalled in-place write to a regular file's contents: records
    /// only the overwritten range plus the old length, then applies the
    /// write (extending the file if needed).
    pub(crate) fn write_file_data(
        &mut self,
        ino: InodeId,
        offset: usize,
        buf: &[u8],
    ) -> OsResult<()> {
        let data = match self.st.inodes.get_mut(&ino).map(|i| &mut i.kind) {
            Some(InodeKind::File { data }) => data,
            _ => return Err(OsError::Internal),
        };
        let old_len = data.len();
        let end = (offset + buf.len()).min(old_len);
        let old_bytes =
            if offset < end { data[offset..end].to_vec() } else { Vec::new() };
        self.journal.push(Undo::FileRange { ino, offset, old_len, old_bytes });
        if offset + buf.len() > data.len() {
            data.resize(offset + buf.len(), 0);
        }
        data[offset..offset + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Journalled update of a user's persistent capability file.
    pub(crate) fn set_persistent_caps(&mut self, user: UserId, caps: CapSet) {
        if !self
            .journal
            .iter()
            .any(|u| matches!(u, Undo::PersistentCaps(w, _) if *w == user))
        {
            self.journal.push(Undo::PersistentCaps(
                user,
                self.st.persistent_caps.get(&user).cloned(),
            ));
        }
        self.st.persistent_caps.insert(user, caps);
    }

    /// Accounts one tag minted by `user`, enforcing the per-user tag
    /// quota.
    pub(crate) fn mint_tag(&mut self, user: UserId) -> OsResult<()> {
        #[cfg(feature = "fault-injection")]
        if self.failpoints.take_quota() {
            return Err(OsError::QuotaExceeded("injected allocation failure"));
        }
        let minted = self.st.tags_minted.get(&user).copied();
        if minted.unwrap_or(0) >= self.quotas.max_tags_per_user {
            return Err(OsError::QuotaExceeded("tags"));
        }
        if !self.journal.iter().any(|u| matches!(u, Undo::TagsMinted(w, _) if *w == user))
        {
            self.journal.push(Undo::TagsMinted(user, minted));
        }
        *self.st.tags_minted.entry(user).or_insert(0) += 1;
        Ok(())
    }

    /// Spawns a fresh single-task process (journalled); used by `fork`.
    pub(crate) fn spawn_process(
        &mut self,
        user: UserId,
        cwd: InodeId,
        caps: CapSet,
    ) -> TaskId {
        let pid = ProcessId(self.st.next_proc);
        self.st.next_proc += 1;
        let tid = TaskId(self.st.next_task);
        self.st.next_task += 1;
        self.journal.push(Undo::Proc(pid, None));
        self.st.processes.insert(pid, ProcessStruct::fresh(pid, tid, cwd));
        self.journal.push(Undo::Task(tid, None));
        self.st.tasks.insert(
            tid,
            TaskStruct::fresh(tid, pid, user, TaskSec::new(SecPair::unlabeled(), caps)),
        );
        tid
    }

    /// Mints a fresh task id (journalled via the id-counter snapshot);
    /// used by `spawn_thread`, which inserts the task itself.
    pub(crate) fn fresh_task_id(&mut self) -> TaskId {
        let tid = TaskId(self.st.next_task);
        self.st.next_task += 1;
        tid
    }

    /// Records a task insertion (for `spawn_thread`).
    pub(crate) fn insert_task(&mut self, task: TaskStruct) {
        self.journal.push(Undo::Task(task.id, self.st.tasks.get(&task.id).cloned()));
        self.st.tasks.insert(task.id, task);
    }
}
