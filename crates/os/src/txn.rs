//! The syscall transaction: shard locking plus an undo journal.
//!
//! Every syscall body runs against a [`Txn`]. The transaction owns the
//! set of shard locks the syscall has acquired so far (two-phase
//! locking: shards are added in ascending [`ShardKey`] order and held
//! until commit/rollback) and an undo journal: the *first* mutation of
//! any table entry snapshots that entry. The dispatch loop in
//! [`crate::kernel::Kernel::syscall_on`] then either commits (drops the
//! journal) or rolls back — on an internal panic caught at the syscall
//! boundary *or* on an error return — restoring every journalled entry
//! in reverse order, so a failed or faulted syscall is a byte-for-byte
//! no-op on the security state. Rollback only ever touches entries in
//! shards the transaction holds: journalling happens strictly after the
//! corresponding shard lock is acquired.
//!
//! If a body needs a shard *below* the highest one it already holds, the
//! accessor returns the internal [`OsError::Retry`] sentinel; the
//! dispatcher rolls back, widens its lock footprint and restarts the
//! body with every needed shard pre-locked in ascending order. The
//! [`IdCache`] keeps restarts deterministic: the nth id allocation of a
//! kind returns the same id on every attempt, so the footprint converges
//! instead of chasing freshly minted ids.
//!
//! Deliberate exceptions to journalling:
//!
//! * LSM hook counts are monotonic observability (tests pin that the
//!   counter only grows), not security state. They accumulate in the
//!   transaction and are flushed to the kernel's atomic counter on every
//!   exit *except* a footprint restart, so restarts do not inflate them.
//! * The [`laminar_difc::TagAllocator`] lives outside the journal; a tag
//!   id minted by an aborted `alloc_tag` is simply never used, which is
//!   invisible (tag ids are opaque and unique). The same holds for
//!   task/process/inode ids cached by an aborted attempt.
//!
//! Resource quotas ([`Quotas`]) are enforced here too, at the points
//! where a transaction allocates: inode creation, fd insertion and tag
//! minting. Exhaustion returns [`OsError::QuotaExceeded`] — typed,
//! side-effect free (the transaction rolls back), and transient: the
//! operation succeeds again once the resource is released.

use crate::error::{OsError, OsResult};
use crate::kernel::Kernel;
use crate::shard::{HeldShard, ShardGuard, ShardKey};
use crate::task::{ProcessId, ProcessStruct, TaskId, TaskSec, TaskStruct, UserId};
use crate::vfs::file::{Fd, OpenFile};
use crate::vfs::inode::{Inode, InodeId, InodeKind, Xattrs};
use laminar_difc::{CapSet, SecPair, Tag};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;

/// Resource limits enforced per kernel instance (fixed at boot).
///
/// Exhaustion degrades gracefully: the failing syscall returns
/// [`OsError::QuotaExceeded`] naming the resource, changes nothing, and
/// the same call succeeds after a `close`/`unlink` frees the resource.
#[derive(Clone, Debug)]
pub struct Quotas {
    /// Maximum simultaneously open descriptors per process.
    pub max_fds_per_process: usize,
    /// Maximum live inodes (files, dirs, pipes, sockets, symlinks).
    pub max_inodes: usize,
    /// Byte capacity of newly created pipe buffers.
    pub pipe_capacity: usize,
    /// Maximum tags a single user may mint via `alloc_tag`.
    pub max_tags_per_user: u64,
    /// Maximum byte length of a regular file's contents. Bounds the
    /// allocation a single sparse write (`seek(huge)` + `write`) can
    /// force: without it, one syscall could `resize` a file buffer to
    /// gigabytes before any label check could object.
    pub max_file_size: usize,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            max_fds_per_process: 4096,
            max_inodes: 1 << 20,
            pipe_capacity: crate::vfs::pipe::PIPE_CAPACITY,
            max_tags_per_user: 1 << 16,
            max_file_size: 1 << 26, // 64 MiB
        }
    }
}

/// Stages a trusted audit event for a quota denial and returns the
/// typed error. Every `QuotaExceeded` produced by the transaction layer
/// goes through here so the audit log sees each denial exactly once
/// (the stage is discarded on footprint restarts).
fn quota_denied(resource: &'static str) -> OsError {
    laminar_obs::emit(laminar_obs::Event::QuotaExceeded { resource });
    OsError::QuotaExceeded(resource)
}

/// Per-syscall cache of freshly minted ids. Ids come from the kernel's
/// global atomic counters (so they are unique across threads), but the
/// cache replays them positionally across footprint restarts: the nth
/// allocation of a kind yields the same id on every attempt, keeping the
/// restarted body's lock footprint stable.
#[derive(Default)]
pub(crate) struct IdCache {
    tasks: Vec<u64>,
    procs: Vec<u64>,
    inodes: Vec<u64>,
    tags: Vec<Tag>,
    cur: (usize, usize, usize, usize),
}

impl IdCache {
    /// Rewinds the positional cursors for a fresh attempt.
    pub(crate) fn reset_cursors(&mut self) {
        self.cur = (0, 0, 0, 0);
    }

    fn next_task(&mut self, k: &Kernel) -> TaskId {
        let i = self.cur.0;
        self.cur.0 += 1;
        if i == self.tasks.len() {
            self.tasks.push(k.next_task.fetch_add(1, Ordering::Relaxed));
        }
        TaskId(self.tasks[i])
    }

    fn next_proc(&mut self, k: &Kernel) -> ProcessId {
        let i = self.cur.1;
        self.cur.1 += 1;
        if i == self.procs.len() {
            self.procs.push(k.next_proc.fetch_add(1, Ordering::Relaxed));
        }
        ProcessId(self.procs[i])
    }

    fn next_inode(&mut self, k: &Kernel) -> InodeId {
        let i = self.cur.2;
        self.cur.2 += 1;
        if i == self.inodes.len() {
            self.inodes.push(k.next_inode.fetch_add(1, Ordering::Relaxed));
        }
        InodeId(self.inodes[i])
    }

    fn next_tag(&mut self, k: &Kernel) -> Tag {
        let i = self.cur.3;
        self.cur.3 += 1;
        if i == self.tags.len() {
            self.tags.push(k.tags.fresh());
        }
        self.tags[i]
    }
}

/// One undo record: the state of an entry before its first mutation in
/// this transaction (`None` = the entry did not exist).
enum Undo {
    Task(TaskId, Option<TaskStruct>),
    Proc(ProcessId, Option<ProcessStruct>),
    Inode(InodeId, Option<Inode>),
    /// Fine-grained record for regular-file writes: restoring `old_len`
    /// and the overwritten byte range avoids cloning whole files on the
    /// write hot path.
    FileRange {
        ino: InodeId,
        offset: usize,
        old_len: usize,
        old_bytes: Vec<u8>,
    },
    /// Fine-grained record for fd offset bumps on the read/write paths.
    FdOffset(ProcessId, Fd, u64),
    PersistentCaps(UserId, Option<CapSet>),
    TagsMinted(UserId, Option<u64>),
}

/// An in-flight syscall transaction (see the module docs).
pub(crate) struct Txn<'a> {
    kernel: &'a Kernel,
    /// Held shard locks, sorted ascending by key (the total lock order).
    guards: Vec<HeldShard<'a>>,
    journal: Vec<Undo>,
    ids: &'a mut IdCache,
    /// LSM hook invocations this attempt; flushed by the dispatcher.
    hooks: u64,
}

impl<'a> Txn<'a> {
    /// Starts a transaction with every shard in `footprint` pre-locked
    /// in ascending order.
    pub(crate) fn begin(
        kernel: &'a Kernel,
        footprint: &BTreeSet<ShardKey>,
        ids: &'a mut IdCache,
    ) -> Self {
        ids.reset_cursors();
        let mut guards = Vec::with_capacity(footprint.len() + 4);
        for &key in footprint {
            guards.push(kernel.tables.lock(key));
        }
        Txn { kernel, guards, journal: Vec::new(), ids, hooks: 0 }
    }

    /// Ensures the shard for `key` is held, acquiring it if it is above
    /// every held shard; returns its index in the guard list.
    ///
    /// # Errors
    /// [`OsError::Retry`] if acquiring would violate the total lock
    /// order — the dispatcher widens the footprint and restarts.
    fn require(&mut self, key: ShardKey) -> OsResult<usize> {
        if let Some(i) = self.guards.iter().position(|g| g.key == key) {
            return Ok(i);
        }
        if let Some(last) = self.guards.last() {
            if last.key > key {
                return Err(OsError::Retry(key.0));
            }
        }
        self.guards.push(self.kernel.tables.lock(key));
        Ok(self.guards.len() - 1)
    }

    // --- held-shard map access ----------------------------------------------

    fn tasks_map(&mut self, id: TaskId) -> OsResult<&mut HashMap<TaskId, TaskStruct>> {
        let i = self.require(ShardKey::task(id))?;
        match &mut self.guards[i].guard {
            ShardGuard::Tasks(g) => Ok(&mut **g),
            _ => Err(OsError::Internal),
        }
    }

    fn procs_map(
        &mut self,
        id: ProcessId,
    ) -> OsResult<&mut HashMap<ProcessId, ProcessStruct>> {
        let i = self.require(ShardKey::proc(id))?;
        match &mut self.guards[i].guard {
            ShardGuard::Procs(g) => Ok(&mut **g),
            _ => Err(OsError::Internal),
        }
    }

    fn inodes_map(&mut self, id: InodeId) -> OsResult<&mut HashMap<InodeId, Inode>> {
        let i = self.require(ShardKey::inode(id))?;
        match &mut self.guards[i].guard {
            ShardGuard::Inodes(g) => Ok(&mut **g),
            _ => Err(OsError::Internal),
        }
    }

    fn registry_map(&mut self) -> OsResult<&mut crate::shard::Registry> {
        let i = self.require(ShardKey::registry())?;
        match &mut self.guards[i].guard {
            ShardGuard::Registry(g) => Ok(&mut **g),
            _ => Err(OsError::Internal),
        }
    }

    /// Already-held shard lookup for rollback (never locks, never fails:
    /// journalled entries always live in held shards).
    fn held_tasks(&mut self, id: TaskId) -> Option<&mut HashMap<TaskId, TaskStruct>> {
        let key = ShardKey::task(id);
        let i = self.guards.iter().position(|g| g.key == key)?;
        match &mut self.guards[i].guard {
            ShardGuard::Tasks(g) => Some(&mut **g),
            _ => None,
        }
    }

    fn held_procs(
        &mut self,
        id: ProcessId,
    ) -> Option<&mut HashMap<ProcessId, ProcessStruct>> {
        let key = ShardKey::proc(id);
        let i = self.guards.iter().position(|g| g.key == key)?;
        match &mut self.guards[i].guard {
            ShardGuard::Procs(g) => Some(&mut **g),
            _ => None,
        }
    }

    fn held_inodes(&mut self, id: InodeId) -> Option<&mut HashMap<InodeId, Inode>> {
        let key = ShardKey::inode(id);
        let i = self.guards.iter().position(|g| g.key == key)?;
        match &mut self.guards[i].guard {
            ShardGuard::Inodes(g) => Some(&mut **g),
            _ => None,
        }
    }

    fn held_registry(&mut self) -> Option<&mut crate::shard::Registry> {
        let key = ShardKey::registry();
        let i = self.guards.iter().position(|g| g.key == key)?;
        match &mut self.guards[i].guard {
            ShardGuard::Registry(g) => Some(&mut **g),
            _ => None,
        }
    }

    /// Restores every journalled entry (reverse order), making the
    /// transaction a no-op on kernel state. Only touches held shards.
    pub(crate) fn rollback(&mut self) {
        let kernel = self.kernel;
        while let Some(entry) = self.journal.pop() {
            match entry {
                Undo::Task(id, Some(t)) => {
                    if let Some(m) = self.held_tasks(id) {
                        m.insert(id, t);
                    }
                }
                Undo::Task(id, None) => {
                    if let Some(m) = self.held_tasks(id) {
                        m.remove(&id);
                    }
                }
                Undo::Proc(id, Some(p)) => {
                    if let Some(m) = self.held_procs(id) {
                        m.insert(id, p);
                    }
                }
                Undo::Proc(id, None) => {
                    if let Some(m) = self.held_procs(id) {
                        m.remove(&id);
                    }
                }
                Undo::Inode(id, Some(i)) => {
                    if let Some(m) = self.held_inodes(id) {
                        if m.insert(id, i).is_none() {
                            kernel.inode_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Undo::Inode(id, None) => {
                    if let Some(m) = self.held_inodes(id) {
                        if m.remove(&id).is_some() {
                            kernel.inode_count.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
                Undo::FileRange { ino, offset, old_len, old_bytes } => {
                    if let Some(m) = self.held_inodes(ino) {
                        if let Some(InodeKind::File { data }) =
                            m.get_mut(&ino).map(|i| &mut i.kind)
                        {
                            data.truncate(old_len);
                            let end = (offset + old_bytes.len()).min(data.len());
                            if offset <= end {
                                data[offset..end]
                                    .copy_from_slice(&old_bytes[..end - offset]);
                            }
                        }
                    }
                }
                Undo::FdOffset(pid, fd, off) => {
                    if let Some(m) = self.held_procs(pid) {
                        if let Some(f) = m.get_mut(&pid).and_then(|p| p.fds.get_mut(fd)) {
                            f.offset = off;
                        }
                    }
                }
                Undo::PersistentCaps(user, Some(c)) => {
                    if let Some(r) = self.held_registry() {
                        r.persistent_caps.insert(user, c);
                    }
                }
                Undo::PersistentCaps(user, None) => {
                    if let Some(r) = self.held_registry() {
                        r.persistent_caps.remove(&user);
                    }
                }
                Undo::TagsMinted(user, Some(n)) => {
                    if let Some(r) = self.held_registry() {
                        r.tags_minted.insert(user, n);
                    }
                }
                Undo::TagsMinted(user, None) => {
                    if let Some(r) = self.held_registry() {
                        r.tags_minted.remove(&user);
                    }
                }
            }
        }
    }

    /// Bumps the per-attempt LSM hook count (flushed at commit); the
    /// panic-at-hook failpoint fires here.
    pub(crate) fn count_hook(&mut self) {
        self.hooks += 1;
        #[cfg(feature = "fault-injection")]
        self.kernel.failpoints.fire_panic_at_hook();
    }

    /// Adds this attempt's hook count to the kernel's monotonic counter.
    /// Called by the dispatcher on every exit except a footprint restart
    /// (so restarts do not inflate the count).
    pub(crate) fn flush_hooks(&mut self) {
        if self.hooks > 0 {
            self.kernel.hook_counter.fetch_add(self.hooks, Ordering::Relaxed);
            self.hooks = 0;
        }
    }

    // --- read accessors ------------------------------------------------------

    /// The task entry, if present (dead or alive).
    pub(crate) fn task_opt(&mut self, id: TaskId) -> OsResult<Option<&TaskStruct>> {
        Ok(self.tasks_map(id)?.get(&id))
    }

    /// The task entry; [`OsError::NoSuchTask`] if missing.
    pub(crate) fn task(&mut self, id: TaskId) -> OsResult<&TaskStruct> {
        self.tasks_map(id)?.get(&id).ok_or(OsError::NoSuchTask)
    }

    /// The task entry, filtered to alive tasks.
    pub(crate) fn task_alive(&mut self, id: TaskId) -> OsResult<&TaskStruct> {
        self.tasks_map(id)?.get(&id).filter(|t| t.alive).ok_or(OsError::NoSuchTask)
    }

    /// A clone of an alive task's security context.
    pub(crate) fn task_sec(&mut self, id: TaskId) -> OsResult<TaskSec> {
        Ok(self.task_alive(id)?.security.clone())
    }

    /// The process entry, if present.
    pub(crate) fn proc_opt(&mut self, id: ProcessId) -> OsResult<Option<&ProcessStruct>> {
        Ok(self.procs_map(id)?.get(&id))
    }

    /// The process entry; a missing process for a live task is an
    /// internal invariant failure.
    pub(crate) fn proc(&mut self, id: ProcessId) -> OsResult<&ProcessStruct> {
        self.procs_map(id)?.get(&id).ok_or(OsError::Internal)
    }

    /// The inode entry, if present.
    pub(crate) fn inode_opt(&mut self, id: InodeId) -> OsResult<Option<&Inode>> {
        Ok(self.inodes_map(id)?.get(&id))
    }

    /// The inode's labels; [`OsError::NotFound`] if missing.
    pub(crate) fn inode_labels(&mut self, id: InodeId) -> OsResult<SecPair> {
        self.inodes_map(id)?.get(&id).map(|i| i.labels().clone()).ok_or(OsError::NotFound)
    }

    // --- journalled mutators -------------------------------------------------

    fn save_task(&mut self, id: TaskId) -> OsResult<()> {
        if self.journal.iter().any(|u| matches!(u, Undo::Task(t, _) if *t == id)) {
            return Ok(());
        }
        let prev = self.tasks_map(id)?.get(&id).cloned();
        self.journal.push(Undo::Task(id, prev));
        Ok(())
    }

    fn save_proc(&mut self, id: ProcessId) -> OsResult<()> {
        if self.journal.iter().any(|u| matches!(u, Undo::Proc(p, _) if *p == id)) {
            return Ok(());
        }
        let prev = self.procs_map(id)?.get(&id).cloned();
        self.journal.push(Undo::Proc(id, prev));
        Ok(())
    }

    fn save_inode(&mut self, id: InodeId) -> OsResult<()> {
        if self.journal.iter().any(|u| matches!(u, Undo::Inode(i, _) if *i == id)) {
            return Ok(());
        }
        let prev = self.inodes_map(id)?.get(&id).cloned();
        self.journal.push(Undo::Inode(id, prev));
        Ok(())
    }

    pub(crate) fn task_mut(&mut self, id: TaskId) -> OsResult<&mut TaskStruct> {
        self.save_task(id)?;
        self.tasks_map(id)?.get_mut(&id).ok_or(OsError::NoSuchTask)
    }

    pub(crate) fn proc_mut(&mut self, id: ProcessId) -> OsResult<&mut ProcessStruct> {
        self.save_proc(id)?;
        self.procs_map(id)?.get_mut(&id).ok_or(OsError::Internal)
    }

    pub(crate) fn inode_mut(&mut self, id: InodeId) -> OsResult<&mut Inode> {
        self.save_inode(id)?;
        self.inodes_map(id)?.get_mut(&id).ok_or(OsError::NotFound)
    }

    /// Like [`Txn::inode_mut`] but yields `None` for a genuinely missing
    /// inode while still propagating lock-order restarts — callers that
    /// tolerate absence must not swallow [`OsError::Retry`].
    pub(crate) fn inode_mut_opt(&mut self, id: InodeId) -> OsResult<Option<&mut Inode>> {
        self.save_inode(id)?;
        Ok(self.inodes_map(id)?.get_mut(&id))
    }

    pub(crate) fn remove_task(&mut self, id: TaskId) -> OsResult<()> {
        self.save_task(id)?;
        self.tasks_map(id)?.remove(&id);
        Ok(())
    }

    pub(crate) fn remove_process(&mut self, id: ProcessId) -> OsResult<()> {
        self.save_proc(id)?;
        self.procs_map(id)?.remove(&id);
        Ok(())
    }

    pub(crate) fn remove_inode(&mut self, id: InodeId) -> OsResult<()> {
        self.save_inode(id)?;
        if self.inodes_map(id)?.remove(&id).is_some() {
            self.kernel.inode_count.fetch_sub(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Allocates a fresh inode, enforcing the inode quota.
    pub(crate) fn alloc_inode(
        &mut self,
        kind: InodeKind,
        labels: SecPair,
    ) -> OsResult<InodeId> {
        #[cfg(feature = "fault-injection")]
        if self.kernel.failpoints.take_quota() {
            return Err(quota_denied("injected allocation failure"));
        }
        if self.kernel.inode_count.load(Ordering::Relaxed) as usize
            >= self.kernel.quotas.max_inodes
        {
            return Err(quota_denied("inodes"));
        }
        let id = self.ids.next_inode(self.kernel);
        // Lock (and possibly restart) *before* journalling, so rollback
        // never needs a shard the transaction does not hold.
        self.require(ShardKey::inode(id))?;
        self.journal.push(Undo::Inode(id, None));
        self.inodes_map(id)?
            .insert(id, Inode { id, kind, xattrs: Xattrs { labels }, nlink: 1 });
        self.kernel.inode_count.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Inserts an open file into a process's fd table, enforcing the
    /// per-process fd quota (which counts *open* descriptors, so closing
    /// frees quota even though fd numbers are never reused).
    pub(crate) fn fd_insert(&mut self, pid: ProcessId, file: OpenFile) -> OsResult<Fd> {
        #[cfg(feature = "fault-injection")]
        if self.kernel.failpoints.take_quota() {
            return Err(quota_denied("injected allocation failure"));
        }
        let open = match self.proc_opt(pid)? {
            Some(p) => p.fds.len(),
            None => 0,
        };
        if open >= self.kernel.quotas.max_fds_per_process {
            return Err(quota_denied("file descriptors"));
        }
        Ok(self.proc_mut(pid)?.fds.insert(file))
    }

    /// Sets an fd's offset via a fine-grained undo record (avoids
    /// snapshotting the whole process on the read/write hot paths).
    pub(crate) fn fd_set_offset(
        &mut self,
        pid: ProcessId,
        fd: Fd,
        offset: u64,
    ) -> OsResult<()> {
        let old = {
            let f = self
                .procs_map(pid)?
                .get_mut(&pid)
                .and_then(|p| p.fds.get_mut(fd))
                .ok_or(OsError::BadFd)?;
            let old = f.offset;
            f.offset = offset;
            old
        };
        self.journal.push(Undo::FdOffset(pid, fd, old));
        Ok(())
    }

    /// Journalled in-place write to a regular file's contents: records
    /// only the overwritten range plus the old length, then applies the
    /// write (extending the file if needed).
    ///
    /// The resulting file length is bounded by [`Quotas::max_file_size`]
    /// and the offset arithmetic is checked: a sparse write past the
    /// quota (or one whose `offset + len` overflows) is a fail-closed
    /// [`OsError::QuotaExceeded`] *before* any allocation happens, so a
    /// single `seek(huge)` + `write` can no longer force a multi-gigabyte
    /// `resize`.
    pub(crate) fn write_file_data(
        &mut self,
        ino: InodeId,
        offset: usize,
        buf: &[u8],
    ) -> OsResult<()> {
        let new_end = match offset.checked_add(buf.len()) {
            Some(end) if end <= self.kernel.quotas.max_file_size => end,
            _ => return Err(quota_denied("file size")),
        };
        let undo = {
            let data = match self.inodes_map(ino)?.get_mut(&ino).map(|i| &mut i.kind) {
                Some(InodeKind::File { data }) => data,
                _ => return Err(OsError::Internal),
            };
            let old_len = data.len();
            let end = new_end.min(old_len);
            let old_bytes =
                if offset < end { data[offset..end].to_vec() } else { Vec::new() };
            if new_end > data.len() {
                data.resize(new_end, 0);
            }
            data[offset..new_end].copy_from_slice(buf);
            Undo::FileRange { ino, offset, old_len, old_bytes }
        };
        self.journal.push(undo);
        Ok(())
    }

    /// Journalled update of a user's persistent capability file.
    pub(crate) fn set_persistent_caps(
        &mut self,
        user: UserId,
        caps: CapSet,
    ) -> OsResult<()> {
        let prev = self.registry_map()?.persistent_caps.get(&user).cloned();
        if !self
            .journal
            .iter()
            .any(|u| matches!(u, Undo::PersistentCaps(w, _) if *w == user))
        {
            self.journal.push(Undo::PersistentCaps(user, prev));
        }
        self.registry_map()?.persistent_caps.insert(user, caps);
        Ok(())
    }

    /// Accounts one tag minted by `user`, enforcing the per-user tag
    /// quota.
    pub(crate) fn mint_tag(&mut self, user: UserId) -> OsResult<()> {
        #[cfg(feature = "fault-injection")]
        if self.kernel.failpoints.take_quota() {
            return Err(quota_denied("injected allocation failure"));
        }
        let minted = self.registry_map()?.tags_minted.get(&user).copied();
        if minted.unwrap_or(0) >= self.kernel.quotas.max_tags_per_user {
            return Err(quota_denied("tags"));
        }
        if !self.journal.iter().any(|u| matches!(u, Undo::TagsMinted(w, _) if *w == user))
        {
            self.journal.push(Undo::TagsMinted(user, minted));
        }
        *self.registry_map()?.tags_minted.entry(user).or_insert(0) += 1;
        Ok(())
    }

    /// Mints a fresh tag, replay-stable across footprint restarts.
    pub(crate) fn fresh_tag(&mut self) -> Tag {
        self.ids.next_tag(self.kernel)
    }

    /// Spawns a fresh single-task process (journalled); used by `fork`.
    /// Returns `(task, process)` ids.
    pub(crate) fn spawn_process(
        &mut self,
        user: UserId,
        cwd: InodeId,
        caps: CapSet,
    ) -> OsResult<(TaskId, ProcessId)> {
        let tid = self.ids.next_task(self.kernel);
        let pid = self.ids.next_proc(self.kernel);
        // Ascending domains: task shards rank below process shards.
        self.require(ShardKey::task(tid))?;
        self.require(ShardKey::proc(pid))?;
        self.journal.push(Undo::Proc(pid, None));
        self.procs_map(pid)?.insert(pid, ProcessStruct::fresh(pid, tid, cwd));
        self.journal.push(Undo::Task(tid, None));
        self.tasks_map(tid)?.insert(
            tid,
            TaskStruct::fresh(tid, pid, user, TaskSec::new(SecPair::unlabeled(), caps)),
        );
        Ok((tid, pid))
    }

    /// Mints a fresh task id (replay-stable); used by `spawn_thread`,
    /// which inserts the task itself.
    pub(crate) fn fresh_task_id(&mut self) -> TaskId {
        self.ids.next_task(self.kernel)
    }

    /// Records a task insertion (for `spawn_thread`).
    pub(crate) fn insert_task(&mut self, task: TaskStruct) -> OsResult<()> {
        let id = task.id;
        self.require(ShardKey::task(id))?;
        let prev = self.tasks_map(id)?.get(&id).cloned();
        self.journal.push(Undo::Task(id, prev));
        self.tasks_map(id)?.insert(id, task);
        Ok(())
    }
}
