//! Sharded kernel tables and the total lock order.
//!
//! PR 4 replaces the big kernel lock with per-subsystem sharded locks so
//! syscalls from distinct tasks can execute in parallel (the structure
//! Laminar's per-object LSM hooks admit, §4). The shard map:
//!
//! | domain            | shards | key space          | rank range      |
//! |-------------------|--------|--------------------|-----------------|
//! | task table        | 8      | `TaskId % 8`       | `0x000..=0x007` |
//! | process table     | 8      | `ProcessId % 8`    | `0x100..=0x107` |
//! | inode/VFS table   | 16     | `InodeId % 16`     | `0x200..=0x20f` |
//! | registry          | 1      | (singleton)        | `0x300`         |
//!
//! Pipe and socket buffers live inside their inodes, so they are covered
//! by the inode shards; the registry shard holds the per-user persistent
//! capability store, home-directory map and minted-tag accounting.
//!
//! **Total lock order:** locks must be acquired in strictly ascending
//! numeric [`ShardKey`] order (task shards before process shards before
//! inode shards before the registry). The order is enforced at runtime
//! by [`laminar_util::sync::lock_order`]; a syscall body that discovers
//! it needs a shard *below* one it already holds returns the internal
//! [`OsError::Retry`](crate::OsError) sentinel, and the dispatcher rolls
//! back, widens its lock footprint and restarts with all needed shards
//! pre-locked in ascending order (two-phase locking with restart).

use crate::task::{ProcessId, ProcessStruct, TaskId, TaskStruct, UserId};
use crate::vfs::inode::{Inode, InodeId};
use laminar_difc::CapSet;
use laminar_util::sync::{lock_order, Mutex};
use std::collections::HashMap;
use std::sync::MutexGuard;

/// Number of task-table shards.
pub const TASK_SHARDS: usize = 8;
/// Number of process-table shards.
pub const PROC_SHARDS: usize = 8;
/// Number of inode-table shards (pipes and sockets live here too).
pub const INODE_SHARDS: usize = 16;
/// Total number of kernel lock shards (all domains plus the registry).
pub const SHARD_COUNT: usize = TASK_SHARDS + PROC_SHARDS + INODE_SHARDS + 1;

const DOM_TASK: u16 = 0x000;
const DOM_PROC: u16 = 0x100;
const DOM_INODE: u16 = 0x200;
const DOM_REGISTRY: u16 = 0x300;
const DOM_MASK: u16 = 0xF00;
const IDX_MASK: u16 = 0x0FF;

/// Identifies one kernel lock shard. The numeric value *is* the total
/// lock order: a `ShardKey` with a smaller value must be locked first.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ShardKey(pub(crate) u16);

impl ShardKey {
    /// The task-table shard holding `tid`.
    #[must_use]
    pub fn task(tid: TaskId) -> Self {
        ShardKey(DOM_TASK | (tid.0 % TASK_SHARDS as u64) as u16)
    }

    /// The process-table shard holding `pid`.
    #[must_use]
    pub fn proc(pid: ProcessId) -> Self {
        ShardKey(DOM_PROC | (pid.0 % PROC_SHARDS as u64) as u16)
    }

    /// The inode-table shard holding `ino`.
    #[must_use]
    pub fn inode(ino: InodeId) -> Self {
        ShardKey(DOM_INODE | (ino.0 % INODE_SHARDS as u64) as u16)
    }

    /// The (singleton) registry shard.
    #[must_use]
    pub fn registry() -> Self {
        ShardKey(DOM_REGISTRY)
    }

    /// Maps a flat ordinal in `0..SHARD_COUNT` onto the shard map:
    /// task shards first, then process, inode, registry. Ordinals wrap.
    #[must_use]
    pub fn from_ordinal(n: usize) -> Self {
        let n = n % SHARD_COUNT;
        if n < TASK_SHARDS {
            ShardKey(DOM_TASK | n as u16)
        } else if n < TASK_SHARDS + PROC_SHARDS {
            ShardKey(DOM_PROC | (n - TASK_SHARDS) as u16)
        } else if n < TASK_SHARDS + PROC_SHARDS + INODE_SHARDS {
            ShardKey(DOM_INODE | (n - TASK_SHARDS - PROC_SHARDS) as u16)
        } else {
            ShardKey(DOM_REGISTRY)
        }
    }

    /// The shard's position in the total lock order (used as the
    /// [`lock_order`] rank).
    #[must_use]
    pub fn rank(self) -> u32 {
        u32::from(self.0)
    }
}

/// The kernel-global singleton state guarded by the registry shard.
#[derive(Default, Debug)]
pub(crate) struct Registry {
    /// Persistent per-user capability store (§4.4: "The OS stores the
    /// persistent capabilities for each user in a file. On login, the OS
    /// gives the login shell all of the user's persistent capabilities").
    pub persistent_caps: HashMap<UserId, CapSet>,
    pub homes: HashMap<UserId, InodeId>,
    /// Tags minted per user via `alloc_tag` (for the tag quota).
    pub tags_minted: HashMap<UserId, u64>,
}

/// The sharded kernel tables. Each map fragment has its own mutex;
/// [`Tables::lock`] enforces the total order via [`lock_order`].
pub(crate) struct Tables {
    tasks: [Mutex<HashMap<TaskId, TaskStruct>>; TASK_SHARDS],
    procs: [Mutex<HashMap<ProcessId, ProcessStruct>>; PROC_SHARDS],
    inodes: [Mutex<HashMap<InodeId, Inode>>; INODE_SHARDS],
    registry: Mutex<Registry>,
}

impl std::fmt::Debug for Tables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tables").finish_non_exhaustive()
    }
}

/// A locked view of one shard: the guard plus which table it belongs to.
pub(crate) enum ShardGuard<'a> {
    Tasks(MutexGuard<'a, HashMap<TaskId, TaskStruct>>),
    Procs(MutexGuard<'a, HashMap<ProcessId, ProcessStruct>>),
    Inodes(MutexGuard<'a, HashMap<InodeId, Inode>>),
    Registry(MutexGuard<'a, Registry>),
}

/// A held shard lock; dropping it releases both the mutex and the
/// thread's [`lock_order`] bookkeeping entry.
pub(crate) struct HeldShard<'a> {
    pub key: ShardKey,
    pub guard: ShardGuard<'a>,
}

impl Drop for HeldShard<'_> {
    fn drop(&mut self) {
        lock_order::release(self.key.rank());
    }
}

/// A tracked guard for the admin/boot paths, which lock exactly one
/// shard at a time. Derefs to the shard's map.
pub(crate) struct Tracked<'a, T: ?Sized> {
    rank: u32,
    guard: MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for Tracked<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for Tracked<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for Tracked<'_, T> {
    fn drop(&mut self) {
        lock_order::release(self.rank);
    }
}

impl Tables {
    pub(crate) fn new() -> Self {
        Tables {
            tasks: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            procs: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            inodes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            registry: Mutex::new(Registry::default()),
        }
    }

    /// Locks the shard identified by `key`, recording the acquisition in
    /// the thread's lock-order lint state. Callers must acquire keys in
    /// ascending order or the lint panics.
    pub(crate) fn lock(&self, key: ShardKey) -> HeldShard<'_> {
        lock_order::acquire(key.rank());
        let idx = usize::from(key.0 & IDX_MASK);
        let guard = match key.0 & DOM_MASK {
            DOM_TASK => ShardGuard::Tasks(self.tasks[idx].lock()),
            DOM_PROC => ShardGuard::Procs(self.procs[idx].lock()),
            DOM_INODE => ShardGuard::Inodes(self.inodes[idx].lock()),
            _ => ShardGuard::Registry(self.registry.lock()),
        };
        HeldShard { key, guard }
    }

    /// Locks the task shard for `tid` (admin paths: one shard at a time).
    pub(crate) fn tasks_for(
        &self,
        tid: TaskId,
    ) -> Tracked<'_, HashMap<TaskId, TaskStruct>> {
        let key = ShardKey::task(tid);
        lock_order::acquire(key.rank());
        Tracked {
            rank: key.rank(),
            guard: self.tasks[usize::from(key.0 & IDX_MASK)].lock(),
        }
    }

    /// Locks the process shard for `pid`.
    pub(crate) fn procs_for(
        &self,
        pid: ProcessId,
    ) -> Tracked<'_, HashMap<ProcessId, ProcessStruct>> {
        let key = ShardKey::proc(pid);
        lock_order::acquire(key.rank());
        Tracked {
            rank: key.rank(),
            guard: self.procs[usize::from(key.0 & IDX_MASK)].lock(),
        }
    }

    /// Locks the inode shard for `ino`.
    pub(crate) fn inodes_for(
        &self,
        ino: InodeId,
    ) -> Tracked<'_, HashMap<InodeId, Inode>> {
        let key = ShardKey::inode(ino);
        lock_order::acquire(key.rank());
        Tracked {
            rank: key.rank(),
            guard: self.inodes[usize::from(key.0 & IDX_MASK)].lock(),
        }
    }

    /// Locks the registry shard.
    pub(crate) fn registry(&self) -> Tracked<'_, Registry> {
        let key = ShardKey::registry();
        lock_order::acquire(key.rank());
        Tracked { rank: key.rank(), guard: self.registry.lock() }
    }

    /// Poisons the underlying mutex of one shard (fault injection).
    #[cfg(feature = "fault-injection")]
    pub(crate) fn poison(&self, key: ShardKey) {
        let idx = usize::from(key.0 & IDX_MASK);
        match key.0 & DOM_MASK {
            DOM_TASK => self.tasks[idx].poison_for_test(),
            DOM_PROC => self.procs[idx].poison_for_test(),
            DOM_INODE => self.inodes[idx].poison_for_test(),
            _ => self.registry.poison_for_test(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_keys_are_totally_ordered_by_domain() {
        let t = ShardKey::task(TaskId(7));
        let p = ShardKey::proc(ProcessId(0));
        let i = ShardKey::inode(InodeId(15));
        let r = ShardKey::registry();
        assert!(t < p && p < i && i < r);
        assert!(t.rank() < p.rank() && i.rank() < r.rank());
    }

    #[test]
    fn from_ordinal_covers_every_shard_exactly_once() {
        let mut seen = std::collections::BTreeSet::new();
        for n in 0..SHARD_COUNT {
            seen.insert(ShardKey::from_ordinal(n));
        }
        assert_eq!(seen.len(), SHARD_COUNT);
        // wraps
        assert_eq!(ShardKey::from_ordinal(SHARD_COUNT), ShardKey::from_ordinal(0));
    }

    #[test]
    fn same_id_maps_to_same_shard() {
        assert_eq!(ShardKey::inode(InodeId(3)), ShardKey::inode(InodeId(3 + 16)));
        assert_eq!(ShardKey::task(TaskId(2)), ShardKey::task(TaskId(10)));
    }

    #[test]
    fn lock_unlock_round_trip_clears_lint_state() {
        let t = Tables::new();
        {
            let _a = t.lock(ShardKey::task(TaskId(1)));
            let _b = t.lock(ShardKey::inode(InodeId(1)));
            assert_eq!(lock_order::held_count(), 2);
        }
        assert_eq!(lock_order::held_count(), 0);
    }
}
