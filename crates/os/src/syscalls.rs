//! The syscall surface of the Laminar OS.
//!
//! Includes the seven security syscalls of Fig. 3 (`alloc_tag`,
//! `set_task_label`, `drop_label_tcb`, `drop_capabilities`,
//! `write_capability`, `create_file_labeled`, `mkdir_labeled`) plus the
//! standard file, pipe, process, memory and signal calls the case
//! studies and the lmbench-style microbenchmarks need.
//!
//! Every syscall consults the loaded security module at the same points
//! a Linux LSM would. Every *mutating* syscall body executes inside a
//! [`crate::txn::Txn`] transaction under the panic boundary of
//! [`Kernel::syscall_on`](crate::kernel::Kernel::syscall_on): the body
//! locks only the shards it touches (in
//! the total lock order of [`crate::shard`]), and an internal fault (or
//! an error return) rolls the journal back, so a failed syscall is a
//! no-op on labels, capabilities, fd tables and the VFS — the kernel
//! fails closed and keeps serving every other task, in parallel.

use crate::error::{OsError, OsResult};
use crate::kernel::TaskHandle;
use crate::lsm::{Access, DeliveryVerdict};
use crate::task::{ProcessId, Signal, TaskId, TaskSec, TaskStruct, UserId, VmArea};
use crate::vfs::file::{Fd, OpenFile, OpenMode, PipeEnd, SocketEnd};
use crate::vfs::inode::{InodeId, InodeKind, Metadata};
use crate::vfs::pipe::PipeBuffer;
use laminar_difc::{
    check_pair_change, CapSet, Capability, Label, LabelType, SecPair, Tag,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Stages a trusted `SilentDrop` audit event. The subject still sees
/// full success — only the kernel-side log records the drop (§5.2).
fn obs_drop(channel: laminar_obs::DropChannel) {
    laminar_obs::emit(laminar_obs::Event::SilentDrop { channel });
}

impl TaskHandle {
    // ----- labels & capabilities (Fig. 3) --------------------------------

    /// `alloc_tag`: returns a fresh tag and grants the caller both its
    /// capabilities. The allocator is trusted and guarantees uniqueness.
    ///
    /// # Errors
    /// Fails if the task has exited; [`OsError::QuotaExceeded`] once the
    /// per-user tag quota is spent.
    pub fn alloc_tag(&self) -> OsResult<Tag> {
        self.kernel.syscall_on(self.tid, "alloc_tag", |st| {
            let user = st.task_alive(self.tid)?.user;
            st.mint_tag(user)?;
            // The allocator lives outside the journal: a tag id minted by
            // an aborted transaction is simply never used (ids are opaque).
            let tag = st.fresh_tag();
            st.task_mut(self.tid)?.security.caps_mut().grant_both(tag);
            Ok(tag)
        })
    }

    /// `set_task_label`: replaces one of the caller's labels, checking
    /// the label-change rule against its capabilities, the LSM hook, and
    /// the multithreading restriction of §4.1 (threads of an *untrusted*
    /// process must share labels, so heterogeneous changes are rejected
    /// there).
    ///
    /// # Errors
    /// [`OsError::LabelChangeDenied`] if a capability is missing;
    /// [`OsError::PermissionDenied`] for the multithreading restriction.
    pub fn set_task_label(&self, ty: LabelType, new: Label) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "set_task_label", |st| {
            let sec = st.task_sec(self.tid)?;
            let new_pair = sec.labels.with_label(ty, new.clone());
            if new_pair == sec.labels {
                // O(1) by interned pair id: an identity change always passes
                // both the capability rule and the LSM hook, so skip both.
                return Ok(());
            }
            check_pair_change(&sec.labels, &new_pair, &sec.caps)?;
            st.count_hook();
            self.kernel.module.task_set_label(&sec, &new_pair)?;
            // Audit the (now fully approved) transition. Declassify =
            // the release direction: secrecy shrank or integrity grew.
            if laminar_obs::enabled() {
                let (ty, declassify) = match ty {
                    LabelType::Secrecy => {
                        ("secrecy", !sec.labels.secrecy().is_subset_of(&new))
                    }
                    LabelType::Integrity => {
                        ("integrity", !new.is_subset_of(sec.labels.integrity()))
                    }
                };
                laminar_obs::emit(laminar_obs::Event::LabelChange {
                    task: self.tid.0,
                    ty,
                    before: sec.labels.id().as_u32(),
                    after: new_pair.id().as_u32(),
                    declassify,
                });
            }
            let pid = st.task(self.tid)?.process;
            let (trusted_vm, ptasks) = {
                let proc = st.proc(pid)?;
                (proc.trusted_vm, proc.tasks.clone())
            };
            if !trusted_vm && ptasks.len() > 1 {
                // Without a trusted VM all threads must keep identical
                // labels; a per-thread change would desynchronise them.
                for t in &ptasks {
                    if *t == self.tid {
                        continue;
                    }
                    let homogeneous = st
                        .task_opt(*t)?
                        .map(|ts| ts.security.labels == new_pair)
                        .unwrap_or(true);
                    if !homogeneous {
                        return Err(OsError::PermissionDenied(
                            "threads of an untrusted multithreaded process must share labels",
                        ));
                    }
                }
            }
            st.task_mut(self.tid)?.security.labels = new_pair;
            Ok(())
        })
    }

    /// Replaces both labels at once (convenience used by the trusted
    /// runtime when entering a security region).
    ///
    /// # Errors
    /// Same as [`Self::set_task_label`].
    pub fn set_task_labels(&self, new: SecPair) -> OsResult<()> {
        self.set_task_label(LabelType::Secrecy, new.secrecy().clone())?;
        self.set_task_label(LabelType::Integrity, new.integrity().clone())
    }

    /// `drop_label_tcb`: clears the current labels of `target` *without
    /// capability checks*. Callable only by a thread whose integrity
    /// label carries the special `tcb` tag, and only for threads in the
    /// caller's own address space — "the VM cannot drop the labels on
    /// other applications" (§4.4).
    ///
    /// # Errors
    /// [`OsError::PermissionDenied`] without the `tcb` tag or across
    /// address spaces.
    pub fn drop_label_tcb(&self, target: TaskId) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "drop_label_tcb", |st| {
            let sec = st.task_sec(self.tid)?;
            if !sec.labels.integrity().contains(self.kernel.tcb_tag()) {
                return Err(OsError::PermissionDenied(
                    "drop_label_tcb requires the tcb integrity tag",
                ));
            }
            let my_pid = st.task(self.tid)?.process;
            let t = st.task(target)?;
            if t.process != my_pid {
                return Err(OsError::PermissionDenied(
                    "drop_label_tcb is limited to the caller's address space",
                ));
            }
            // Clear everything except the tcb tag itself if the target is the
            // trusted thread (so it can keep making privileged calls).
            let keep_tcb = t.security.labels.integrity().contains(self.kernel.tcb_tag());
            let new = if keep_tcb && target == self.tid {
                SecPair::integrity_only(Label::singleton(self.kernel.tcb_tag()))
            } else {
                SecPair::unlabeled()
            };
            st.task_mut(target)?.security.labels = new;
            Ok(())
        })
    }

    /// Sets the labels of a thread in the caller's address space *without
    /// capability checks*. Requires the `tcb` integrity tag: this is how
    /// the trusted VM pushes already-validated security-region labels to
    /// the kernel (§4.4 — "The Laminar VM is responsible for correctly
    /// setting thread labels and capabilities inside security regions";
    /// the VM is in the TCB, so the kernel takes its word for labels the
    /// region-entry rules have vetted).
    ///
    /// # Errors
    /// [`OsError::PermissionDenied`] without the `tcb` tag or across
    /// address spaces.
    pub fn set_task_labels_tcb(&self, target: TaskId, labels: SecPair) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "set_task_labels_tcb", |st| {
            let sec = st.task_sec(self.tid)?;
            if !sec.labels.integrity().contains(self.kernel.tcb_tag()) {
                return Err(OsError::PermissionDenied(
                    "set_task_labels_tcb requires the tcb integrity tag",
                ));
            }
            let my_pid = st.task(self.tid)?.process;
            let t = st.task(target)?;
            if t.process != my_pid {
                return Err(OsError::PermissionDenied(
                    "set_task_labels_tcb is limited to the caller's address space",
                ));
            }
            st.task_mut(target)?.security.labels = labels.clone();
            Ok(())
        })
    }

    /// `drop_capabilities`: permanently removes capabilities from the
    /// caller. (Temporary, region-scoped suspension is implemented by the
    /// trusted runtime, which remembers and later re-grants via
    /// [`Self::grant_capabilities_tcb`].)
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn drop_capabilities(&self, caps: &[Capability]) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "drop_capabilities", |st| {
            st.task_alive(self.tid)?;
            let t = st.task_mut(self.tid)?;
            for &c in caps {
                t.security.caps_mut().revoke(c);
            }
            Ok(())
        })
    }

    /// Re-grants capabilities to a thread in the caller's address space.
    /// Requires the `tcb` integrity tag: this is the restore half of the
    /// trusted runtime's temporary capability suspension.
    ///
    /// # Errors
    /// [`OsError::PermissionDenied`] without the `tcb` tag or across
    /// address spaces.
    pub fn grant_capabilities_tcb(&self, target: TaskId, caps: &CapSet) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "grant_capabilities_tcb", |st| {
            let sec = st.task_sec(self.tid)?;
            if !sec.labels.integrity().contains(self.kernel.tcb_tag()) {
                return Err(OsError::PermissionDenied(
                    "grant_capabilities_tcb requires the tcb integrity tag",
                ));
            }
            let my_pid = st.task(self.tid)?.process;
            let t = st.task(target)?;
            if t.process != my_pid {
                return Err(OsError::PermissionDenied(
                    "grant_capabilities_tcb is limited to the caller's address space",
                ));
            }
            let t = st.task_mut(target)?;
            t.security.caps = Arc::new(t.security.caps.union(caps));
            Ok(())
        })
    }

    /// Current labels of the calling task. (Read-only: bypasses the
    /// transaction machinery, never fires failpoints.)
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn current_labels(&self) -> OsResult<SecPair> {
        let shard = self.kernel.tables.tasks_for(self.tid);
        shard
            .get(&self.tid)
            .filter(|t| t.alive)
            .map(|t| t.security.labels.clone())
            .ok_or(OsError::NoSuchTask)
    }

    /// Current capability set of the calling task. (Read-only: bypasses
    /// the transaction machinery, never fires failpoints.)
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn current_caps(&self) -> OsResult<CapSet> {
        let shard = self.kernel.tables.tasks_for(self.tid);
        shard
            .get(&self.tid)
            .filter(|t| t.alive)
            .map(|t| (*t.security.caps).clone())
            .ok_or(OsError::NoSuchTask)
    }

    /// `write_capability`: sends a capability through a pipe fd. The
    /// kernel mediates: the sender must *hold* the capability, and the
    /// labels of sender → pipe must allow communication — otherwise the
    /// message is silently dropped (an error would leak).
    ///
    /// # Errors
    /// [`OsError::BadFd`] if `fd` is not a writable pipe end;
    /// [`OsError::PermissionDenied`] if the sender lacks the capability.
    pub fn write_capability(&self, cap: Capability, fd: Fd) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "write_capability", |st| {
            let sec = st.task_sec(self.tid)?;
            if !sec.caps.has(cap) {
                return Err(OsError::PermissionDenied(
                    "cannot send a capability the sender does not hold",
                ));
            }
            let pid = st.task(self.tid)?.process;
            let file = st.proc(pid)?.fds.get(fd).cloned().ok_or(OsError::BadFd)?;
            if file.pipe_end != Some(PipeEnd::Write) {
                return Err(OsError::BadFd);
            }
            let pipe_labels = st.inode_labels(file.inode)?;
            st.count_hook();
            match self.kernel.module.cap_transfer(&sec, &pipe_labels) {
                DeliveryVerdict::Deliver => {
                    if let InodeKind::Pipe { buffer } =
                        &mut st.inode_mut(file.inode)?.kind
                    {
                        if !buffer.push_cap(cap) {
                            // Queue ceiling reached ⇒ silent drop.
                            obs_drop(laminar_obs::DropChannel::Cap);
                        }
                    }
                    Ok(())
                }
                DeliveryVerdict::SilentDrop => {
                    obs_drop(laminar_obs::DropChannel::Cap);
                    Ok(())
                }
            }
        })
    }

    /// Receives a capability from a pipe fd, if one is at the head of the
    /// queue. Grants it to the caller. Nonblocking.
    ///
    /// # Errors
    /// [`OsError::BadFd`] if `fd` is not a readable pipe end; a flow
    /// error if the pipe's labels may not flow to the receiver.
    pub fn read_capability(&self, fd: Fd) -> OsResult<Option<Capability>> {
        self.kernel.syscall_on(self.tid, "read_capability", |st| {
            let sec = st.task_sec(self.tid)?;
            let pid = st.task(self.tid)?.process;
            let file = st.proc(pid)?.fds.get(fd).cloned().ok_or(OsError::BadFd)?;
            if file.pipe_end != Some(PipeEnd::Read) {
                return Err(OsError::BadFd);
            }
            let pipe_labels = st.inode_labels(file.inode)?;
            st.count_hook();
            self.kernel.module.cap_receive(&sec, &pipe_labels)?;
            let cap = match &mut st.inode_mut(file.inode)?.kind {
                InodeKind::Pipe { buffer } => buffer.pop_cap(),
                _ => None,
            };
            if let Some(c) = cap {
                st.task_mut(self.tid)?.security.caps_mut().grant(c);
            }
            Ok(cap)
        })
    }

    /// Persists the caller's current capabilities as the user's
    /// persistent capability set (the on-disk store of §4.4).
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn save_persistent_caps(&self) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "save_persistent_caps", |st| {
            let t = st.task_alive(self.tid)?;
            let user = t.user;
            let caps = (*t.security.caps).clone();
            st.set_persistent_caps(user, caps)?;
            Ok(())
        })
    }

    // ----- files ----------------------------------------------------------

    /// `create_file_labeled` (Fig. 3): creates a file with explicit
    /// labels, enforcing the three conditions of §5.2 via the
    /// `inode_create` hook, and opens it read-write.
    ///
    /// # Errors
    /// [`OsError::Exists`] if the name is taken; hook vetoes otherwise.
    pub fn create_file_labeled(&self, path: &str, labels: SecPair) -> OsResult<Fd> {
        self.create_inode(path, labels, false)
    }

    /// `mkdir_labeled` (Fig. 3): creates a directory with explicit labels
    /// under the same rules.
    ///
    /// # Errors
    /// Same as [`Self::create_file_labeled`].
    pub fn mkdir_labeled(&self, path: &str, labels: SecPair) -> OsResult<()> {
        self.create_inode(path, labels, true).map(|_| ())
    }

    /// Creates an unlabeled-API file: the new file carries the labels of
    /// the creating thread (§4.5: "Other system resources use the label
    /// of their creating thread").
    ///
    /// # Errors
    /// Same as [`Self::create_file_labeled`].
    pub fn create(&self, path: &str) -> OsResult<Fd> {
        let labels = self.current_labels()?;
        self.create_file_labeled(path, labels)
    }

    /// Creates a directory carrying the labels of the creating thread.
    ///
    /// # Errors
    /// Same as [`Self::create_file_labeled`].
    pub fn mkdir(&self, path: &str) -> OsResult<()> {
        let labels = self.current_labels()?;
        self.mkdir_labeled(path, labels)
    }

    fn create_inode(&self, path: &str, labels: SecPair, dir: bool) -> OsResult<Fd> {
        self.kernel.syscall_on(self.tid, "create_inode", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            if r.inode.is_some() {
                return Err(OsError::Exists);
            }
            let parent =
                r.parent.ok_or(OsError::InvalidArgument("path names a directory"))?;
            let parent_labels = st.inode_labels(parent)?;
            st.count_hook();
            self.kernel.module.inode_create(&sec, &parent_labels, &labels)?;
            let kind = if dir {
                InodeKind::Dir { entries: BTreeMap::new() }
            } else {
                InodeKind::File { data: Vec::new() }
            };
            let id = st.alloc_inode(kind, labels.clone())?;
            if let InodeKind::Dir { entries } = &mut st.inode_mut(parent)?.kind {
                entries.insert(r.name, id);
            }
            if dir {
                return Ok(Fd(u32::MAX)); // sentinel, discarded by mkdir_labeled
            }
            let pid = st.task(self.tid)?.process;
            st.fd_insert(
                pid,
                OpenFile {
                    inode: id,
                    mode: OpenMode::ReadWrite,
                    offset: 0,
                    pipe_end: None,
                    socket_end: None,
                },
            )
        })
    }

    /// Opens an existing file. The open itself checks `inode_permission`
    /// for the requested mode; each subsequent read/write re-checks
    /// `file_permission` (labels may have to be re-validated per
    /// operation because the *task's* labels change across security
    /// regions).
    ///
    /// # Errors
    /// [`OsError::NotFound`]; [`OsError::IsADirectory`]; hook vetoes.
    pub fn open(&self, path: &str, mode: OpenMode) -> OsResult<Fd> {
        self.kernel.syscall_on(self.tid, "open", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            if st.inode_opt(ino)?.map(|i| i.kind.is_dir()).unwrap_or(false) {
                return Err(OsError::IsADirectory);
            }
            let mask = match mode {
                OpenMode::Read => Access::Read,
                OpenMode::Write => Access::Write,
                OpenMode::ReadWrite => Access::ReadWrite,
            };
            self.kernel.hook_inode_permission(st, &sec, ino, mask)?;
            let pid = st.task(self.tid)?.process;
            st.fd_insert(
                pid,
                OpenFile {
                    inode: ino,
                    mode,
                    offset: 0,
                    pipe_end: None,
                    socket_end: None,
                },
            )
        })
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    /// [`OsError::BadFd`] if not open.
    pub fn close(&self, fd: Fd) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "close", |st| {
            let pid = st.task_alive(self.tid)?.process;
            let file = st.proc_mut(pid)?.fds.remove(fd).ok_or(OsError::BadFd)?;
            if let Some(end) = file.pipe_end {
                if let Some(inode) = st.inode_mut_opt(file.inode)? {
                    if let InodeKind::Pipe { buffer } = &mut inode.kind {
                        match end {
                            PipeEnd::Read => buffer.drop_reader(),
                            PipeEnd::Write => buffer.drop_writer(),
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// Reads up to `max` bytes from an open descriptor.
    ///
    /// For pipes this is **nonblocking**: an empty pipe yields zero bytes
    /// with no EOF indication (the writer's exit may not be signalled
    /// across labels, §5.2).
    ///
    /// # Errors
    /// [`OsError::BadFd`]; flow vetoes from `file_permission`.
    pub fn read(&self, fd: Fd, max: usize) -> OsResult<Vec<u8>> {
        self.kernel.syscall_on(self.tid, "read", |st| {
            let sec = st.task_sec(self.tid)?;
            let pid = st.task(self.tid)?.process;
            let file = st.proc(pid)?.fds.get(fd).cloned().ok_or(OsError::BadFd)?;
            if !file.mode.readable() {
                return Err(OsError::BadFd);
            }
            let labels = st.inode_labels(file.inode)?;
            st.count_hook();
            match file.pipe_end {
                Some(PipeEnd::Read) => {
                    self.kernel.module.pipe_read(&sec, &labels)?;
                    let data = match &mut st.inode_mut(file.inode)?.kind {
                        InodeKind::Pipe { buffer } => buffer.pop_bytes(max),
                        _ => Vec::new(),
                    };
                    Ok(data)
                }
                Some(PipeEnd::Write) => Err(OsError::BadFd),
                None if file.socket_end.is_some() => {
                    // Socket read: nonblocking, label-mediated like a pipe.
                    self.kernel.module.pipe_read(&sec, &labels)?;
                    let data =
                        match (&mut st.inode_mut(file.inode)?.kind, file.socket_end) {
                            (InodeKind::Socket { ab, ba }, Some(end)) => match end {
                                SocketEnd::A => ba.pop_bytes(max),
                                SocketEnd::B => ab.pop_bytes(max),
                            },
                            _ => Vec::new(),
                        };
                    Ok(data)
                }
                None => {
                    self.kernel.module.file_permission(&sec, &labels, Access::Read)?;
                    let inode = st.inode_opt(file.inode)?.ok_or(OsError::BadFd)?;
                    let data = match &inode.kind {
                        InodeKind::File { data } => {
                            let start = (file.offset as usize).min(data.len());
                            let end = (start + max).min(data.len());
                            data[start..end].to_vec()
                        }
                        InodeKind::NullDevice => Vec::new(),
                        InodeKind::Dir { .. } => return Err(OsError::IsADirectory),
                        InodeKind::Symlink { .. } => {
                            return Err(OsError::Unsupported("read on a symlink fd"))
                        }
                        // A pipe/socket inode behind a plain fd is an
                        // internal invariant failure; report it fail-closed.
                        InodeKind::Pipe { .. } | InodeKind::Socket { .. } => {
                            return Err(OsError::Internal)
                        }
                    };
                    let n = data.len() as u64;
                    if n > 0 {
                        st.fd_set_offset(pid, fd, file.offset + n)?;
                    }
                    Ok(data)
                }
            }
        })
    }

    /// Writes bytes at the descriptor's offset.
    ///
    /// Pipe writes are **unreliable**: if the flow check fails or the
    /// buffer is full the message is *silently dropped* and the call
    /// still reports full success — an error code would leak (§5.2).
    ///
    /// # Errors
    /// [`OsError::BadFd`]; flow vetoes from `file_permission` (regular
    /// files only — pipe label failures drop silently).
    pub fn write(&self, fd: Fd, data: &[u8]) -> OsResult<usize> {
        self.kernel.syscall_on(self.tid, "write", |st| {
            let sec = st.task_sec(self.tid)?;
            let pid = st.task(self.tid)?.process;
            let file = st.proc(pid)?.fds.get(fd).cloned().ok_or(OsError::BadFd)?;
            if !file.mode.writable() {
                return Err(OsError::BadFd);
            }
            let labels = st.inode_labels(file.inode)?;
            st.count_hook();
            match file.pipe_end {
                Some(PipeEnd::Write) => {
                    match self.kernel.module.pipe_write(&sec, &labels) {
                        DeliveryVerdict::Deliver => {
                            if let InodeKind::Pipe { buffer } =
                                &mut st.inode_mut(file.inode)?.kind
                            {
                                if !buffer.push_bytes(data) {
                                    // Full ⇒ silent drop (audited kernel-side).
                                    obs_drop(laminar_obs::DropChannel::Pipe);
                                }
                            }
                        }
                        DeliveryVerdict::SilentDrop => {
                            obs_drop(laminar_obs::DropChannel::Pipe);
                        }
                    }
                    Ok(data.len())
                }
                Some(PipeEnd::Read) => Err(OsError::BadFd),
                None if file.socket_end.is_some() => {
                    // Socket write: deliver or silently drop (pipe semantics).
                    match self.kernel.module.pipe_write(&sec, &labels) {
                        DeliveryVerdict::Deliver => {
                            if let (InodeKind::Socket { ab, ba }, Some(end)) =
                                (&mut st.inode_mut(file.inode)?.kind, file.socket_end)
                            {
                                let queued = match end {
                                    SocketEnd::A => ab.push_bytes(data),
                                    SocketEnd::B => ba.push_bytes(data),
                                };
                                if !queued {
                                    obs_drop(laminar_obs::DropChannel::Socket);
                                }
                            }
                        }
                        DeliveryVerdict::SilentDrop => {
                            obs_drop(laminar_obs::DropChannel::Socket);
                        }
                    }
                    Ok(data.len())
                }
                None => {
                    self.kernel.module.file_permission(&sec, &labels, Access::Write)?;
                    // Checked narrowing: on 32-bit hosts a u64 offset
                    // past usize::MAX must fail closed (as the size
                    // quota), not truncate into a small in-bounds write.
                    let offset = usize::try_from(file.offset).map_err(|_| {
                        laminar_obs::emit(laminar_obs::Event::QuotaExceeded {
                            resource: "file size",
                        });
                        OsError::QuotaExceeded("file size")
                    })?;
                    match st.inode_opt(file.inode)?.map(|i| &i.kind) {
                        Some(InodeKind::File { .. }) => {
                            st.write_file_data(file.inode, offset, data)?;
                        }
                        Some(InodeKind::NullDevice) => {}
                        Some(InodeKind::Dir { .. }) => return Err(OsError::IsADirectory),
                        Some(InodeKind::Symlink { .. }) => {
                            return Err(OsError::Unsupported("write on a symlink fd"))
                        }
                        Some(InodeKind::Pipe { .. }) | Some(InodeKind::Socket { .. }) => {
                            return Err(OsError::Internal)
                        }
                        None => return Err(OsError::BadFd),
                    }
                    st.fd_set_offset(pid, fd, file.offset + data.len() as u64)?;
                    Ok(data.len())
                }
            }
        })
    }

    /// Reads a whole file by path in one syscall: resolve, check, copy
    /// from offset zero, up to `max` bytes. One transaction, one commit
    /// ticket — the unit the SMP throughput bench and the concurrent
    /// conformance regime drive, because the single commit point makes
    /// the outcome attributable to one position in the commit order.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; [`OsError::IsADirectory`]; flow vetoes.
    pub fn read_file_at(&self, path: &str, max: usize) -> OsResult<Vec<u8>> {
        self.kernel.syscall_on(self.tid, "read_file_at", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            let inode = st.inode_opt(ino)?.ok_or(OsError::Internal)?;
            match &inode.kind {
                InodeKind::File { data } => {
                    let end = max.min(data.len());
                    Ok(data[..end].to_vec())
                }
                InodeKind::NullDevice => Ok(Vec::new()),
                InodeKind::Dir { .. } => Err(OsError::IsADirectory),
                _ => Err(OsError::Unsupported("read_file_at on a special inode")),
            }
        })
    }

    /// Writes a whole file by path in one syscall: resolve, check,
    /// overwrite from offset zero. Counterpart of [`Self::read_file_at`].
    ///
    /// # Errors
    /// [`OsError::NotFound`]; [`OsError::IsADirectory`]; flow vetoes.
    pub fn write_file_at(&self, path: &str, data: &[u8]) -> OsResult<usize> {
        self.kernel.syscall_on(self.tid, "write_file_at", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Write)?;
            match st.inode_opt(ino)?.map(|i| &i.kind) {
                Some(InodeKind::File { .. }) => {
                    st.write_file_data(ino, 0, data)?;
                    Ok(data.len())
                }
                Some(InodeKind::NullDevice) => Ok(data.len()),
                Some(InodeKind::Dir { .. }) => Err(OsError::IsADirectory),
                Some(_) => Err(OsError::Unsupported("write_file_at on a special inode")),
                None => Err(OsError::Internal),
            }
        })
    }

    /// Like [`Self::write_file_at`], but writing at `offset` instead of
    /// zero — the one-shot (single-transaction, single-commit-ticket)
    /// form of `open`/`seek`/`write`/`close`, for the concurrent
    /// conformance regime where an op must be attributable to one
    /// position in the commit order. Subject to the same file-size quota
    /// and checked offset arithmetic as `write`.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; [`OsError::QuotaExceeded`] past the
    /// file-size quota; hook vetoes.
    pub fn write_file_at_off(
        &self,
        path: &str,
        offset: u64,
        data: &[u8],
    ) -> OsResult<usize> {
        self.kernel.syscall_on(self.tid, "write_file_at_off", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Write)?;
            let offset = usize::try_from(offset).map_err(|_| {
                laminar_obs::emit(laminar_obs::Event::QuotaExceeded {
                    resource: "file size",
                });
                OsError::QuotaExceeded("file size")
            })?;
            match st.inode_opt(ino)?.map(|i| &i.kind) {
                Some(InodeKind::File { .. }) => {
                    st.write_file_data(ino, offset, data)?;
                    Ok(data.len())
                }
                Some(InodeKind::NullDevice) => Ok(data.len()),
                Some(InodeKind::Dir { .. }) => Err(OsError::IsADirectory),
                Some(_) => Err(OsError::Unsupported("write_file_at on a special inode")),
                None => Err(OsError::Internal),
            }
        })
    }

    /// `stat`: metadata of the inode at `path`. Requires read permission
    /// on the inode (its size and link count are protected by its own
    /// label); the name and labels were already mediated by the
    /// traversal of the parent.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; hook vetoes.
    pub fn stat(&self, path: &str) -> OsResult<Metadata> {
        self.kernel.syscall_on(self.tid, "stat", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            let inode = st.inode_opt(ino)?.ok_or(OsError::Internal)?;
            Ok(Metadata {
                inode: ino,
                is_dir: inode.kind.is_dir(),
                size: match &inode.kind {
                    InodeKind::File { data } => data.len() as u64,
                    _ => 0,
                },
                labels: inode.labels().clone(),
                nlink: inode.nlink,
            })
        })
    }

    /// Like `stat`, but does not follow a final-component symlink (the
    /// returned metadata describes the link inode itself).
    ///
    /// # Errors
    /// [`OsError::NotFound`]; hook vetoes.
    pub fn lstat(&self, path: &str) -> OsResult<Metadata> {
        self.kernel.syscall_on(self.tid, "lstat", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve_nofollow(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            let inode = st.inode_opt(ino)?.ok_or(OsError::Internal)?;
            Ok(Metadata {
                inode: ino,
                is_dir: inode.kind.is_dir(),
                size: match &inode.kind {
                    InodeKind::File { data } => data.len() as u64,
                    InodeKind::Symlink { target } => target.len() as u64,
                    _ => 0,
                },
                labels: inode.labels().clone(),
                nlink: inode.nlink,
            })
        })
    }

    /// Returns only the labels of the inode at `path`. The labels are
    /// protected by the *parent directory's* label (§5.2), so this needs
    /// only the traversal checks — letting an unlabeled thread discover
    /// which labels it must acquire before opening a secret file.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; traversal vetoes.
    pub fn get_labels(&self, path: &str) -> OsResult<SecPair> {
        self.kernel.syscall_on(self.tid, "get_labels", |st| {
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            st.inode_labels(ino)
        })
    }

    /// Removes the name at `path` (file or empty directory). The name is
    /// protected by the parent directory's label, so this is a write to
    /// the parent.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; [`OsError::NotEmpty`]; hook vetoes.
    pub fn unlink(&self, path: &str) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "unlink", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            let parent =
                r.parent.ok_or(OsError::InvalidArgument("cannot unlink a root"))?;
            if let Some(InodeKind::Dir { entries }) = st.inode_opt(ino)?.map(|i| &i.kind)
            {
                if !entries.is_empty() {
                    return Err(OsError::NotEmpty);
                }
            }
            let parent_labels = st.inode_labels(parent)?;
            let victim_labels = st.inode_labels(ino)?;
            st.count_hook();
            self.kernel.module.inode_unlink(&sec, &parent_labels, &victim_labels)?;
            if let InodeKind::Dir { entries } = &mut st.inode_mut(parent)?.kind {
                entries.remove(&r.name);
            }
            st.remove_inode(ino)?;
            Ok(())
        })
    }

    /// Lists the names in a directory (a read of the directory).
    ///
    /// # Errors
    /// [`OsError::NotADirectory`]; hook vetoes.
    pub fn readdir(&self, path: &str) -> OsResult<Vec<String>> {
        self.kernel.syscall_on(self.tid, "readdir", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            match st.inode_opt(ino)?.map(|i| &i.kind) {
                Some(InodeKind::Dir { entries }) => Ok(entries.keys().cloned().collect()),
                Some(_) => Err(OsError::NotADirectory),
                None => Err(OsError::Internal),
            }
        })
    }

    /// Changes the calling process's working directory.
    ///
    /// # Errors
    /// [`OsError::NotADirectory`]; traversal vetoes.
    pub fn chdir(&self, path: &str) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "chdir", |st| {
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            if !st.inode_opt(ino)?.map(|i| i.kind.is_dir()).unwrap_or(false) {
                return Err(OsError::NotADirectory);
            }
            let pid = st.task(self.tid)?.process;
            st.proc_mut(pid)?.cwd = ino;
            Ok(())
        })
    }

    // ----- pipes ----------------------------------------------------------

    /// Creates a pipe labeled with the calling thread's current labels.
    /// Returns `(read_end, write_end)`.
    ///
    /// # Errors
    /// Fails if the task has exited; [`OsError::QuotaExceeded`] on
    /// inode/fd exhaustion (the whole call rolls back — no half-made
    /// pipe is left behind).
    pub fn pipe(&self) -> OsResult<(Fd, Fd)> {
        self.kernel.syscall_on(self.tid, "pipe", |st| {
            let sec = st.task_sec(self.tid)?;
            let capacity = self.kernel.quotas.pipe_capacity;
            let ino = st.alloc_inode(
                InodeKind::Pipe { buffer: PipeBuffer::new(capacity) },
                sec.labels.clone(),
            )?;
            let pid = st.task(self.tid)?.process;
            let r = st.fd_insert(
                pid,
                OpenFile {
                    inode: ino,
                    mode: OpenMode::Read,
                    offset: 0,
                    pipe_end: Some(PipeEnd::Read),
                    socket_end: None,
                },
            )?;
            let w = st.fd_insert(
                pid,
                OpenFile {
                    inode: ino,
                    mode: OpenMode::Write,
                    offset: 0,
                    pipe_end: Some(PipeEnd::Write),
                    socket_end: None,
                },
            )?;
            Ok((r, w))
        })
    }

    /// Creates a connected socket pair labeled with the calling thread's
    /// current labels. Both ends are read-write; traffic is mediated like
    /// pipe traffic (silent drops on illegal flows). Returns `(a, b)`.
    ///
    /// # Errors
    /// Fails if the task has exited; [`OsError::QuotaExceeded`] on
    /// inode/fd exhaustion (atomic, like [`Self::pipe`]).
    pub fn socketpair(&self) -> OsResult<(Fd, Fd)> {
        self.kernel.syscall_on(self.tid, "socketpair", |st| {
            let sec = st.task_sec(self.tid)?;
            let capacity = self.kernel.quotas.pipe_capacity;
            let ino = st.alloc_inode(
                InodeKind::Socket {
                    ab: PipeBuffer::new(capacity),
                    ba: PipeBuffer::new(capacity),
                },
                sec.labels.clone(),
            )?;
            let pid = st.task(self.tid)?.process;
            let a = st.fd_insert(
                pid,
                OpenFile {
                    inode: ino,
                    mode: OpenMode::ReadWrite,
                    offset: 0,
                    pipe_end: None,
                    socket_end: Some(SocketEnd::A),
                },
            )?;
            let b = st.fd_insert(
                pid,
                OpenFile {
                    inode: ino,
                    mode: OpenMode::ReadWrite,
                    offset: 0,
                    pipe_end: None,
                    socket_end: Some(SocketEnd::B),
                },
            )?;
            Ok((a, b))
        })
    }

    /// Creates a symbolic link at `linkpath` pointing to `target`. The
    /// link inode carries the calling thread's labels (subject to the
    /// §5.2 creation rules), so a later traversal *reads* the link — a
    /// task that does not accept the link's integrity cannot be tricked
    /// through it (the symlink attack the paper's directory-integrity
    /// discussion targets).
    ///
    /// # Errors
    /// [`OsError::Exists`]; creation-rule vetoes.
    pub fn symlink(&self, target: &str, linkpath: &str) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "symlink", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, linkpath)?;
            if r.inode.is_some() {
                return Err(OsError::Exists);
            }
            let parent = r
                .parent
                .ok_or(OsError::InvalidArgument("link path names a directory"))?;
            let parent_labels = st.inode_labels(parent)?;
            st.count_hook();
            self.kernel.module.inode_create(&sec, &parent_labels, &sec.labels)?;
            let id = st.alloc_inode(
                InodeKind::Symlink { target: target.to_string() },
                sec.labels.clone(),
            )?;
            if let InodeKind::Dir { entries } = &mut st.inode_mut(parent)?.kind {
                entries.insert(r.name, id);
            }
            Ok(())
        })
    }

    /// Reads the target of a symbolic link (a read of the link inode).
    ///
    /// # Errors
    /// [`OsError::InvalidArgument`] if the path is not a symlink.
    pub fn readlink(&self, path: &str) -> OsResult<String> {
        self.kernel.syscall_on(self.tid, "readlink", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve_nofollow(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            match st.inode_opt(ino)?.map(|i| &i.kind) {
                Some(InodeKind::Symlink { target }) => Ok(target.clone()),
                Some(_) => Err(OsError::InvalidArgument("not a symlink")),
                None => Err(OsError::Internal),
            }
        })
    }

    /// Repositions an open regular file's offset.
    ///
    /// # Errors
    /// [`OsError::BadFd`] for pipes/sockets/devices.
    pub fn seek(&self, fd: Fd, offset: u64) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "seek", |st| {
            let pid = st.task_alive(self.tid)?.process;
            let (pipe_end, socket_end) = {
                let file = st.proc(pid)?.fds.get(fd).ok_or(OsError::BadFd)?;
                (file.pipe_end, file.socket_end)
            };
            if pipe_end.is_some() || socket_end.is_some() {
                return Err(OsError::BadFd);
            }
            st.fd_set_offset(pid, fd, offset)
        })
    }

    /// Bytes currently queued in a pipe — a *debugging/test* affordance
    /// (not part of the paper's API; exposing it to untrusted code would
    /// be a channel). Read-only: bypasses the transaction machinery.
    ///
    /// # Errors
    /// [`OsError::BadFd`] if `fd` is not a pipe.
    pub fn pipe_queued_for_test(&self, fd: Fd) -> OsResult<usize> {
        let (pid, ino) = self.fd_inode_readonly(fd)?;
        let _ = pid;
        let shard = self.kernel.tables.inodes_for(ino);
        match &shard.get(&ino).ok_or(OsError::BadFd)?.kind {
            InodeKind::Pipe { buffer } => Ok(buffer.queued()),
            _ => Err(OsError::BadFd),
        }
    }

    /// Messages (byte chunks plus capabilities) currently queued in a
    /// pipe — a test affordance like [`Self::pipe_queued_for_test`],
    /// used by the conformance testkit to diff buffer structure (a cap
    /// at the head blocks byte reads, so the count matters) against the
    /// reference oracle.
    ///
    /// # Errors
    /// [`OsError::BadFd`] if `fd` is not a pipe.
    pub fn pipe_msgs_for_test(&self, fd: Fd) -> OsResult<usize> {
        let (pid, ino) = self.fd_inode_readonly(fd)?;
        let _ = pid;
        let shard = self.kernel.tables.inodes_for(ino);
        match &shard.get(&ino).ok_or(OsError::BadFd)?.kind {
            InodeKind::Pipe { buffer } => Ok(buffer.msg_count()),
            _ => Err(OsError::BadFd),
        }
    }

    /// Sequential single-shard lookup of the inode behind one of the
    /// caller's fds (read-only paths; locks one shard at a time).
    fn fd_inode_readonly(&self, fd: Fd) -> OsResult<(ProcessId, InodeId)> {
        let pid = {
            let shard = self.kernel.tables.tasks_for(self.tid);
            shard.get(&self.tid).ok_or(OsError::NoSuchTask)?.process
        };
        let ino = {
            let shard = self.kernel.tables.procs_for(pid);
            shard
                .get(&pid)
                .ok_or(OsError::Internal)?
                .fds
                .get(fd)
                .ok_or(OsError::BadFd)?
                .inode
        };
        Ok((pid, ino))
    }

    // ----- processes, threads, signals -------------------------------------

    /// `fork`: creates a new single-threaded process that copies the
    /// caller's fd table, cwd, labels — and a *subset* of its
    /// capabilities (pass `None` to inherit all, §4.4: "when a kernel
    /// thread forks off a new thread, it can initialize the new thread
    /// with a subset of its capabilities").
    ///
    /// # Errors
    /// [`OsError::PermissionDenied`] if `caps` is not a subset of the
    /// caller's capabilities.
    pub fn fork(&self, caps: Option<CapSet>) -> OsResult<TaskHandle> {
        let tid = self.kernel.syscall_on(self.tid, "fork", |st| {
            let sec = st.task_sec(self.tid)?;
            let child_caps = match &caps {
                Some(c) => {
                    if !c.is_subset_of(&sec.caps) {
                        return Err(OsError::PermissionDenied(
                            "child capabilities must be a subset of the parent's",
                        ));
                    }
                    c.clone()
                }
                None => (*sec.caps).clone(),
            };
            let me = st.task(self.tid)?;
            let (user, my_pid) = (me.user, me.process);
            let parent = st.proc(my_pid)?;
            let (cwd, fds, binary) =
                (parent.cwd, parent.fds.clone_for_fork(), parent.binary.clone());
            // Duplicated pipe ends gain reader/writer references.
            let pipe_refs: Vec<(InodeId, PipeEnd)> = fds
                .iter()
                .filter_map(|(_, f)| f.pipe_end.map(|e| (f.inode, e)))
                .collect();
            for (ino, end) in pipe_refs {
                if let Some(inode) = st.inode_mut_opt(ino)? {
                    if let InodeKind::Pipe { buffer } = &mut inode.kind {
                        match end {
                            PipeEnd::Read => buffer.add_reader(),
                            PipeEnd::Write => buffer.add_writer(),
                        }
                    }
                }
            }
            let (tid, new_pid) = st.spawn_process(user, cwd, child_caps)?;
            {
                let p = st.proc_mut(new_pid)?;
                p.fds = fds;
                p.binary = binary;
            }
            st.task_mut(tid)?.security.labels = sec.labels.clone();
            Ok(tid)
        })?;
        Ok(TaskHandle { kernel: Arc::clone(&self.kernel), tid })
    }

    /// Creates a new *thread* in the caller's process with a subset of
    /// its capabilities. In an untrusted process the new thread shares
    /// the caller's labels (and must keep them); in a trusted-VM process
    /// it may later diverge (§4.1).
    ///
    /// # Errors
    /// [`OsError::PermissionDenied`] on a capability superset.
    pub fn spawn_thread(&self, caps: Option<CapSet>) -> OsResult<TaskHandle> {
        let tid = self.kernel.syscall_on(self.tid, "spawn_thread", |st| {
            let sec = st.task_sec(self.tid)?;
            let thread_caps = match &caps {
                Some(c) => {
                    if !c.is_subset_of(&sec.caps) {
                        return Err(OsError::PermissionDenied(
                            "thread capabilities must be a subset of the spawner's",
                        ));
                    }
                    c.clone()
                }
                None => (*sec.caps).clone(),
            };
            let me = st.task(self.tid)?;
            let (user, pid) = (me.user, me.process);
            let tid = st.fresh_task_id();
            st.insert_task(TaskStruct::fresh(
                tid,
                pid,
                user,
                TaskSec::new(sec.labels.clone(), thread_caps),
            ))?;
            st.proc_mut(pid)?.tasks.push(tid);
            Ok(tid)
        })?;
        Ok(TaskHandle { kernel: Arc::clone(&self.kernel), tid })
    }

    /// `exec`: replaces the process image with the named binary file.
    /// Reading the binary is an information flow file → task, so a task
    /// cannot exec a binary whose integrity it does not accept — this is
    /// the plugin-vouching pattern of §3.3.
    ///
    /// # Errors
    /// [`OsError::NotFound`]; flow vetoes.
    pub fn exec(&self, path: &str) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "exec", |st| {
            let sec = st.task_sec(self.tid)?;
            let r = self.kernel.resolve(st, self.tid, path)?;
            let ino = r.inode.ok_or(OsError::NotFound)?;
            self.kernel.hook_inode_permission(st, &sec, ino, Access::Read)?;
            let pid = st.task(self.tid)?.process;
            let p = st.proc_mut(pid)?;
            p.vm_areas.clear();
            p.next_mmap_page = 0x1000;
            p.binary = r.name;
            Ok(())
        })
    }

    /// Marks the task dead and releases its fds if it was the last task
    /// of its process.
    ///
    /// # Errors
    /// Fails if already exited.
    pub fn exit(&self) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "exit", |st| {
            let pid = st.task_alive(self.tid)?.process;
            // Reap: drop the task entry, and the whole process (with its fd
            // table) once its last task exits, so fork-heavy workloads do
            // not grow the kernel tables without bound.
            st.remove_task(self.tid)?;
            let last_task_fds = {
                let p = st.proc_mut(pid)?;
                p.tasks.retain(|&x| x != self.tid);
                if p.tasks.is_empty() {
                    Some(
                        p.fds
                            .iter()
                            .filter_map(|(_, f)| f.pipe_end.map(|e| (f.inode, e)))
                            .collect::<Vec<(InodeId, PipeEnd)>>(),
                    )
                } else {
                    None
                }
            };
            if let Some(fds) = last_task_fds {
                st.remove_process(pid)?;
                for (ino, end) in fds {
                    if let Some(inode) = st.inode_mut_opt(ino)? {
                        if let InodeKind::Pipe { buffer } = &mut inode.kind {
                            match end {
                                PipeEnd::Read => buffer.drop_reader(),
                                PipeEnd::Write => buffer.drop_writer(),
                            }
                        }
                    }
                }
            }
            Ok(())
        })
    }

    /// Sends a signal. Delivery is mediated by the LSM: an illegal flow
    /// sender → target is **silently dropped** (the sender cannot tell).
    ///
    /// # Errors
    /// [`OsError::NoSuchTask`] only when the target id was never valid.
    pub fn kill(&self, target: TaskId, sig: Signal) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "kill", |st| {
            let sender = st.task_sec(self.tid)?;
            let target_sec = st.task_sec(target).map_err(|e| match e {
                OsError::Retry(k) => OsError::Retry(k),
                _ => OsError::NoSuchTask,
            })?;
            st.count_hook();
            if self.kernel.module.task_kill(&sender, &target_sec)
                == DeliveryVerdict::Deliver
            {
                st.task_mut(target)?.pending_signals.push_back(sig);
            } else {
                obs_drop(laminar_obs::DropChannel::Signal);
            }
            Ok(())
        })
    }

    /// Dequeues the next pending signal for this task, if any.
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn next_signal(&self) -> OsResult<Option<Signal>> {
        self.kernel.syscall_on(self.tid, "next_signal", |st| {
            st.task_alive(self.tid)?;
            Ok(st.task_mut(self.tid)?.pending_signals.pop_front())
        })
    }

    /// The user this task runs as. (Read-only: bypasses the transaction
    /// machinery, never fires failpoints.)
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn user(&self) -> OsResult<UserId> {
        let shard = self.kernel.tables.tasks_for(self.tid);
        shard
            .get(&self.tid)
            .filter(|t| t.alive)
            .map(|t| t.user)
            .ok_or(OsError::NoSuchTask)
    }

    /// The process this task belongs to. (Read-only: bypasses the
    /// transaction machinery, never fires failpoints.)
    ///
    /// # Errors
    /// Fails if the task has exited.
    pub fn process(&self) -> OsResult<ProcessId> {
        let shard = self.kernel.tables.tasks_for(self.tid);
        shard
            .get(&self.tid)
            .filter(|t| t.alive)
            .map(|t| t.process)
            .ok_or(OsError::NoSuchTask)
    }

    // ----- memory (for the Table 2 microbenchmarks) -------------------------

    /// `mmap`: maps `pages` pages, optionally backed by an open file
    /// (whose labels the mapping inherits via the `file_mmap` hook).
    /// Returns the start page number.
    ///
    /// # Errors
    /// [`OsError::BadFd`] for a bad backing fd; hook vetoes.
    pub fn mmap(&self, pages: u64, backing: Option<Fd>) -> OsResult<u64> {
        self.kernel.syscall_on(self.tid, "mmap", |st| {
            let sec = st.task_sec(self.tid)?;
            let pid = st.task(self.tid)?.process;
            let backing_labels = match backing {
                Some(fd) => {
                    let file =
                        st.proc(pid)?.fds.get(fd).cloned().ok_or(OsError::BadFd)?;
                    Some(st.inode_labels(file.inode)?)
                }
                None => None,
            };
            st.count_hook();
            self.kernel.module.file_mmap(&sec, backing_labels.as_ref())?;
            let p = st.proc_mut(pid)?;
            let start = p.next_mmap_page;
            p.next_mmap_page += pages;
            p.vm_areas.push(VmArea { start, pages, read: true, write: true });
            Ok(start)
        })
    }

    /// Unmaps the area starting at `start`.
    ///
    /// # Errors
    /// [`OsError::Fault`] if no such mapping exists.
    pub fn munmap(&self, start: u64) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "munmap", |st| {
            let pid = st.task_alive(self.tid)?.process;
            let p = st.proc_mut(pid)?;
            let before = p.vm_areas.len();
            p.vm_areas.retain(|a| a.start != start);
            if p.vm_areas.len() == before {
                return Err(OsError::Fault);
            }
            Ok(())
        })
    }

    /// `mprotect`: changes the protection bits of the mapping at `start`.
    ///
    /// # Errors
    /// [`OsError::Fault`] if no such mapping exists.
    pub fn mprotect(&self, start: u64, read: bool, write: bool) -> OsResult<()> {
        self.kernel.syscall_on(self.tid, "mprotect", |st| {
            let pid = st.task_alive(self.tid)?.process;
            let p = st.proc_mut(pid)?;
            let area =
                p.vm_areas.iter_mut().find(|a| a.start == start).ok_or(OsError::Fault)?;
            area.read = read;
            area.write = write;
            Ok(())
        })
    }

    /// Simulates a memory access, running the kernel's fault path when
    /// the page is unmapped or protection-violating (the "prot fault"
    /// microbenchmark of Table 2 measures exactly this path). Read-only:
    /// bypasses the transaction machinery.
    ///
    /// # Errors
    /// [`OsError::Fault`] on an illegal access.
    pub fn page_access(&self, page: u64, is_write: bool) -> OsResult<()> {
        let pid = {
            let shard = self.kernel.tables.tasks_for(self.tid);
            shard
                .get(&self.tid)
                .filter(|t| t.alive)
                .map(|t| t.process)
                .ok_or(OsError::NoSuchTask)?
        };
        let shard = self.kernel.tables.procs_for(pid);
        let p = shard.get(&pid).ok_or(OsError::Internal)?;
        for a in &p.vm_areas {
            if page >= a.start && page < a.start + a.pages {
                let ok = if is_write { a.write } else { a.read };
                return if ok { Ok(()) } else { Err(OsError::Fault) };
            }
        }
        Err(OsError::Fault)
    }
}
