//! Fail-closed fault counters for the kernel.
//!
//! [`syscalls_rolled_back`] counts syscalls whose body faulted (panicked)
//! and were undone at the dispatch boundary — each one returned
//! [`crate::OsError::Internal`] after the transaction journal restored
//! every mutated entry. The counter is process-global (the kernel is a
//! library, not a process) and resettable, mirroring the flow-cache
//! counters in `laminar_difc`.

use std::sync::atomic::{AtomicU64, Ordering};

static SYSCALLS_ROLLED_BACK: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_syscall_rolled_back() {
    SYSCALLS_ROLLED_BACK.fetch_add(1, Ordering::Relaxed);
}

/// Number of syscalls rolled back after a caught internal fault since
/// process start (or the last [`reset_syscalls_rolled_back`]).
#[must_use]
pub fn syscalls_rolled_back() -> u64 {
    SYSCALLS_ROLLED_BACK.load(Ordering::Relaxed)
}

/// Resets the rollback counter to zero.
pub fn reset_syscalls_rolled_back() {
    SYSCALLS_ROLLED_BACK.store(0, Ordering::Relaxed);
}
