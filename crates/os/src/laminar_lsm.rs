//! The Laminar security module: DIFC enforcement at every LSM hook.
//!
//! This is the ~1,000-line kernel module of §5.2, expressed against the
//! hook trait of [`crate::lsm`]. Each hook is "a straightforward check of
//! the rules listed in Section 3.2":
//!
//! * reading an object is a flow object → task, so it requires
//!   `S_obj ⊆ S_task` and `I_task ⊆ I_obj`;
//! * writing an object is a flow task → object, with the symmetric check;
//! * labeled creation follows the three conditions of §5.2;
//! * pipe writes and signals that fail the check are **silently
//!   dropped** rather than rejected, because the error code would itself
//!   be a channel.
//!
//! Every hook routes its subset/flow queries through the global
//! flow-check cache (`laminar_difc::cache`, the §5 label-comparison
//! memoization): hooks fire on every file access and signal, but real
//! workloads repeat the same `(task label, object label)` pairs, so the
//! verdict is a cache hit after first contact.

use crate::error::{OsError, OsResult};
use crate::lsm::{Access, DeliveryVerdict, SecurityModule};
use crate::task::TaskSec;
use laminar_difc::SecPair;

/// The Laminar DIFC security module.
#[derive(Debug, Default, Clone, Copy)]
pub struct LaminarModule;

/// Stages an OS-layer `FlowCheck` audit event for a **denied** hook
/// check (no-op while tracing is disabled). Allowed flows are not logged
/// here: the difc layer records each verdict when it is first computed,
/// and a dispatch that allows everything it checks is decision-free (it
/// leaves no records at all) — re-logging every per-hook allow would put
/// an emit on each path component of every traversal. Denials are the
/// slow path and carry the subject/object detail the typed error cannot.
fn trace_check(op: &'static str, subject: &SecPair, object: &SecPair, allowed: bool) {
    if allowed || !laminar_obs::enabled() {
        return;
    }
    laminar_obs::emit(laminar_obs::Event::FlowCheck {
        layer: laminar_obs::Layer::Os,
        op,
        subject: subject.id().as_u32(),
        object: object.id().as_u32(),
        verdict: if allowed {
            laminar_obs::Verdict::Allow
        } else {
            laminar_obs::Verdict::Deny
        },
        cache_hit: false,
    });
}

impl LaminarModule {
    fn check_read(task: &TaskSec, obj: &SecPair) -> OsResult<()> {
        let r = obj.can_flow_to_cached(&task.labels).map_err(OsError::from);
        trace_check("read", &task.labels, obj, r.is_ok());
        r
    }

    fn check_write(task: &TaskSec, obj: &SecPair) -> OsResult<()> {
        let r = task.labels.can_flow_to_cached(obj).map_err(OsError::from);
        trace_check("write", &task.labels, obj, r.is_ok());
        r
    }

    fn check_mask(task: &TaskSec, obj: &SecPair, mask: Access) -> OsResult<()> {
        match mask {
            Access::Read => Self::check_read(task, obj),
            Access::Write => Self::check_write(task, obj),
            Access::ReadWrite => {
                Self::check_read(task, obj)?;
                Self::check_write(task, obj)
            }
        }
    }
}

impl SecurityModule for LaminarModule {
    fn name(&self) -> &'static str {
        "laminar"
    }

    fn inode_permission(
        &self,
        task: &TaskSec,
        inode: &SecPair,
        mask: Access,
    ) -> OsResult<()> {
        Self::check_mask(task, inode, mask)
    }

    /// The labeled-create rules of §5.2. A principal with labels
    /// `{Sp, Ip}` may create an inode with labels `{Sf, If}` iff:
    ///
    /// 1. `Sp ⊆ Sf` and `If ⊆ Ip` — the new name/label reveals nothing
    ///    beyond the principal's own taint, and the file cannot claim
    ///    integrity the principal does not carry;
    /// 2. the principal holds capabilities to *acquire* its current
    ///    labels (its taint is voluntary), unless it is unlabeled;
    /// 3. the principal can write the parent directory with its current
    ///    label (checked via the write rule; a tainted principal thus
    ///    cannot create even same-labeled files in an unlabeled
    ///    directory — it must pre-create before tainting itself).
    fn inode_create(
        &self,
        task: &TaskSec,
        parent: &SecPair,
        new: &SecPair,
    ) -> OsResult<()> {
        // Condition 1.
        if !task.labels.secrecy().is_subset_of_cached(new.secrecy()) {
            return Err(OsError::PermissionDenied(
                "new file's secrecy label must include the creator's taint",
            ));
        }
        if !new.integrity().is_subset_of_cached(task.labels.integrity()) {
            return Err(OsError::PermissionDenied(
                "new file's integrity label exceeds the creator's endorsements",
            ));
        }
        // Condition 2 (only bites for labeled principals).
        if !task.labels.is_unlabeled() {
            let s_ok = task.caps.can_add_all(task.labels.secrecy());
            let i_ok = task.caps.can_add_all(task.labels.integrity());
            if !s_ok || !i_ok {
                return Err(OsError::PermissionDenied(
                    "creator lacks capabilities to acquire its current labels",
                ));
            }
        }
        // Condition 3.
        Self::check_write(task, parent)
    }

    /// Unlinking removes a name from the parent directory, which is a
    /// write to the parent; the victim's contents are untouched, so only
    /// the parent's label governs (names are parent-protected).
    fn inode_unlink(
        &self,
        task: &TaskSec,
        parent: &SecPair,
        _victim: &SecPair,
    ) -> OsResult<()> {
        Self::check_write(task, parent)
    }

    fn file_permission(
        &self,
        task: &TaskSec,
        inode: &SecPair,
        mask: Access,
    ) -> OsResult<()> {
        Self::check_mask(task, inode, mask)
    }

    /// Mapping memory is readable (and possibly writable) access to the
    /// backing object; anonymous maps are unlabeled and always allowed.
    fn file_mmap(&self, task: &TaskSec, backing: Option<&SecPair>) -> OsResult<()> {
        match backing {
            Some(labels) => Self::check_read(task, labels),
            None => Ok(()),
        }
    }

    /// Signals flow information sender → target; an illegal one is
    /// silently dropped (a visible error would notify the sender of the
    /// target's labels — a channel).
    fn task_kill(&self, sender: &TaskSec, target: &TaskSec) -> DeliveryVerdict {
        let ok = sender.labels.flows_to_cached(&target.labels);
        trace_check("kill", &sender.labels, &target.labels, ok);
        if ok {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::SilentDrop
        }
    }

    /// The capability checks for label changes are performed by the
    /// syscall layer (they need the old label and the capability set);
    /// the module hook is a second veto point and sanity check.
    fn task_set_label(&self, task: &TaskSec, new: &SecPair) -> OsResult<()> {
        laminar_difc::check_pair_change(&task.labels, new, &task.caps)
            .map_err(OsError::from)
    }

    fn pipe_write(&self, task: &TaskSec, pipe: &SecPair) -> DeliveryVerdict {
        let ok = task.labels.flows_to_cached(pipe);
        trace_check("pipe_write", &task.labels, pipe, ok);
        if ok {
            DeliveryVerdict::Deliver
        } else {
            DeliveryVerdict::SilentDrop
        }
    }

    fn pipe_read(&self, task: &TaskSec, pipe: &SecPair) -> OsResult<()> {
        Self::check_read(task, pipe)
    }

    fn cap_transfer(&self, sender: &TaskSec, pipe: &SecPair) -> DeliveryVerdict {
        self.pipe_write(sender, pipe)
    }

    fn cap_receive(&self, receiver: &TaskSec, pipe: &SecPair) -> OsResult<()> {
        Self::check_read(receiver, pipe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::{CapSet, Capability, Label, Tag};

    fn t(n: u64) -> Tag {
        Tag::from_raw(n)
    }
    fn task(s: &[u64], i: &[u64], caps: CapSet) -> TaskSec {
        TaskSec {
            labels: SecPair::new(
                Label::from_tags(s.iter().map(|&n| t(n))),
                Label::from_tags(i.iter().map(|&n| t(n))),
            ),
            caps: std::sync::Arc::new(caps),
        }
    }
    fn obj(s: &[u64], i: &[u64]) -> SecPair {
        SecPair::new(
            Label::from_tags(s.iter().map(|&n| t(n))),
            Label::from_tags(i.iter().map(|&n| t(n))),
        )
    }

    #[test]
    fn read_requires_no_read_up() {
        let m = LaminarModule;
        let unlabeled = task(&[], &[], CapSet::new());
        let secret = obj(&[1], &[]);
        assert!(m.inode_permission(&unlabeled, &secret, Access::Read).is_err());
        let tainted = task(&[1], &[], CapSet::new());
        assert!(m.inode_permission(&tainted, &secret, Access::Read).is_ok());
    }

    #[test]
    fn write_requires_no_write_down() {
        let m = LaminarModule;
        let tainted = task(&[1], &[], CapSet::new());
        assert!(m.file_permission(&tainted, &obj(&[], &[]), Access::Write).is_err());
        assert!(m.file_permission(&tainted, &obj(&[1], &[]), Access::Write).is_ok());
        assert!(m.file_permission(&tainted, &obj(&[1, 2], &[]), Access::Write).is_ok());
    }

    #[test]
    fn integrity_read_down_denied() {
        let m = LaminarModule;
        let high = task(&[], &[9], CapSet::new());
        // Reading an unendorsed file would corrupt the high-integrity task.
        assert!(m.file_permission(&high, &obj(&[], &[]), Access::Read).is_err());
        assert!(m.file_permission(&high, &obj(&[], &[9]), Access::Read).is_ok());
    }

    #[test]
    fn create_rules_of_section_5_2() {
        let m = LaminarModule;
        // Unlabeled principal pre-creates a secret file in an unlabeled dir.
        let p = task(&[], &[], CapSet::new());
        assert!(m.inode_create(&p, &obj(&[], &[]), &obj(&[1], &[])).is_ok());

        // Tainted principal cannot create in an unlabeled dir (cond 3):
        // the file *name* would leak.
        let mut caps = CapSet::new();
        caps.grant(Capability::plus(t(1)));
        let tainted = task(&[1], &[], caps.clone());
        assert!(m.inode_create(&tainted, &obj(&[], &[]), &obj(&[1], &[])).is_err());

        // ...but can create inside an equally-labeled dir.
        assert!(m.inode_create(&tainted, &obj(&[1], &[]), &obj(&[1], &[])).is_ok());

        // Cond 1: new file must carry at least the creator's taint.
        assert!(m.inode_create(&tainted, &obj(&[1], &[]), &obj(&[], &[])).is_err());

        // Cond 2: involuntary taint (no 1+ capability) blocks creation.
        let involuntary = task(&[1], &[], CapSet::new());
        assert!(m.inode_create(&involuntary, &obj(&[1], &[]), &obj(&[1], &[])).is_err());
    }

    #[test]
    fn create_integrity_cannot_exceed_creator() {
        let m = LaminarModule;
        let p = task(&[], &[], CapSet::new());
        // Unlabeled creator cannot mint a high-integrity file.
        assert!(m.inode_create(&p, &obj(&[], &[]), &obj(&[], &[9])).is_err());
        let mut caps = CapSet::new();
        caps.grant(Capability::plus(t(9)));
        let endorsed = task(&[], &[9], caps);
        // An endorsed creator can, in a dir it may write.
        assert!(m.inode_create(&endorsed, &obj(&[], &[]), &obj(&[], &[9])).is_ok());
    }

    #[test]
    fn signals_silently_drop_on_illegal_flow() {
        let m = LaminarModule;
        let secret = task(&[1], &[], CapSet::new());
        let public = task(&[], &[], CapSet::new());
        assert_eq!(m.task_kill(&secret, &public), DeliveryVerdict::SilentDrop);
        assert_eq!(m.task_kill(&public, &secret), DeliveryVerdict::Deliver);
    }

    #[test]
    fn pipe_write_silently_drops() {
        let m = LaminarModule;
        let secret = task(&[1], &[], CapSet::new());
        assert_eq!(m.pipe_write(&secret, &obj(&[], &[])), DeliveryVerdict::SilentDrop);
        assert_eq!(m.pipe_write(&secret, &obj(&[1], &[])), DeliveryVerdict::Deliver);
    }

    #[test]
    fn set_label_needs_capabilities() {
        let m = LaminarModule;
        let no_caps = task(&[], &[], CapSet::new());
        assert!(m.task_set_label(&no_caps, &obj(&[1], &[])).is_err());
        let mut caps = CapSet::new();
        caps.grant(Capability::plus(t(1)));
        let with_caps = task(&[], &[], caps);
        assert!(m.task_set_label(&with_caps, &obj(&[1], &[])).is_ok());
    }
}
