//! The Linux-Security-Module-style hook layer.
//!
//! Linux provides hooks at every security-relevant kernel operation and
//! dispatches them to a loaded security module (Wright et al., USENIX
//! Security 2002). Laminar's OS enforcement lives almost entirely in such
//! a module (§4.1/§5.2): the kernel proper only guarantees the hooks are
//! called. This module defines the hook trait and the default
//! allow-everything module; [`crate::laminar_lsm`] implements the DIFC
//! checks.
//!
//! Hooks receive only *security contexts* (labels and capabilities), not
//! kernel internals — mirroring how a real LSM reads the opaque
//! `security` fields it attached to `task_struct`, `inode` and `file`.

use crate::error::OsResult;
use crate::task::TaskSec;
use laminar_difc::SecPair;

/// Access mask for permission hooks.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Access {
    /// Information flows object → task.
    Read,
    /// Information flows task → object.
    Write,
    /// Both directions.
    ReadWrite,
}

/// Verdict for operations where a visible error would itself leak
/// information: the operation either happens or is silently dropped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeliveryVerdict {
    /// Deliver the message/signal.
    Deliver,
    /// Pretend success but drop it (unreliable-pipe semantics, §5.2).
    SilentDrop,
}

/// A security module: the pluggable policy engine behind the hooks.
///
/// The default implementation of every hook allows the operation, so a
/// module only overrides the hooks it cares about — like a real LSM.
/// [`NullModule`] overrides nothing and models stock Linux;
/// [`crate::laminar_lsm::LaminarModule`] overrides everything with the
/// DIFC rules. The Table 2 benchmark compares the two.
pub trait SecurityModule: Send + Sync {
    /// Human-readable module name (appears in diagnostics).
    fn name(&self) -> &'static str;

    /// Mediates path traversal and metadata access on an unopened inode
    /// (the `inode_*` hook family).
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn inode_permission(
        &self,
        _task: &TaskSec,
        _inode: &SecPair,
        _mask: Access,
    ) -> OsResult<()> {
        Ok(())
    }

    /// Mediates creation of a new inode with labels `new` under a parent
    /// directory (the labeled-create rules of §5.2).
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn inode_create(
        &self,
        _task: &TaskSec,
        _parent: &SecPair,
        _new: &SecPair,
    ) -> OsResult<()> {
        Ok(())
    }

    /// Mediates unlink/rmdir: removing a name from `parent` (the victim's
    /// name is protected by the parent's label).
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn inode_unlink(
        &self,
        _task: &TaskSec,
        _parent: &SecPair,
        _victim: &SecPair,
    ) -> OsResult<()> {
        Ok(())
    }

    /// Mediates each read/write on an open file descriptor (the
    /// `file_permission` hook). Laminar needs no Flume-style endpoint
    /// abstraction because this hook runs on *every* fd operation (§2).
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn file_permission(
        &self,
        _task: &TaskSec,
        _inode: &SecPair,
        _mask: Access,
    ) -> OsResult<()> {
        Ok(())
    }

    /// Mediates memory mapping (file-backed maps carry the file's labels).
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn file_mmap(&self, _task: &TaskSec, _backing: Option<&SecPair>) -> OsResult<()> {
        Ok(())
    }

    /// Mediates signal delivery. A visible rejection would leak the
    /// existence/labels of the target, so the verdict is deliver-or-drop.
    fn task_kill(&self, _sender: &TaskSec, _target: &TaskSec) -> DeliveryVerdict {
        DeliveryVerdict::Deliver
    }

    /// Vetoes a task label change beyond the capability checks the
    /// syscall layer already performs.
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn task_set_label(&self, _task: &TaskSec, _new: &SecPair) -> OsResult<()> {
        Ok(())
    }

    /// Mediates a byte write into a pipe: deliver or silently drop.
    fn pipe_write(&self, _task: &TaskSec, _pipe: &SecPair) -> DeliveryVerdict {
        DeliveryVerdict::Deliver
    }

    /// Mediates a read from a pipe.
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn pipe_read(&self, _task: &TaskSec, _pipe: &SecPair) -> OsResult<()> {
        Ok(())
    }

    /// Mediates sending a capability through a pipe (`write_capability`).
    fn cap_transfer(&self, _sender: &TaskSec, _pipe: &SecPair) -> DeliveryVerdict {
        DeliveryVerdict::Deliver
    }

    /// Mediates receiving a capability from a pipe.
    ///
    /// # Errors
    /// Returns the module's veto, if any.
    fn cap_receive(&self, _receiver: &TaskSec, _pipe: &SecPair) -> OsResult<()> {
        Ok(())
    }
}

/// The do-nothing module: stock Linux behaviour, used as the baseline in
/// the Table 2 microbenchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullModule;

impl SecurityModule for NullModule {
    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::{CapSet, Label, SecPair, Tag};

    #[test]
    fn null_module_allows_everything() {
        let m = NullModule;
        let task = TaskSec {
            labels: SecPair::secrecy_only(Label::singleton(Tag::from_raw(1))),
            caps: std::sync::Arc::new(CapSet::new()),
        };
        let obj = SecPair::unlabeled();
        assert!(m.inode_permission(&task, &obj, Access::Write).is_ok());
        assert!(m.file_permission(&task, &obj, Access::Read).is_ok());
        assert_eq!(m.pipe_write(&task, &obj), DeliveryVerdict::Deliver);
        assert_eq!(m.task_kill(&task, &task), DeliveryVerdict::Deliver);
        assert_eq!(m.name(), "null");
    }
}
