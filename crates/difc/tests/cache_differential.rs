//! Differential tests for the interning layer and the flow-check cache.
//!
//! The cache may only ever *memoize* — every cached `is_subset_of` /
//! `can_flow_to` answer must match the uncached structural oracle, for
//! randomized label pairs, across repeated queries (first-query miss and
//! subsequent hits must agree). Interning must preserve `Label`/`SecPair`
//! equality and hash semantics exactly.
//!
//! This file is its own test binary, i.e. its own process: the global
//! cache counters it asserts on see no traffic from other test suites.

use laminar_difc::{flow_cache_stats, Label, SecPair, Tag};
use laminar_util::SplitMix64;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn random_label(rng: &mut SplitMix64, universe: u64) -> Label {
    let n = rng.gen_range(0..5);
    Label::from_tags((0..n).map(|_| Tag::from_raw(1 + rng.below(universe))))
}

/// A from-scratch subset oracle, independent of `Label::is_subset_of`'s
/// own fast paths.
fn naive_subset(a: &Label, b: &Label) -> bool {
    a.iter().all(|t| b.iter().any(|u| u == t))
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn cached_subset_matches_oracle_on_random_pairs() {
    let mut rng = SplitMix64::new(0xD1FC);
    for _ in 0..2_000 {
        let a = random_label(&mut rng, 10);
        let b = random_label(&mut rng, 10);
        let oracle = naive_subset(&a, &b);
        assert_eq!(a.is_subset_of(&b), oracle, "structural check drifted: {a} vs {b}");
        // First query (possible miss) and repeats (hits) must all agree.
        for _ in 0..3 {
            assert_eq!(a.is_subset_of_cached(&b), oracle, "cached drifted: {a} vs {b}");
        }
    }
}

#[test]
fn cached_flow_matches_oracle_on_random_pairs() {
    let mut rng = SplitMix64::new(0xF10);
    for _ in 0..2_000 {
        let x = SecPair::new(random_label(&mut rng, 8), random_label(&mut rng, 8));
        let y = SecPair::new(random_label(&mut rng, 8), random_label(&mut rng, 8));
        let oracle = x.secrecy().iter().all(|t| y.secrecy().contains(t))
            && y.integrity().iter().all(|t| x.integrity().contains(t));
        assert_eq!(x.flows_to(&y), oracle, "{x} -> {y}");
        for _ in 0..3 {
            assert_eq!(x.flows_to_cached(&y), oracle, "cached flow drifted: {x} -> {y}");
            assert_eq!(
                x.can_flow_to_cached(&y).is_ok(),
                oracle,
                "cached can_flow_to drifted: {x} -> {y}"
            );
        }
        // Denials must carry the same diagnostic as the uncached path.
        if !oracle {
            let cached_err = format!("{}", x.can_flow_to_cached(&y).unwrap_err());
            let oracle_err = format!("{}", x.can_flow_to(&y).unwrap_err());
            assert_eq!(cached_err, oracle_err);
        }
    }
}

#[test]
fn interning_preserves_equality_and_hash_semantics() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..2_000 {
        let tags: Vec<Tag> = {
            let n = rng.gen_range(0..5);
            (0..n).map(|_| Tag::from_raw(1 + rng.below(200))).collect()
        };
        let mut shuffled = tags.clone();
        rng.shuffle(&mut shuffled);

        // Two labels built independently (in different orders, possibly
        // with duplicates) from the same tag multiset are equal, share a
        // hash, share an id, and share the canonical allocation.
        let a = Label::from_tags(tags.iter().copied());
        let b = Label::from_tags(shuffled.iter().copied().chain(tags.first().copied()));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));

        // And a label over a strictly different tag-set is unequal with
        // a different id.
        let c = Label::from_tags(tags.iter().copied().chain([Tag::from_raw(999)]));
        assert_ne!(a, c);
        assert_ne!(a.id(), c.id());

        // Pairs inherit the same guarantees.
        let p = SecPair::new(a.clone(), c.clone());
        let q = SecPair::new(b.clone(), c.clone());
        assert_eq!(p, q);
        assert_eq!(hash_of(&p), hash_of(&q));
        assert_eq!(p.id(), q.id());
        assert_ne!(p, SecPair::new(c, a));
    }
}

#[test]
fn repeated_checks_exceed_90_percent_hit_rate() {
    // A workload shaped like real enforcement: a small working set of
    // labels checked over and over (barriers re-check the same object/
    // thread label pairs millions of times).
    let mut rng = SplitMix64::new(0xCACE);
    let working_set: Vec<SecPair> = (0..8)
        .map(|_| SecPair::new(random_label(&mut rng, 6), random_label(&mut rng, 6)))
        .collect();

    // Warm the cache with one pass over all combinations.
    for a in &working_set {
        for b in &working_set {
            let _ = a.flows_to_cached(b);
        }
    }

    let before = flow_cache_stats();
    let mut checks = 0u64;
    for _ in 0..2_000 {
        for a in &working_set {
            for b in &working_set {
                assert_eq!(a.flows_to_cached(b), a.flows_to(b));
                checks += 1;
            }
        }
    }
    let after = flow_cache_stats();
    let answered = (after.hits + after.fast_hits) - (before.hits + before.fast_hits);
    let missed = after.misses - before.misses;
    assert!(checks > 100_000);
    let rate = answered as f64 / (answered + missed) as f64;
    assert!(
        rate > 0.90,
        "expected >90% hit rate on repeated checks, got {:.3} ({answered} answered, {missed} missed)",
        rate
    );
}
