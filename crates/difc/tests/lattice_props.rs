//! Randomized property tests for the label lattice and the DIFC flow
//! rules, driven by the in-repo deterministic PRNG (no external crates,
//! so they run in fully offline CI).
//!
//! These encode the algebraic laws the paper's model relies on: the
//! subset order is a partial order, union/intersection are lattice
//! join/meet, and the flow relation composes (transitivity of legal
//! flows), which is what makes end-to-end guarantees out of per-edge
//! checks.

use laminar_difc::{check_label_change, CapSet, Capability, Label, SecPair, Tag};
use laminar_util::SplitMix64;

/// Cases per property; the tag universe is small (1..12) so interesting
/// subset/overlap relationships are common.
const CASES: usize = 500;

fn random_label(rng: &mut SplitMix64) -> Label {
    let n = rng.gen_range(0..6);
    Label::from_tags((0..n).map(|_| Tag::from_raw(1 + rng.below(11))))
}

fn random_pair(rng: &mut SplitMix64) -> SecPair {
    SecPair::new(random_label(rng), random_label(rng))
}

fn random_capset(rng: &mut SplitMix64) -> CapSet {
    let n = rng.gen_range(0..8);
    (0..n)
        .map(|_| {
            let tag = Tag::from_raw(1 + rng.below(11));
            if rng.gen_bool() {
                Capability::plus(tag)
            } else {
                Capability::minus(tag)
            }
        })
        .collect()
}

#[test]
fn subset_reflexive() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..CASES {
        let l = random_label(&mut rng);
        assert!(l.is_subset_of(&l));
    }
}

#[test]
fn subset_antisymmetric() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..CASES {
        let (a, b) = (random_label(&mut rng), random_label(&mut rng));
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn subset_transitive() {
    let mut rng = SplitMix64::new(0xCAB);
    for _ in 0..CASES {
        let (a, b, c) =
            (random_label(&mut rng), random_label(&mut rng), random_label(&mut rng));
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            assert!(a.is_subset_of(&c));
        }
    }
}

#[test]
fn union_is_least_upper_bound() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..CASES {
        let (a, b, c) =
            (random_label(&mut rng), random_label(&mut rng), random_label(&mut rng));
        let u = a.union(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        // Least: any other upper bound contains the union.
        if a.is_subset_of(&c) && b.is_subset_of(&c) {
            assert!(u.is_subset_of(&c));
        }
    }
}

#[test]
fn intersection_is_greatest_lower_bound() {
    let mut rng = SplitMix64::new(2);
    for _ in 0..CASES {
        let (a, b, c) =
            (random_label(&mut rng), random_label(&mut rng), random_label(&mut rng));
        let m = a.intersection(&b);
        assert!(m.is_subset_of(&a));
        assert!(m.is_subset_of(&b));
        if c.is_subset_of(&a) && c.is_subset_of(&b) {
            assert!(c.is_subset_of(&m));
        }
    }
}

#[test]
fn union_commutative_associative_idempotent() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..CASES {
        let (a, b, c) =
            (random_label(&mut rng), random_label(&mut rng), random_label(&mut rng));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a);
    }
}

#[test]
fn difference_partitions() {
    let mut rng = SplitMix64::new(4);
    for _ in 0..CASES {
        let (a, b) = (random_label(&mut rng), random_label(&mut rng));
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        // diff and inter are disjoint and union back to a.
        assert!(diff.intersection(&inter).is_empty());
        assert_eq!(diff.union(&inter), a);
    }
}

#[test]
fn flow_is_transitive() {
    let mut rng = SplitMix64::new(5);
    for _ in 0..CASES {
        let (a, b, c) =
            (random_pair(&mut rng), random_pair(&mut rng), random_pair(&mut rng));
        // Legal flows compose end-to-end: this is the heart of the DIFC
        // guarantee — chaining per-edge checks is sound.
        if a.flows_to(&b) && b.flows_to(&c) {
            assert!(a.flows_to(&c));
        }
    }
}

#[test]
fn flow_reflexive() {
    let mut rng = SplitMix64::new(6);
    for _ in 0..CASES {
        let a = random_pair(&mut rng);
        assert!(a.flows_to(&a));
    }
}

#[test]
fn join_is_flow_upper_bound() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..CASES {
        let (a, b) = (random_pair(&mut rng), random_pair(&mut rng));
        let j = a.join(&b);
        assert!(a.flows_to(&j));
        assert!(b.flows_to(&j));
    }
}

#[test]
fn unlabeled_flows_everywhere_with_empty_integrity() {
    let mut rng = SplitMix64::new(8);
    for _ in 0..CASES {
        let a = random_pair(&mut rng);
        let public = SecPair::unlabeled();
        // Unlabeled sources can flow anywhere with empty integrity demands.
        if a.integrity().is_empty() {
            assert!(public.flows_to(&a));
        }
        // Anything with empty secrecy can flow to an unlabeled sink.
        if a.secrecy().is_empty() {
            assert!(a.flows_to(&public));
        }
    }
}

#[test]
fn label_change_identity_always_allowed() {
    let mut rng = SplitMix64::new(9);
    for _ in 0..CASES {
        let l = random_label(&mut rng);
        assert!(check_label_change(&l, &l, &CapSet::new()).is_ok());
    }
}

#[test]
fn label_change_sound() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..CASES {
        let (from, to, caps) =
            (random_label(&mut rng), random_label(&mut rng), random_capset(&mut rng));
        let allowed = check_label_change(&from, &to, &caps).is_ok();
        let need_plus = to.difference(&from);
        let need_minus = from.difference(&to);
        let expected = caps.can_add_all(&need_plus) && caps.can_remove_all(&need_minus);
        assert_eq!(allowed, expected);
    }
}

#[test]
fn full_caps_allow_any_change() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..CASES {
        let (from, to) = (random_label(&mut rng), random_label(&mut rng));
        let mut caps = CapSet::new();
        for t in from.iter().chain(to.iter()) {
            caps.grant_both(t);
        }
        assert!(check_label_change(&from, &to, &caps).is_ok());
    }
}

#[test]
fn capset_union_monotonic() {
    let mut rng = SplitMix64::new(12);
    for _ in 0..CASES {
        let (a, b) = (random_capset(&mut rng), random_capset(&mut rng));
        let (from, to) = (random_label(&mut rng), random_label(&mut rng));
        // Gaining capabilities never revokes a permitted change.
        if check_label_change(&from, &to, &a).is_ok() {
            assert!(check_label_change(&from, &to, &a.union(&b)).is_ok());
        }
    }
}
