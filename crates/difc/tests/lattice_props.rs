//! Property-based tests for the label lattice and the DIFC flow rules.
//!
//! These encode the algebraic laws the paper's model relies on: the
//! subset order is a partial order, union/intersection are lattice
//! join/meet, and the flow relation composes (transitivity of legal
//! flows), which is what makes end-to-end guarantees out of per-edge
//! checks.

use laminar_difc::{
    check_label_change, CapSet, Capability, Label, SecPair, Tag,
};
use proptest::prelude::*;

/// Strategy: a label over a small tag universe so that interesting
/// subset/overlap relationships are common.
fn label_strategy() -> impl Strategy<Value = Label> {
    prop::collection::vec(1u64..12, 0..6)
        .prop_map(|v| Label::from_tags(v.into_iter().map(Tag::from_raw)))
}

fn pair_strategy() -> impl Strategy<Value = SecPair> {
    (label_strategy(), label_strategy()).prop_map(|(s, i)| SecPair::new(s, i))
}

fn capset_strategy() -> impl Strategy<Value = CapSet> {
    prop::collection::vec((1u64..12, prop::bool::ANY), 0..8).prop_map(|v| {
        v.into_iter()
            .map(|(t, plus)| {
                let tag = Tag::from_raw(t);
                if plus {
                    Capability::plus(tag)
                } else {
                    Capability::minus(tag)
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn subset_reflexive(l in label_strategy()) {
        prop_assert!(l.is_subset_of(&l));
    }

    #[test]
    fn subset_antisymmetric(a in label_strategy(), b in label_strategy()) {
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn subset_transitive(a in label_strategy(), b in label_strategy(), c in label_strategy()) {
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            prop_assert!(a.is_subset_of(&c));
        }
    }

    #[test]
    fn union_is_least_upper_bound(a in label_strategy(), b in label_strategy(), c in label_strategy()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        // Least: any other upper bound contains the union.
        if a.is_subset_of(&c) && b.is_subset_of(&c) {
            prop_assert!(u.is_subset_of(&c));
        }
    }

    #[test]
    fn intersection_is_greatest_lower_bound(a in label_strategy(), b in label_strategy(), c in label_strategy()) {
        let m = a.intersection(&b);
        prop_assert!(m.is_subset_of(&a));
        prop_assert!(m.is_subset_of(&b));
        if c.is_subset_of(&a) && c.is_subset_of(&b) {
            prop_assert!(c.is_subset_of(&m));
        }
    }

    #[test]
    fn union_commutative_associative_idempotent(a in label_strategy(), b in label_strategy(), c in label_strategy()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn difference_partitions(a in label_strategy(), b in label_strategy()) {
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        // diff and inter are disjoint and union back to a.
        prop_assert!(diff.intersection(&inter).is_empty());
        prop_assert_eq!(diff.union(&inter), a);
    }

    #[test]
    fn flow_is_transitive(a in pair_strategy(), b in pair_strategy(), c in pair_strategy()) {
        // Legal flows compose end-to-end: this is the heart of the DIFC
        // guarantee — chaining per-edge checks is sound.
        if a.flows_to(&b) && b.flows_to(&c) {
            prop_assert!(a.flows_to(&c));
        }
    }

    #[test]
    fn flow_reflexive(a in pair_strategy()) {
        prop_assert!(a.flows_to(&a));
    }

    #[test]
    fn join_is_flow_upper_bound(a in pair_strategy(), b in pair_strategy()) {
        let j = a.join(&b);
        prop_assert!(a.flows_to(&j));
        prop_assert!(b.flows_to(&j));
    }

    #[test]
    fn unlabeled_flows_everywhere_with_empty_integrity(a in pair_strategy()) {
        let public = SecPair::unlabeled();
        // Unlabeled sources can flow anywhere with empty integrity demands.
        if a.integrity().is_empty() {
            prop_assert!(public.flows_to(&a));
        }
        // Anything with empty secrecy can flow to an unlabeled sink.
        if a.secrecy().is_empty() {
            prop_assert!(a.flows_to(&public));
        }
    }

    #[test]
    fn label_change_identity_always_allowed(l in label_strategy()) {
        prop_assert!(check_label_change(&l, &l, &CapSet::new()).is_ok());
    }

    #[test]
    fn label_change_sound(from in label_strategy(), to in label_strategy(), caps in capset_strategy()) {
        let allowed = check_label_change(&from, &to, &caps).is_ok();
        let need_plus = to.difference(&from);
        let need_minus = from.difference(&to);
        let expected = caps.can_add_all(&need_plus) && caps.can_remove_all(&need_minus);
        prop_assert_eq!(allowed, expected);
    }

    #[test]
    fn full_caps_allow_any_change(from in label_strategy(), to in label_strategy()) {
        let mut caps = CapSet::new();
        for t in from.iter().chain(to.iter()) {
            caps.grant_both(t);
        }
        prop_assert!(check_label_change(&from, &to, &caps).is_ok());
    }

    #[test]
    fn capset_union_monotonic(a in capset_strategy(), b in capset_strategy(),
                              from in label_strategy(), to in label_strategy()) {
        // Gaining capabilities never revokes a permitted change.
        if check_label_change(&from, &to, &a).is_ok() {
            prop_assert!(check_label_change(&from, &to, &a.union(&b)).is_ok());
        }
    }
}
