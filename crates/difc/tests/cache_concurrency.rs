//! Concurrent epoch handling in the flow-check cache (PR 4).
//!
//! The sharded kernel issues flow checks from many threads at once, so
//! the memo cache's epoch eviction (whole-shard clears) now races real
//! readers: one thread can be probing a shard while another's insert
//! clears it. The invariant is the usual one, sharpened by concurrency:
//! a cleared/half-populated/thrashing cache may change timing, never
//! verdicts.
//!
//! This file is its own test binary (its own process) because fault
//! modes are process-global; nothing else races the armed mode here.
//!
//! The test is compiled only with the `fault-injection` feature (on for
//! every workspace build — `laminar-testkit` turns it on — but off for
//! a bare `cargo test -p laminar-difc`).
#![cfg(feature = "fault-injection")]

use laminar_difc::cache::fault::{set_fault_mode, FaultMode};
use laminar_difc::{Label, SecPair, Tag};
use laminar_util::SplitMix64;

/// Tag universe offset so these interned labels collide with no other
/// test binary's (interning is append-only and process-global).
const BASE: u64 = 990_000;

fn universe() -> Vec<SecPair> {
    // All (secrecy, integrity) combinations over three tags: 64 pairs,
    // enough to populate several cache shards.
    let tags: Vec<Tag> = (0..3).map(|i| Tag::from_raw(BASE + i)).collect();
    let labels: Vec<Label> = (0u8..8)
        .map(|m| {
            Label::from_tags(
                tags.iter()
                    .enumerate()
                    .filter(|(b, _)| m & (1 << b) != 0)
                    .map(|(_, &t)| t),
            )
        })
        .collect();
    let mut pairs = Vec::new();
    for s in &labels {
        for i in &labels {
            pairs.push(SecPair::new(s.clone(), i.clone()));
        }
    }
    pairs
}

/// Four threads hammer cached flow checks over a shared label universe
/// while `EpochChurn` clears all shards on every 32nd insert — so
/// probes constantly race evictions and re-inserts of the same keys.
/// Every verdict must equal the uncached structural recomputation made
/// before the churn was armed.
#[test]
fn epoch_churn_under_concurrency_never_changes_verdicts() {
    let pairs = universe();
    let expected: Vec<Vec<bool>> =
        pairs.iter().map(|a| pairs.iter().map(|b| a.flows_to(b)).collect()).collect();

    set_fault_mode(FaultMode::EpochChurn);
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let (pairs, expected) = (&pairs, &expected);
            s.spawn(move || {
                let mut rng = SplitMix64::new(0xE70C_4000 + w);
                for _ in 0..40_000 {
                    let i = (rng.next_u64() % pairs.len() as u64) as usize;
                    let j = (rng.next_u64() % pairs.len() as u64) as usize;
                    assert_eq!(
                        pairs[i].flows_to_cached(&pairs[j]),
                        expected[i][j],
                        "churned cache diverged: {} -> {}",
                        pairs[i],
                        pairs[j]
                    );
                    // The label-level subset entries churn too.
                    assert_eq!(
                        pairs[i].secrecy().is_subset_of_cached(pairs[j].secrecy()),
                        pairs[i].secrecy().is_subset_of(pairs[j].secrecy()),
                    );
                }
            });
        }
    });
    set_fault_mode(FaultMode::None);

    // And after the storm, a cold-start re-probe of the full matrix
    // (fresh inserts into whatever the churn left behind) still agrees.
    for (a, row) in pairs.iter().zip(&expected) {
        for (b, &want) in pairs.iter().zip(row) {
            assert_eq!(a.flows_to_cached(b), want);
        }
    }
}
