//! Global hash-consing of labels and label pairs.
//!
//! §5 of the paper: the JikesRVM prototype keeps its overheads low by
//! sharing immutable `Labels` objects and memoizing comparisons between
//! them. The enabling move is *interning*: each distinct tag-set exists
//! once, behind one canonical `Arc`, and is named by a stable 32-bit
//! [`LabelId`]. Label equality and hashing then cost one integer
//! compare, and `(LabelId, LabelId)` keys make flow-check memoization
//! (see [`crate::cache`]) possible at all.
//!
//! Two process-global tables live here:
//!
//! * the **label interner**, mapping a sorted tag slice to its canonical
//!   `Arc<[Tag]>` and [`LabelId`] (id 0 is the empty label);
//! * the **pair interner**, mapping a `(secrecy id, integrity id)` pair
//!   to a [`PairId`] (id 0 is the unlabeled pair), so whole
//!   [`crate::SecPair`]s also compare in O(1).
//!
//! Both tables are sharded behind `std::sync::Mutex`es; an interning
//! miss takes one shard lock, a hit takes the same lock briefly. Tables
//! only grow — labels are tiny, programs mint few distinct ones (the
//! paper's applications use a handful of tags), and stable ids must
//! never be reused while any cache entry mentions them.

use crate::tag::Tag;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of shards per intern table (power of two).
const SHARDS: usize = 16;

/// The stable, process-global identity of one distinct tag-set.
///
/// Two labels are equal iff their `LabelId`s are equal; the empty label
/// is always [`LabelId::EMPTY`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabelId(u32);

impl LabelId {
    /// The id of the empty label `{}`.
    pub const EMPTY: LabelId = LabelId(0);

    /// The raw 32-bit value (for packing into cache keys).
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// The stable, process-global identity of one distinct `{S, I}` pair.
///
/// Two [`crate::SecPair`]s are equal iff their `PairId`s are equal; the
/// unlabeled pair is always [`PairId::UNLABELED`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PairId(u32);

impl PairId {
    /// The id of the unlabeled `{S(), I()}` pair.
    pub const UNLABELED: PairId = PairId(0);

    /// The raw 32-bit value (for packing into cache keys).
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// A cheap, deterministic mix of a tag slice used only to pick a shard.
fn shard_of_tags(tags: &[Tag]) -> usize {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for t in tags {
        h = (h.rotate_left(5) ^ t.as_raw()).wrapping_mul(0x100_0000_01B3);
    }
    (h >> 7) as usize & (SHARDS - 1)
}

struct LabelInterner {
    shards: Vec<Mutex<HashMap<Arc<[Tag]>, u32>>>,
    next: AtomicU32,
}

impl LabelInterner {
    fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            shards.push(Mutex::new(HashMap::new()));
        }
        let interner = LabelInterner { shards, next: AtomicU32::new(1) };
        // Reserve id 0 for the empty label so the fast paths can rely on it.
        let empty = empty_tags();
        interner.shards[shard_of_tags(&empty)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(empty, 0);
        interner
    }
}

fn label_interner() -> &'static LabelInterner {
    static TABLE: OnceLock<LabelInterner> = OnceLock::new();
    TABLE.get_or_init(LabelInterner::new)
}

/// The canonical allocation of the empty tag slice.
pub(crate) fn empty_tags() -> Arc<[Tag]> {
    static EMPTY: OnceLock<Arc<[Tag]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from([])))
}

/// Interns a **sorted, deduplicated** tag vector, returning its stable
/// id and the one canonical allocation for that tag-set.
pub(crate) fn intern_label(sorted: Vec<Tag>) -> (LabelId, Arc<[Tag]>) {
    if sorted.is_empty() {
        return (LabelId::EMPTY, empty_tags());
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "interning unsorted tags");
    let table = label_interner();
    let mut shard = table.shards[shard_of_tags(&sorted)]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some((canon, &id)) = shard.get_key_value(sorted.as_slice()) {
        return (LabelId(id), Arc::clone(canon));
    }
    let id = table.next.fetch_add(1, Ordering::Relaxed);
    assert!(id != u32::MAX, "label intern table exhausted");
    let canon: Arc<[Tag]> = Arc::from(sorted);
    shard.insert(Arc::clone(&canon), id);
    (LabelId(id), canon)
}

struct PairInterner {
    shards: Vec<Mutex<HashMap<u64, u32>>>,
    next: AtomicU32,
}

impl PairInterner {
    fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            shards.push(Mutex::new(HashMap::new()));
        }
        let interner = PairInterner { shards, next: AtomicU32::new(1) };
        // Reserve id 0 for the unlabeled pair.
        interner.shards[0].lock().unwrap_or_else(PoisonError::into_inner).insert(0, 0);
        interner
    }
}

fn pair_interner() -> &'static PairInterner {
    static TABLE: OnceLock<PairInterner> = OnceLock::new();
    TABLE.get_or_init(PairInterner::new)
}

/// Interns a `(secrecy, integrity)` id pair into a stable [`PairId`].
pub(crate) fn intern_pair(secrecy: LabelId, integrity: LabelId) -> PairId {
    let key = (u64::from(secrecy.as_u32()) << 32) | u64::from(integrity.as_u32());
    if key == 0 {
        return PairId::UNLABELED;
    }
    let table = pair_interner();
    let mix = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut shard = table.shards[(mix >> 56) as usize & (SHARDS - 1)]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(&id) = shard.get(&key) {
        return PairId(id);
    }
    let id = table.next.fetch_add(1, Ordering::Relaxed);
    assert!(id != u32::MAX, "pair intern table exhausted");
    shard.insert(key, id);
    PairId(id)
}

/// A point-in-time snapshot of the intern tables' sizes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct labels interned so far (including the empty label).
    pub labels: usize,
    /// Distinct `{S, I}` pairs interned so far (including unlabeled).
    pub pairs: usize,
}

/// Snapshots the current intern-table sizes.
#[must_use]
pub fn intern_stats() -> InternStats {
    let labels = label_interner()
        .shards
        .iter()
        .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
        .sum();
    let pairs = pair_interner()
        .shards
        .iter()
        .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
        .sum();
    InternStats { labels, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tag {
        Tag::from_raw(n)
    }

    #[test]
    fn empty_label_is_id_zero() {
        assert_eq!(intern_label(Vec::new()).0, LabelId::EMPTY);
        assert_eq!(intern_pair(LabelId::EMPTY, LabelId::EMPTY), PairId::UNLABELED);
    }

    #[test]
    fn interning_is_canonical() {
        let (id1, arc1) = intern_label(vec![t(100_001), t(100_002)]);
        let (id2, arc2) = intern_label(vec![t(100_001), t(100_002)]);
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&arc1, &arc2), "same tag-set must share one allocation");
        let (id3, _) = intern_label(vec![t(100_001), t(100_003)]);
        assert_ne!(id1, id3);
    }

    #[test]
    fn pair_ids_distinguish_direction() {
        let (a, _) = intern_label(vec![t(100_010)]);
        let (b, _) = intern_label(vec![t(100_011)]);
        assert_ne!(intern_pair(a, b), intern_pair(b, a));
        assert_eq!(intern_pair(a, b), intern_pair(a, b));
    }

    #[test]
    fn stats_grow_monotonically() {
        let before = intern_stats();
        let _ = intern_label(vec![t(100_020), t(100_021), t(100_022)]);
        let after = intern_stats();
        assert!(after.labels >= before.labels);
        assert!(after.labels >= 1); // at least the empty label
    }
}
