//! Capabilities: the privilege to classify/endorse (`t+`) or
//! declassify/drop-endorsement (`t-`) for a tag.
//!
//! A principal `p` has a capability set `Cp` (§3.1). For each tag `t`,
//! `t+` allows adding `t` to the principal's label (classification for
//! secrecy, endorsement for integrity) and `t-` allows removing it
//! (declassification / dropping an endorsement). DIFC capabilities are
//! *not* the pointers-with-access-rights of capability operating systems.

use crate::label::Label;
use crate::tag::Tag;
use std::collections::BTreeSet;
use std::fmt;

/// Which half of a tag's capability pair: plus (add) or minus (remove).
///
/// Mirrors the paper's `CapType` (Fig. 2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CapKind {
    /// `t+`: may add tag `t` to a label (classify / endorse).
    Plus,
    /// `t-`: may remove tag `t` from a label (declassify / drop endorsement).
    Minus,
}

/// A single capability: a tag together with a plus or minus right.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: Tag,
    kind: CapKind,
}

impl Capability {
    /// The `t+` capability for `tag`.
    #[must_use]
    pub fn plus(tag: Tag) -> Self {
        Capability { tag, kind: CapKind::Plus }
    }

    /// The `t-` capability for `tag`.
    #[must_use]
    pub fn minus(tag: Tag) -> Self {
        Capability { tag, kind: CapKind::Minus }
    }

    /// The tag this capability is about.
    #[must_use]
    pub fn tag(self) -> Tag {
        self.tag
    }

    /// Whether this is the plus or minus right.
    #[must_use]
    pub fn kind(self) -> CapKind {
        self.kind
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CapKind::Plus => write!(f, "{}+", self.tag),
            CapKind::Minus => write!(f, "{}-", self.tag),
        }
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A principal's capability set `Cp = (Cp+, Cp-)`.
///
/// `Cp+` is the set of tags the principal may add; `Cp-` the set it may
/// remove. The set is an ordinary value type — ownership and transfer
/// semantics (inheritance on thread creation, `write_capability` IPC,
/// scoped suspension in security regions) are implemented by the OS and
/// runtime crates on top of this type.
///
/// # Examples
///
/// ```
/// use laminar_difc::{CapSet, Capability, Label, Tag};
///
/// let t = Tag::from_raw(9);
/// let mut caps = CapSet::new();
/// caps.grant(Capability::plus(t));
/// assert!(caps.can_add(t));
/// assert!(!caps.can_remove(t));
/// assert!(caps.can_add_all(&Label::singleton(t)));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CapSet {
    plus: BTreeSet<Tag>,
    minus: BTreeSet<Tag>,
}

impl CapSet {
    /// The empty capability set.
    #[must_use]
    pub fn new() -> Self {
        CapSet::default()
    }

    /// Builds a capability set from individual capabilities.
    #[must_use]
    pub fn from_caps<I: IntoIterator<Item = Capability>>(caps: I) -> Self {
        let mut set = CapSet::new();
        for c in caps {
            set.grant(c);
        }
        set
    }

    /// Grants both `t+` and `t-` for a tag, as `alloc_tag` does for the
    /// allocating principal (Fig. 3).
    pub fn grant_both(&mut self, tag: Tag) {
        self.plus.insert(tag);
        self.minus.insert(tag);
    }

    /// Grants a single capability. Idempotent.
    pub fn grant(&mut self, cap: Capability) {
        match cap.kind() {
            CapKind::Plus => self.plus.insert(cap.tag()),
            CapKind::Minus => self.minus.insert(cap.tag()),
        };
    }

    /// Revokes a single capability; returns `true` if it was held.
    pub fn revoke(&mut self, cap: Capability) -> bool {
        match cap.kind() {
            CapKind::Plus => self.plus.remove(&cap.tag()),
            CapKind::Minus => self.minus.remove(&cap.tag()),
        }
    }

    /// Does the principal hold `cap`?
    #[must_use]
    pub fn has(&self, cap: Capability) -> bool {
        match cap.kind() {
            CapKind::Plus => self.plus.contains(&cap.tag()),
            CapKind::Minus => self.minus.contains(&cap.tag()),
        }
    }

    /// `t ∈ Cp+`: may the principal add (classify/endorse) `tag`?
    #[must_use]
    pub fn can_add(&self, tag: Tag) -> bool {
        self.plus.contains(&tag)
    }

    /// `t ∈ Cp-`: may the principal remove (declassify) `tag`?
    #[must_use]
    pub fn can_remove(&self, tag: Tag) -> bool {
        self.minus.contains(&tag)
    }

    /// May the principal add every tag in `label`?
    #[must_use]
    pub fn can_add_all(&self, label: &Label) -> bool {
        label.iter().all(|t| self.can_add(t))
    }

    /// May the principal remove every tag in `label`?
    #[must_use]
    pub fn can_remove_all(&self, label: &Label) -> bool {
        label.iter().all(|t| self.can_remove(t))
    }

    /// The set `Cp+` as a label (the tags the principal may add).
    #[must_use]
    pub fn plus_label(&self) -> Label {
        Label::from_tags(self.plus.iter().copied())
    }

    /// The set `Cp-` as a label (the tags the principal may remove).
    #[must_use]
    pub fn minus_label(&self) -> Label {
        Label::from_tags(self.minus.iter().copied())
    }

    /// Subset test on capability sets: `self ⊆ other` componentwise.
    ///
    /// Security-region rule (2) of §4.3.2 — `CR ⊆ CP` — and the fork
    /// inheritance rule both reduce to this check.
    #[must_use]
    pub fn is_subset_of(&self, other: &CapSet) -> bool {
        self.plus.is_subset(&other.plus) && self.minus.is_subset(&other.minus)
    }

    /// Componentwise union, returning a new set.
    #[must_use]
    pub fn union(&self, other: &CapSet) -> CapSet {
        CapSet {
            plus: self.plus.union(&other.plus).copied().collect(),
            minus: self.minus.union(&other.minus).copied().collect(),
        }
    }

    /// Iterates over every capability held.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        self.plus
            .iter()
            .map(|&t| Capability::plus(t))
            .chain(self.minus.iter().map(|&t| Capability::minus(t)))
    }

    /// True if no capabilities are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }

    /// Number of capabilities held (plus and minus counted separately).
    #[must_use]
    pub fn len(&self) -> usize {
        self.plus.len() + self.minus.len()
    }
}

impl FromIterator<Capability> for CapSet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> Self {
        CapSet::from_caps(iter)
    }
}

impl Extend<Capability> for CapSet {
    fn extend<I: IntoIterator<Item = Capability>>(&mut self, iter: I) {
        for c in iter {
            self.grant(c);
        }
    }
}

impl fmt::Debug for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C(")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tag {
        Tag::from_raw(n)
    }

    #[test]
    fn grant_and_query() {
        let mut c = CapSet::new();
        assert!(c.is_empty());
        c.grant(Capability::plus(t(1)));
        c.grant(Capability::minus(t(2)));
        assert!(c.can_add(t(1)));
        assert!(!c.can_remove(t(1)));
        assert!(c.can_remove(t(2)));
        assert!(!c.can_add(t(2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn grant_both_gives_plus_and_minus() {
        let mut c = CapSet::new();
        c.grant_both(t(5));
        assert!(c.has(Capability::plus(t(5))));
        assert!(c.has(Capability::minus(t(5))));
    }

    #[test]
    fn revoke_removes_only_named_half() {
        let mut c = CapSet::new();
        c.grant_both(t(5));
        assert!(c.revoke(Capability::minus(t(5))));
        assert!(c.can_add(t(5)));
        assert!(!c.can_remove(t(5)));
        // Revoking again reports absence.
        assert!(!c.revoke(Capability::minus(t(5))));
    }

    #[test]
    fn label_wide_queries() {
        let mut c = CapSet::new();
        c.grant(Capability::plus(t(1)));
        c.grant(Capability::plus(t(2)));
        let l12 = Label::from_tags([t(1), t(2)]);
        let l13 = Label::from_tags([t(1), t(3)]);
        assert!(c.can_add_all(&l12));
        assert!(!c.can_add_all(&l13));
        assert!(c.can_remove_all(&Label::empty()));
    }

    #[test]
    fn subset_and_union() {
        let a = CapSet::from_caps([Capability::plus(t(1))]);
        let b = CapSet::from_caps([Capability::plus(t(1)), Capability::minus(t(2))]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let u = a.union(&b);
        assert_eq!(u, b);
    }

    #[test]
    fn iter_and_collect_round_trip() {
        let orig = CapSet::from_caps([
            Capability::plus(t(3)),
            Capability::minus(t(3)),
            Capability::plus(t(7)),
        ]);
        let rebuilt: CapSet = orig.iter().collect();
        assert_eq!(orig, rebuilt);
    }

    #[test]
    fn plus_minus_labels() {
        let c = CapSet::from_caps([Capability::plus(t(1)), Capability::minus(t(2))]);
        assert_eq!(c.plus_label(), Label::singleton(t(1)));
        assert_eq!(c.minus_label(), Label::singleton(t(2)));
    }

    #[test]
    fn debug_formats() {
        let c = CapSet::from_caps([Capability::plus(t(1)), Capability::minus(t(2))]);
        assert_eq!(format!("{c:?}"), "C(t1+,t2-)");
    }
}
