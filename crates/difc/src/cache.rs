//! Memoization of flow checks over interned label ids.
//!
//! Every enforcement decision — VM read/write barriers, LSM hooks,
//! syscall checks, region entry — bottoms out in a handful of subset
//! queries over labels, and real workloads ask the *same* queries
//! millions of times (§5: the prototype memoizes label comparisons for
//! exactly this reason; LIO-style hybrid systems win the same way by
//! making the already-checked case nearly free).
//!
//! The cache is a process-global, sharded map keyed on
//! `(id, id, check kind)`:
//!
//! * [`CheckKind::Subset`] entries memoize `Label` subset queries, keyed
//!   on two [`LabelId`](crate::LabelId)s;
//! * [`CheckKind::Flow`] entries memoize whole [`SecPair`] flow queries,
//!   keyed on two [`PairId`](crate::PairId)s, so the common repeated
//!   check costs one lookup instead of two.
//!
//! Ahead of any map lookup sit the **inline fast paths** — the empty
//! label/pair and id-equal (pointer-equal, since labels are interned)
//! operands — which answer without touching a lock. Because labels are
//! immutable and ids are never reused, cached entries can never go
//! stale; shards that grow past a bound are wholesale-cleared (an
//! epoch-style eviction) to bound memory on adversarial workloads.
//!
//! Hit/miss/insert counters are process-global atomics, snapshotted via
//! [`flow_cache_stats`] and re-exported through `laminar::stats` so
//! benchmarks and tests can observe cache behaviour.

use crate::label::Label;
use crate::pair::SecPair;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Number of cache shards (power of two).
const SHARDS: usize = 16;

/// Per-shard entry bound; past it the shard is cleared (epoch eviction).
const MAX_SHARD_ENTRIES: usize = 1 << 15;

/// Which question a cache entry answers.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// Label-level `a ⊆ b`, keyed on two label ids.
    Subset,
    /// Pair-level `x` may-flow-to `y`, keyed on two pair ids.
    Flow,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INSERTS: AtomicU64 = AtomicU64::new(0);
static FAST_HITS: AtomicU64 = AtomicU64::new(0);

/// Test-only fault hooks for the conformance testkit.
///
/// Laminar's correctness argument for the memo cache is that it is
/// *semantically invisible*: every verdict must be bit-identical with
/// the cache disabled, thrashing, or mid-eviction. These hooks let the
/// testkit force each of those regimes without changing the enforcement
/// code under test. The default mode ([`fault::FaultMode::None`]) takes
/// none of the fault branches, so merely compiling the feature in does
/// not perturb behaviour.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

    /// Which cache fault regime is armed, process-wide.
    #[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
    pub enum FaultMode {
        /// No fault: normal cache behaviour.
        #[default]
        None,
        /// Every probe misses and recomputes; nothing is inserted. The
        /// cache is effectively disabled.
        ForceMiss,
        /// Every insert is preceded by a whole-shard eviction, so the
        /// cache permanently thrashes at size ≤ 1.
        EvictionStorm,
        /// Periodically clears *all* shards mid-run (an adversarial
        /// epoch boundary on every 32nd insert).
        EpochChurn,
    }

    static MODE: AtomicU8 = AtomicU8::new(0);
    pub(super) static CHURN_TICK: AtomicU64 = AtomicU64::new(0);

    /// Arms a fault mode for every subsequent cache probe.
    pub fn set_fault_mode(mode: FaultMode) {
        MODE.store(mode as u8, Ordering::SeqCst);
    }

    /// The currently armed fault mode.
    #[must_use]
    pub fn fault_mode() -> FaultMode {
        match MODE.load(Ordering::SeqCst) {
            1 => FaultMode::ForceMiss,
            2 => FaultMode::EvictionStorm,
            3 => FaultMode::EpochChurn,
            _ => FaultMode::None,
        }
    }
}

/// A single-round SplitMix64-style hasher for the cache maps. The keys
/// are already well-distributed 64-bit id packs, so the default
/// (DoS-resistant, multi-round) SipHash would cost more than the memo
/// lookup saves; one avalanche round is plenty and keeps the cached
/// path competitive with the raw structural walk.
#[derive(Default, Clone, Copy, Debug)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_isize(&mut self, v: isize) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = (self.0 ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = z ^ (z >> 31);
    }
}

#[derive(Default, Clone, Copy, Debug)]
struct KeyHashBuilder;

impl std::hash::BuildHasher for KeyHashBuilder {
    type Hasher = KeyHasher;
    fn build_hasher(&self) -> KeyHasher {
        KeyHasher::default()
    }
}

/// One cache shard: the memo map plus its own eviction counters.
///
/// Eviction is a *per-shard* event (one shard clearing says nothing
/// about the other fifteen), so the counters live here and
/// [`flow_cache_stats`] sums them into the aggregate — a global atomic
/// would conflate shards and, worse, could not be reset coherently with
/// the maps it describes.
#[derive(Default)]
struct ShardState {
    map: HashMap<(u64, CheckKind), bool, KeyHashBuilder>,
    /// Whole-shard clears this shard has performed.
    evictions: u64,
    /// Entries discarded across all of this shard's clears.
    evicted_entries: u64,
}

impl ShardState {
    /// Clears the shard, recording the eviction in its counters.
    fn evict(&mut self) {
        self.evicted_entries += self.map.len() as u64;
        self.map.clear();
        self.evictions += 1;
    }
}

type Shard = Mutex<ShardState>;

fn shards() -> &'static Vec<Shard> {
    static CACHE: OnceLock<Vec<Shard>> = OnceLock::new();
    CACHE.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(ShardState::default())).collect())
}

fn key(a: u32, b: u32) -> u64 {
    (u64::from(a) << 32) | u64::from(b)
}

fn shard_for(k: u64) -> &'static Shard {
    let mix = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &shards()[(mix >> 57) as usize & (SHARDS - 1)]
}

/// Decision-trace hook for the audit subsystem: reports a *computed*
/// probe verdict to `laminar-obs`. `#[cold]` and called only behind an
/// `enabled()` check, so the disabled-mode probe cost is one relaxed
/// atomic load. Cache hits are deliberately *not* traced — a hit replays
/// a verdict this hook already recorded when it was computed, and
/// re-logging every memoized check would make tracing cost proportional
/// to the exact hot path the cache exists to make cheap. The inline
/// fast paths (empty/id-equal operands) are untraced for the same
/// reason: they answer without consulting any state a fault could
/// perturb.
#[cold]
fn trace_probe(k: u64, kind: CheckKind, verdict: bool) {
    laminar_obs::emit(laminar_obs::Event::FlowCheck {
        layer: laminar_obs::Layer::Difc,
        op: match kind {
            CheckKind::Subset => "subset",
            CheckKind::Flow => "flow",
        },
        subject: (k >> 32) as u32,
        object: k as u32,
        verdict: if verdict {
            laminar_obs::Verdict::Allow
        } else {
            laminar_obs::Verdict::Deny
        },
        cache_hit: false,
    });
}

/// One cache probe: returns the memoized verdict or computes, records
/// and returns it.
fn probe(k: u64, kind: CheckKind, compute: impl FnOnce() -> bool) -> bool {
    #[cfg(feature = "fault-injection")]
    if fault::fault_mode() == fault::FaultMode::ForceMiss {
        MISSES.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        if laminar_obs::enabled() {
            trace_probe(k, kind, v);
        }
        return v;
    }
    let shard = shard_for(k);
    if let Some(&v) =
        shard.lock().unwrap_or_else(PoisonError::into_inner).map.get(&(k, kind))
    {
        HITS.fetch_add(1, Ordering::Relaxed);
        return v;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    // Compute outside the lock: subset math is cheap, and a Flow miss
    // recursively probes Subset entries in other shards.
    let v = compute();
    #[cfg(feature = "fault-injection")]
    match fault::fault_mode() {
        fault::FaultMode::EvictionStorm => {
            shard.lock().unwrap_or_else(PoisonError::into_inner).evict();
        }
        fault::FaultMode::EpochChurn
            if fault::CHURN_TICK.fetch_add(1, Ordering::Relaxed) % 32 == 31 =>
        {
            for s in shards() {
                s.lock().unwrap_or_else(PoisonError::into_inner).evict();
            }
        }
        _ => {}
    }
    let mut st = shard.lock().unwrap_or_else(PoisonError::into_inner);
    if st.map.len() >= MAX_SHARD_ENTRIES {
        st.evict();
    }
    st.map.insert((k, kind), v);
    INSERTS.fetch_add(1, Ordering::Relaxed);
    drop(st);
    if laminar_obs::enabled() {
        trace_probe(k, kind, v);
    }
    v
}

/// Memoized subset check `a ⊆ b`.
///
/// Fast paths (no lock): `a` empty or `a` and `b` interned to the same
/// id → `true`; `b` empty (and `a` not) → `false`.
pub(crate) fn cached_subset(a: &Label, b: &Label) -> bool {
    if a.is_empty() || a.id() == b.id() {
        FAST_HITS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if b.is_empty() {
        FAST_HITS.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    probe(key(a.id().as_u32(), b.id().as_u32()), CheckKind::Subset, || a.is_subset_of(b))
}

/// Memoized pair-level flow check `from` → `to`.
///
/// Fast paths (no lock): identical pair ids (flow is reflexive) and the
/// unlabeled-source/empty-integrity-sink case, which is the overwhelming
/// majority on an incrementally-deployed system where most resources are
/// unlabeled.
pub(crate) fn cached_flow(from: &SecPair, to: &SecPair) -> bool {
    if from.id() == to.id() {
        FAST_HITS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if from.is_unlabeled() && to.integrity().is_empty() {
        FAST_HITS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    probe(key(from.id().as_u32(), to.id().as_u32()), CheckKind::Flow, || {
        cached_subset(from.secrecy(), to.secrecy())
            && cached_subset(to.integrity(), from.integrity())
    })
}

/// A point-in-time snapshot of the flow-check cache counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowCacheStats {
    /// Probes answered from the memo table.
    pub hits: u64,
    /// Probes that had to compute the verdict.
    pub misses: u64,
    /// Verdicts inserted into the memo table.
    pub inserts: u64,
    /// Checks answered by the inline fast paths (empty/id-equal), never
    /// touching a lock.
    pub fast_hits: u64,
    /// Shard-clear evictions, summed over all shards (each shard counts
    /// its own clears; a single shard clearing is not a whole-cache
    /// epoch).
    pub evictions: u64,
    /// Memoized entries discarded by those evictions, summed over all
    /// shards.
    pub evicted_entries: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl FlowCacheStats {
    /// Fraction of all checks answered without recomputation
    /// (`(hits + fast_hits) / total`), in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let answered = self.hits + self.fast_hits;
        let total = answered + self.misses;
        if total == 0 {
            0.0
        } else {
            answered as f64 / total as f64
        }
    }
}

/// Snapshots the global cache counters. The eviction figures are the
/// per-shard counters summed into a whole-cache aggregate (re-exported
/// through `laminar::stats` for tests and benchmarks).
#[must_use]
pub fn flow_cache_stats() -> FlowCacheStats {
    let mut evictions = 0;
    let mut evicted_entries = 0;
    let mut entries = 0;
    for s in shards() {
        let st = s.lock().unwrap_or_else(PoisonError::into_inner);
        evictions += st.evictions;
        evicted_entries += st.evicted_entries;
        entries += st.map.len();
    }
    FlowCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        inserts: INSERTS.load(Ordering::Relaxed),
        fast_hits: FAST_HITS.load(Ordering::Relaxed),
        evictions,
        evicted_entries,
        entries,
    }
}

/// Clears the memo table and zeroes every counter, including the
/// per-shard eviction counters, so consecutive test runs start from an
/// identical baseline.
///
/// Intended for benchmarks and tests that measure hit rates; safe (if
/// noisy for concurrent measurements) at any time, since entries are
/// pure memoizations and will simply be recomputed.
pub fn reset_flow_cache() {
    for s in shards() {
        let mut st = s.lock().unwrap_or_else(PoisonError::into_inner);
        st.map.clear();
        st.evictions = 0;
        st.evicted_entries = 0;
    }
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    INSERTS.store(0, Ordering::Relaxed);
    FAST_HITS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    fn l(tags: &[u64]) -> Label {
        Label::from_tags(tags.iter().map(|&n| Tag::from_raw(n)))
    }

    #[test]
    fn cached_subset_matches_oracle() {
        let cases =
            [l(&[]), l(&[200_001]), l(&[200_001, 200_002]), l(&[200_002]), l(&[200_003])];
        for a in &cases {
            for b in &cases {
                // Twice: once to populate, once to hit.
                assert_eq!(cached_subset(a, b), a.is_subset_of(b), "{a} vs {b}");
                assert_eq!(cached_subset(a, b), a.is_subset_of(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cached_flow_matches_oracle() {
        let pairs = [
            SecPair::unlabeled(),
            SecPair::secrecy_only(l(&[200_010])),
            SecPair::integrity_only(l(&[200_011])),
            SecPair::new(l(&[200_010]), l(&[200_011])),
        ];
        for a in &pairs {
            for b in &pairs {
                assert_eq!(cached_flow(a, b), a.flows_to(b), "{a} -> {b}");
                assert_eq!(cached_flow(a, b), a.flows_to(b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn repeat_checks_hit() {
        let a = l(&[200_020, 200_021]);
        let b = l(&[200_020, 200_021, 200_022]);
        cached_subset(&a, &b); // populate
        let before = flow_cache_stats();
        for _ in 0..100 {
            assert!(cached_subset(&a, &b));
        }
        let after = flow_cache_stats();
        assert!(after.hits >= before.hits + 100);
    }

    #[test]
    fn fast_paths_bypass_the_map() {
        let e = l(&[]);
        let x = l(&[200_030]);
        let before = flow_cache_stats();
        assert!(cached_subset(&e, &x));
        assert!(cached_subset(&x, &x));
        assert!(!cached_subset(&x, &e));
        let after = flow_cache_stats();
        assert!(after.fast_hits >= before.fast_hits + 3);
        assert_eq!(after.inserts, before.inserts);
    }
}
