//! Error types for DIFC rule violations.

use crate::label::Label;
use std::error::Error;
use std::fmt;

/// An information flow that violates the secrecy or integrity rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// The secrecy rule `Sx ⊆ Sy` failed: `leaked` are the secret tags
    /// the destination is not allowed to see.
    Secrecy {
        /// Secrecy label of the source.
        source: Label,
        /// Secrecy label of the destination.
        dest: Label,
        /// `Sx - Sy`: the tags that would leak.
        leaked: Label,
    },
    /// The integrity rule `Iy ⊆ Ix` failed: `missing` are the integrity
    /// tags the destination requires but the source does not carry.
    Integrity {
        /// Integrity label of the source.
        source: Label,
        /// Integrity label of the destination.
        dest: Label,
        /// `Iy - Ix`: endorsements the source lacks.
        missing: Label,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Secrecy { source, dest, leaked } => write!(
                f,
                "secrecy violation: flow from S{source} to S{dest} would leak {leaked}"
            ),
            FlowError::Integrity { source, dest, missing } => write!(
                f,
                "integrity violation: flow from I{source} to I{dest} lacks endorsement {missing}"
            ),
        }
    }
}

impl Error for FlowError {}

/// A label change rejected by the label-change rule of §3.2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelChangeError {
    /// Gaining `tags` requires `t+` capabilities the principal lacks.
    MissingAdd {
        /// Tags being added without the plus capability.
        tags: Label,
    },
    /// Dropping `tags` requires `t-` capabilities the principal lacks.
    MissingRemove {
        /// Tags being dropped without the minus capability.
        tags: Label,
    },
}

impl fmt::Display for LabelChangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelChangeError::MissingAdd { tags } => {
                write!(f, "label change requires missing add capabilities for {tags}")
            }
            LabelChangeError::MissingRemove { tags } => {
                write!(f, "label change requires missing remove capabilities for {tags}")
            }
        }
    }
}

impl Error for LabelChangeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    #[test]
    fn errors_display_offending_tags() {
        let t1 = Label::singleton(Tag::from_raw(1));
        let e = FlowError::Secrecy {
            source: t1.clone(),
            dest: Label::empty(),
            leaked: t1.clone(),
        };
        let msg = e.to_string();
        assert!(msg.contains("secrecy violation"), "{msg}");
        assert!(msg.contains("t1"), "{msg}");

        let e = LabelChangeError::MissingRemove { tags: t1 };
        assert!(e.to_string().contains("remove"), "{e}");
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FlowError>();
        assert_err::<LabelChangeError>();
    }
}
