//! # laminar-difc — the decentralized information flow control model
//!
//! A faithful, standalone implementation of the DIFC model used by
//! *Laminar: Practical Fine-Grained Decentralized Information Flow
//! Control* (Roy, Porter, Bond, McKinley, Witchel — PLDI 2009), §3.
//!
//! The model has three abstractions:
//!
//! * [`Tag`] — a short, opaque 64-bit token with no inherent meaning.
//! * [`Label`] — an immutable set of tags; subset ordering forms a
//!   lattice whose bottom is the implicit empty label of every unlabeled
//!   resource. Every data object and principal carries a [`SecPair`] of a
//!   secrecy label and an integrity label.
//! * [`Capability`] / [`CapSet`] — per-tag `t+` (classify/endorse) and
//!   `t-` (declassify/drop-endorsement) privileges held by principals.
//!
//! Information flow from `x` to `y` is legal iff `Sx ⊆ Sy` (secrecy —
//! Bell–LaPadula) and `Iy ⊆ Ix` (integrity — Biba); see
//! [`SecPair::can_flow_to`]. Principals change their own labels only
//! explicitly, under the label-change rule checked by
//! [`check_label_change`].
//!
//! This crate is pure model: it has no threads, no OS and no runtime.
//! The [`laminar-os`](https://docs.rs/laminar-os) and `laminar` crates
//! build the enforcement machinery on top of it.
//!
//! ## The hot path: interning and the flow-check cache
//!
//! Mirroring the §5 prototype's label-comparison memoization, labels
//! and pairs are *interned* ([`intern`]): each distinct tag-set has one
//! canonical allocation and a stable 32-bit id ([`LabelId`]/[`PairId`]),
//! so equality and hashing are O(1). Subset and flow verdicts are
//! memoized in a global sharded cache ([`cache`]) keyed on those ids —
//! [`Label::is_subset_of_cached`], [`SecPair::flows_to_cached`] and
//! [`SecPair::can_flow_to_cached`] are the entry points the VM
//! barriers, LSM hooks and syscall checks use, with hit/miss/insert
//! counters observable via [`flow_cache_stats`].
//!
//! ## Example: the calendar scenario of §3.3
//!
//! ```
//! use laminar_difc::{CapSet, Capability, Label, SecPair, TagAllocator};
//!
//! let tags = TagAllocator::new();
//! let a = tags.fresh(); // Alice's secrecy tag
//!
//! // Alice's calendar file is labeled {S(a)}.
//! let calendar = SecPair::secrecy_only(Label::singleton(a));
//!
//! // The scheduling server holds only a+ (it may taint itself, but
//! // never declassify).
//! let server_caps = CapSet::from_caps([Capability::plus(a)]);
//!
//! // The server thread taints itself with {S(a)} to read the file...
//! let thread = SecPair::secrecy_only(Label::singleton(a));
//! assert!(calendar.can_flow_to(&thread).is_ok());
//!
//! // ...and afterwards cannot write to the unlabeled network:
//! assert!(thread.can_flow_to(&SecPair::unlabeled()).is_err());
//!
//! // Nor can it shed the taint — it lacks a-:
//! assert!(laminar_difc::check_label_change(
//!     thread.secrecy(), &Label::empty(), &server_caps).is_err());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
mod caps;
mod error;
pub mod intern;
mod label;
mod pair;
mod tag;

pub use cache::{flow_cache_stats, reset_flow_cache, CheckKind, FlowCacheStats};
pub use caps::{CapKind, CapSet, Capability};
pub use error::{FlowError, LabelChangeError};
pub use intern::{intern_stats, InternStats, LabelId, PairId};
pub use label::{Label, LabelType};
pub use pair::{check_label_change, check_pair_change, SecPair};
pub use tag::{Tag, TagAllocator};
