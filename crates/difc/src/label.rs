//! Labels: immutable sets of tags forming a lattice under subset ordering.
//!
//! A label is a set of [`Tag`]s (§3.1). The subset relation imposes a
//! partial order on labels which forms a lattice (Denning's lattice model
//! of secure information flow). At the bottom of the lattice sits the
//! *empty* label, carried implicitly by every unlabeled resource — this is
//! what makes Laminar incrementally deployable.
//!
//! Following §5.1, labels are immutable, opaque objects backed by a sorted
//! array of 64-bit tags; mutating operations such as [`Label::union`]
//! return a new label. Immutability means label objects can be freely
//! shared between data objects, security regions and threads with no
//! synchronisation.
//!
//! Labels are additionally *interned* (hash-consed, see
//! [`crate::intern`]): each distinct tag-set has one canonical backing
//! allocation and a stable 32-bit [`LabelId`], so equality and hashing
//! are O(1) integer operations and subset verdicts can be memoized by
//! id (see [`crate::cache`]) — the label-comparison caching of §5.

use crate::cache;
use crate::intern::{self, LabelId};
use crate::tag::Tag;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Whether a label is a secrecy label or an integrity label.
///
/// Mirrors the `LabelType` argument of the paper's
/// `getCurrentLabel(LabelType t)` API (Fig. 2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LabelType {
    /// Secrecy: prevents sensitive information from escaping.
    Secrecy,
    /// Integrity: prevents external information from corrupting.
    Integrity,
}

impl fmt::Display for LabelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelType::Secrecy => f.write_str("secrecy"),
            LabelType::Integrity => f.write_str("integrity"),
        }
    }
}

/// An immutable set of tags.
///
/// Cloning a label is O(1): the sorted tag array is shared behind an
/// [`Arc`], exactly as the paper shares immutable `Labels` objects between
/// the heap, security regions and threads.
///
/// # Examples
///
/// ```
/// use laminar_difc::{Label, Tag};
///
/// let a = Tag::from_raw(1);
/// let b = Tag::from_raw(2);
/// let la = Label::from_tags([a]);
/// let lab = Label::from_tags([a, b]);
/// assert!(la.is_subset_of(&lab));
/// assert_eq!(la.union(&Label::from_tags([b])), lab);
/// ```
#[derive(Clone)]
pub struct Label {
    // Sorted, deduplicated, hash-consed: every label with the same
    // tag-set shares this one canonical allocation, and `id` is its
    // stable process-global name. Equality and hashing use only `id`.
    tags: Arc<[Tag]>,
    id: LabelId,
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Label {}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Label {
    fn from_sorted(sorted: Vec<Tag>) -> Self {
        let (id, tags) = intern::intern_label(sorted);
        Label { tags, id }
    }

    /// The empty label `{}` — the implicit label of every unlabeled
    /// resource, and the bottom of the secrecy lattice (top of integrity).
    #[must_use]
    pub fn empty() -> Self {
        Label { tags: intern::empty_tags(), id: LabelId::EMPTY }
    }

    /// Builds a label from any collection of tags, deduplicating.
    #[must_use]
    pub fn from_tags<I: IntoIterator<Item = Tag>>(tags: I) -> Self {
        let mut v: Vec<Tag> = tags.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Label::from_sorted(v)
    }

    /// A label containing a single tag.
    #[must_use]
    pub fn singleton(tag: Tag) -> Self {
        Label::from_sorted(vec![tag])
    }

    /// The stable intern id of this label's tag-set: equal labels have
    /// equal ids, and vice versa, for the life of the process.
    #[must_use]
    pub fn id(&self) -> LabelId {
        self.id
    }

    /// Returns `true` if this is the empty label.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of tags in the label.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Returns `true` if `tag` is a member of this label.
    #[must_use]
    pub fn contains(&self, tag: Tag) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// Subset test: the paper's `isSubsetOf()` operation, and the order
    /// relation of the label lattice.
    ///
    /// This is the *uncached* structural check (plus the trivial
    /// id-equality and length fast paths) — the oracle that
    /// [`Self::is_subset_of_cached`] memoizes. Enforcement hot paths
    /// should prefer the cached variant.
    #[must_use]
    pub fn is_subset_of(&self, other: &Label) -> bool {
        if self.id == other.id {
            return true;
        }
        if self.tags.len() > other.tags.len() {
            return false;
        }
        // Both sorted: single merge pass.
        let mut oi = 0;
        'outer: for t in self.tags.iter() {
            while oi < other.tags.len() {
                match other.tags[oi].cmp(t) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Memoized subset test: consults the global flow-check cache (see
    /// [`crate::cache`]), with inline fast paths for the empty label and
    /// id-equal operands. Agrees with [`Self::is_subset_of`] on every
    /// input; this is what the enforcement layers call.
    #[must_use]
    pub fn is_subset_of_cached(&self, other: &Label) -> bool {
        cache::cached_subset(self, other)
    }

    /// Least upper bound in the lattice: set union. Returns a new label
    /// (labels are immutable); if the union equals one operand, that
    /// operand's allocation is reused.
    #[must_use]
    pub fn union(&self, other: &Label) -> Label {
        if self.is_subset_of_cached(other) {
            return other.clone();
        }
        if other.is_subset_of_cached(self) {
            return self.clone();
        }
        let mut v = Vec::with_capacity(self.tags.len() + other.tags.len());
        v.extend_from_slice(&self.tags);
        v.extend_from_slice(&other.tags);
        v.sort_unstable();
        v.dedup();
        Label::from_sorted(v)
    }

    /// Greatest lower bound in the lattice: set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Label) -> Label {
        let v: Vec<Tag> =
            self.tags.iter().copied().filter(|t| other.contains(*t)).collect();
        Label::from_sorted(v)
    }

    /// Set difference `self - other`: the tags of `self` not in `other`.
    ///
    /// Used by the label-change rule of §3.2: a change from `L1` to `L2`
    /// needs add-capabilities for `L2 - L1` and drop-capabilities for
    /// `L1 - L2`.
    #[must_use]
    pub fn difference(&self, other: &Label) -> Label {
        let v: Vec<Tag> =
            self.tags.iter().copied().filter(|t| !other.contains(*t)).collect();
        Label::from_sorted(v)
    }

    /// Iterates over the tags in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.tags.iter().copied()
    }

    /// The tags as a sorted slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Tag] {
        &self.tags
    }
}

impl Default for Label {
    fn default() -> Self {
        Label::empty()
    }
}

impl FromIterator<Tag> for Label {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        Label::from_tags(iter)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tag {
        Tag::from_raw(n)
    }

    #[test]
    fn empty_is_bottom() {
        let e = Label::empty();
        let l = Label::from_tags([t(3), t(1)]);
        assert!(e.is_subset_of(&l));
        assert!(e.is_subset_of(&e));
        assert!(!l.is_subset_of(&e));
        assert!(e.is_empty());
        assert_eq!(e, Label::default());
    }

    #[test]
    fn from_tags_sorts_and_dedups() {
        let l = Label::from_tags([t(5), t(1), t(5), t(3)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.as_slice(), &[t(1), t(3), t(5)]);
    }

    #[test]
    fn subset_is_partial_order() {
        let a = Label::from_tags([t(1)]);
        let ab = Label::from_tags([t(1), t(2)]);
        let c = Label::from_tags([t(3)]);
        assert!(a.is_subset_of(&ab));
        assert!(!ab.is_subset_of(&a));
        assert!(!a.is_subset_of(&c));
        assert!(!c.is_subset_of(&a));
        // reflexive
        assert!(ab.is_subset_of(&ab));
    }

    #[test]
    fn union_is_lub() {
        let a = Label::from_tags([t(1)]);
        let b = Label::from_tags([t(2)]);
        let u = a.union(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(u, Label::from_tags([t(1), t(2)]));
        // Union with subset reuses operand.
        assert_eq!(a.union(&u), u);
        assert_eq!(u.union(&a), u);
    }

    #[test]
    fn intersection_and_difference() {
        let ab = Label::from_tags([t(1), t(2)]);
        let bc = Label::from_tags([t(2), t(3)]);
        assert_eq!(ab.intersection(&bc), Label::singleton(t(2)));
        assert_eq!(ab.difference(&bc), Label::singleton(t(1)));
        assert_eq!(bc.difference(&ab), Label::singleton(t(3)));
    }

    #[test]
    fn contains_and_iter() {
        let l = Label::from_tags([t(7), t(9)]);
        assert!(l.contains(t(7)));
        assert!(!l.contains(t(8)));
        let collected: Vec<Tag> = l.iter().collect();
        assert_eq!(collected, vec![t(7), t(9)]);
    }

    #[test]
    fn display_formats() {
        let l = Label::from_tags([t(2), t(1)]);
        assert_eq!(format!("{l}"), "{t1,t2}");
        assert_eq!(format!("{:?}", Label::empty()), "{}");
    }

    #[test]
    fn collect_from_iterator() {
        let l: Label = [t(4), t(2)].into_iter().collect();
        assert_eq!(l.as_slice(), &[t(2), t(4)]);
    }

    #[test]
    fn interning_shares_one_allocation() {
        let a = Label::from_tags([t(31), t(32)]);
        let b = Label::from_tags([t(32), t(31), t(31)]);
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        // Hash-consed: equal labels point at the same canonical slice.
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        assert_ne!(a.id(), Label::singleton(t(31)).id());
        assert_eq!(Label::empty().id(), crate::LabelId::EMPTY);
    }

    #[test]
    fn cached_subset_agrees_with_structural() {
        let cases = [
            Label::empty(),
            Label::singleton(t(41)),
            Label::from_tags([t(41), t(42)]),
            Label::from_tags([t(42), t(43)]),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(a.is_subset_of_cached(b), a.is_subset_of(b), "{a} vs {b}");
            }
        }
    }
}
