//! Secrecy/integrity label pairs and the DIFC flow rules of §3.2.
//!
//! Every data object and principal `x` carries two labels: `Sx` for
//! secrecy and `Ix` for integrity, written `{S(s), I(i)}` in the paper.
//! Information may flow from a source `x` to a destination `y` iff
//!
//! * **secrecy rule** (Bell–LaPadula): `Sx ⊆ Sy` — no read up, no write
//!   down; and
//! * **integrity rule** (Biba): `Iy ⊆ Ix` — no read down, no write up.

use crate::cache;
use crate::caps::CapSet;
use crate::error::{FlowError, LabelChangeError};
use crate::intern::{self, PairId};
use crate::label::{Label, LabelType};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A `{S(..), I(..)}` pair: the complete DIFC labeling of one data object
/// or principal.
///
/// # Examples
///
/// ```
/// use laminar_difc::{Label, SecPair, Tag};
///
/// let a = Tag::from_raw(1);
/// let secret = SecPair::new(Label::singleton(a), Label::empty());
/// let public = SecPair::unlabeled();
/// // Secret data may not flow to a public sink...
/// assert!(secret.can_flow_to(&public).is_err());
/// // ...but a public source may flow to a secret sink.
/// assert!(public.can_flow_to(&secret).is_ok());
/// ```
#[derive(Clone)]
pub struct SecPair {
    secrecy: Label,
    integrity: Label,
    // Interned identity of the (secrecy id, integrity id) combination:
    // makes pair equality/hashing O(1) and keys the Flow memo cache.
    id: PairId,
}

impl PartialEq for SecPair {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for SecPair {}

impl Hash for SecPair {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Default for SecPair {
    fn default() -> Self {
        SecPair::unlabeled()
    }
}

impl SecPair {
    /// Creates a pair from explicit secrecy and integrity labels.
    #[must_use]
    pub fn new(secrecy: Label, integrity: Label) -> Self {
        let id = intern::intern_pair(secrecy.id(), integrity.id());
        SecPair { secrecy, integrity, id }
    }

    /// The implicit `{S(), I()}` pair of every unlabeled resource.
    #[must_use]
    pub fn unlabeled() -> Self {
        SecPair {
            secrecy: Label::empty(),
            integrity: Label::empty(),
            id: PairId::UNLABELED,
        }
    }

    /// The stable intern id of this pair: equal pairs have equal ids,
    /// and vice versa, for the life of the process.
    #[must_use]
    pub fn id(&self) -> PairId {
        self.id
    }

    /// A pair with only a secrecy label.
    #[must_use]
    pub fn secrecy_only(secrecy: Label) -> Self {
        SecPair::new(secrecy, Label::empty())
    }

    /// A pair with only an integrity label.
    #[must_use]
    pub fn integrity_only(integrity: Label) -> Self {
        SecPair::new(Label::empty(), integrity)
    }

    /// The secrecy label `Sx`.
    #[must_use]
    pub fn secrecy(&self) -> &Label {
        &self.secrecy
    }

    /// The integrity label `Ix`.
    #[must_use]
    pub fn integrity(&self) -> &Label {
        &self.integrity
    }

    /// Selects one of the two labels by [`LabelType`].
    #[must_use]
    pub fn label(&self, ty: LabelType) -> &Label {
        match ty {
            LabelType::Secrecy => &self.secrecy,
            LabelType::Integrity => &self.integrity,
        }
    }

    /// Returns a copy with the given label replaced.
    #[must_use]
    pub fn with_label(&self, ty: LabelType, label: Label) -> SecPair {
        match ty {
            LabelType::Secrecy => SecPair::new(label, self.integrity.clone()),
            LabelType::Integrity => SecPair::new(self.secrecy.clone(), label),
        }
    }

    /// True iff both labels are empty (the resource is unlabeled).
    #[must_use]
    pub fn is_unlabeled(&self) -> bool {
        self.secrecy.is_empty() && self.integrity.is_empty()
    }

    /// Checks the flow rules for information moving from `self` (source
    /// `x`) to `to` (destination `y`).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Secrecy`] if `Sx ⊄ Sy` (the write would leak
    /// secret tags) or [`FlowError::Integrity`] if `Iy ⊄ Ix` (the write
    /// would launder low-integrity data into a high-integrity sink).
    pub fn can_flow_to(&self, to: &SecPair) -> Result<(), FlowError> {
        if !self.secrecy.is_subset_of(&to.secrecy) {
            return Err(FlowError::Secrecy {
                source: self.secrecy.clone(),
                dest: to.secrecy.clone(),
                leaked: self.secrecy.difference(&to.secrecy),
            });
        }
        if !to.integrity.is_subset_of(&self.integrity) {
            return Err(FlowError::Integrity {
                source: self.integrity.clone(),
                dest: to.integrity.clone(),
                missing: to.integrity.difference(&self.integrity),
            });
        }
        Ok(())
    }

    /// Boolean form of [`Self::can_flow_to`], for hot paths that do not
    /// need the diagnostic payload (e.g. VM barriers).
    ///
    /// This is the *uncached* structural check — the oracle that
    /// [`Self::flows_to_cached`] memoizes.
    #[must_use]
    pub fn flows_to(&self, to: &SecPair) -> bool {
        self.secrecy.is_subset_of(&to.secrecy)
            && to.integrity.is_subset_of(&self.integrity)
    }

    /// Memoized form of [`Self::flows_to`]: one lookup in the global
    /// flow-check cache keyed on the two pair ids, with inline fast
    /// paths for id-equal pairs and the unlabeled-source common case.
    /// Agrees with [`Self::flows_to`] on every input; this is what the
    /// enforcement layers (VM barriers, LSM hooks, syscalls) call.
    #[must_use]
    pub fn flows_to_cached(&self, to: &SecPair) -> bool {
        cache::cached_flow(self, to)
    }

    /// Memoized form of [`Self::can_flow_to`]: answers the common
    /// (allowed) case from the cache; only a *denied* flow pays for
    /// building the diagnostic payload, via the uncached check.
    ///
    /// # Errors
    ///
    /// Exactly as [`Self::can_flow_to`].
    pub fn can_flow_to_cached(&self, to: &SecPair) -> Result<(), FlowError> {
        if self.flows_to_cached(to) {
            Ok(())
        } else {
            self.can_flow_to(to)
        }
    }

    /// Componentwise least upper bound for *data* combining two sources:
    /// union of secrecy (more secret), intersection of integrity (less
    /// trusted).
    #[must_use]
    pub fn join(&self, other: &SecPair) -> SecPair {
        SecPair::new(
            self.secrecy.union(&other.secrecy),
            self.integrity.intersection(&other.integrity),
        )
    }
}

impl fmt::Debug for SecPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{S{:?},I{:?}}}", self.secrecy, self.integrity)
    }
}

impl fmt::Display for SecPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Checks the label-change rule of §3.2.
///
/// A principal with capability set `caps` may change a label from `from`
/// to `to` iff it can add every tag it is gaining and drop every tag it is
/// losing:
///
/// ```text
/// (L2 - L1) ⊆ Cp+   and   (L1 - L2) ⊆ Cp-
/// ```
///
/// Label changes are always explicit in Laminar; implicit changes would be
/// a covert storage channel (Zeldovich et al., cited in §3.2).
///
/// # Errors
///
/// Reports the offending tags when a required capability is missing.
pub fn check_label_change(
    from: &Label,
    to: &Label,
    caps: &CapSet,
) -> Result<(), LabelChangeError> {
    let added = to.difference(from);
    let dropped = from.difference(to);
    let missing_plus: Vec<_> = added.iter().filter(|&t| !caps.can_add(t)).collect();
    if !missing_plus.is_empty() {
        return Err(LabelChangeError::MissingAdd {
            tags: Label::from_tags(missing_plus),
        });
    }
    let missing_minus: Vec<_> = dropped.iter().filter(|&t| !caps.can_remove(t)).collect();
    if !missing_minus.is_empty() {
        return Err(LabelChangeError::MissingRemove {
            tags: Label::from_tags(missing_minus),
        });
    }
    Ok(())
}

/// Checks both halves of a pair change: secrecy `from.S → to.S` and
/// integrity `from.I → to.I`, each under the label-change rule.
///
/// # Errors
///
/// Returns the first failing component's error.
pub fn check_pair_change(
    from: &SecPair,
    to: &SecPair,
    caps: &CapSet,
) -> Result<(), LabelChangeError> {
    check_label_change(from.secrecy(), to.secrecy(), caps)?;
    check_label_change(from.integrity(), to.integrity(), caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caps::Capability;
    use crate::tag::Tag;

    fn t(n: u64) -> Tag {
        Tag::from_raw(n)
    }
    fn l(tags: &[u64]) -> Label {
        Label::from_tags(tags.iter().map(|&n| t(n)))
    }

    #[test]
    fn secrecy_rule_no_write_down() {
        let secret = SecPair::secrecy_only(l(&[1]));
        let public = SecPair::unlabeled();
        let err = secret.can_flow_to(&public).unwrap_err();
        assert!(matches!(err, FlowError::Secrecy { .. }));
        assert!(public.can_flow_to(&secret).is_ok());
    }

    #[test]
    fn integrity_rule_no_write_up() {
        let high = SecPair::integrity_only(l(&[9]));
        let low = SecPair::unlabeled();
        // Low-integrity source cannot write a high-integrity sink.
        let err = low.can_flow_to(&high).unwrap_err();
        assert!(matches!(err, FlowError::Integrity { .. }));
        // High-integrity source can write a low-integrity sink.
        assert!(high.can_flow_to(&low).is_ok());
    }

    #[test]
    fn flow_requires_subset_not_equality() {
        let s1 = SecPair::secrecy_only(l(&[1]));
        let s12 = SecPair::secrecy_only(l(&[1, 2]));
        assert!(s1.can_flow_to(&s12).is_ok());
        assert!(s12.can_flow_to(&s1).is_err());
    }

    #[test]
    fn flows_to_agrees_with_can_flow_to() {
        let cases = [
            SecPair::unlabeled(),
            SecPair::secrecy_only(l(&[1])),
            SecPair::integrity_only(l(&[2])),
            SecPair::new(l(&[1]), l(&[2])),
            SecPair::new(l(&[1, 3]), l(&[2, 4])),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(a.flows_to(b), a.can_flow_to(b).is_ok(), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn join_combines_sources() {
        let a = SecPair::new(l(&[1]), l(&[8, 9]));
        let b = SecPair::new(l(&[2]), l(&[9]));
        let j = a.join(&b);
        assert_eq!(j.secrecy(), &l(&[1, 2]));
        assert_eq!(j.integrity(), &l(&[9]));
        // Both sources can flow to the join.
        assert!(a.can_flow_to(&j).is_ok());
        assert!(b.can_flow_to(&j).is_ok());
    }

    #[test]
    fn label_change_needs_plus_for_added() {
        let caps = CapSet::from_caps([Capability::plus(t(1))]);
        assert!(check_label_change(&l(&[]), &l(&[1]), &caps).is_ok());
        let err = check_label_change(&l(&[]), &l(&[1, 2]), &caps).unwrap_err();
        assert!(
            matches!(err, LabelChangeError::MissingAdd { ref tags } if tags.contains(t(2)))
        );
    }

    #[test]
    fn label_change_needs_minus_for_dropped() {
        let caps = CapSet::from_caps([Capability::minus(t(1))]);
        assert!(check_label_change(&l(&[1]), &l(&[]), &caps).is_ok());
        let err = check_label_change(&l(&[1, 2]), &l(&[]), &caps).unwrap_err();
        assert!(
            matches!(err, LabelChangeError::MissingRemove { ref tags } if tags.contains(t(2)))
        );
    }

    #[test]
    fn unchanged_tags_need_no_capability() {
        // Changing {1,2} -> {1,3} needs 3+ and 2- only; tag 1 stays.
        let caps = CapSet::from_caps([Capability::plus(t(3)), Capability::minus(t(2))]);
        assert!(check_label_change(&l(&[1, 2]), &l(&[1, 3]), &caps).is_ok());
    }

    #[test]
    fn pair_change_checks_both_components() {
        let from = SecPair::new(l(&[1]), l(&[]));
        let to = SecPair::new(l(&[]), l(&[2]));
        let caps = CapSet::from_caps([Capability::minus(t(1)), Capability::plus(t(2))]);
        assert!(check_pair_change(&from, &to, &caps).is_ok());
        let weak = CapSet::from_caps([Capability::minus(t(1))]);
        assert!(check_pair_change(&from, &to, &weak).is_err());
    }

    #[test]
    fn label_selection_and_replacement() {
        let p = SecPair::new(l(&[1]), l(&[2]));
        assert_eq!(p.label(LabelType::Secrecy), &l(&[1]));
        assert_eq!(p.label(LabelType::Integrity), &l(&[2]));
        let p2 = p.with_label(LabelType::Secrecy, l(&[3]));
        assert_eq!(p2.secrecy(), &l(&[3]));
        assert_eq!(p2.integrity(), &l(&[2]));
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = SecPair::new(l(&[1]), l(&[2]));
        assert_eq!(format!("{p}"), "{S{t1},I{t2}}");
    }
}
