//! Tags: the atoms of the DIFC model.
//!
//! A [`Tag`] is a short, arbitrary token drawn from a large universe of
//! possible values (the paper draws them from a 64-bit space, so "tag
//! exhaustion is not a concern", §4.4). A tag has no inherent meaning;
//! meaning is established by which labels it appears in and which
//! principals hold its capabilities.

use std::fmt;
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

/// An opaque 64-bit DIFC tag.
///
/// Tags are allocated by a [`TagAllocator`] (in a full system, by the
/// kernel's `alloc_tag` syscall, which guarantees uniqueness). The zero
/// value is reserved so that `Option<Tag>` is pointer-sized.
///
/// # Examples
///
/// ```
/// use laminar_difc::TagAllocator;
///
/// let alloc = TagAllocator::new();
/// let a = alloc.fresh();
/// let b = alloc.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(NonZeroU64);

impl Tag {
    /// Creates a tag from a raw non-zero identifier.
    ///
    /// This constructor exists for tests and for deserialising persistent
    /// capability stores; normal code should obtain tags from
    /// [`TagAllocator::fresh`] (or the kernel's `alloc_tag`).
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Tag(NonZeroU64::new(raw).expect("tag identifiers must be non-zero"))
    }

    /// Returns the raw 64-bit identifier of this tag.
    #[must_use]
    pub fn as_raw(self) -> u64 {
        self.0.get()
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Allocates unique tags from the 64-bit tag universe.
///
/// The allocator is the trusted component that guarantees all tags are
/// unique (§4.4: "The OS security module that allocates tags is trusted
/// and ensures that all tags are unique"). It is cheap, lock-free and
/// shareable across threads.
#[derive(Debug)]
pub struct TagAllocator {
    next: AtomicU64,
}

impl TagAllocator {
    /// Creates an allocator whose first tag is `t1`.
    #[must_use]
    pub fn new() -> Self {
        TagAllocator { next: AtomicU64::new(1) }
    }

    /// Allocates a fresh, globally unique tag.
    ///
    /// # Panics
    ///
    /// Panics if the 64-bit tag space is exhausted (practically
    /// unreachable; the paper makes the same argument).
    #[must_use]
    pub fn fresh(&self) -> Tag {
        let raw = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(raw != u64::MAX, "tag universe exhausted");
        Tag::from_raw(raw)
    }

    /// Number of tags allocated so far.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

impl Default for TagAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fresh_tags_are_unique() {
        let alloc = TagAllocator::new();
        let tags: HashSet<Tag> = (0..1000).map(|_| alloc.fresh()).collect();
        assert_eq!(tags.len(), 1000);
        assert_eq!(alloc.allocated(), 1000);
    }

    #[test]
    fn fresh_tags_are_unique_across_threads() {
        let alloc = Arc::new(TagAllocator::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    (0..250).map(|_| alloc.fresh()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for t in h.join().unwrap() {
                assert!(all.insert(t), "duplicate tag allocated");
            }
        }
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn raw_round_trip() {
        let t = Tag::from_raw(42);
        assert_eq!(t.as_raw(), 42);
        assert_eq!(format!("{t}"), "t42");
        assert_eq!(format!("{t:?}"), "t42");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tag_rejected() {
        let _ = Tag::from_raw(0);
    }
}
