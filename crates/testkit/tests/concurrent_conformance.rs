//! The concurrent conformance regime: lanes of single-syscall ops run
//! in parallel over disjoint task sets, and the kernel's own
//! commit-order log supplies the linearization that is then replayed
//! through the single-threaded oracle. Any per-op outcome or final
//! security-state difference is a real serializability violation of the
//! sharded kernel (see `laminar_testkit::concurrent` for the argument).
//!
//! Volume is controlled by `TESTKIT_CONC_*` environment variables (see
//! [`ConcurrentConfig::from_env`]); the defaults replay 4 seeds × 2000
//! traces × 24 ops at 4 worker threads — the 8k-trace CI floor.

use laminar_testkit::{explore_concurrent, ConcurrentConfig};

fn run(cfg: &ConcurrentConfig, regime: &str) {
    match explore_concurrent(cfg) {
        Ok(report) => {
            eprintln!(
                "concurrent conformance [{regime}]: {} traces / {} ops at {} \
                 threads, zero divergences (seeds {:#x}..{:#x})",
                report.traces_run,
                report.ops_run,
                cfg.threads,
                cfg.seeds.first().copied().unwrap_or(0),
                cfg.seeds.last().copied().unwrap_or(0),
            );
        }
        Err(cex) => {
            panic!(
                "concurrent conformance divergence [{regime}] at op {} ({:?}, \
                 deterministic: {}):\n{}\nlinearization:\n{:#?}\nreproduce: \
                 TESTKIT_SEED={:#x} TESTKIT_CONC_THREADS={} cargo test -p \
                 laminar-testkit --test concurrent_conformance",
                cex.divergence.index,
                cex.divergence.op,
                cex.deterministic,
                cex.divergence.detail,
                cex.lin,
                cex.seed,
                cex.threads,
            );
        }
    }
}

/// The CI matrix: every witnessed commit order across the seed matrix
/// must replay divergence-free through the oracle.
#[test]
fn concurrent_commit_orders_conform() {
    run(&ConcurrentConfig::from_env(), "default");
}

/// A narrower but deeper regime: more threads than task shards divide
/// evenly into, longer traces, fewer of them. Exercises shard-footprint
/// restarts under higher lane counts regardless of the env knobs.
#[test]
fn concurrent_commit_orders_conform_at_eight_threads() {
    let cfg = ConcurrentConfig {
        seeds: vec![0x8EED_0001, 0x8EED_0002],
        traces_per_seed: 150,
        ops_per_trace: 48,
        threads: 8,
    };
    run(&cfg, "8-thread");
}
