//! The conformance matrix: the seeded explorer run as `#[test]`s, once
//! per fault regime.
//!
//! Fault modes and the flow-check cache are process-global, so every
//! test here takes a shared lock — regimes must not bleed into each
//! other. Volume is controlled by `TESTKIT_*` environment variables
//! (see [`ExploreConfig::from_env`]); the defaults replay
//! 8 seeds × 500 traces × 28 ops per regime.

use laminar_testkit::{explore, ExploreConfig, FaultMode, FaultPlan};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run(plan: FaultPlan, regime: &str) {
    let _guard = serialize();
    laminar_difc::reset_flow_cache();
    let cfg = ExploreConfig::from_env(plan);
    match explore(&cfg) {
        Ok(report) => {
            eprintln!(
                "conformance [{regime}]: {} traces / {} ops, zero divergences \
                 (seeds {:#x}..{:#x})",
                report.traces_run,
                report.ops_run,
                cfg.seeds.first().copied().unwrap_or(0),
                cfg.seeds.last().copied().unwrap_or(0),
            );
        }
        Err(cex) => {
            panic!(
                "conformance divergence [{regime}] (trace seed {:#018x}, shrunk to \
                 {} ops):\n{}\nreproduce: TESTKIT_SEED={:#x} cargo test -p \
                 laminar-testkit\ncommit this regression test:\n\n{}",
                cex.seed,
                cex.ops.len(),
                cex.divergence.detail,
                cex.seed,
                laminar_testkit::render_regression_test(&cex),
            );
        }
    }
}

#[test]
fn baseline_conformance() {
    run(FaultPlan::none(), "baseline");
}

#[test]
fn conformance_with_cache_disabled() {
    run(FaultPlan::cache(FaultMode::ForceMiss), "force-miss");
}

#[test]
fn conformance_under_eviction_storm() {
    run(FaultPlan::cache(FaultMode::EvictionStorm), "eviction-storm");
}

#[test]
fn conformance_under_epoch_churn_with_lock_poisoning() {
    run(FaultPlan::cache(FaultMode::EpochChurn).with_poison(8), "churn+poison");
}

// The fail-closed regimes: a one-shot syscall failpoint is armed before
// every nth op, and every trace asserts that each faulted syscall (a)
// returned a typed Internal/Quota denial and (b) left the kernel's
// security state byte-for-byte what the oracle says it was before the
// op, while the kernel kept serving the rest of the trace.

#[test]
fn conformance_under_failpoint_panic_at_hook() {
    run(FaultPlan::panic_at_hook(5), "failpoint:panic-at-hook");
}

#[test]
fn conformance_under_failpoint_abort_late() {
    run(FaultPlan::abort_late(7), "failpoint:abort-late");
}

#[test]
fn conformance_under_failpoint_quota() {
    run(FaultPlan::quota(3), "failpoint:quota");
}
