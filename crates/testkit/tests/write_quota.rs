//! Regressions for the unbounded-allocation bugs in the VFS write
//! paths. `write_file_data` used to `resize` to whatever `seek` offset
//! the subject picked — `seek(u64::MAX - 7)` + an 8-byte write asked
//! the kernel for a multi-exabyte allocation — and the fd write path
//! narrowed `file.offset as usize`, truncating huge offsets into small
//! in-bounds writes on 32-bit hosts. Both are now fail-closed
//! [`OsError::QuotaExceeded`] *before* any allocation, on both the
//! fd path (`open`/`seek`/`write`) and the one-shot
//! `write_file_at_off` path.

use laminar_os::{Kernel, LaminarModule, OpenMode, OsError, Quotas, TaskHandle, UserId};
use std::sync::Arc;

const QUOTA: usize = 1 << 16; // 64 KiB — small enough to straddle cheaply

fn size(k: &Arc<Kernel>, path: &str) -> usize {
    k.inspect_node_for_test(path).unwrap().1.map_or(0, |d| d.len())
}

fn boot() -> (Arc<Kernel>, TaskHandle) {
    let k = Kernel::boot_with_quotas(
        LaminarModule,
        Quotas { max_file_size: QUOTA, ..Quotas::default() },
    );
    k.add_user(UserId(1), "alice");
    let t = k.login(UserId(1)).unwrap();
    (k, t)
}

/// The original report: a sparse write far past the quota must be a
/// typed denial with no allocation, not an OOM-sized `resize`.
#[test]
fn sparse_write_past_the_quota_is_fail_closed() {
    let (k, alice) = boot();
    let fd = alice.create("/home/alice/sparse").unwrap();
    // Would have allocated ~16 EiB before the fix.
    alice.seek(fd, u64::MAX - 7).unwrap();
    let err = alice.write(fd, b"overflow").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");
    // The denial rolled the transaction back: the file is untouched and
    // the fd offset survives for the caller to reposition.
    assert_eq!(size(&k, "/home/alice/sparse"), 0);

    // Just past the quota is equally denied…
    alice.seek(fd, QUOTA as u64).unwrap();
    let err = alice.write(fd, b"x").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");

    // …while a sparse write that ends exactly at the quota is admitted
    // (the bound is inclusive) and zero-fills the gap.
    alice.seek(fd, (QUOTA - 8) as u64).unwrap();
    assert_eq!(alice.write(fd, b"12345678").unwrap(), 8);
    assert_eq!(size(&k, "/home/alice/sparse"), QUOTA);
}

/// `offset + len` overflowing `usize` must be the same typed denial as
/// exceeding the quota, never a wrapped (small) allocation.
#[test]
fn offset_length_overflow_is_a_quota_denial() {
    let (k, alice) = boot();
    let fd = alice.create("/home/alice/wrap").unwrap();
    alice.seek(fd, u64::MAX).unwrap();
    let err = alice.write(fd, b"y").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");
    assert_eq!(size(&k, "/home/alice/wrap"), 0);
}

/// The one-shot path (`write_file_at_off`, used by the concurrent
/// conformance regime) enforces the same bound.
#[test]
fn one_shot_sparse_write_respects_the_quota() {
    let (k, alice) = boot();
    let fd = alice.create("/home/alice/oneshot").unwrap();
    alice.close(fd).unwrap();

    let err = alice
        .write_file_at_off("/home/alice/oneshot", u64::MAX - 3, b"over")
        .unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");
    let err =
        alice.write_file_at_off("/home/alice/oneshot", QUOTA as u64, b"z").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");
    assert_eq!(size(&k, "/home/alice/oneshot"), 0);

    let n = alice
        .write_file_at_off("/home/alice/oneshot", (QUOTA - 4) as u64, b"tail")
        .unwrap();
    assert_eq!(n, 4);
    assert_eq!(size(&k, "/home/alice/oneshot"), QUOTA);
}

/// The quota caps the file's *length*, not the write's: overwriting the
/// middle of a quota-sized file stays legal.
#[test]
fn in_place_overwrites_below_the_quota_still_work() {
    let (k, alice) = boot();
    let fd = alice.create("/home/alice/grow").unwrap();
    // Fill to the quota in chunks, then rewrite the middle.
    let chunk = vec![0xA5u8; QUOTA / 4];
    for _ in 0..4 {
        assert_eq!(alice.write(fd, &chunk).unwrap(), chunk.len());
    }
    alice.seek(fd, (QUOTA / 2) as u64).unwrap();
    assert_eq!(alice.write(fd, b"middle").unwrap(), 6);
    alice.close(fd).unwrap();
    assert_eq!(size(&k, "/home/alice/grow"), QUOTA);

    // But one more appended byte is over the line.
    let fd = alice.open("/home/alice/grow", OpenMode::Write).unwrap();
    alice.seek(fd, QUOTA as u64).unwrap();
    let err = alice.write(fd, b"!").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded("file size")), "got {err:?}");
}
