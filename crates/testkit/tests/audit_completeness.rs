//! Audit-completeness conformance: over the full CI seed matrix
//! (default 8 seeds × 500 traces × 28 ops = 4000 traces), every
//! oracle-predicted enforcement decision — silent drop, typed denial,
//! quota rejection, VM-barrier verdict — must appear in the trusted
//! audit log exactly once, and nothing unpredicted may appear.
//!
//! The audit-enabled flag is process-global, so the tests in this file
//! serialize on one mutex.

use laminar_testkit::{assert_audit_completeness, run_audit_trace, ExploreConfig, Op};
use std::sync::{Mutex, MutexGuard, PoisonError};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn audit_log_is_complete_over_the_seed_matrix() {
    let _g = serial();
    let cfg = ExploreConfig::from_env(laminar_testkit::FaultPlan::none());
    let tally =
        assert_audit_completeness(&cfg.seeds, cfg.traces_per_seed, cfg.ops_per_trace);
    let traces = cfg.seeds.len() * cfg.traces_per_seed;
    eprintln!(
        "audit completeness: {traces} traces, {} ops, {} drops, {} denials \
         ({} quota), {} VM checks — all matched exactly once",
        tally.ops,
        tally.drops_matched,
        tally.denials_matched,
        tally.quota_matched,
        tally.vm_checks_matched
    );
    // The run must actually exercise each audited decision class, or
    // "complete" would be vacuous. At default volume each of these
    // fires thousands of times; the floors hold for any ≥ 100-trace
    // run. Quota denials are rarer in random traces (they need a
    // successful create + a straddling sparse write on the same slot),
    // so their anti-vacuity floor lives in the deterministic test
    // below rather than here, where a fresh nightly seed base could
    // legitimately produce zero.
    assert!(tally.drops_matched > 0, "no silent drops exercised");
    assert!(tally.denials_matched > 0, "no denials exercised");
    assert!(tally.vm_checks_matched > 0, "no VM barrier checks exercised");
}

#[test]
fn quota_denial_is_audited_exactly_once_across_fd_and_oneshot_paths() {
    let _g = serial();
    // A file created in /tmp, then a sparse write straddling the quota:
    // offset 4999 + 4 bytes > 4096 ⇒ Denied(Quota) with exactly one
    // QuotaExceeded event and one denied commit — the regression shape
    // for the unvalidated-resize bug.
    let ops = [
        Op::CreateFile { task: 0, dir: 1, slot: 0, s_mask: 0, i_mask: 0 },
        Op::WriteFileAt { task: 0, dir: 1, slot: 0, offset: 4999, len: 4 },
        // And an in-quota sparse write right at the boundary: 4092 + 4
        // = 4096 is admitted (the quota is inclusive).
        Op::WriteFileAt { task: 0, dir: 1, slot: 0, offset: 4092, len: 4 },
    ];
    let tally = run_audit_trace(&ops).expect("audit-complete");
    assert_eq!(tally.quota_matched, 1);
    assert_eq!(tally.denials_matched, 1);
}

#[test]
fn flow_vetoed_zero_byte_pipe_write_is_still_an_audited_drop() {
    let _g = serial();
    // Task 2 (no capabilities) writes zero bytes to the S{0}-labeled
    // pipe 1... allowed (unlabeled → labeled flows). Use the reverse:
    // taint task 0 with S{0}, then write to the unlabeled pipe 0 — the
    // verdict precedes the emptiness check, so even a zero-byte message
    // is a (whole-message) silent drop, and must be audited as one.
    let ops = [
        Op::SetLabel { task: 0, secrecy: true, mask: 0b01 },
        Op::PipeWrite { task: 0, pipe: 0, len: 0 },
        // A deliverable zero-byte write is a pure no-op: no drop event.
        Op::PipeWrite { task: 2, pipe: 0, len: 0 },
    ];
    let tally = run_audit_trace(&ops).expect("audit-complete");
    assert_eq!(tally.drops_matched, 1);
}
