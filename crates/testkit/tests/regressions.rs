//! Committed conformance regression traces.
//!
//! Each test is a minimal trace in the shape
//! [`laminar_testkit::render_regression_test`] emits: when the explorer
//! finds a divergence it prints a block like these — paste it here so
//! the exact interleaving is pinned forever, independent of seeds.
//! The traces below were chosen by hand to pin the paper's trickiest
//! interleavings from day one.

use laminar_testkit::assert_conformance;

/// Tainted writer → labeled pipe → declassifying reader, including the
/// silent drop of the unlabeled writer's message in between.
#[test]
fn labeled_pipe_round_trip_with_silent_drop() {
    use laminar_testkit::Op::*;
    assert_conformance(&[
        SetLabel { task: 1, secrecy: true, mask: 0b01 }, // task 1 joins S{0}
        PipeWrite { task: 1, pipe: 1, len: 5 },          // delivered
        PipeWrite { task: 2, pipe: 1, len: 3 },          // unlabeled → S{0}: delivered
        PipeWrite { task: 1, pipe: 0, len: 4 },          // S{0} → unlabeled: dropped
        PipeRead { task: 2, pipe: 1, max: 16 },          // S{0} → unlabeled: denied
        SetLabel { task: 0, secrecy: true, mask: 0b01 }, // task 0 joins S{0}
        PipeRead { task: 0, pipe: 1, max: 16 },          // drains both messages
        PipeRead { task: 0, pipe: 0, max: 16 },          // empty, no EOF
        SetLabel { task: 0, secrecy: false, mask: 0 },   // declassify (has 0−)
    ]);
}

/// Kernel-mediated capability passing: a capability the sender does not
/// hold is refused loudly; a held one rides the pipe and lands in the
/// receiver's capability set (observed by the state diff).
#[test]
fn capability_transfer_over_pipes() {
    use laminar_testkit::Op::*;
    assert_conformance(&[
        WriteCap { task: 2, pipe: 0, tag: 0, plus: true }, // task 2 holds nothing
        WriteCap { task: 0, pipe: 0, tag: 1, plus: false }, // 1− from the root task
        PipeWrite { task: 0, pipe: 0, len: 2 },            // bytes behind the cap
        PipeRead { task: 2, pipe: 0, max: 8 },             // cap at head: no bytes
        ReadCap { task: 2, pipe: 0 },                      // receives 1−
        PipeRead { task: 2, pipe: 0, max: 8 },             // now the bytes
        ReadCap { task: 2, pipe: 0 },                      // queue empty: None
    ]);
}

/// The §5.2 create conditions and Biba traversal: a secrecy-tainted
/// task can create only in the equally-labeled directory, and an
/// integrity-tainted task cannot traverse absolute paths at all.
#[test]
fn labeled_creation_and_tainted_traversal() {
    use laminar_testkit::Op::*;
    assert_conformance(&[
        SetLabel { task: 1, secrecy: true, mask: 0b01 },
        CreateFile { task: 1, dir: 1, slot: 0, s_mask: 0b01, i_mask: 0 }, // cond 3
        CreateFile { task: 1, dir: 2, slot: 0, s_mask: 0, i_mask: 0 },    // cond 1a
        CreateFile { task: 1, dir: 2, slot: 0, s_mask: 0b01, i_mask: 0 }, // ok
        WriteFile { task: 1, dir: 2, slot: 0, len: 6 },
        ReadFile { task: 2, dir: 2, slot: 0 }, // unlabeled reader: traversal denies
        GetLabels { task: 1, dir: 2, slot: 0 },
        SetLabel { task: 0, secrecy: false, mask: 0b10 }, // task 0 joins I{1}
        ReadFile { task: 0, dir: 0, slot: 0 }, // unlabeled home fails Biba read
        CreateFile { task: 0, dir: 3, slot: 1, s_mask: 0, i_mask: 0b10 }, // abs path
    ]);
}

/// Dynamic directories: mkdir_labeled, listing /tmp, rmdir of a
/// nonempty directory, then of an emptied one.
#[test]
fn dynamic_directories_lifecycle() {
    use laminar_testkit::Op::*;
    assert_conformance(&[
        MkdirLabeled { task: 0, dir: 4, s_mask: 0, i_mask: 0 },
        MkdirLabeled { task: 0, dir: 4, s_mask: 0b01, i_mask: 0 }, // Exists
        CreateFile { task: 0, dir: 4, slot: 2, s_mask: 0, i_mask: 0 },
        Readdir { task: 1, dir: 1 },
        Rmdir { task: 1, dir: 2 }, // /tmp/d4 nonempty → NotEmpty
        Unlink { task: 2, dir: 4, slot: 2 },
        Rmdir { task: 1, dir: 2 }, // now ok
        Readdir { task: 1, dir: 1 },
        ReadFile { task: 0, dir: 4, slot: 2 }, // NotFound after rmdir
    ]);
}

/// Signals flow sender → target and are silently dropped otherwise;
/// region entry needs a capability or the label for every region tag.
#[test]
fn signals_and_region_entry() {
    use laminar_testkit::Op::*;
    assert_conformance(&[
        SetLabel { task: 1, secrecy: true, mask: 0b01 },
        Kill { task: 1, target: 2, sig: 3 }, // S{0} → unlabeled: dropped
        Kill { task: 2, target: 1, sig: 4 }, // unlabeled → S{0}: delivered
        NextSignal { task: 2 },              // None
        NextSignal { task: 1 },              // Some(4)
        RegionEnter { task: 2, s_mask: 0b01, i_mask: 0, plus_mask: 0, minus_mask: 0 },
        RegionEnter { task: 1, s_mask: 0b01, i_mask: 0, plus_mask: 0b01, minus_mask: 0 },
        RegionEnter { task: 1, s_mask: 0b01, i_mask: 0, plus_mask: 0, minus_mask: 0b01 },
        VmBarrier { task: 1, write: false, s_mask: 0b01, i_mask: 0 },
        VmBarrier { task: 1, write: true, s_mask: 0, i_mask: 0 },
    ]);
}
