//! Shard-targeted lock poisoning (PR 4, satellite of the shard split).
//!
//! The big kernel lock had a single poison test: crash under the lock,
//! assert the next syscall recovers. With the sharded tables the
//! property is sharper — poisoning one shard must leave every *other*
//! shard serviceable without so much as a recovery event, while the
//! poisoned shard itself recovers on first touch with verdicts
//! unchanged.
//!
//! The observable is `laminar_util::sync::poison_recoveries()`, a
//! process-global counter bumped once per recovered lock acquisition.
//! Because it is process-global, everything that reasons about it lives
//! in a single `#[test]` (the test binary may run tests on parallel
//! threads).

use laminar_difc::{Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, UserId};
use laminar_util::sync::{poison_recoveries, reset_poison_recoveries};

/// One end-to-end story: poison the task shard of one task and the
/// inode shard of one file, drive traffic that provably avoids those
/// shards (no recovery events), then touch them (recovery events, same
/// verdicts as before the poisoning).
#[test]
fn poisoning_one_shard_leaves_the_others_serviceable() {
    let kernel = Kernel::boot(LaminarModule);
    kernel.add_user(UserId(1), "alice");
    kernel.add_user(UserId(2), "bob");
    // TaskIds are sequential, so alice and bob land in *different* task
    // shards (tid % TASK_SHARDS), as do their processes.
    let alice = kernel.login(UserId(1)).expect("login alice");
    let bob = kernel.login(UserId(2)).expect("login bob");
    assert_ne!(
        alice.id().0 % laminar_os::TASK_SHARDS as u64,
        bob.id().0 % laminar_os::TASK_SHARDS as u64,
        "fixture wants the two tasks on distinct shards"
    );

    // Baseline verdicts, before any poisoning: alice (voluntarily
    // tainted, she minted the tag) creates a secret file in a secret
    // dir and can reread it; bob's read is flow-denied.
    let t = alice.alloc_tag().expect("tag");
    let secret = SecPair::secrecy_only(Label::singleton(t));
    kernel.install_dir("/tmp/vault", secret.clone()).expect("install /tmp/vault");
    alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).expect("taint");
    let fd =
        alice.create_file_labeled("/tmp/vault/secret", secret).expect("labeled create");
    alice.write(fd, b"classified").expect("write");
    alice.close(fd).expect("close");
    let baseline_alice = alice.read_file_at("/tmp/vault/secret", 64).expect("owner read");
    let baseline_bob =
        bob.read_file_at("/tmp/vault/secret", 64).expect_err("flow denial");

    // Poison alice's task shard from a crashing thread.
    kernel.poison_task_shard_for_test(alice.id());
    reset_poison_recoveries();

    // Bob's syscalls never touch alice's task shard: his own task and
    // process shards differ, and his file traffic stays on inode shards.
    // They must all succeed with ZERO recovery events.
    let fd =
        bob.create_file_labeled("/tmp/bobfile", SecPair::default()).expect("bob create");
    bob.write(fd, b"public").expect("bob write");
    bob.close(fd).expect("bob close");
    assert_eq!(bob.read_file_at("/tmp/bobfile", 64).expect("bob read"), b"public");
    bob.unlink("/tmp/bobfile").expect("bob unlink");
    assert_eq!(
        poison_recoveries(),
        0,
        "traffic on healthy shards must not touch the poisoned one"
    );

    // Alice's next syscall hits her poisoned task shard: it must
    // recover (counter bumps) and the verdict must be unchanged.
    assert_eq!(
        alice.read_file_at("/tmp/vault/secret", 64).expect("recovered read"),
        baseline_alice
    );
    assert!(poison_recoveries() > 0, "the poisoned shard must have recovered");

    // Now the same story on an inode shard: poison the shard holding
    // the vault directory's inode — the shard where bob's denial is
    // decided during traversal — then show the *denial* verdict
    // survives recovery bit-for-bit (fail-closed recovery does not
    // fail open).
    let ino = kernel.inode_of_for_test("/tmp/vault").expect("inode id");
    kernel.poison_inode_shard_for_test(ino);
    reset_poison_recoveries();
    let after = bob.read_file_at("/tmp/vault/secret", 64).expect_err("still denied");
    assert_eq!(format!("{after:?}"), format!("{baseline_bob:?}"));
    assert!(poison_recoveries() > 0, "the inode shard must have recovered");

    // And the recovered shards keep serving: full write/read round-trip.
    alice
        .write_file_at("/tmp/vault/secret", b"reclassified")
        .expect("write after recovery");
    assert_eq!(
        alice.read_file_at("/tmp/vault/secret", 64).expect("read after recovery"),
        b"reclassified"
    );
}

/// Rotating poison over *every* shard ordinal must be semantically
/// invisible: a kernel all of whose shards have been poisoned and
/// recovered serves the same fixture traffic as a fresh one.
#[test]
fn poisoning_every_shard_is_semantically_invisible() {
    let kernel = Kernel::boot(LaminarModule);
    kernel.add_user(UserId(1), "alice");
    let task = kernel.login(UserId(1)).expect("login");
    for ordinal in 0..laminar_os::SHARD_COUNT {
        kernel.poison_shard_for_test(ordinal);
    }
    // Traffic across every subsystem: registry (tag mint), task table
    // (label change), inode table (pipes, files, dirs).
    task.alloc_tag().expect("alloc_tag after registry poison");
    task.set_task_label(LabelType::Integrity, Label::empty())
        .expect("label change after task-shard poison");
    let (r, w) = task.pipe().expect("pipe after inode poison");
    task.write(w, b"ping").expect("pipe write");
    assert_eq!(task.read(r, 16).expect("pipe read"), b"ping");
    task.mkdir_labeled("/tmp/poked", SecPair::default()).expect("mkdir");
    let fd =
        task.create_file_labeled("/tmp/poked/f", SecPair::default()).expect("create");
    task.close(fd).expect("close");
    assert_eq!(task.readdir("/tmp/poked").expect("readdir"), vec!["f".to_string()]);
    task.unlink("/tmp/poked/f").expect("unlink");
    task.unlink("/tmp/poked").expect("rmdir");
}
