//! Direct demonstrations of the fail-closed fault contract, outside the
//! randomized explorer: an injected mid-syscall fault must leave the
//! kernel's security state byte-for-byte unchanged while the kernel
//! keeps serving, and resource exhaustion must degrade gracefully — a
//! typed error, no partial state, full recovery once the resource is
//! freed.

use laminar_difc::{Label, LabelType};
use laminar_os::{
    Kernel, LaminarModule, OpenMode, OsError, Quotas, SyscallFailpoint, TaskHandle,
    UserId,
};
use std::sync::Arc;

fn boot() -> (Arc<Kernel>, TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "alice");
    let t = k.login(UserId(1)).unwrap();
    (k, t)
}

#[test]
fn late_abort_rolls_back_a_fully_applied_label_change() {
    let (k, alice) = boot();
    let t = alice.alloc_tag().unwrap();
    let labels_before = alice.current_labels().unwrap();
    let caps_before = alice.current_caps().unwrap();
    let rolled_back_before = laminar_os::syscalls_rolled_back();

    // AbortLate panics *after* the syscall body succeeded: the label
    // change has been fully applied and the undo journal must unwind it.
    k.arm_failpoint_for_test(SyscallFailpoint::AbortLate);
    let err = alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).unwrap_err();
    assert!(matches!(err, OsError::Internal), "got {err:?}");
    assert!(k.take_failpoint_fired());
    assert!(laminar_os::syscalls_rolled_back() > rolled_back_before);

    assert_eq!(alice.current_labels().unwrap(), labels_before);
    assert_eq!(alice.current_caps().unwrap(), caps_before);

    // The kernel keeps serving: the identical call now goes through.
    alice.set_task_label(LabelType::Secrecy, Label::singleton(t)).unwrap();
    assert_ne!(alice.current_labels().unwrap(), labels_before);
}

#[test]
fn hook_panic_mid_syscall_leaves_the_vfs_untouched() {
    let (k, alice) = boot();
    let fd = alice.create("/home/alice/ledger").unwrap();
    alice.write(fd, b"balance: 42").unwrap();
    alice.close(fd).unwrap();
    let ledger_before = k.inspect_node_for_test("/home/alice/ledger").unwrap();
    let labels_before = alice.current_labels().unwrap();

    // The panic fires inside an LSM hook during path traversal, halfway
    // through the create.
    k.arm_failpoint_for_test(SyscallFailpoint::PanicAtHook);
    let err = alice.create("/home/alice/scratch").unwrap_err();
    assert!(matches!(err, OsError::Internal), "got {err:?}");
    assert!(k.take_failpoint_fired());

    // Nothing was created and nothing else moved.
    assert!(matches!(
        k.inspect_node_for_test("/home/alice/scratch"),
        Err(OsError::NotFound)
    ));
    assert_eq!(k.inspect_node_for_test("/home/alice/ledger").unwrap(), ledger_before);
    assert_eq!(alice.current_labels().unwrap(), labels_before);

    // The kernel keeps serving.
    let fd = alice.create("/home/alice/scratch").unwrap();
    alice.close(fd).unwrap();
}

#[test]
fn injected_allocation_failure_is_fail_closed() {
    let (k, alice) = boot();
    k.arm_failpoint_for_test(SyscallFailpoint::QuotaNext);
    let err = alice.create("/home/alice/never").unwrap_err();
    assert!(matches!(err, OsError::QuotaExceeded(_)), "got {err:?}");
    assert!(k.take_failpoint_fired());
    assert!(matches!(
        k.inspect_node_for_test("/home/alice/never"),
        Err(OsError::NotFound)
    ));
    // One-shot: the retry allocates normally.
    let fd = alice.create("/home/alice/never").unwrap();
    alice.close(fd).unwrap();
}

#[test]
fn fd_quota_exhaustion_is_typed_and_recoverable() {
    let quotas = Quotas { max_fds_per_process: 4, ..Quotas::default() };
    let k = Kernel::boot_with_quotas(LaminarModule, quotas);
    k.add_user(UserId(1), "alice");
    let alice = k.login(UserId(1)).unwrap();
    let fd = alice.create("/home/alice/f").unwrap();
    alice.close(fd).unwrap();
    let labels_before = alice.current_labels().unwrap();

    let mut held = Vec::new();
    let err = loop {
        match alice.open("/home/alice/f", OpenMode::Read) {
            Ok(fd) => held.push(fd),
            Err(e) => break e,
        }
        assert!(held.len() <= 4, "fd quota was never enforced");
    };
    assert!(matches!(err, OsError::QuotaExceeded("file descriptors")), "got {err:?}");
    // The failed open perturbed nothing.
    assert_eq!(alice.current_labels().unwrap(), labels_before);

    // Graceful degradation: freeing one descriptor unblocks the caller.
    alice.close(held.pop().unwrap()).unwrap();
    let fd = alice.open("/home/alice/f", OpenMode::Read).unwrap();
    alice.close(fd).unwrap();
}

#[test]
fn pipe_overflow_drops_silently_and_drains_to_recover() {
    let quotas = Quotas { pipe_capacity: 8, ..Quotas::default() };
    let k = Kernel::boot_with_quotas(LaminarModule, quotas);
    k.add_user(UserId(1), "alice");
    let alice = k.login(UserId(1)).unwrap();
    let (r, w) = alice.pipe().unwrap();

    assert_eq!(alice.write(w, b"first!").unwrap(), 6);
    assert_eq!(alice.pipe_queued_for_test(r).unwrap(), 6);

    // 6 + 6 > 8: the message is dropped whole, and — exactly as for a
    // label-mediated silent drop — the writer cannot observe it.
    assert_eq!(alice.write(w, b"second").unwrap(), 6);
    assert_eq!(alice.pipe_queued_for_test(r).unwrap(), 6);

    // Draining restores capacity; delivery resumes with no residue of
    // the dropped message.
    assert_eq!(alice.read(r, 64).unwrap(), b"first!");
    assert_eq!(alice.write(w, b"third!").unwrap(), 6);
    assert_eq!(alice.read(r, 64).unwrap(), b"third!");
}
