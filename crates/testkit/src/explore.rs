//! The deterministic trace explorer: generate → replay both sides →
//! diff → shrink → render.
//!
//! [`explore`] drives seeded random traces (see
//! [`crate::trace::generate_trace`]) through the kernel and the oracle
//! in lockstep, comparing per-op [`Outcome`]s and (periodically) full
//! security states. On the first divergence it delta-debugs the trace
//! down to a minimal reproducer and returns it as a [`Counterexample`]
//! whose [`render_regression_test`] output is a copy-pasteable `#[test]`
//! for `crates/testkit/tests/regressions.rs`.
//!
//! Everything is deterministic: a failure report's `(seed, ops)` names
//! the exact trace forever, and `TESTKIT_SEED=<seed> cargo test -p
//! laminar-testkit` re-runs just that seed.

use crate::fault::{CacheFaultGuard, FaultPlan};
use crate::oracle::{DenyKind, Oracle, Outcome};
use crate::replay::KernelReplay;
use crate::trace::{generate_trace, Op};
use laminar_util::SplitMix64;

/// How often (in ops) the full state diff runs; the final op always
/// diffs. Outcome diffs run on every op regardless.
const STATE_DIFF_STRIDE: usize = 4;

/// One kernel/oracle disagreement.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the op that diverged.
    pub index: usize,
    /// The op itself.
    pub op: Op,
    /// Human-readable detail: both outcomes, or the state difference.
    pub detail: String,
}

/// A shrunk, reproducible conformance failure.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The trace seed that produced the original failure.
    pub seed: u64,
    /// The minimal op sequence still reproducing it.
    pub ops: Vec<Op>,
    /// What went wrong on the minimal trace.
    pub divergence: Divergence,
}

/// Replays `ops` against a fresh kernel and a fresh oracle under
/// `plan`, comparing outcomes on every op and states periodically.
///
/// # Errors
/// The first [`Divergence`] found.
pub fn run_trace(ops: &[Op], plan: &FaultPlan) -> Result<(), Divergence> {
    let _guard = CacheFaultGuard::arm(plan.cache);
    let mut oracle = Oracle::new();
    let mut kernel = KernelReplay::new();
    let failpoint = plan.syscall_failpoint();
    if failpoint.is_some() {
        crate::fault::silence_injected_panics();
    }
    for (i, op) in ops.iter().enumerate() {
        if let Some(n) = plan.poison_every {
            if n > 0 && i % n == 0 {
                // Rotate through the shards so every lock in the map
                // gets poisoned (and recovered from) over a trace.
                kernel.poison_shard(i / n);
            }
        }
        if let Some((fp, n)) = failpoint {
            if n > 0 && i % n == 0 {
                kernel.arm_failpoint(fp);
            }
        }
        let kernel_out = kernel.apply(op, i);
        if failpoint.is_some() && kernel.take_failpoint_fired() {
            // The op's syscall faulted mid-flight. The fail-closed
            // contract: a typed Internal/Quota denial, and the kernel's
            // security state byte-for-byte as it was before the op (the
            // oracle deliberately does NOT apply the op). Ops that never
            // reach the trigger (read-only getters, fast paths) leave the
            // failpoint armed for a later op.
            if !matches!(
                kernel_out,
                Outcome::Denied(DenyKind::Internal | DenyKind::Quota)
            ) {
                return Err(Divergence {
                    index: i,
                    op: op.clone(),
                    detail: format!(
                        "injected fault was not failed closed: kernel \
                         returned {kernel_out:?}"
                    ),
                });
            }
            if let Some(d) = kernel.diff_state(&oracle) {
                return Err(Divergence {
                    index: i,
                    op: op.clone(),
                    detail: format!("state perturbed by an aborted syscall: {d}"),
                });
            }
            continue;
        }
        let oracle_out = oracle.apply(op, i);
        if kernel_out != oracle_out {
            return Err(Divergence {
                index: i,
                op: op.clone(),
                detail: format!(
                    "outcome mismatch:\n  kernel: {kernel_out:?}\n  oracle: {oracle_out:?}"
                ),
            });
        }
        if (i + 1) % STATE_DIFF_STRIDE == 0 || i + 1 == ops.len() {
            if let Some(d) = kernel.diff_state(&oracle) {
                return Err(Divergence {
                    index: i,
                    op: op.clone(),
                    detail: format!("state divergence after op: {d}"),
                });
            }
        }
    }
    Ok(())
}

/// Delta-debugs a known-diverging trace: repeatedly removes single ops
/// while the divergence persists, to a fixed point.
///
/// Returns the minimal trace and its divergence. Panics if `ops` does
/// not actually diverge under `plan`.
#[must_use]
pub fn shrink(ops: &[Op], plan: &FaultPlan) -> (Vec<Op>, Divergence) {
    shrink_with(ops, |t| run_trace(t, plan))
}

/// The generic delta-debugging core behind [`shrink`]: minimizes any
/// item sequence against any replay function that reports a
/// [`Divergence`]. The concurrent explorer reuses it to minimize a
/// witnessed linearization.
///
/// # Panics
/// If `items` does not diverge under `replay`.
#[must_use]
pub fn shrink_with<T, F>(items: &[T], mut replay: F) -> (Vec<T>, Divergence)
where
    T: Clone,
    F: FnMut(&[T]) -> Result<(), Divergence>,
{
    let mut current = items.to_vec();
    let mut divergence = match replay(&current) {
        Err(d) => d,
        Ok(()) => panic!("shrink called on a conforming trace"),
    };
    'outer: loop {
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Err(d) = replay(&candidate) {
                current = candidate;
                divergence = d;
                continue 'outer;
            }
        }
        break;
    }
    (current, divergence)
}

/// Renders a counterexample as a committed regression test, ready to
/// paste into `crates/testkit/tests/regressions.rs`.
#[must_use]
pub fn render_regression_test(cex: &Counterexample) -> String {
    let mut body = String::new();
    for op in &cex.ops {
        body.push_str(&format!("        {op:?},\n"));
    }
    format!(
        "#[test]\nfn regression_seed_{seed:#018x}() {{\n    // {detail}\n    use \
         laminar_testkit::Op::*;\n    laminar_testkit::assert_conformance(&[\n{body}    \
         ]);\n}}\n",
        seed = cex.seed,
        detail = cex.divergence.detail.replace('\n', "\n    // "),
        body = body,
    )
}

/// Configuration of one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Top-level seeds; each derives `traces_per_seed` trace seeds.
    pub seeds: Vec<u64>,
    /// Traces generated per top-level seed.
    pub traces_per_seed: usize,
    /// Ops per trace.
    pub ops_per_trace: usize,
    /// Fault regime for every trace in the run.
    pub plan: FaultPlan,
}

impl ExploreConfig {
    /// Default seed base for CI's fixed matrix.
    pub const DEFAULT_SEED_BASE: u64 = 0xC0FF_EE00;
    /// Default number of top-level seeds.
    pub const DEFAULT_SEEDS: usize = 8;
    /// Default traces per seed.
    pub const DEFAULT_TRACES: usize = 500;
    /// Default ops per trace.
    pub const DEFAULT_OPS: usize = 28;

    /// Builds a config from the environment:
    ///
    /// * `TESTKIT_SEED` — run exactly one top-level seed;
    /// * `TESTKIT_SEED_BASE`, `TESTKIT_SEEDS` — seed matrix
    ///   `base..base+n` (nightly CI passes a fresh base);
    /// * `TESTKIT_TRACES`, `TESTKIT_OPS` — volume knobs.
    ///
    /// Numbers accept decimal or `0x`-prefixed hex.
    #[must_use]
    pub fn from_env(plan: FaultPlan) -> Self {
        let seeds = if let Some(s) = env_u64("TESTKIT_SEED") {
            vec![s]
        } else {
            let base = env_u64("TESTKIT_SEED_BASE").unwrap_or(Self::DEFAULT_SEED_BASE);
            let n = env_u64("TESTKIT_SEEDS")
                .map_or(Self::DEFAULT_SEEDS, |n| n as usize)
                .max(1);
            (0..n as u64).map(|i| base.wrapping_add(i)).collect()
        };
        ExploreConfig {
            seeds,
            traces_per_seed: env_u64("TESTKIT_TRACES")
                .map_or(Self::DEFAULT_TRACES, |n| n as usize),
            ops_per_trace: env_u64("TESTKIT_OPS")
                .map_or(Self::DEFAULT_OPS, |n| n as usize),
            plan,
        }
    }
}

pub(crate) fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{name}={v:?} is not a number"),
    }
}

/// Summary of a successful exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreReport {
    /// Traces replayed with zero divergence.
    pub traces_run: usize,
    /// Total ops replayed.
    pub ops_run: usize,
}

/// Runs the full exploration. On the first divergence the failing trace
/// is shrunk to a minimal counterexample; if `TESTKIT_ARTIFACT_DIR` is
/// set, the rendered regression test is also written there (nightly CI
/// uploads that directory).
///
/// # Errors
/// The shrunk [`Counterexample`].
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreReport, Box<Counterexample>> {
    let mut traces_run = 0;
    let mut ops_run = 0;
    for &seed in &cfg.seeds {
        let mut derive = SplitMix64::new(seed);
        for _ in 0..cfg.traces_per_seed {
            let trace_seed = derive.next_u64();
            let ops = generate_trace(trace_seed, cfg.ops_per_trace);
            if run_trace(&ops, &cfg.plan).is_err() {
                let (min_ops, divergence) = shrink(&ops, &cfg.plan);
                let cex = Counterexample { seed: trace_seed, ops: min_ops, divergence };
                write_artifact(&cex);
                return Err(Box::new(cex));
            }
            traces_run += 1;
            ops_run += ops.len();
        }
    }
    Ok(ExploreReport { traces_run, ops_run })
}

fn write_artifact(cex: &Counterexample) {
    let Ok(dir) = std::env::var("TESTKIT_ARTIFACT_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/counterexample_{:#018x}.rs", cex.seed);
    let _ = std::fs::write(&path, render_regression_test(cex));
    eprintln!("testkit: wrote shrunk counterexample to {path}");
}

/// Replays a committed trace and panics with full detail on divergence
/// — the entry point for regression tests produced by
/// [`render_regression_test`].
///
/// # Panics
/// On any kernel/oracle divergence.
pub fn assert_conformance(ops: &[Op]) {
    if let Err(d) = run_trace(ops, &FaultPlan::none()) {
        panic!("conformance divergence at op {} ({:?}):\n{}", d.index, d.op, d.detail);
    }
}
