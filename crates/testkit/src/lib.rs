//! # laminar-testkit — model-based conformance testing for Laminar
//!
//! The enforcement stack under test spans three layers — LSM hooks in
//! the simulated kernel, the Fig. 3 syscall surface, and the VM's
//! read/write barriers — all routed through the interned, cached,
//! sharded flow-check machinery of `laminar-difc`. This crate checks
//! the whole stack against a **reference oracle**: an independent,
//! dependency-free re-implementation of the paper's security state
//! machine over plain `BTreeSet`s ([`Oracle`]).
//!
//! The pieces:
//!
//! * [`oracle`] — the pure model: labels, capabilities, the flow and
//!   label-change rules, pipes, files, signals, region entry.
//! * [`trace`] — the [`Op`] vocabulary and the seeded deterministic
//!   trace generator.
//! * [`replay`] — [`KernelReplay`], the adapter that executes each op
//!   through the real syscall/VM surface and normalizes the result.
//! * [`explore`] — the conformance loop: replay both sides in
//!   lockstep, diff outcomes and states, shrink failures to minimal
//!   committed regression tests.
//! * [`fault`] — fault regimes (cache disabled / thrashing / epoch
//!   churn, lock poisoning) under which every verdict must still be
//!   bit-identical, plus syscall failpoints (mid-hook panic, post-body
//!   abort, quota exhaustion) under which every faulted op must be a
//!   security-state no-op.
//! * [`concurrent`] — the commit-order-witness regime: lanes of ops run
//!   in parallel over disjoint task sets, then the kernel's witnessed
//!   commit order is replayed through the single-threaded oracle.
//! * [`audit`] — the audit-completeness regime: traces replayed with
//!   the `laminar-obs` decision trace enabled, demanding exactly one
//!   kernel-side event per oracle-predicted silent drop, denial, quota
//!   rejection and VM-barrier verdict.
//!
//! Reproducing a CI failure locally:
//!
//! ```text
//! TESTKIT_SEED=0xdeadbeef cargo test -p laminar-testkit
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod concurrent;
pub mod explore;
pub mod fault;
pub mod oracle;
pub mod replay;
pub mod trace;

pub use audit::{assert_audit_completeness, run_audit_trace, AuditTally};
pub use concurrent::{
    assert_concurrent_conformance, explore_concurrent, generate_concurrent_trace,
    run_concurrent_trace, run_linearized, ConcurrentConfig, ConcurrentCounterexample,
    WitnessedOp,
};
pub use explore::{
    assert_conformance, explore, render_regression_test, run_trace, shrink, shrink_with,
    Counterexample, Divergence, ExploreConfig, ExploreReport,
};
pub use fault::{CacheFaultGuard, FaultMode, FaultPlan, SyscallFailpoint};
pub use oracle::{DenyKind, MCaps, MDrop, MLabel, MPair, Oracle, Outcome};
pub use replay::KernelReplay;
pub use trace::{generate_trace, payload, Op};
