//! The pure reference oracle of the Laminar security state machine.
//!
//! This module re-derives every enforcement decision straight from the
//! paper's rules — the flow rule `S_x ⊆ S_y ∧ I_y ⊆ I_x` (§3.2), the
//! label-change rule `(L2−L1) ⊆ C_p⁺ ∧ (L1−L2) ⊆ C_p⁻` (§3.2), the
//! three labeled-create conditions (§5.2), silent-drop delivery for
//! pipes/signals/capability transfers (§5.2), and the region-entry rule
//! (§4.3.2) — over plain `BTreeSet`s of small integers. There is **no
//! interning, no caching, no sharing** with the implementation under
//! test: the only thing the oracle and the kernel have in common is the
//! paper. A divergence between the two is therefore a bug in one of
//! them, never a shared blind spot.
//!
//! The oracle also mirrors the *incidental* kernel semantics a trace
//! can observe — per-component traversal read checks with the check
//! *before* the lookup, error precedence within each syscall, pipe
//! whole-message drops on overflow, capability messages blocking byte
//! reads — because the conformance diff compares full outcomes and
//! states, not just allow/deny bits.

use crate::trace::{
    payload, Op, DIRS, FILE_SIZE_QUOTA, FILE_SLOTS, PIPES, TAG_CEILING, TASKS,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Pipe buffer capacity in bytes (mirrors `laminar_os::PIPE_CAPACITY`).
const PIPE_CAPACITY: usize = 64 * 1024;
/// Message-count ceiling per pipe, bytes and capabilities together
/// (mirrors the kernel's `PIPE_MSG_LIMIT`): the 4096th message is the
/// last admitted, the 4097th is silently dropped.
const PIPE_MSG_LIMIT: usize = 4096;
/// Fixed read size for [`Op::ReadFile`].
const READ_CHUNK: usize = 64;

/// A model label: a set of model-tag indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MLabel(pub BTreeSet<u32>);

impl MLabel {
    /// The label holding the set bits of `mask`.
    #[must_use]
    pub fn from_mask(mask: u8) -> Self {
        MLabel((0..8).filter(|b| mask & (1 << b) != 0).collect())
    }

    /// Set-inclusion.
    #[must_use]
    pub fn is_subset_of(&self, other: &MLabel) -> bool {
        self.0.is_subset(&other.0)
    }
}

/// A model secrecy/integrity pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MPair {
    /// Secrecy component.
    pub secrecy: MLabel,
    /// Integrity component.
    pub integrity: MLabel,
}

impl MPair {
    /// The unlabeled pair.
    #[must_use]
    pub fn unlabeled() -> Self {
        MPair::default()
    }

    /// Pair built from two bit masks.
    #[must_use]
    pub fn from_masks(s_mask: u8, i_mask: u8) -> Self {
        MPair { secrecy: MLabel::from_mask(s_mask), integrity: MLabel::from_mask(i_mask) }
    }

    /// The §3.2 flow rule: `self → to` iff `S_self ⊆ S_to` and
    /// `I_to ⊆ I_self`.
    #[must_use]
    pub fn flows_to(&self, to: &MPair) -> bool {
        self.secrecy.is_subset_of(&to.secrecy)
            && to.integrity.is_subset_of(&self.integrity)
    }

    /// Both components empty.
    #[must_use]
    pub fn is_unlabeled(&self) -> bool {
        self.secrecy.0.is_empty() && self.integrity.0.is_empty()
    }
}

/// A model capability set: plus (add) and minus (remove) tag sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MCaps {
    /// Tags the holder may add to a label.
    pub plus: BTreeSet<u32>,
    /// Tags the holder may remove from a label.
    pub minus: BTreeSet<u32>,
}

impl MCaps {
    fn has(&self, tag: u32, plus: bool) -> bool {
        if plus {
            self.plus.contains(&tag)
        } else {
            self.minus.contains(&tag)
        }
    }
}

/// The §3.2 label-change rule: every added tag needs a plus capability,
/// every removed tag a minus capability.
#[must_use]
pub fn label_change_allowed(from: &MLabel, to: &MLabel, caps: &MCaps) -> bool {
    to.0.difference(&from.0).all(|t| caps.plus.contains(t))
        && from.0.difference(&to.0).all(|t| caps.minus.contains(t))
}

/// How an operation was denied — the coarse error class the conformance
/// diff compares (exact kernel error *strings* are implementation
/// detail; the class is semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenyKind {
    /// `ENOENT`.
    NotFound,
    /// `EEXIST`.
    Exists,
    /// A DIFC flow rule failed with a visible error.
    Flow,
    /// The label-change rule failed.
    LabelChange,
    /// A non-flow permission failure (create conditions, capability
    /// holds, region entry).
    Permission,
    /// `ENOTEMPTY`.
    NotEmpty,
    /// An internal kernel fault rolled the syscall back fail-closed
    /// (only under injected-fault regimes).
    Internal,
    /// A resource quota (or injected allocation failure) was exceeded.
    Quota,
    /// Any other error class (never expected from in-universe traces).
    Other,
}

/// The normalized result of one operation, comparable across the oracle
/// and the kernel replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Success with no interesting payload.
    Ok,
    /// Bytes read.
    Bytes(Vec<u8>),
    /// Capability received (tag index, plus?) — or none pending.
    CapMsg(Option<(u32, bool)>),
    /// Signal dequeued — or none pending.
    Sig(Option<u8>),
    /// Labels observed.
    Labels(MPair),
    /// Directory listing (sorted).
    Names(Vec<String>),
    /// The operation was denied.
    Denied(DenyKind),
}

/// One in-flight pipe message.
#[derive(Clone, Debug, PartialEq, Eq)]
enum MMsg {
    Bytes(Vec<u8>),
    Cap(u32, bool),
}

/// A model pipe buffer (mirrors the kernel's `PipeBuffer` observables).
#[derive(Clone, Debug, Default)]
pub struct MPipe {
    /// The pipe inode's labels (fixed at creation).
    pub labels: MPair,
    msgs: VecDeque<MMsg>,
    bytes_queued: usize,
}

impl MPipe {
    fn with_labels(labels: MPair) -> Self {
        MPipe { labels, msgs: VecDeque::new(), bytes_queued: 0 }
    }

    /// Bytes currently queued (diffed against the kernel).
    #[must_use]
    pub fn bytes_queued(&self) -> usize {
        self.bytes_queued
    }

    /// Messages currently queued (diffed against the kernel).
    #[must_use]
    pub fn msg_count(&self) -> usize {
        self.msgs.len()
    }

    /// Queues a byte message, mirroring the kernel's `push_bytes`:
    /// zero-byte writes are a no-op *success* (never an empty queued
    /// message), and a message past the byte capacity or the message
    /// ceiling is dropped whole. Returns whether the message was queued
    /// (`true` for the empty no-op — nothing was dropped).
    fn push_bytes(&mut self, data: &[u8]) -> bool {
        if data.is_empty() {
            return true;
        }
        if self.bytes_queued + data.len() > PIPE_CAPACITY
            || self.msgs.len() >= PIPE_MSG_LIMIT
        {
            return false; // whole-message silent drop
        }
        self.bytes_queued += data.len();
        self.msgs.push_back(MMsg::Bytes(data.to_vec()));
        true
    }

    /// Queues a capability message, mirroring the kernel's `push_cap`
    /// ceiling exactly: admitted strictly below [`PIPE_MSG_LIMIT`]
    /// queued messages, dropped at it.
    fn push_cap(&mut self, tag: u32, plus: bool) -> bool {
        if self.msgs.len() >= PIPE_MSG_LIMIT {
            return false;
        }
        self.msgs.push_back(MMsg::Cap(tag, plus));
        true
    }

    fn pop_bytes(&mut self, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.msgs.front_mut() {
                Some(MMsg::Bytes(b)) => {
                    let take = (max - out.len()).min(b.len());
                    out.extend_from_slice(&b[..take]);
                    if take == b.len() {
                        self.msgs.pop_front();
                    } else {
                        b.drain(..take);
                    }
                    self.bytes_queued -= take;
                }
                _ => break, // a capability at the head blocks byte reads
            }
        }
        out
    }

    fn pop_cap(&mut self) -> Option<(u32, bool)> {
        match self.msgs.front() {
            Some(&MMsg::Cap(t, p)) => {
                self.msgs.pop_front();
                Some((t, p))
            }
            _ => None,
        }
    }
}

/// A model task (kernel thread principal).
#[derive(Clone, Debug, Default)]
pub struct MTask {
    /// Current secrecy/integrity labels.
    pub labels: MPair,
    /// Current capabilities.
    pub caps: MCaps,
    /// Pending signals, FIFO.
    pub signals: VecDeque<u8>,
}

/// A model file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MFile {
    /// The file's labels (fixed at creation).
    pub labels: MPair,
    /// File contents.
    pub data: Vec<u8>,
}

/// A model directory slot.
#[derive(Clone, Debug, Default)]
pub struct MDir {
    /// Whether the directory currently exists.
    pub exists: bool,
    /// The directory's labels.
    pub labels: MPair,
    /// Files by slot index.
    pub files: BTreeMap<u8, MFile>,
}

/// Which kernel-mediated channel silently dropped a message (§5.2): the
/// subject sees full success, only the trusted audit log records the
/// drop. The oracle predicts these so the audit-completeness check can
/// demand exactly one kernel-side `SilentDrop` event per prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MDrop {
    /// A pipe (or socket) byte message was dropped.
    Pipe,
    /// A capability transfer was dropped.
    Cap,
    /// A signal was dropped.
    Signal,
}

/// The reference security state machine, mirroring the fixture the
/// replay adapter builds (see [`crate::trace`] module docs).
#[derive(Clone, Debug)]
pub struct Oracle {
    /// Tasks 0..[`TASKS`] (more under [`Oracle::with_tasks`]).
    pub tasks: Vec<MTask>,
    /// Directory slots 0..[`DIRS`].
    pub dirs: Vec<MDir>,
    /// Pipes 0..[`PIPES`].
    pub pipes: Vec<MPipe>,
    /// Number of model tags allocated so far.
    pub tags_allocated: u32,
    /// The silent drop (if any) the *last applied op* must have caused
    /// kernel-side. Cleared at the start of every [`Oracle::apply`]; at
    /// most one per op, since every op pushes at most one message.
    pub predicted_drop: Option<MDrop>,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle::new()
    }
}

impl Oracle {
    /// The fixture state: see the [`crate::trace`] module docs.
    #[must_use]
    pub fn new() -> Self {
        Self::with_tasks(TASKS)
    }

    /// The fixture state with `n >= 3` tasks: the standard three, plus
    /// `n - 3` further capability-less tasks (mirroring
    /// [`crate::KernelReplay::with_tasks`]).
    ///
    /// # Panics
    /// If `n < 3`.
    #[must_use]
    pub fn with_tasks(n: usize) -> Self {
        assert!(n >= 3, "the fixture needs at least the standard 3 tasks");
        let mut t0 = MTask::default();
        t0.caps.plus.extend([0, 1]);
        t0.caps.minus.extend([0, 1]);
        let mut t1 = MTask::default();
        t1.caps.plus.insert(0);

        let live = |labels: MPair| MDir { exists: true, labels, files: BTreeMap::new() };
        let dirs = vec![
            live(MPair::unlabeled()),      // 0: home (relative paths)
            live(MPair::unlabeled()),      // 1: /tmp
            live(MPair::from_masks(1, 0)), // 2: /tmp/s0, S{0}
            live(MPair::from_masks(0, 2)), // 3: /tmp/i0, I{1}
            MDir::default(),               // 4: /tmp/d4 (not yet created)
            MDir::default(),               // 5: /tmp/d5
        ];
        let pipes = vec![
            MPipe::with_labels(MPair::unlabeled()),
            MPipe::with_labels(MPair::from_masks(1, 0)),
            MPipe::with_labels(MPair::from_masks(0, 2)),
        ];
        let mut tasks = vec![t0, t1];
        tasks.resize_with(n, MTask::default);
        Oracle { tasks, dirs, pipes, tags_allocated: 2, predicted_drop: None }
    }

    /// Truncates a label mask to the allocated-tag universe.
    #[must_use]
    pub fn norm_mask(&self, mask: u8) -> u8 {
        mask & ((1u16 << self.tags_allocated.min(8)) - 1) as u8
    }

    fn norm_tag(&self, tag: u8) -> u32 {
        u32::from(tag) % self.tags_allocated
    }

    fn pair(&self, s_mask: u8, i_mask: u8) -> MPair {
        MPair::from_masks(self.norm_mask(s_mask), self.norm_mask(i_mask))
    }

    /// Reading the admin-labeled root (`I{admin}`) requires
    /// `I_task ⊆ {admin}`; no task can ever hold the admin tag, so the
    /// check reduces to the task's integrity label being empty — the
    /// same predicate an unlabeled directory's read check reduces to.
    fn root_read_ok(task: &MPair) -> bool {
        task.integrity.0.is_empty()
    }

    /// Traversal checks for resolving a path *into* directory `d` (to a
    /// file inside it): every component read-checked before its lookup,
    /// mid-path missing components are `NotFound`.
    fn traverse_into(&self, task: &MPair, d: usize) -> Result<(), DenyKind> {
        match d {
            0 => {
                // Relative path: starts at the (unlabeled) home cwd.
                if !self.dirs[0].labels.flows_to(task) {
                    return Err(DenyKind::Flow);
                }
            }
            1 => {
                if !Self::root_read_ok(task) {
                    return Err(DenyKind::Flow);
                }
                if !self.dirs[1].labels.flows_to(task) {
                    return Err(DenyKind::Flow);
                }
            }
            _ => {
                self.traverse_into(task, 1)?;
                if !self.dirs[d].exists {
                    return Err(DenyKind::NotFound);
                }
                if !self.dirs[d].labels.flows_to(task) {
                    return Err(DenyKind::Flow);
                }
            }
        }
        Ok(())
    }

    /// Traversal checks for resolving the path *of* directory `d`
    /// itself (existence of `d` is the caller's concern).
    fn traverse_to(&self, task: &MPair, d: usize) -> Result<(), DenyKind> {
        match d {
            0 => Ok(()), // "." resolves to the cwd with no checks
            1 => {
                if Self::root_read_ok(task) {
                    Ok(())
                } else {
                    Err(DenyKind::Flow)
                }
            }
            _ => self.traverse_into(task, 1),
        }
    }

    /// Applies one op at trace position `idx`, returning its outcome.
    ///
    /// Precedence of checks within each arm deliberately matches the
    /// kernel's syscall layer; the conformance tests depend on it.
    #[allow(clippy::too_many_lines)] // one arm per syscall, kept together
    pub fn apply(&mut self, op: &Op, idx: usize) -> Outcome {
        self.predicted_drop = None;
        let nt = self.tasks.len();
        match *op {
            Op::AllocTag { task } => {
                if self.tags_allocated >= TAG_CEILING {
                    return Outcome::Ok; // symmetric no-op guard
                }
                let t = self.tags_allocated;
                let caps = &mut self.tasks[task as usize % nt].caps;
                caps.plus.insert(t);
                caps.minus.insert(t);
                self.tags_allocated += 1;
                Outcome::Ok
            }
            Op::SetLabel { task, secrecy, mask } => {
                let new = MLabel::from_mask(self.norm_mask(mask));
                let t = &mut self.tasks[task as usize % nt];
                let cur = if secrecy { &t.labels.secrecy } else { &t.labels.integrity };
                if *cur == new {
                    return Outcome::Ok; // identity fast path
                }
                if !label_change_allowed(cur, &new, &t.caps) {
                    return Outcome::Denied(DenyKind::LabelChange);
                }
                if secrecy {
                    t.labels.secrecy = new;
                } else {
                    t.labels.integrity = new;
                }
                Outcome::Ok
            }
            Op::DropCaps { task, plus_mask, minus_mask } => {
                let (p, m) = (self.norm_mask(plus_mask), self.norm_mask(minus_mask));
                let caps = &mut self.tasks[task as usize % nt].caps;
                for b in 0..8u32 {
                    if p & (1 << b) != 0 {
                        caps.plus.remove(&b);
                    }
                    if m & (1 << b) != 0 {
                        caps.minus.remove(&b);
                    }
                }
                Outcome::Ok
            }
            Op::WriteCap { task, pipe, tag, plus } => {
                let t = self.norm_tag(tag);
                let task = &self.tasks[task as usize % nt];
                if !task.caps.has(t, plus) {
                    return Outcome::Denied(DenyKind::Permission);
                }
                let pipe = &mut self.pipes[pipe as usize % PIPES];
                if !task.labels.flows_to(&pipe.labels) || !pipe.push_cap(t, plus) {
                    // Flow veto or queue ceiling: kernel-mediated
                    // silent drop either way.
                    self.predicted_drop = Some(MDrop::Cap);
                }
                Outcome::Ok
            }
            Op::ReadCap { task, pipe } => {
                let ti = task as usize % nt;
                let pipe = &mut self.pipes[pipe as usize % PIPES];
                if !pipe.labels.flows_to(&self.tasks[ti].labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                let cap = pipe.pop_cap();
                if let Some((t, plus)) = cap {
                    let caps = &mut self.tasks[ti].caps;
                    if plus {
                        caps.plus.insert(t);
                    } else {
                        caps.minus.insert(t);
                    }
                }
                Outcome::CapMsg(cap)
            }
            Op::PipeWrite { task, pipe, len } => {
                let data = payload(idx, len);
                let task = &self.tasks[task as usize % nt];
                let pipe = &mut self.pipes[pipe as usize % PIPES];
                // Verdict precedes the emptiness check, as in the
                // kernel: a flow-vetoed zero-byte write *is* a drop
                // (of the message, empty or not); a deliverable
                // zero-byte write is a pure no-op success.
                if !task.labels.flows_to(&pipe.labels) || !pipe.push_bytes(&data) {
                    self.predicted_drop = Some(MDrop::Pipe);
                }
                Outcome::Ok
            }
            Op::PipeRead { task, pipe, max } => {
                let task = &self.tasks[task as usize % nt];
                let pipe = &mut self.pipes[pipe as usize % PIPES];
                if !pipe.labels.flows_to(&task.labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                Outcome::Bytes(pipe.pop_bytes(max as usize))
            }
            Op::CreateFile { task, dir, slot, s_mask, i_mask } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let new = self.pair(s_mask, i_mask);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                if self.dirs[d].files.contains_key(&slot) {
                    return Outcome::Denied(DenyKind::Exists);
                }
                if let Err(k) = Self::check_create(task, &self.dirs[d].labels, &new) {
                    return Outcome::Denied(k);
                }
                self.dirs[d].files.insert(slot, MFile { labels: new, data: Vec::new() });
                Outcome::Ok
            }
            Op::MkdirLabeled { task, dir, s_mask, i_mask } => {
                let d = 4 + dir as usize % 2;
                let new = self.pair(s_mask, i_mask);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_to(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                if self.dirs[d].exists {
                    return Outcome::Denied(DenyKind::Exists);
                }
                // Parent is /tmp (dir slot 1).
                if let Err(k) = Self::check_create(task, &self.dirs[1].labels, &new) {
                    return Outcome::Denied(k);
                }
                self.dirs[d] = MDir { exists: true, labels: new, files: BTreeMap::new() };
                Outcome::Ok
            }
            Op::WriteFile { task, dir, slot, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                let Some(file) = self.dirs[d].files.get_mut(&slot) else {
                    return Outcome::Denied(DenyKind::NotFound);
                };
                // open(Write) checks inode_permission; the write itself
                // re-checks file_permission — same rule, same verdict.
                if !task.labels.flows_to(&file.labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                let data = payload(idx, len);
                // The file-size quota, checked after the flow rule as
                // in the kernel's `write_file_data` (never hit at
                // offset zero with ≤ 8-byte payloads, but modelled for
                // symmetry with WriteFileAt).
                if data.len() > FILE_SIZE_QUOTA {
                    return Outcome::Denied(DenyKind::Quota);
                }
                if file.data.len() < data.len() {
                    file.data.resize(data.len(), 0);
                }
                file.data[..data.len()].copy_from_slice(&data);
                Outcome::Ok
            }
            Op::WriteFileAt { task, dir, slot, offset, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                let Some(file) = self.dirs[d].files.get_mut(&slot) else {
                    return Outcome::Denied(DenyKind::NotFound);
                };
                if !task.labels.flows_to(&file.labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                let data = payload(idx, len);
                let offset = offset as usize;
                let end = offset + data.len();
                // Fail-closed quota check before any extension, as in
                // the kernel: a sparse write past the quota allocates
                // nothing and changes nothing.
                if end > FILE_SIZE_QUOTA {
                    return Outcome::Denied(DenyKind::Quota);
                }
                if file.data.len() < end {
                    file.data.resize(end, 0); // sparse gap zero-filled
                }
                file.data[offset..end].copy_from_slice(&data);
                Outcome::Ok
            }
            Op::ReadFile { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                let Some(file) = self.dirs[d].files.get(&slot) else {
                    return Outcome::Denied(DenyKind::NotFound);
                };
                if !file.labels.flows_to(&task.labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                Outcome::Bytes(file.data[..file.data.len().min(READ_CHUNK)].to_vec())
            }
            Op::GetLabels { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                // get_labels is traversal-mediated only: no final check.
                match self.dirs[d].files.get(&slot) {
                    Some(f) => Outcome::Labels(f.labels.clone()),
                    None => Outcome::Denied(DenyKind::NotFound),
                }
            }
            Op::Unlink { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_into(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                if !self.dirs[d].files.contains_key(&slot) {
                    return Outcome::Denied(DenyKind::NotFound);
                }
                // The name lives in the parent: unlink writes the parent.
                if !task.labels.flows_to(&self.dirs[d].labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                self.dirs[d].files.remove(&slot);
                Outcome::Ok
            }
            Op::Rmdir { task, dir } => {
                let d = 2 + dir as usize % 4;
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_to(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                if !self.dirs[d].exists {
                    return Outcome::Denied(DenyKind::NotFound);
                }
                if !self.dirs[d].files.is_empty() {
                    return Outcome::Denied(DenyKind::NotEmpty);
                }
                // Removing the name writes the parent, /tmp.
                if !task.labels.flows_to(&self.dirs[1].labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                self.dirs[d] = MDir::default();
                Outcome::Ok
            }
            Op::Readdir { task, dir } => {
                let d = dir as usize % DIRS;
                let task = &self.tasks[task as usize % nt];
                if let Err(k) = self.traverse_to(&task.labels, d) {
                    return Outcome::Denied(k);
                }
                if !self.dirs[d].exists {
                    return Outcome::Denied(DenyKind::NotFound);
                }
                // Listing reads the directory itself.
                if !self.dirs[d].labels.flows_to(&task.labels) {
                    return Outcome::Denied(DenyKind::Flow);
                }
                let mut names: Vec<String> =
                    self.dirs[d].files.keys().map(|s| format!("f{s}")).collect();
                if d == 1 {
                    for (i, name) in [(2, "s0"), (3, "i0"), (4, "d4"), (5, "d5")] {
                        if self.dirs[i].exists {
                            names.push(name.to_string());
                        }
                    }
                }
                names.sort();
                Outcome::Names(names)
            }
            Op::Kill { task, target, sig } => {
                let (from, to) = (task as usize % nt, target as usize % nt);
                if self.tasks[from].labels.flows_to(&self.tasks[to].labels) {
                    self.tasks[to].signals.push_back(sig);
                } else {
                    // Silently dropped — the sender cannot tell, only
                    // the trusted audit log records it.
                    self.predicted_drop = Some(MDrop::Signal);
                }
                Outcome::Ok
            }
            Op::NextSignal { task } => {
                Outcome::Sig(self.tasks[task as usize % nt].signals.pop_front())
            }
            Op::VmBarrier { task, write, s_mask, i_mask } => {
                let obj = self.pair(s_mask, i_mask);
                let thread = &self.tasks[task as usize % nt].labels;
                let ok = if write { thread.flows_to(&obj) } else { obj.flows_to(thread) };
                if ok {
                    Outcome::Ok
                } else {
                    Outcome::Denied(DenyKind::Flow)
                }
            }
            Op::RegionEnter { task, s_mask, i_mask, plus_mask, minus_mask } => {
                let t = &self.tasks[task as usize % nt];
                let rs = MLabel::from_mask(self.norm_mask(s_mask));
                let ri = MLabel::from_mask(self.norm_mask(i_mask));
                // §4.3.2: each region tag must be acquirable (a plus
                // capability) or already carried.
                let s_ok = rs
                    .0
                    .iter()
                    .all(|g| t.caps.plus.contains(g) || t.labels.secrecy.0.contains(g));
                let i_ok = ri
                    .0
                    .iter()
                    .all(|g| t.caps.plus.contains(g) || t.labels.integrity.0.contains(g));
                // Region capabilities must not exceed the thread's.
                let rp = MLabel::from_mask(self.norm_mask(plus_mask));
                let rm = MLabel::from_mask(self.norm_mask(minus_mask));
                let c_ok = rp.0.iter().all(|g| t.caps.plus.contains(g))
                    && rm.0.iter().all(|g| t.caps.minus.contains(g));
                if s_ok && i_ok && c_ok {
                    Outcome::Ok
                } else {
                    Outcome::Denied(DenyKind::Permission)
                }
            }
        }
    }

    /// The §5.2 labeled-create conditions, in kernel check order.
    fn check_create(task: &MTask, parent: &MPair, new: &MPair) -> Result<(), DenyKind> {
        // 1a: the new name/label reveals at least the creator's taint.
        if !task.labels.secrecy.is_subset_of(&new.secrecy) {
            return Err(DenyKind::Permission);
        }
        // 1b: the file cannot claim integrity the creator lacks.
        if !new.integrity.is_subset_of(&task.labels.integrity) {
            return Err(DenyKind::Permission);
        }
        // 2: a labeled creator's taint must be voluntary.
        if !task.labels.is_unlabeled() {
            let voluntary =
                task.labels.secrecy.0.iter().all(|t| task.caps.plus.contains(t))
                    && task.labels.integrity.0.iter().all(|t| task.caps.plus.contains(t));
            if !voluntary {
                return Err(DenyKind::Permission);
            }
        }
        // 3: inserting the name writes the parent directory.
        if !task.labels.flows_to(parent) {
            return Err(DenyKind::Flow);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::{check_label_change, CapSet, Capability, Label, SecPair, Tag};
    use laminar_util::SplitMix64;

    // Cross-validation: the oracle's pure set arithmetic must agree
    // with the interned/cached `laminar-difc` implementation on random
    // labels. Tags here are offset so they never collide with other
    // tests' interned labels.
    const BASE: u64 = 770_000;

    fn dif_label(l: &MLabel) -> Label {
        Label::from_tags(l.0.iter().map(|&t| Tag::from_raw(BASE + u64::from(t))))
    }

    fn dif_pair(p: &MPair) -> SecPair {
        SecPair::new(dif_label(&p.secrecy), dif_label(&p.integrity))
    }

    #[test]
    fn flow_rule_matches_difc_on_random_pairs() {
        let mut rng = SplitMix64::new(0xF10A);
        for _ in 0..2000 {
            let a = MPair::from_masks(rng.next_u32() as u8, rng.next_u32() as u8);
            let b = MPair::from_masks(rng.next_u32() as u8, rng.next_u32() as u8);
            assert_eq!(
                a.flows_to(&b),
                dif_pair(&a).flows_to(&dif_pair(&b)),
                "flow disagreement on {a:?} -> {b:?}"
            );
        }
    }

    #[test]
    fn label_change_rule_matches_difc_on_random_changes() {
        let mut rng = SplitMix64::new(0xC4A6);
        for _ in 0..2000 {
            let from = MLabel::from_mask(rng.next_u32() as u8);
            let to = MLabel::from_mask(rng.next_u32() as u8);
            let caps = MCaps {
                plus: MLabel::from_mask(rng.next_u32() as u8).0,
                minus: MLabel::from_mask(rng.next_u32() as u8).0,
            };
            let mut dif_caps = CapSet::new();
            for &t in &caps.plus {
                dif_caps.grant(Capability::plus(Tag::from_raw(BASE + u64::from(t))));
            }
            for &t in &caps.minus {
                dif_caps.grant(Capability::minus(Tag::from_raw(BASE + u64::from(t))));
            }
            assert_eq!(
                label_change_allowed(&from, &to, &caps),
                check_label_change(&dif_label(&from), &dif_label(&to), &dif_caps).is_ok(),
                "label-change disagreement on {from:?} -> {to:?} with {caps:?}"
            );
        }
    }

    #[test]
    fn pipe_mirrors_whole_message_drop_and_cap_blocking() {
        let mut p = MPipe::with_labels(MPair::unlabeled());
        assert!(p.push_bytes(&vec![0u8; PIPE_CAPACITY]));
        assert!(!p.push_bytes(b"x")); // over capacity: dropped whole
        assert_eq!(p.bytes_queued(), PIPE_CAPACITY);
        let mut q = MPipe::with_labels(MPair::unlabeled());
        assert!(q.push_cap(3, true));
        assert!(q.push_bytes(b"later"));
        assert_eq!(q.pop_bytes(8), b""); // cap at head blocks bytes
        assert_eq!(q.pop_cap(), Some((3, true)));
        assert_eq!(q.pop_bytes(8), b"later");
    }

    #[test]
    fn pipe_mirrors_zero_byte_noop_and_message_ceiling() {
        let mut p = MPipe::with_labels(MPair::unlabeled());
        assert!(p.push_bytes(b"")); // no-op success, nothing queued
        assert_eq!(p.msg_count(), 0);
        for _ in 0..PIPE_MSG_LIMIT {
            assert!(p.push_cap(1, true));
        }
        // The ceiling is exact: message 4097 is dropped, for bytes
        // and capabilities alike.
        assert!(!p.push_cap(1, true));
        assert!(!p.push_bytes(b"x"));
        assert_eq!(p.msg_count(), PIPE_MSG_LIMIT);
    }
}
