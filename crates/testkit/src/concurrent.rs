//! Concurrent conformance: the commit-order-witness regime.
//!
//! The sharded kernel claims that parallel syscalls are *serializable*:
//! every execution is outcome-equivalent to some sequential execution,
//! and the kernel names that sequential execution itself via its commit
//! tickets (each syscall takes a globally ordered ticket while it still
//! holds every shard lock it touched — strict two-phase locking, so
//! ticket order is a valid linearization of the conflict order).
//!
//! This module puts that claim under test:
//!
//! 1. generate a trace over a *concurrent vocabulary* (every op is
//!    exactly one transactional syscall, see
//!    [`KernelReplay::apply_concurrent`]), partitioned into per-thread
//!    lanes by owning task;
//! 2. run the lanes concurrently via [`laminar_os::Kernel::run_parallel`]
//!    — one worker thread per task — recording each op's outcome and
//!    commit ticket;
//! 3. cross-check the recorded tickets against the kernel's own
//!    commit-order log;
//! 4. replay the witnessed linearization (all lanes merged in ticket
//!    order) through the single-threaded reference [`Oracle`], asserting
//!    per-op outcomes and the final security state are identical.
//!
//! On a divergence, the witnessed linearization is itself a
//! deterministic single-threaded trace; if it reproduces the divergence
//! sequentially it is delta-debugged with the same shrinker the
//! single-threaded explorer uses ([`crate::shrink_with`]).

use crate::explore::{env_u64, shrink_with, Divergence, ExploreReport};
use crate::oracle::{Oracle, Outcome};
use crate::replay::KernelReplay;
use crate::trace::{Op, SETUP_TAGS};
use laminar_util::SplitMix64;
use std::collections::BTreeMap;

/// One op as witnessed by a worker thread: its index in the generated
/// trace (which fixes its payload), its outcome, and the commit ticket
/// of its decisive syscall.
#[derive(Clone, Debug)]
pub struct WitnessedOp {
    /// The op's position in the generated trace.
    pub index: usize,
    /// The op.
    pub op: Op,
    /// The outcome the concurrent execution observed.
    pub outcome: Outcome,
    /// The kernel commit ticket of the op's decisive syscall.
    pub seq: u64,
}

/// A concurrent conformance failure: the witnessed linearization plus
/// what diverged, and — when the divergence reproduces sequentially —
/// its shrunk form.
#[derive(Clone, Debug)]
pub struct ConcurrentCounterexample {
    /// The trace seed.
    pub seed: u64,
    /// Worker thread (= task) count.
    pub threads: usize,
    /// The (possibly shrunk) linearized `(index, op)` sequence.
    pub lin: Vec<(usize, Op)>,
    /// What went wrong.
    pub divergence: Divergence,
    /// Whether `lin` reproduces the divergence single-threaded (and was
    /// therefore shrunk). `false` means the failure only manifested
    /// under true concurrency — `lin` is the full unshrunk witness.
    pub deterministic: bool,
}

/// Generates a concurrent trace: `len` ops over `tasks` tasks drawn
/// from the concurrent vocabulary only — no [`Op::AllocTag`] (the tag
/// table must stay frozen while views are shared across threads), no
/// multi-syscall file I/O, no pure in-process checks. Deterministic in
/// `(seed, len, tasks)`.
#[must_use]
pub fn generate_concurrent_trace(seed: u64, len: usize, tasks: usize) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    let mask = |rng: &mut SplitMix64| rng.below(1 << SETUP_TAGS) as u8;
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let task = rng.below(tasks as u64) as u8;
        let op = match rng.below(22) {
            0..=2 => Op::SetLabel { task, secrecy: rng.gen_bool(), mask: mask(&mut rng) },
            3 => {
                // Sparse masks, as in the single-threaded generator.
                let p = mask(&mut rng) & mask(&mut rng);
                let m = mask(&mut rng) & mask(&mut rng);
                Op::DropCaps { task, plus_mask: p, minus_mask: m }
            }
            4 => Op::WriteCap {
                task,
                pipe: rng.below(3) as u8,
                tag: rng.below(u64::from(SETUP_TAGS)) as u8,
                plus: rng.gen_bool(),
            },
            5 => Op::ReadCap { task, pipe: rng.below(3) as u8 },
            6 | 7 => Op::PipeWrite {
                task,
                pipe: rng.below(3) as u8,
                len: rng.gen_range(1..9) as u8,
            },
            8 | 9 => Op::PipeRead {
                task,
                pipe: rng.below(3) as u8,
                max: rng.gen_range(1..17) as u8,
            },
            10 => Op::CreateFile {
                task,
                dir: rng.below(6) as u8,
                slot: rng.below(4) as u8,
                s_mask: mask(&mut rng),
                i_mask: mask(&mut rng),
            },
            11 => Op::MkdirLabeled {
                task,
                dir: 4 + rng.below(2) as u8,
                s_mask: mask(&mut rng),
                i_mask: mask(&mut rng),
            },
            12 | 13 => Op::WriteFile {
                task,
                dir: rng.below(6) as u8,
                slot: rng.below(4) as u8,
                len: rng.gen_range(1..9) as u8,
            },
            14 => {
                Op::ReadFile { task, dir: rng.below(6) as u8, slot: rng.below(4) as u8 }
            }
            15 => {
                Op::GetLabels { task, dir: rng.below(6) as u8, slot: rng.below(4) as u8 }
            }
            16 => Op::Unlink { task, dir: rng.below(6) as u8, slot: rng.below(4) as u8 },
            17 => Op::Rmdir { task, dir: 2 + rng.below(4) as u8 },
            18 => Op::Readdir { task, dir: rng.below(6) as u8 },
            19 => Op::Kill {
                task,
                target: rng.below(tasks as u64) as u8,
                sig: rng.gen_range(1..5) as u8,
            },
            // One-shot sparse write (`write_file_at_off`): a single
            // transaction with a single commit ticket, so it is
            // attributable to one position in the witnessed
            // linearization; offsets straddle the file-size quota.
            21 => Op::WriteFileAt {
                task,
                dir: rng.below(3) as u8,
                slot: rng.below(2) as u8,
                offset: rng.below(crate::trace::WRITE_OFFSET_CEILING) as u16,
                len: rng.gen_range(1..9) as u8,
            },
            _ => Op::NextSignal { task },
        };
        ops.push(op);
    }
    ops
}

/// The task that *issues* an op's syscall (its lane).
fn op_task(op: &Op) -> u8 {
    match *op {
        Op::AllocTag { task }
        | Op::SetLabel { task, .. }
        | Op::DropCaps { task, .. }
        | Op::WriteCap { task, .. }
        | Op::ReadCap { task, .. }
        | Op::PipeWrite { task, .. }
        | Op::PipeRead { task, .. }
        | Op::CreateFile { task, .. }
        | Op::MkdirLabeled { task, .. }
        | Op::WriteFile { task, .. }
        | Op::WriteFileAt { task, .. }
        | Op::ReadFile { task, .. }
        | Op::GetLabels { task, .. }
        | Op::Unlink { task, .. }
        | Op::Rmdir { task, .. }
        | Op::Readdir { task, .. }
        | Op::Kill { task, .. }
        | Op::NextSignal { task }
        | Op::VmBarrier { task, .. }
        | Op::RegionEnter { task, .. } => task,
    }
}

/// Runs `ops` concurrently on `threads` worker threads (one task each)
/// and checks the witnessed linearization against the oracle.
///
/// # Errors
/// The witnessed linearization plus the first divergence found.
///
/// # Panics
/// On fixture setup failure (`threads < 3`).
pub fn run_concurrent_trace(
    ops: &[Op],
    threads: usize,
) -> Result<(), Box<ConcurrentCounterexample>> {
    let replay = KernelReplay::with_tasks(threads);

    let mut lanes: Vec<Vec<(usize, Op)>> = vec![Vec::new(); threads];
    for (i, op) in ops.iter().enumerate() {
        lanes[op_task(op) as usize % threads].push((i, op.clone()));
    }

    replay.kernel().set_commit_log_enabled(true);
    let task_sets: Vec<Vec<_>> =
        replay.handles().iter().map(|h| vec![h.clone()]).collect();
    let lanes_ref = &lanes;
    let replay_ref = &replay;
    let results: Vec<Vec<WitnessedOp>> =
        replay.kernel().run_parallel(task_sets, |w, _own| {
            lanes_ref[w]
                .iter()
                .map(|(i, op)| {
                    let (outcome, seq) = replay_ref.apply_concurrent(op, *i);
                    WitnessedOp { index: *i, op: op.clone(), outcome, seq }
                })
                .collect()
        });
    replay.kernel().set_commit_log_enabled(false);
    let log = replay.kernel().drain_commit_log();

    let mut merged: Vec<WitnessedOp> = results.into_iter().flatten().collect();
    merged.sort_by_key(|r| r.seq);
    let lin: Vec<(usize, Op)> = merged.iter().map(|r| (r.index, r.op.clone())).collect();
    let fail = |divergence: Divergence| {
        Box::new(ConcurrentCounterexample {
            seed: 0, // filled in by the explorer
            threads,
            lin: lin.clone(),
            divergence,
            deterministic: false,
        })
    };

    // 1. The witness must be internally consistent: distinct tickets,
    //    each one present in the kernel's own commit-order log under the
    //    issuing task's id. (The log is a superset: a CreateFile op also
    //    commits a trailing close.)
    let by_seq: BTreeMap<u64, _> = log.iter().map(|r| (r.seq, r.task)).collect();
    for pair in merged.windows(2) {
        if pair[0].seq == pair[1].seq {
            return Err(fail(Divergence {
                index: pair[1].index,
                op: pair[1].op.clone(),
                detail: format!(
                    "commit ticket {} witnessed by two ops (indices {} and {})",
                    pair[1].seq, pair[0].index, pair[1].index
                ),
            }));
        }
    }
    for r in &merged {
        let want = replay.handles()[op_task(&r.op) as usize % threads].id();
        match by_seq.get(&r.seq) {
            Some(&tid) if tid == want => {}
            got => {
                return Err(fail(Divergence {
                    index: r.index,
                    op: r.op.clone(),
                    detail: format!(
                        "commit log disagrees with witness at ticket {}: log has \
                         {got:?}, op ran as task {want}",
                        r.seq
                    ),
                }));
            }
        }
    }

    // 2. The linearization must explain every outcome and the final
    //    state.
    let mut oracle = Oracle::with_tasks(threads);
    for r in &merged {
        let expected = oracle.apply(&r.op, r.index);
        if expected != r.outcome {
            return Err(fail(Divergence {
                index: r.index,
                op: r.op.clone(),
                detail: format!(
                    "outcome not explained by the witnessed linearization \
                     (ticket {}):\n  kernel: {:?}\n  oracle: {expected:?}",
                    r.seq, r.outcome
                ),
            }));
        }
    }
    if let Some(d) = replay.diff_state(&oracle) {
        let (index, op) = lin.last().cloned().unwrap_or((0, Op::NextSignal { task: 0 }));
        return Err(fail(Divergence {
            index,
            op,
            detail: format!("final state diverges from the linearization: {d}"),
        }));
    }
    Ok(())
}

/// Replays a linearized `(index, op)` sequence single-threaded, kernel
/// vs oracle — the deterministic re-check (and shrink oracle) for a
/// concurrent counterexample.
///
/// # Errors
/// The first [`Divergence`] found.
pub fn run_linearized(lin: &[(usize, Op)], threads: usize) -> Result<(), Divergence> {
    let replay = KernelReplay::with_tasks(threads);
    let mut oracle = Oracle::with_tasks(threads);
    for (index, op) in lin {
        let (got, _) = replay.apply_concurrent(op, *index);
        let expected = oracle.apply(op, *index);
        if got != expected {
            return Err(Divergence {
                index: *index,
                op: op.clone(),
                detail: format!(
                    "outcome mismatch:\n  kernel: {got:?}\n  oracle: {expected:?}"
                ),
            });
        }
    }
    if let Some(d) = replay.diff_state(&oracle) {
        let (index, op) = lin.last().cloned().unwrap_or((0, Op::NextSignal { task: 0 }));
        return Err(Divergence { index, op, detail: format!("state divergence: {d}") });
    }
    Ok(())
}

/// Configuration of one concurrent exploration run.
#[derive(Clone, Debug)]
pub struct ConcurrentConfig {
    /// Top-level seeds; each derives `traces_per_seed` trace seeds.
    pub seeds: Vec<u64>,
    /// Traces per top-level seed.
    pub traces_per_seed: usize,
    /// Ops per trace.
    pub ops_per_trace: usize,
    /// Worker threads (= tasks); at least 3.
    pub threads: usize,
}

impl ConcurrentConfig {
    /// Default seed base for CI's fixed matrix (disjoint from the
    /// single-threaded matrices).
    pub const DEFAULT_SEED_BASE: u64 = 0x5EED_5111;
    /// Default number of top-level seeds.
    pub const DEFAULT_SEEDS: usize = 4;
    /// Default traces per seed (4 × 2000 = 8000 traces per run).
    pub const DEFAULT_TRACES: usize = 2000;
    /// Default ops per trace.
    pub const DEFAULT_OPS: usize = 24;
    /// Default worker thread count.
    pub const DEFAULT_THREADS: usize = 4;

    /// Builds a config from the environment: `TESTKIT_SEED` /
    /// `TESTKIT_SEED_BASE` / `TESTKIT_SEEDS` as in
    /// [`crate::ExploreConfig::from_env`], plus `TESTKIT_CONC_TRACES`,
    /// `TESTKIT_CONC_OPS` and `TESTKIT_CONC_THREADS` volume knobs.
    #[must_use]
    pub fn from_env() -> Self {
        let seeds = if let Some(s) = env_u64("TESTKIT_SEED") {
            vec![s]
        } else {
            let base = env_u64("TESTKIT_SEED_BASE").unwrap_or(Self::DEFAULT_SEED_BASE);
            let n = env_u64("TESTKIT_SEEDS")
                .map_or(Self::DEFAULT_SEEDS, |n| n as usize)
                .max(1);
            (0..n as u64).map(|i| base.wrapping_add(i)).collect()
        };
        ConcurrentConfig {
            seeds,
            traces_per_seed: env_u64("TESTKIT_CONC_TRACES")
                .map_or(Self::DEFAULT_TRACES, |n| n as usize),
            ops_per_trace: env_u64("TESTKIT_CONC_OPS")
                .map_or(Self::DEFAULT_OPS, |n| n as usize),
            threads: env_u64("TESTKIT_CONC_THREADS")
                .map_or(Self::DEFAULT_THREADS, |n| n as usize)
                .max(3),
        }
    }
}

/// Runs the full concurrent exploration. On a failure the witnessed
/// linearization is re-checked single-threaded and, if it reproduces,
/// shrunk with [`shrink_with`]; if `TESTKIT_ARTIFACT_DIR` is set the
/// counterexample is also written there.
///
/// # Errors
/// The (possibly shrunk) [`ConcurrentCounterexample`].
pub fn explore_concurrent(
    cfg: &ConcurrentConfig,
) -> Result<ExploreReport, Box<ConcurrentCounterexample>> {
    let mut traces_run = 0;
    let mut ops_run = 0;
    for &seed in &cfg.seeds {
        let mut derive = SplitMix64::new(seed);
        for _ in 0..cfg.traces_per_seed {
            let trace_seed = derive.next_u64();
            let ops =
                generate_concurrent_trace(trace_seed, cfg.ops_per_trace, cfg.threads);
            if let Err(mut cex) = run_concurrent_trace(&ops, cfg.threads) {
                cex.seed = trace_seed;
                if run_linearized(&cex.lin, cfg.threads).is_err() {
                    let (min, divergence) =
                        shrink_with(&cex.lin, |l| run_linearized(l, cfg.threads));
                    cex.lin = min;
                    cex.divergence = divergence;
                    cex.deterministic = true;
                }
                write_concurrent_artifact(&cex);
                return Err(cex);
            }
            traces_run += 1;
            ops_run += ops.len();
        }
    }
    Ok(ExploreReport { traces_run, ops_run })
}

fn write_concurrent_artifact(cex: &ConcurrentCounterexample) {
    let Ok(dir) = std::env::var("TESTKIT_ARTIFACT_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = format!("{dir}/concurrent_counterexample_{:#018x}.txt", cex.seed);
    let _ = std::fs::write(&path, format!("{cex:#?}\n"));
    eprintln!("testkit: wrote concurrent counterexample to {path}");
}

/// Runs the environment-configured concurrent exploration and panics
/// with full detail on any divergence — the test-facing entry point.
///
/// # Panics
/// On any conformance divergence.
pub fn assert_concurrent_conformance(cfg: &ConcurrentConfig) {
    if let Err(cex) = explore_concurrent(cfg) {
        panic!(
            "concurrent conformance divergence (seed {:#018x}, {} threads, \
             deterministic: {}):\nat op {} ({:?}):\n{}\nlinearization:\n{:#?}",
            cex.seed,
            cex.threads,
            cex.deterministic,
            cex.divergence.index,
            cex.divergence.op,
            cex.divergence.detail,
            cex.lin
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_generation_is_deterministic_and_in_vocabulary() {
        let a = generate_concurrent_trace(7, 200, 4);
        assert_eq!(a, generate_concurrent_trace(7, 200, 4));
        assert!(a.iter().all(|op| !matches!(
            op,
            Op::AllocTag { .. } | Op::VmBarrier { .. } | Op::RegionEnter { .. }
        )));
        assert!(a.iter().any(|op| matches!(op, Op::Kill { .. })));
    }

    #[test]
    fn a_small_concurrent_trace_conforms() {
        let ops = generate_concurrent_trace(0xC0C0, 64, 4);
        if let Err(cex) = run_concurrent_trace(&ops, 4) {
            panic!("divergence: {cex:#?}");
        }
    }

    #[test]
    fn linearized_replay_accepts_a_consistent_trace() {
        let lin: Vec<(usize, Op)> =
            generate_concurrent_trace(0xD0D0, 48, 4).into_iter().enumerate().collect();
        if let Err(d) = run_linearized(&lin, 4) {
            panic!("divergence: {d:#?}");
        }
    }
}
