//! Replays traces against the real stack: the simulated kernel with the
//! Laminar LSM, the DIFC crate's interned/cached checks underneath it,
//! and the VM barrier/region entry points.
//!
//! [`KernelReplay::new`] builds the same fixture the oracle models (see
//! the [`crate::trace`] module docs), [`KernelReplay::apply`] executes
//! one [`Op`] through the public syscall surface and normalizes the
//! result to an [`Outcome`], and [`KernelReplay::diff_state`] compares
//! the kernel's full observable security state — task labels and
//! capabilities, every file's labels and contents, pipe queue depths —
//! against the oracle's.

use crate::oracle::{DenyKind, MCaps, MLabel, MPair, Oracle, Outcome};
use crate::trace::{
    payload, Op, DIRS, FILE_SIZE_QUOTA, FILE_SLOTS, PIPES, TAG_CEILING, TASKS,
};
use laminar_difc::Tag;
use laminar_difc::{CapKind, CapSet, Capability, Label, LabelType, SecPair};
use laminar_os::{
    Fd, Kernel, LaminarModule, OpenMode, OsError, Quotas, Signal, TaskHandle, UserId,
};
use std::sync::Arc;

/// The kernel-side half of a conformance run.
///
/// `Clone` produces another *view* of the same kernel (handles and fds
/// are shared); the concurrent explorer hands one view to each worker
/// thread. Cloning is only sound while no [`Op::AllocTag`] can run —
/// the concurrent vocabulary excludes it, so the tag table is frozen.
#[derive(Clone, Debug)]
pub struct KernelReplay {
    kernel: Arc<Kernel>,
    tasks: Vec<TaskHandle>,
    /// `(read_end, write_end)` — identical fd numbers in every task,
    /// because the children were forked after the pipes were made.
    pipes: Vec<(Fd, Fd)>,
    /// Model tag index → kernel tag.
    tags: Vec<Tag>,
}

/// Maps a kernel error to the coarse [`DenyKind`] the oracle speaks.
fn deny(e: &OsError) -> Outcome {
    Outcome::Denied(match e {
        OsError::NotFound => DenyKind::NotFound,
        OsError::Exists => DenyKind::Exists,
        OsError::FlowDenied(_) => DenyKind::Flow,
        OsError::LabelChangeDenied(_) => DenyKind::LabelChange,
        OsError::PermissionDenied(_) => DenyKind::Permission,
        OsError::NotEmpty => DenyKind::NotEmpty,
        OsError::Internal => DenyKind::Internal,
        OsError::QuotaExceeded(_) => DenyKind::Quota,
        _ => DenyKind::Other,
    })
}

impl KernelReplay {
    /// Boots a fresh kernel and builds the fixture. Panics on setup
    /// failure — the fixture exercises only known-good paths.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // setup panics are test failures
    pub fn new() -> Self {
        Self::with_tasks(TASKS)
    }

    /// Like [`KernelReplay::new`] but with `n >= 3` tasks: the standard
    /// three, plus `n - 3` further children forked with no capabilities
    /// (mirrored by [`Oracle::with_tasks`]). The concurrent explorer
    /// uses one task per worker thread.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // setup panics are test failures
    pub fn with_tasks(n: usize) -> Self {
        assert!(n >= 3, "the fixture needs at least the standard 3 tasks");
        // The conformance kernel boots with the small testkit file-size
        // quota (mirrored by the oracle's FILE_SIZE_QUOTA) so sparse
        // WriteFileAt offsets exercise the fail-closed quota denial.
        let kernel = Kernel::boot_with_quotas(
            LaminarModule,
            Quotas { max_file_size: FILE_SIZE_QUOTA, ..Quotas::default() },
        );
        kernel.add_user(UserId(1), "alice");
        let root = kernel.login(UserId(1)).expect("login");

        let t0 = root.alloc_tag().expect("tag 0");
        let t1 = root.alloc_tag().expect("tag 1");
        let s0 = SecPair::secrecy_only(Label::singleton(t0));
        let i1 = SecPair::integrity_only(Label::singleton(t1));
        kernel.install_dir("/tmp/s0", s0.clone()).expect("install /tmp/s0");
        kernel.install_dir("/tmp/i0", i1.clone()).expect("install /tmp/i0");

        // Pipes carry the creator's labels: taint, create, untaint.
        let p0 = root.pipe().expect("pipe 0");
        root.set_task_label(LabelType::Secrecy, Label::singleton(t0)).expect("taint");
        let p1 = root.pipe().expect("pipe 1");
        root.set_task_label(LabelType::Secrecy, Label::empty()).expect("untaint");
        root.set_task_label(LabelType::Integrity, Label::singleton(t1)).expect("endorse");
        let p2 = root.pipe().expect("pipe 2");
        root.set_task_label(LabelType::Integrity, Label::empty()).expect("unendorse");

        // Children fork *after* the pipes so fd numbers are shared.
        let c1 = root
            .fork(Some(CapSet::from_caps([Capability::plus(t0)])))
            .expect("fork child 1");
        let mut tasks = vec![root, c1];
        for i in 2..n {
            tasks.push(tasks[0].fork(Some(CapSet::new())).unwrap_or_else(|e| {
                panic!("fork child {i}: {e:?}");
            }));
        }

        KernelReplay { kernel, tasks, pipes: vec![p0, p1, p2], tags: vec![t0, t1] }
    }

    /// Poisons one kernel lock shard (by ordinal, wrapping at
    /// [`laminar_os::SHARD_COUNT`]) from a crashing thread; every
    /// subsequent syscall must recover and behave identically.
    pub fn poison_shard(&self, ordinal: usize) {
        self.kernel.poison_shard_for_test(ordinal);
    }

    /// The kernel under test (shared with every cloned view).
    #[must_use]
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The task handles of the fixture, index-aligned with the oracle's
    /// tasks.
    #[must_use]
    pub fn handles(&self) -> &[TaskHandle] {
        &self.tasks
    }

    /// Arms a one-shot syscall failpoint on the kernel under test; the
    /// next mutating syscall that reaches the trigger point faults.
    pub fn arm_failpoint(&self, fp: laminar_os::SyscallFailpoint) {
        self.kernel.arm_failpoint_for_test(fp);
    }

    /// Whether the armed failpoint fired since the last call (the fired
    /// flag is cleared by reading it).
    #[must_use]
    pub fn take_failpoint_fired(&self) -> bool {
        self.kernel.take_failpoint_fired()
    }

    // ----- operand normalization (identical to the oracle's) ------------

    fn norm_mask(&self, mask: u8) -> u8 {
        mask & ((1u16 << self.tags.len().min(8)) - 1) as u8
    }

    fn mask_label(&self, mask: u8) -> Label {
        let m = self.norm_mask(mask);
        Label::from_tags(
            (0..self.tags.len()).filter(|b| m & (1 << b) != 0).map(|b| self.tags[b]),
        )
    }

    fn mask_pair(&self, s_mask: u8, i_mask: u8) -> SecPair {
        SecPair::new(self.mask_label(s_mask), self.mask_label(i_mask))
    }

    fn norm_tag(&self, tag: u8) -> Tag {
        self.tags[tag as usize % self.tags.len()]
    }

    fn tag_model(&self, tag: Tag) -> u32 {
        self.tags.iter().position(|&t| t == tag).map_or(u32::MAX, |i| i as u32)
    }

    fn pair_model(&self, pair: &SecPair) -> MPair {
        MPair {
            secrecy: MLabel(pair.secrecy().iter().map(|t| self.tag_model(t)).collect()),
            integrity: MLabel(
                pair.integrity().iter().map(|t| self.tag_model(t)).collect(),
            ),
        }
    }

    fn caps_model(&self, caps: &CapSet) -> MCaps {
        let mut m = MCaps::default();
        for c in caps.iter() {
            let t = self.tag_model(c.tag());
            match c.kind() {
                CapKind::Plus => m.plus.insert(t),
                CapKind::Minus => m.minus.insert(t),
            };
        }
        m
    }

    // ----- the path scheme ------------------------------------------------

    fn file_path(d: usize, slot: u8) -> String {
        match d {
            0 => format!("f{slot}"), // relative: resolved from the home cwd
            _ => format!("{}/f{slot}", Self::dir_path(d)),
        }
    }

    fn dir_path(d: usize) -> &'static str {
        [".", "/tmp", "/tmp/s0", "/tmp/i0", "/tmp/d4", "/tmp/d5"][d]
    }

    fn inspect_dir_path(d: usize) -> &'static str {
        // Absolute, for the checkless admin inspection used by the diff.
        ["/home/alice", "/tmp", "/tmp/s0", "/tmp/i0", "/tmp/d4", "/tmp/d5"][d]
    }

    // ----- op execution ---------------------------------------------------

    /// Executes one op at trace position `idx` through the syscall layer.
    #[allow(clippy::missing_panics_doc)] // fixture invariants
    pub fn apply(&mut self, op: &Op, idx: usize) -> Outcome {
        let nt = self.tasks.len();
        match *op {
            Op::AllocTag { task } => {
                if self.tags.len() >= TAG_CEILING as usize {
                    return Outcome::Ok; // symmetric no-op guard
                }
                match self.tasks[task as usize % nt].alloc_tag() {
                    Ok(tag) => {
                        self.tags.push(tag);
                        Outcome::Ok
                    }
                    Err(e) => deny(&e),
                }
            }
            // The single-threaded explorer exercises the fd machinery:
            // file I/O goes open → read/write → close.
            Op::WriteFile { task, dir, slot, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let t = &self.tasks[task as usize % nt];
                let fd = match t.open(&Self::file_path(d, slot), OpenMode::Write) {
                    Ok(fd) => fd,
                    Err(e) => return deny(&e),
                };
                let r = t.write(fd, &payload(idx, len));
                t.close(fd).ok();
                match r {
                    Ok(_) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            // The sparse-write op goes through the fd machinery in the
            // single-threaded regime — open, seek past EOF, write —
            // which is exactly the `seek(huge)` + `write` vector the
            // file-size quota bounds.
            Op::WriteFileAt { task, dir, slot, offset, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let t = &self.tasks[task as usize % nt];
                let fd = match t.open(&Self::file_path(d, slot), OpenMode::Write) {
                    Ok(fd) => fd,
                    Err(e) => return deny(&e),
                };
                let r = t
                    .seek(fd, u64::from(offset))
                    .and_then(|()| t.write(fd, &payload(idx, len)));
                t.close(fd).ok();
                match r {
                    Ok(_) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::ReadFile { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let t = &self.tasks[task as usize % nt];
                let fd = match t.open(&Self::file_path(d, slot), OpenMode::Read) {
                    Ok(fd) => fd,
                    Err(e) => return deny(&e),
                };
                let r = t.read(fd, 64);
                t.close(fd).ok();
                match r {
                    Ok(data) => Outcome::Bytes(data),
                    Err(e) => deny(&e),
                }
            }
            Op::VmBarrier { task, write, s_mask, i_mask } => {
                let obj = self.mask_pair(s_mask, i_mask);
                let thread =
                    self.tasks[task as usize % nt].current_labels().expect("task labels");
                let r = if write {
                    laminar_vm::conformance::barrier_write_check(&thread, &obj)
                } else {
                    laminar_vm::conformance::barrier_read_check(&obj, &thread)
                };
                match r {
                    Ok(()) => Outcome::Ok,
                    Err(_) => Outcome::Denied(DenyKind::Flow),
                }
            }
            Op::RegionEnter { task, s_mask, i_mask, plus_mask, minus_mask } => {
                let t = &self.tasks[task as usize % nt];
                let labels = t.current_labels().expect("task labels");
                let caps = t.current_caps().expect("task caps");
                let mut params = laminar::RegionParams::new()
                    .secrecy(self.mask_label(s_mask))
                    .integrity(self.mask_label(i_mask));
                let (p, m) = (self.norm_mask(plus_mask), self.norm_mask(minus_mask));
                for (b, &tag) in self.tags.iter().enumerate() {
                    if p & (1 << b) != 0 {
                        params = params.grant(Capability::plus(tag));
                    }
                    if m & (1 << b) != 0 {
                        params = params.grant(Capability::minus(tag));
                    }
                }
                match laminar::check_region_entry(&labels, &caps, &params) {
                    Ok(()) => Outcome::Ok,
                    Err(_) => Outcome::Denied(DenyKind::Permission),
                }
            }
            _ => self.apply_concurrent(op, idx).0,
        }
    }

    /// Executes one op of the *concurrent* vocabulary — every op is
    /// exactly one transactional syscall, so the kernel's commit ticket
    /// for that syscall is the op's position in the witnessed
    /// linearization. Returns the outcome and that commit sequence
    /// number (from [`laminar_os::last_syscall_seq`] on this thread).
    ///
    /// Multi-syscall ops ([`Op::AllocTag`], fd-based file I/O) and pure
    /// in-process checks ([`Op::VmBarrier`], [`Op::RegionEnter`]) have
    /// no single commit point and are not in the vocabulary.
    ///
    /// # Panics
    /// On an op outside the concurrent vocabulary.
    #[allow(clippy::too_many_lines)] // one arm per syscall, kept together
    pub fn apply_concurrent(&self, op: &Op, idx: usize) -> (Outcome, u64) {
        let nt = self.tasks.len();
        let out = match *op {
            Op::SetLabel { task, secrecy, mask } => {
                let ty = if secrecy { LabelType::Secrecy } else { LabelType::Integrity };
                let label = self.mask_label(mask);
                match self.tasks[task as usize % nt].set_task_label(ty, label) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::DropCaps { task, plus_mask, minus_mask } => {
                let (p, m) = (self.norm_mask(plus_mask), self.norm_mask(minus_mask));
                let mut caps = Vec::new();
                for (b, &tag) in self.tags.iter().enumerate() {
                    if p & (1 << b) != 0 {
                        caps.push(Capability::plus(tag));
                    }
                    if m & (1 << b) != 0 {
                        caps.push(Capability::minus(tag));
                    }
                }
                match self.tasks[task as usize % nt].drop_capabilities(&caps) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::WriteCap { task, pipe, tag, plus } => {
                let t = self.norm_tag(tag);
                let cap = if plus { Capability::plus(t) } else { Capability::minus(t) };
                let wfd = self.pipes[pipe as usize % PIPES].1;
                match self.tasks[task as usize % nt].write_capability(cap, wfd) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::ReadCap { task, pipe } => {
                let rfd = self.pipes[pipe as usize % PIPES].0;
                match self.tasks[task as usize % nt].read_capability(rfd) {
                    Ok(cap) => {
                        Outcome::CapMsg(cap.map(|c| {
                            (self.tag_model(c.tag()), c.kind() == CapKind::Plus)
                        }))
                    }
                    Err(e) => deny(&e),
                }
            }
            Op::PipeWrite { task, pipe, len } => {
                let wfd = self.pipes[pipe as usize % PIPES].1;
                let data = payload(idx, len);
                match self.tasks[task as usize % nt].write(wfd, &data) {
                    Ok(_) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::PipeRead { task, pipe, max } => {
                let rfd = self.pipes[pipe as usize % PIPES].0;
                match self.tasks[task as usize % nt].read(rfd, max as usize) {
                    Ok(data) => Outcome::Bytes(data),
                    Err(e) => deny(&e),
                }
            }
            Op::CreateFile { task, dir, slot, s_mask, i_mask } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let path = Self::file_path(d, slot);
                let pair = self.mask_pair(s_mask, i_mask);
                let t = &self.tasks[task as usize % nt];
                match t.create_file_labeled(&path, pair) {
                    Ok(fd) => {
                        // The create is the decisive commit; take its
                        // ticket before the trailing close bumps it.
                        let seq = laminar_os::last_syscall_seq();
                        t.close(fd).ok();
                        return (Outcome::Ok, seq);
                    }
                    Err(e) => deny(&e),
                }
            }
            Op::MkdirLabeled { task, dir, s_mask, i_mask } => {
                let d = 4 + dir as usize % 2;
                let pair = self.mask_pair(s_mask, i_mask);
                let t = &self.tasks[task as usize % nt];
                match t.mkdir_labeled(Self::dir_path(d), pair) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            // Concurrent file I/O uses the one-shot path syscalls: the
            // whole check-and-copy is one transaction, one commit point.
            Op::WriteFileAt { task, dir, slot, offset, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let path = Self::file_path(d, slot);
                match self.tasks[task as usize % nt].write_file_at_off(
                    &path,
                    u64::from(offset),
                    &payload(idx, len),
                ) {
                    Ok(_) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::WriteFile { task, dir, slot, len } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let path = Self::file_path(d, slot);
                match self.tasks[task as usize % nt]
                    .write_file_at(&path, &payload(idx, len))
                {
                    Ok(_) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::ReadFile { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let path = Self::file_path(d, slot);
                match self.tasks[task as usize % nt].read_file_at(&path, 64) {
                    Ok(data) => Outcome::Bytes(data),
                    Err(e) => deny(&e),
                }
            }
            Op::GetLabels { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                let t = &self.tasks[task as usize % nt];
                match t.get_labels(&Self::file_path(d, slot)) {
                    Ok(pair) => Outcome::Labels(self.pair_model(&pair)),
                    Err(e) => deny(&e),
                }
            }
            Op::Unlink { task, dir, slot } => {
                let (d, slot) = (dir as usize % DIRS, slot % FILE_SLOTS);
                match self.tasks[task as usize % nt].unlink(&Self::file_path(d, slot)) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::Rmdir { task, dir } => {
                let d = 2 + dir as usize % 4;
                match self.tasks[task as usize % nt].unlink(Self::dir_path(d)) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::Readdir { task, dir } => {
                let d = dir as usize % DIRS;
                match self.tasks[task as usize % nt].readdir(Self::dir_path(d)) {
                    Ok(mut names) => {
                        names.sort();
                        Outcome::Names(names)
                    }
                    Err(e) => deny(&e),
                }
            }
            Op::Kill { task, target, sig } => {
                let to = self.tasks[target as usize % nt].id();
                match self.tasks[task as usize % nt].kill(to, Signal(i32::from(sig))) {
                    Ok(()) => Outcome::Ok,
                    Err(e) => deny(&e),
                }
            }
            Op::NextSignal { task } => {
                match self.tasks[task as usize % nt].next_signal() {
                    Ok(sig) => Outcome::Sig(sig.map(|s| s.0 as u8)),
                    Err(e) => deny(&e),
                }
            }
            Op::AllocTag { .. } | Op::VmBarrier { .. } | Op::RegionEnter { .. } => {
                panic!("op outside the concurrent vocabulary: {op:?}")
            }
        };
        (out, laminar_os::last_syscall_seq())
    }

    // ----- state diff -----------------------------------------------------

    /// Compares the kernel's observable security state with the
    /// oracle's. Returns a description of the first difference found.
    #[must_use]
    #[allow(clippy::missing_panics_doc)] // fixture invariants
    pub fn diff_state(&self, oracle: &Oracle) -> Option<String> {
        for (i, task) in self.tasks.iter().enumerate() {
            let labels = self.pair_model(&task.current_labels().expect("labels"));
            if labels != oracle.tasks[i].labels {
                return Some(format!(
                    "task {i} labels: kernel {labels:?} vs oracle {:?}",
                    oracle.tasks[i].labels
                ));
            }
            let caps = self.caps_model(&task.current_caps().expect("caps"));
            if caps != oracle.tasks[i].caps {
                return Some(format!(
                    "task {i} caps: kernel {caps:?} vs oracle {:?}",
                    oracle.tasks[i].caps
                ));
            }
        }
        for d in 0..DIRS {
            let od = &oracle.dirs[d];
            match self.kernel.inspect_node_for_test(Self::inspect_dir_path(d)) {
                Ok((pair, _)) => {
                    if !od.exists {
                        return Some(format!("dir {d} exists in kernel only"));
                    }
                    let labels = self.pair_model(&pair);
                    if labels != od.labels {
                        return Some(format!(
                            "dir {d} labels: kernel {labels:?} vs oracle {:?}",
                            od.labels
                        ));
                    }
                }
                Err(OsError::NotFound) => {
                    if od.exists {
                        return Some(format!("dir {d} exists in oracle only"));
                    }
                }
                Err(e) => return Some(format!("dir {d} inspect failed: {e:?}")),
            }
            for slot in 0..FILE_SLOTS {
                let of = od.files.get(&slot);
                let path = format!("{}/f{slot}", Self::inspect_dir_path(d));
                match (self.kernel.inspect_node_for_test(&path), of) {
                    (Ok((pair, Some(data))), Some(f)) => {
                        let labels = self.pair_model(&pair);
                        if labels != f.labels || data != f.data {
                            return Some(format!(
                                "file {path}: kernel ({labels:?}, {data:?}) vs \
                                 oracle ({:?}, {:?})",
                                f.labels, f.data
                            ));
                        }
                    }
                    (Ok(_), None) => {
                        return Some(format!("file {path} exists in kernel only"))
                    }
                    (Ok((_, None)), Some(_)) => {
                        return Some(format!("file {path} is not a file in the kernel"))
                    }
                    (Err(OsError::NotFound), None) => {}
                    (Err(OsError::NotFound), Some(_)) => {
                        return Some(format!("file {path} exists in oracle only"))
                    }
                    (Err(e), _) => {
                        return Some(format!("file {path} inspect failed: {e:?}"))
                    }
                }
            }
        }
        for (p, fds) in self.pipes.iter().enumerate() {
            let queued = self.tasks[0].pipe_queued_for_test(fds.0).expect("pipe bytes");
            let msgs = self.tasks[0].pipe_msgs_for_test(fds.0).expect("pipe msgs");
            if queued != oracle.pipes[p].bytes_queued()
                || msgs != oracle.pipes[p].msg_count()
            {
                return Some(format!(
                    "pipe {p}: kernel ({queued} B, {msgs} msgs) vs oracle ({} B, {} msgs)",
                    oracle.pipes[p].bytes_queued(),
                    oracle.pipes[p].msg_count()
                ));
            }
        }
        None
    }
}

impl Default for KernelReplay {
    fn default() -> Self {
        KernelReplay::new()
    }
}
