//! The syscall-trace vocabulary and the deterministic trace generator.
//!
//! A *trace* is a sequence of [`Op`]s over a small fixed universe of
//! principals, pipes, directories and file slots, set up identically by
//! the reference oracle ([`crate::Oracle`]) and the kernel replay
//! adapter ([`crate::KernelReplay`]):
//!
//! * **3 tasks** — task 0 is the login shell that allocated the two
//!   setup tags (it holds `{0±, 1±}`), task 1 was forked with `{0+}`
//!   only, task 2 was forked with no capabilities.
//! * **3 pipes** — pipe 0 unlabeled, pipe 1 labeled `S{0}`, pipe 2
//!   labeled `I{1}`; every task holds both ends of each.
//! * **6 directory slots** — 0 the (unlabeled) home directory reached
//!   by *relative* paths, 1 `/tmp` (unlabeled), 2 `/tmp/s0` (`S{0}`),
//!   3 `/tmp/i0` (`I{1}`), 4 and 5 dynamic (`/tmp/d4`, `/tmp/d5`)
//!   that exist only after a successful [`Op::MkdirLabeled`].
//! * **4 file slots** per directory, named `f0..f3`.
//!
//! Tag and label operands are stored as raw bytes and *normalized
//! against the number of allocated tags at replay time* (masks are
//! truncated, tag indices reduced modulo the allocation count) — on
//! both sides identically — so removing any op from a trace (including
//! an [`Op::AllocTag`]) leaves a trace that still replays. That
//! totality is what makes delta-debugging shrinking sound.
//!
//! Generation is driven entirely by [`laminar_util::SplitMix64`], so a
//! `(seed, length)` pair names one trace forever.

use laminar_util::SplitMix64;

/// Number of tasks in the universe.
pub const TASKS: usize = 3;
/// Number of pipes in the universe.
pub const PIPES: usize = 3;
/// Number of directory slots in the universe.
pub const DIRS: usize = 6;
/// Number of file slots per directory.
pub const FILE_SLOTS: u8 = 4;
/// Tags allocated by the fixture before the trace starts.
pub const SETUP_TAGS: u32 = 2;
/// The generator stops emitting [`Op::AllocTag`] at this tag count.
pub const MAX_TAGS: u32 = 5;
/// Hard ceiling on tags: label masks are a byte, so both the oracle and
/// the replay adapter treat [`Op::AllocTag`] beyond this as a no-op.
pub const TAG_CEILING: u32 = 8;
/// The per-file size quota the conformance kernel boots with
/// (`Quotas::max_file_size`), mirrored by the oracle. Deliberately small
/// so [`Op::WriteFileAt`] offsets (up to [`WRITE_OFFSET_CEILING`])
/// straddle it and traces exercise the quota denial on both sides.
pub const FILE_SIZE_QUOTA: usize = 4096;
/// Exclusive upper bound on [`Op::WriteFileAt`] offsets: ~22% above
/// [`FILE_SIZE_QUOTA`], so both in-quota sparse extends and fail-closed
/// quota denials are generated.
pub const WRITE_OFFSET_CEILING: u64 = 5000;

/// One step of a trace: a Fig. 3 syscall, a VFS operation, or a
/// VM-layer event. Fields are small raw operands; consumers normalize
/// them (see the module docs) so every field value is valid in every
/// state.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // operand fields are documented by the module contract
pub enum Op {
    /// `alloc_tag`: task mints a fresh tag, receiving both capabilities.
    AllocTag { task: u8 },
    /// `set_task_label`: replace one label component with the tag set
    /// named by `mask`.
    SetLabel { task: u8, secrecy: bool, mask: u8 },
    /// `drop_capabilities` for the masked plus/minus capability sets.
    DropCaps { task: u8, plus_mask: u8, minus_mask: u8 },
    /// `write_capability` of `tag`'s plus or minus capability into a pipe.
    WriteCap { task: u8, pipe: u8, tag: u8, plus: bool },
    /// `read_capability` from a pipe.
    ReadCap { task: u8, pipe: u8 },
    /// `write` of a deterministic payload of `len` bytes into a pipe.
    PipeWrite { task: u8, pipe: u8, len: u8 },
    /// Nonblocking `read` of up to `max` bytes from a pipe.
    PipeRead { task: u8, pipe: u8, max: u8 },
    /// `create_file_labeled` of slot `slot` in directory `dir`.
    CreateFile { task: u8, dir: u8, slot: u8, s_mask: u8, i_mask: u8 },
    /// `mkdir_labeled` of dynamic directory slot 4 or 5.
    MkdirLabeled { task: u8, dir: u8, s_mask: u8, i_mask: u8 },
    /// `open(Write)` + `write` + `close` of a deterministic payload.
    WriteFile { task: u8, dir: u8, slot: u8, len: u8 },
    /// `open(Write)` + `seek(offset)` + `write` + `close` — a sparse
    /// write at a nonzero offset, subject to the file-size quota. The
    /// concurrent regime uses the one-shot `write_file_at_off` syscall
    /// instead (one transaction, one commit ticket).
    WriteFileAt { task: u8, dir: u8, slot: u8, offset: u16, len: u8 },
    /// `open(Read)` + `read` + `close` (up to 64 bytes).
    ReadFile { task: u8, dir: u8, slot: u8 },
    /// `get_labels` on a file path.
    GetLabels { task: u8, dir: u8, slot: u8 },
    /// `unlink` of a file.
    Unlink { task: u8, dir: u8, slot: u8 },
    /// `unlink` of a (possibly nonempty) directory slot 2..=5.
    Rmdir { task: u8, dir: u8 },
    /// `readdir` of a directory slot.
    Readdir { task: u8, dir: u8 },
    /// `kill(target, sig)` — silently dropped on an illegal flow.
    Kill { task: u8, target: u8, sig: u8 },
    /// Dequeue the caller's next pending signal.
    NextSignal { task: u8 },
    /// A VM read/write barrier against an object labeled by the masks.
    VmBarrier { task: u8, write: bool, s_mask: u8, i_mask: u8 },
    /// The §4.3.2 security-region entry check for the masked region
    /// labels and capability grants.
    RegionEnter { task: u8, s_mask: u8, i_mask: u8, plus_mask: u8, minus_mask: u8 },
}

/// The deterministic payload written by byte-writing ops: a function of
/// the op's position in the trace only, so both sides can regenerate it.
#[must_use]
pub fn payload(idx: usize, len: u8) -> Vec<u8> {
    let base = (idx as u8).wrapping_mul(31);
    (0..len).map(|j| base.wrapping_add(j)).collect()
}

/// Generates the trace named by `(seed, len)`.
///
/// The generator tracks only how many tags *could* be allocated so far;
/// it never inspects replay state, so the same `Op` sequence is valid
/// from any prefix (shrinking soundness).
#[must_use]
pub fn generate_trace(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    let mut tags: u32 = SETUP_TAGS;
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let task = rng.below(TASKS as u64) as u8;
        let mask = |rng: &mut SplitMix64, tags: u32| rng.below(1 << tags) as u8;
        let op = match rng.below(25) {
            0 => {
                if tags >= MAX_TAGS {
                    continue;
                }
                tags += 1;
                Op::AllocTag { task }
            }
            1..=3 => {
                Op::SetLabel { task, secrecy: rng.gen_bool(), mask: mask(&mut rng, tags) }
            }
            4 => {
                // Sparse masks: intersecting two draws biases toward
                // dropping few capabilities, keeping later ops live.
                let p = mask(&mut rng, tags) & mask(&mut rng, tags);
                let m = mask(&mut rng, tags) & mask(&mut rng, tags);
                Op::DropCaps { task, plus_mask: p, minus_mask: m }
            }
            5 => Op::WriteCap {
                task,
                pipe: rng.below(PIPES as u64) as u8,
                tag: rng.below(u64::from(tags)) as u8,
                plus: rng.gen_bool(),
            },
            6 => Op::ReadCap { task, pipe: rng.below(PIPES as u64) as u8 },
            // Zero-length writes are in-vocabulary: a zero-byte pipe
            // write must be a no-op success, never an empty queued
            // message (the kernel bug this pinned down was unbounded
            // `msgs` growth from empty messages).
            7 | 8 => Op::PipeWrite {
                task,
                pipe: rng.below(PIPES as u64) as u8,
                len: rng.below(9) as u8,
            },
            9 | 10 => Op::PipeRead {
                task,
                pipe: rng.below(PIPES as u64) as u8,
                max: rng.gen_range(1..17) as u8,
            },
            11 => Op::CreateFile {
                task,
                dir: rng.below(DIRS as u64) as u8,
                slot: rng.below(u64::from(FILE_SLOTS)) as u8,
                s_mask: mask(&mut rng, tags),
                i_mask: mask(&mut rng, tags),
            },
            12 => Op::MkdirLabeled {
                task,
                dir: 4 + rng.below(2) as u8,
                s_mask: mask(&mut rng, tags),
                i_mask: mask(&mut rng, tags),
            },
            13 => Op::WriteFile {
                task,
                dir: rng.below(DIRS as u64) as u8,
                slot: rng.below(u64::from(FILE_SLOTS)) as u8,
                len: rng.gen_range(1..9) as u8,
            },
            14 => Op::ReadFile {
                task,
                dir: rng.below(DIRS as u64) as u8,
                slot: rng.below(u64::from(FILE_SLOTS)) as u8,
            },
            15 => Op::GetLabels {
                task,
                dir: rng.below(DIRS as u64) as u8,
                slot: rng.below(u64::from(FILE_SLOTS)) as u8,
            },
            16 => Op::Unlink {
                task,
                dir: rng.below(DIRS as u64) as u8,
                slot: rng.below(u64::from(FILE_SLOTS)) as u8,
            },
            17 => Op::Rmdir { task, dir: 2 + rng.below(4) as u8 },
            18 => Op::Readdir { task, dir: rng.below(DIRS as u64) as u8 },
            19 => Op::Kill {
                task,
                target: rng.below(TASKS as u64) as u8,
                sig: rng.gen_range(1..5) as u8,
            },
            20 => Op::NextSignal { task },
            21 | 23 => Op::VmBarrier {
                task,
                write: rng.gen_bool(),
                s_mask: mask(&mut rng, tags),
                i_mask: mask(&mut rng, tags),
            },
            // Sparse writes target a narrow dir/slot window so they
            // frequently land on files an earlier CreateFile made, and
            // the offset range straddles FILE_SIZE_QUOTA — together the
            // matrix reaches both in-quota extends and quota denials.
            24 => Op::WriteFileAt {
                task,
                dir: rng.below(3) as u8,
                slot: rng.below(2) as u8,
                offset: rng.below(WRITE_OFFSET_CEILING) as u16,
                len: rng.gen_range(1..9) as u8,
            },
            _ => Op::RegionEnter {
                task,
                s_mask: mask(&mut rng, tags),
                i_mask: mask(&mut rng, tags),
                plus_mask: mask(&mut rng, tags),
                minus_mask: mask(&mut rng, tags),
            },
        };
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_trace(42, 50), generate_trace(42, 50));
        assert_ne!(generate_trace(42, 50), generate_trace(43, 50));
    }

    #[test]
    fn payload_depends_only_on_position() {
        assert_eq!(payload(7, 4), payload(7, 4));
        assert_eq!(payload(3, 0), Vec::<u8>::new());
        assert_eq!(payload(0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn generator_respects_the_tag_budget() {
        let allocs = generate_trace(1, 2000)
            .iter()
            .filter(|op| matches!(op, Op::AllocTag { .. }))
            .count();
        assert!(allocs as u32 <= MAX_TAGS - SETUP_TAGS);
    }
}
