//! Audit-completeness checking: replay traces with tracing enabled and
//! demand that the trusted audit log records **exactly one** event for
//! every enforcement decision the oracle predicts — every silent drop,
//! every typed denial, every quota rejection, every VM-barrier verdict —
//! and none it doesn't.
//!
//! The silent-drop channels are where this matters most: §5.2 makes the
//! kernel drop flow-vetoed pipe writes, capability transfers and signals
//! *without telling the subject*, so the only place those decisions are
//! visible at all is the kernel-side decision trace. If the trace under-
//! reports (a drop with no event) the operator is blind; if it
//! over-reports (duplicate events from a restarted syscall body) the
//! audit trail can't be reconciled against the commit-ticket
//! linearization. Both directions are checked per op.
//!
//! The harness is single-threaded and brackets each op with
//! [`laminar_obs::take_local`], so the audit delta of one op is exact —
//! no cross-thread noise, no attribution guesswork.

use crate::oracle::{DenyKind, MDrop, Oracle, Outcome};
use crate::replay::KernelReplay;
use crate::trace::Op;
use laminar_obs::{self as obs, Event, Layer, Record, Verdict};

/// Aggregate counts from one audit-completeness run; each counter is a
/// prediction that was matched exactly once in the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditTally {
    /// Ops replayed.
    pub ops: usize,
    /// Oracle-predicted silent drops, each matched by exactly one
    /// `SilentDrop` event on the right channel.
    pub drops_matched: usize,
    /// Oracle-predicted typed denials, each matched by exactly one
    /// denied `SyscallCommit`.
    pub denials_matched: usize,
    /// Quota denials, each additionally matched by exactly one
    /// `QuotaExceeded` event.
    pub quota_matched: usize,
    /// VM-barrier checks, each matched by exactly one `FlowCheck` at
    /// [`Layer::Vm`] with the predicted verdict.
    pub vm_checks_matched: usize,
}

impl AuditTally {
    fn absorb(&mut self, other: AuditTally) {
        self.ops += other.ops;
        self.drops_matched += other.drops_matched;
        self.denials_matched += other.denials_matched;
        self.quota_matched += other.quota_matched;
        self.vm_checks_matched += other.vm_checks_matched;
    }
}

/// Whether an oracle drop prediction and a kernel drop event name the
/// same channel. The oracle does not distinguish pipes from socketpairs
/// (the fixture has no sockets, but the kernel event vocabulary does).
fn channel_matches(predicted: MDrop, actual: obs::DropChannel) -> bool {
    matches!(
        (predicted, actual),
        (MDrop::Pipe, obs::DropChannel::Pipe | obs::DropChannel::Socket)
            | (MDrop::Cap, obs::DropChannel::Cap)
            | (MDrop::Signal, obs::DropChannel::Signal)
    )
}

/// Ops whose replay goes through the transactional syscall surface (and
/// therefore must produce `SyscallCommit` records). `VmBarrier` and
/// `RegionEnter` are pure in-process checks; `AllocTag` is a syscall but
/// becomes a local no-op at the tag ceiling, which only ever yields a
/// non-denied outcome, so the denial rule below is vacuous for it.
fn is_syscall_op(op: &Op) -> bool {
    !matches!(op, Op::VmBarrier { .. } | Op::RegionEnter { .. })
}

/// Checks one op's drained audit records against the oracle's
/// prediction. Returns the per-op tally contribution.
fn audit_one(
    op: &Op,
    outcome: &Outcome,
    predicted_drop: Option<MDrop>,
    records: &[Record],
) -> Result<AuditTally, String> {
    let mut tally = AuditTally { ops: 1, ..AuditTally::default() };

    // Rollbacks only happen under injected faults; this regime has none.
    if records.iter().any(|r| matches!(r.event, Event::SyscallRollback { .. })) {
        return Err("unexpected SyscallRollback in a fault-free run".into());
    }

    let drops: Vec<obs::DropChannel> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::SilentDrop { channel } => Some(channel),
            _ => None,
        })
        .collect();
    match predicted_drop {
        Some(ch) => {
            if drops.len() != 1 || !channel_matches(ch, drops[0]) {
                return Err(format!(
                    "predicted exactly one silent drop on {ch:?}, log has {drops:?}"
                ));
            }
            tally.drops_matched += 1;
        }
        None => {
            if !drops.is_empty() {
                return Err(format!("no drop predicted, log has {drops:?}"));
            }
        }
    }

    let denied: Vec<&'static str> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::SyscallCommit { denied: Some(reason), .. } => Some(reason),
            _ => None,
        })
        .collect();
    let quota_events =
        records.iter().filter(|r| matches!(r.event, Event::QuotaExceeded { .. })).count();
    match outcome {
        Outcome::Denied(kind) if is_syscall_op(op) => {
            if denied.len() != 1 {
                return Err(format!(
                    "predicted exactly one denied commit ({kind:?}), log has {denied:?}"
                ));
            }
            tally.denials_matched += 1;
            if *kind == DenyKind::Quota {
                if denied[0] != "quota" || quota_events != 1 {
                    return Err(format!(
                        "quota denial must log reason \"quota\" and exactly one \
                         QuotaExceeded event; got reason {:?} and {quota_events} events",
                        denied[0]
                    ));
                }
                tally.quota_matched += 1;
            }
        }
        _ => {
            if !denied.is_empty() {
                return Err(format!("no denial predicted, log has {denied:?}"));
            }
            if quota_events != 0 {
                return Err(format!(
                    "no quota denial predicted, log has {quota_events} QuotaExceeded"
                ));
            }
        }
    }

    if let Op::VmBarrier { .. } = op {
        let vm_verdicts: Vec<Verdict> = records
            .iter()
            .filter_map(|r| match r.event {
                Event::FlowCheck { layer: Layer::Vm, verdict, .. } => Some(verdict),
                _ => None,
            })
            .collect();
        let want = if matches!(outcome, Outcome::Denied(_)) {
            Verdict::Deny
        } else {
            Verdict::Allow
        };
        if vm_verdicts != [want] {
            return Err(format!(
                "VM barrier must log exactly one {want:?} FlowCheck, got {vm_verdicts:?}"
            ));
        }
        tally.vm_checks_matched += 1;
    }

    Ok(tally)
}

/// Restores the previous audit-enabled state even if a check panics or
/// errors out mid-trace.
struct EnabledGuard;

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        obs::set_enabled(false);
    }
}

/// Replays one trace with tracing enabled, checking conformance *and*
/// per-op audit completeness.
///
/// # Errors
/// A description of the first audit hole (missing event), duplication
/// (extra event), or kernel/oracle divergence.
pub fn run_audit_trace(ops: &[Op]) -> Result<AuditTally, String> {
    let mut oracle = Oracle::new();
    let mut kernel = KernelReplay::new();
    // Enable only after the fixture boots so setup syscalls don't land
    // in the log; drain whatever a previous run left on this thread.
    obs::set_enabled(true);
    let _guard = EnabledGuard;
    let _ = obs::take_local();

    let mut tally = AuditTally::default();
    for (i, op) in ops.iter().enumerate() {
        let kernel_out = kernel.apply(op, i);
        let oracle_out = oracle.apply(op, i);
        if kernel_out != oracle_out {
            return Err(format!(
                "op {i} ({op:?}) diverged: kernel {kernel_out:?} vs oracle {oracle_out:?}"
            ));
        }
        let records = obs::take_local();
        match audit_one(op, &oracle_out, oracle.predicted_drop, &records) {
            Ok(t) => tally.absorb(t),
            Err(e) => return Err(format!("op {i} ({op:?}): {e}")),
        }
    }
    Ok(tally)
}

/// Runs audit-completeness over a whole seed matrix (the same
/// `TESTKIT_*`-shaped volume knobs as [`crate::ExploreConfig`]), panicking
/// on the first hole. Returns the aggregate tally so callers can assert
/// the run actually exercised drops, denials and quota rejections.
///
/// # Panics
/// On the first audit hole, duplication, or divergence.
#[must_use]
pub fn assert_audit_completeness(
    seeds: &[u64],
    traces_per_seed: usize,
    ops_per_trace: usize,
) -> AuditTally {
    use laminar_util::SplitMix64;
    let mut tally = AuditTally::default();
    for &seed in seeds {
        let mut derive = SplitMix64::new(seed);
        for t in 0..traces_per_seed {
            let trace_seed = derive.next_u64();
            let ops = crate::trace::generate_trace(trace_seed, ops_per_trace);
            match run_audit_trace(&ops) {
                Ok(part) => tally.absorb(part),
                Err(e) => panic!(
                    "audit completeness failed (seed {seed:#x}, trace {t}, \
                     trace_seed {trace_seed:#x}): {e}"
                ),
            }
        }
    }
    tally
}
