//! Fault plans: which injected faults a conformance run executes under.
//!
//! Laminar's enforcement must be *semantically invisible* to its own
//! performance machinery: the flow-check cache and the lock wrappers
//! are allowed to change timing, never verdicts. A [`FaultPlan`] names
//! a hostile regime — cache disabled, cache thrashing, epoch churn,
//! periodic lock poisoning — and the explorer asserts that every trace
//! produces bit-identical outcomes and states under it.
//!
//! Fault modes are process-global (they model global cache state), so
//! tests that arm them must serialize; [`CacheFaultGuard`] disarms on
//! drop even if the test panics.

pub use laminar_difc::cache::fault::{fault_mode, set_fault_mode, FaultMode};

/// The fault regime for one conformance run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Cache fault mode armed for the whole run.
    pub cache: FaultMode,
    /// If set, poison the kernel's big lock before every `n`th op.
    pub poison_every: Option<usize>,
}

impl FaultPlan {
    /// No faults: the baseline regime.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A cache fault regime with no lock poisoning.
    #[must_use]
    pub fn cache(mode: FaultMode) -> Self {
        FaultPlan { cache: mode, poison_every: None }
    }

    /// Adds periodic lock poisoning to this plan.
    #[must_use]
    pub fn with_poison(mut self, every: usize) -> Self {
        self.poison_every = Some(every);
        self
    }
}

/// Arms a cache fault mode; disarms on drop (panic-safe).
#[derive(Debug)]
pub struct CacheFaultGuard(());

impl CacheFaultGuard {
    /// Arms `mode` process-wide until the guard drops.
    #[must_use]
    pub fn arm(mode: FaultMode) -> Self {
        set_fault_mode(mode);
        CacheFaultGuard(())
    }
}

impl Drop for CacheFaultGuard {
    fn drop(&mut self) {
        set_fault_mode(FaultMode::None);
    }
}
