//! Fault plans: which injected faults a conformance run executes under.
//!
//! Laminar's enforcement must be *semantically invisible* to its own
//! performance machinery: the flow-check cache and the lock wrappers
//! are allowed to change timing, never verdicts. A [`FaultPlan`] names
//! a hostile regime — cache disabled, cache thrashing, epoch churn,
//! periodic lock poisoning — and the explorer asserts that every trace
//! produces bit-identical outcomes and states under it.
//!
//! Fault modes are process-global (they model global cache state), so
//! tests that arm them must serialize; [`CacheFaultGuard`] disarms on
//! drop even if the test panics.
//!
//! Syscall failpoints are sharper: a plan may arm a one-shot
//! [`SyscallFailpoint`] before every `n`th op — a panic inside the next
//! LSM hook, a panic after the syscall body succeeded, or an injected
//! allocation-quota failure. The explorer then asserts the *fail-closed
//! contract*: the faulted syscall returns a typed denial, the kernel's
//! security state is byte-for-byte what it was before the op, and the
//! kernel keeps serving the rest of the trace.

pub use laminar_difc::cache::fault::{fault_mode, set_fault_mode, FaultMode};
pub use laminar_os::SyscallFailpoint;

/// The fault regime for one conformance run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Cache fault mode armed for the whole run.
    pub cache: FaultMode,
    /// If set, poison one kernel lock shard before every `n`th op
    /// (rotating through the shard map over the trace).
    pub poison_every: Option<usize>,
    /// If set, arm [`SyscallFailpoint::PanicAtHook`] before every `n`th
    /// op: the next LSM hook unwinds mid-syscall.
    pub panic_hook_every: Option<usize>,
    /// If set, arm [`SyscallFailpoint::AbortLate`] before every `n`th
    /// op: the next syscall panics *after* its body succeeded, so the
    /// rollback must undo a fully-applied mutation.
    pub abort_late_every: Option<usize>,
    /// If set, arm [`SyscallFailpoint::QuotaNext`] before every `n`th
    /// op: the next resource allocation reports quota exhaustion.
    pub quota_every: Option<usize>,
}

impl FaultPlan {
    /// No faults: the baseline regime.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A cache fault regime with no lock poisoning.
    #[must_use]
    pub fn cache(mode: FaultMode) -> Self {
        FaultPlan { cache: mode, ..FaultPlan::default() }
    }

    /// Adds periodic lock poisoning to this plan.
    #[must_use]
    pub fn with_poison(mut self, every: usize) -> Self {
        self.poison_every = Some(every);
        self
    }

    /// A regime panicking inside an LSM hook before every `n`th op.
    #[must_use]
    pub fn panic_at_hook(every: usize) -> Self {
        FaultPlan { panic_hook_every: Some(every), ..FaultPlan::default() }
    }

    /// A regime aborting syscalls after body success before every `n`th
    /// op.
    #[must_use]
    pub fn abort_late(every: usize) -> Self {
        FaultPlan { abort_late_every: Some(every), ..FaultPlan::default() }
    }

    /// A regime failing the next allocation before every `n`th op.
    #[must_use]
    pub fn quota(every: usize) -> Self {
        FaultPlan { quota_every: Some(every), ..FaultPlan::default() }
    }

    /// The syscall failpoint this plan arms, with its op period (plans
    /// arm at most one kind; the first set field wins).
    #[must_use]
    pub fn syscall_failpoint(&self) -> Option<(SyscallFailpoint, usize)> {
        if let Some(n) = self.panic_hook_every {
            Some((SyscallFailpoint::PanicAtHook, n))
        } else if let Some(n) = self.abort_late_every {
            Some((SyscallFailpoint::AbortLate, n))
        } else {
            self.quota_every.map(|n| (SyscallFailpoint::QuotaNext, n))
        }
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default backtrace spew for *injected failpoint* panics.
///
/// The kernel's syscall boundary catches these panics and rolls the
/// transaction back, but the process panic hook runs before
/// `catch_unwind`, so without this a fault regime prints thousands of
/// backtraces for panics that are the whole point of the test. Every
/// other panic is delegated to the previously installed hook.
pub fn silence_injected_panics() {
    use std::sync::OnceLock;
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected failpoint"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Arms a cache fault mode; disarms on drop (panic-safe).
#[derive(Debug)]
pub struct CacheFaultGuard(());

impl CacheFaultGuard {
    /// Arms `mode` process-wide until the guard drops.
    #[must_use]
    pub fn arm(mode: FaultMode) -> Self {
        set_fault_mode(mode);
        CacheFaultGuard(())
    }
}

impl Drop for CacheFaultGuard {
    fn drop(&mut self) {
        set_fault_mode(FaultMode::None);
    }
}
