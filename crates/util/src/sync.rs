//! `std::sync` lock wrappers with a `parking_lot`-style API.
//!
//! `lock()`/`read()`/`write()` return the guard directly: a panicking
//! thread leaves data in whatever state it reached, and every structure
//! guarded here is either rebuilt per test or protected by the kernel's
//! own invariants, so the wrappers recover from poisoning via
//! [`std::sync::PoisonError::into_inner`] instead of propagating an
//! `unwrap()` to every call site.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Process-wide count of lock acquisitions that found the underlying
/// `std` lock poisoned and recovered the guard.
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Number of poisoned-lock recoveries since process start (or the last
/// [`reset_poison_recoveries`]).
#[must_use]
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Resets the poison-recovery counter to zero.
pub fn reset_poison_recoveries() {
    POISON_RECOVERIES.store(0, Ordering::Relaxed);
}

/// Unwraps a poisonable lock result, counting actual recoveries.
fn recover<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => {
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            p.into_inner()
        }
    }
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available; poison is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(recover(Err(p))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

#[cfg(feature = "fault-injection")]
impl<T: ?Sized + Send> Mutex<T> {
    /// Fault injection for the conformance testkit: poisons the
    /// underlying `std` mutex by panicking a helper thread while it
    /// holds the guard, so the *next* `lock()` exercises the
    /// poison-recovery path. The injected panic is silenced and joined
    /// before returning; data is untouched (the helper mutates nothing).
    pub fn poison_for_test(&self) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard =
                    self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                panic!("injected lock poison");
            })
            .join()
        });
        std::panic::set_hook(prev);
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard; poison is recovered.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires an exclusive write guard; poison is recovered.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// Runtime lock-order lint.
///
/// Code that participates in a ranked locking discipline calls
/// [`lock_order::acquire`] with the lock's numeric rank immediately
/// after taking the lock and [`lock_order::release`] when the guard
/// drops. Ranks held by one thread must be strictly ascending; any
/// out-of-order (or same-rank re-entrant) acquisition panics at the
/// acquiring site, turning a potential ABBA deadlock into an immediate,
/// attributable test failure.
pub mod lock_order {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks currently held by this thread. Pushes are validated to
        /// be strictly ascending, so the vector stays sorted and
        /// `last()` is always the maximum held rank, even after
        /// out-of-LIFO-order releases remove interior entries.
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Records that the current thread acquired a lock of rank `rank`.
    ///
    /// # Panics
    /// Panics if the thread already holds a lock whose rank is greater
    /// than or equal to `rank` — a violation of the total lock order.
    pub fn acquire(rank: u32) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&top) = h.last() {
                assert!(
                    rank > top,
                    "lock-order violation: acquiring rank {rank} while \
                     holding rank {top} (locks must be taken in strictly \
                     ascending rank order)"
                );
            }
            h.push(rank);
        });
    }

    /// Records that the current thread released a lock of rank `rank`.
    /// Releasing a rank not held is a no-op (robust against unwinds
    /// that already cleared the entry).
    pub fn release(rank: u32) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&r| r == rank) {
                h.remove(pos);
            }
        });
    }

    /// Number of ranked locks the current thread holds. Test aid.
    #[must_use]
    pub fn held_count() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7); // still usable
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_poison_is_recovered() {
        let m = Mutex::new(41);
        m.poison_for_test();
        let before = poison_recoveries();
        *m.lock() += 1; // recovery path, not a panic
        assert_eq!(*m.lock(), 42);
        assert!(poison_recoveries() > before, "recovery must be counted");
    }

    #[test]
    fn clean_locks_do_not_count_recoveries() {
        reset_poison_recoveries();
        let m = Mutex::new(0);
        for _ in 0..10 {
            *m.lock() += 1;
        }
        let l = RwLock::new(0);
        let _ = *l.read();
        *l.write() += 1;
        // Other tests may poison locks concurrently; all we can assert
        // locally is that these clean acquisitions did not have to recover
        // anything on a lock nobody else touches.
        assert_eq!(*m.lock(), 10);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_order_allows_ascending_and_interior_release() {
        lock_order::acquire(1);
        lock_order::acquire(5);
        lock_order::acquire(9);
        assert_eq!(lock_order::held_count(), 3);
        lock_order::release(5); // out-of-LIFO-order release is fine
        lock_order::acquire(12); // still above the max held (9)
        lock_order::release(12);
        lock_order::release(9);
        lock_order::release(1);
        assert_eq!(lock_order::held_count(), 0);
    }

    #[test]
    fn lock_order_panics_on_descending_acquisition() {
        lock_order::acquire(5);
        let r = std::panic::catch_unwind(|| lock_order::acquire(3));
        lock_order::release(5);
        let err = r.expect_err("descending acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
        // the failed acquisition must not have been recorded
        assert_eq!(lock_order::held_count(), 0);
    }

    #[test]
    fn lock_order_panics_on_same_rank_reentry() {
        lock_order::acquire(7);
        let r = std::panic::catch_unwind(|| lock_order::acquire(7));
        lock_order::release(7);
        assert!(r.is_err(), "same-rank re-entry must panic");
        assert_eq!(lock_order::held_count(), 0);
    }
}
