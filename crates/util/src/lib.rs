//! # laminar-util — shared dependency-free utilities
//!
//! The whole workspace must build and test with **zero network access**
//! (registry outages must never block the tier-1 gate), so the few
//! third-party conveniences the seed used are replaced by these small,
//! self-contained modules:
//!
//! * [`rng`] — a deterministic SplitMix64 PRNG with the handful of
//!   sampling helpers the apps, benchmarks and randomized tests need
//!   (replaces `rand`).
//! * [`sync`] — [`Mutex`](sync::Mutex)/[`RwLock`](sync::RwLock) wrappers
//!   over `std::sync` with a `parking_lot`-style guard-returning API
//!   that recovers from poisoning instead of forcing `unwrap()` at every
//!   call site (replaces `parking_lot`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod rng;
pub mod sync;

pub use rng::SplitMix64;
