//! A deterministic, dependency-free PRNG.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the 64-bit mixing
//! generator `java.util.SplittableRandom` uses to seed itself: a single
//! additive counter pushed through two xor-shift-multiply rounds. It is
//! not cryptographic — it seeds workloads, shuffles boards and drives
//! randomized tests, where determinism-from-a-seed is the property that
//! matters (the paper's Battleship experiments replay fixed seeds so
//! secured and baseline runs shoot identical shot sequences).

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use laminar_util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's widening-multiply
    /// reduction (no modulo bias worth caring about at these sizes).
    ///
    /// # Panics
    /// If `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// If the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    /// If `den` is zero or `num > den`.
    pub fn gen_ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den);
        self.below(den) < num
    }

    /// A uniform `i8` (full range) — handy for randomized arithmetic.
    pub fn gen_i8(&mut self) -> i8 {
        self.next_u64() as i8
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((1800..3200).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SplitMix64::new(3);
        assert!(r.choose::<u8>(&[]).is_none());
        assert_eq!(r.choose(&[7]), Some(&7));
    }
}
