//! The "JIT": lowers bytecode to barrier-instrumented code.
//!
//! §5.1: "The compiler inserts different barriers at an access depending
//! on whether the access occurs inside or outside a security region."
//! Two strategies are implemented, exactly as in the paper:
//!
//! * **static barriers** — at a method's *first* compilation the
//!   compiler captures the current security context and bakes in the
//!   matching barriers. This is cheaper at run time but "fails if a
//!   method is called from both within and without a security region"
//!   (our VM detects the mismatch and raises
//!   [`crate::VmError::BarrierContextMismatch`] instead of silently
//!   running the wrong checks);
//! * **dynamic barriers** — every barrier first tests at run time
//!   whether the thread is inside a region, then dispatches.
//!
//! `BarrierMode::None` compiles no barriers at all: the "unmodified JVM"
//! baseline of Figure 8 (only meaningful for label-free programs).
//!
//! The [`crate::opt`] pass removes barriers proven redundant.

use crate::absint::analyze;
use crate::bytecode::Instr;
use crate::error::VmResult;
use crate::opt::plan_barriers;
use crate::program::Program;

/// Barrier-compilation strategy (the Figure 8 sweep variable).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BarrierMode {
    /// No barriers: unmodified-JVM baseline (unsafe; benchmarking only).
    None,
    /// Context captured at first compile (≈6% overhead in the paper).
    /// Fails loudly when a method is called from both contexts (§5.1's
    /// documented limitation).
    Static,
    /// Context checked at run time (≈17% overhead in the paper).
    Dynamic,
    /// The paper's production design (§5.1): "use cloning to compile two
    /// versions of methods executed from both contexts" — per-context
    /// compiled clones selected at call time. Static-barrier run-time
    /// cost, no context-mismatch failure, roughly double compile cost
    /// for dual-context methods.
    Cloning,
}

/// The security context a function was compiled for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Ctx {
    /// Compiled for execution inside a security region.
    InRegion,
    /// Compiled for execution outside any region.
    OutRegion,
    /// Compiled with dynamic dispatch (works in both contexts).
    Dynamic,
    /// Compiled without barriers.
    NoBarriers,
}

/// A barrier attached to one compiled instruction, executed before it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Barrier {
    /// In-region read check on the accessed object.
    ReadIn,
    /// In-region write check.
    WriteIn,
    /// Out-of-region check: object must be unlabeled.
    ReadOut,
    /// Out-of-region check: object must be unlabeled.
    WriteOut,
    /// Dynamic dispatch between `ReadIn` and `ReadOut`.
    ReadDyn,
    /// Dynamic dispatch between `WriteIn` and `WriteOut`.
    WriteDyn,
    /// In-region static-variable read: flow check against the static's
    /// labels (for unlabeled statics this reduces to the prototype's
    /// "integrity regions may not read statics" rule).
    StaticReadIn,
    /// In-region static-variable write: flow check against the static's
    /// labels ("secrecy regions may not write statics" for unlabeled).
    StaticWriteIn,
    /// Out-of-region static read: the static must be unlabeled.
    StaticReadOut,
    /// Out-of-region static write: the static must be unlabeled.
    StaticWriteOut,
    /// Dynamic static-read check.
    StaticReadDyn,
    /// Dynamic static-write check.
    StaticWriteDyn,
    /// In-region allocation: attach the region's labels.
    AllocIn,
    /// Dynamic allocation: attach labels iff inside a region.
    AllocDyn,
}

/// One compiled instruction: an optional barrier plus the original op.
#[derive(Copy, Clone, Debug)]
pub(crate) struct CInstr {
    pub barrier: Option<Barrier>,
    pub instr: Instr,
}

/// A compiled function body.
#[derive(Debug)]
pub(crate) struct CompiledFunction {
    #[allow(dead_code)]
    // recorded for diagnostics; the mismatch check keys off Vm::static_choice
    pub ctx: Ctx,
    pub code: Vec<CInstr>,
    /// Abstract compile cost: instructions emitted plus inlined-barrier
    /// bloat. Figure 8 reports compile-time ratios from this.
    pub cost: u64,
    /// Barriers removed by redundancy elimination (stats).
    pub eliminated: u64,
}

/// Compiles `func` for a context. `optimize` toggles redundant-barrier
/// elimination (the ablation knob).
pub(crate) fn compile(
    program: &Program,
    func_id: u32,
    ctx: Ctx,
    optimize: bool,
) -> VmResult<CompiledFunction> {
    let func = &program.functions[func_id as usize];
    let abs = analyze(program, func)?;
    let plan = plan_barriers(func, &abs, optimize && ctx != Ctx::NoBarriers);

    let mut code = Vec::with_capacity(func.body.len());
    let mut cost = 0u64;
    let mut eliminated = 0u64;

    for (pc, &instr) in func.body.iter().enumerate() {
        let barrier: Option<Barrier> = if ctx == Ctx::NoBarriers {
            None
        } else {
            match instr {
                Instr::GetField(_) | Instr::ALoad | Instr::ArrayLen => {
                    if plan.redundant_read[pc] {
                        eliminated += 1;
                        None
                    } else {
                        Some(match ctx {
                            Ctx::InRegion => Barrier::ReadIn,
                            Ctx::OutRegion => Barrier::ReadOut,
                            Ctx::Dynamic => Barrier::ReadDyn,
                            Ctx::NoBarriers => unreachable!(),
                        })
                    }
                }
                Instr::PutField(_) | Instr::AStore => {
                    if plan.redundant_write[pc] {
                        eliminated += 1;
                        None
                    } else {
                        Some(match ctx {
                            Ctx::InRegion => Barrier::WriteIn,
                            Ctx::OutRegion => Barrier::WriteOut,
                            Ctx::Dynamic => Barrier::WriteDyn,
                            Ctx::NoBarriers => unreachable!(),
                        })
                    }
                }
                Instr::GetStatic(_) => match ctx {
                    Ctx::InRegion => Some(Barrier::StaticReadIn),
                    Ctx::OutRegion => Some(Barrier::StaticReadOut),
                    Ctx::Dynamic => Some(Barrier::StaticReadDyn),
                    Ctx::NoBarriers => None,
                },
                Instr::PutStatic(_) => match ctx {
                    Ctx::InRegion => Some(Barrier::StaticWriteIn),
                    Ctx::OutRegion => Some(Barrier::StaticWriteOut),
                    Ctx::Dynamic => Some(Barrier::StaticWriteDyn),
                    Ctx::NoBarriers => None,
                },
                Instr::NewObject(_)
                | Instr::NewObjectLabeled(..)
                | Instr::NewArray
                | Instr::NewArrayLabeled(_) => match ctx {
                    Ctx::InRegion => Some(Barrier::AllocIn),
                    Ctx::Dynamic => Some(Barrier::AllocDyn),
                    _ => None, // out-of-region allocations are unlabeled
                },
                _ => None,
            }
        };
        // Barriers are aggressively inlined in the paper, bloating code
        // and slowing compilation ("static barriers double it, and
        // dynamic barriers triple it", §6.1). One inlined barrier
        // expands to a few dozen IR operations (label loads,
        // labeled-space test, subset checks, slow-path call) and the
        // dynamic variant duplicates that behind a context test; model
        // them as 20 and 40 compile units against 1 per plain op.
        cost += 1 + barrier.map_or(0, |b| match b {
            Barrier::ReadDyn
            | Barrier::WriteDyn
            | Barrier::StaticReadDyn
            | Barrier::StaticWriteDyn
            | Barrier::AllocDyn => 40,
            _ => 20,
        });
        code.push(CInstr { barrier, instr });
    }

    Ok(CompiledFunction { ctx, code, cost, eliminated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn simple_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            b.load(0).get_field(0).pop();
            b.load(0).get_field(1).pop();
            b.load(0).push_int(1).put_field(0);
            b.ret();
        });
        pb.finish().unwrap()
    }

    #[test]
    fn no_barriers_mode_emits_none() {
        let p = simple_program();
        let c = compile(&p, 0, Ctx::NoBarriers, true).unwrap();
        assert!(c.code.iter().all(|ci| ci.barrier.is_none()));
        assert_eq!(c.eliminated, 0);
    }

    #[test]
    fn in_region_inserts_read_write_barriers() {
        let p = simple_program();
        let c = compile(&p, 0, Ctx::InRegion, false).unwrap();
        let barriers: Vec<Barrier> = c.code.iter().filter_map(|ci| ci.barrier).collect();
        assert_eq!(barriers, vec![Barrier::ReadIn, Barrier::ReadIn, Barrier::WriteIn]);
    }

    #[test]
    fn optimization_removes_second_read() {
        let p = simple_program();
        let c = compile(&p, 0, Ctx::InRegion, true).unwrap();
        let barriers: Vec<Barrier> = c.code.iter().filter_map(|ci| ci.barrier).collect();
        assert_eq!(barriers, vec![Barrier::ReadIn, Barrier::WriteIn]);
        assert_eq!(c.eliminated, 1);
    }

    #[test]
    fn dynamic_barriers_cost_more_to_compile() {
        let p = simple_program();
        let none = compile(&p, 0, Ctx::NoBarriers, false).unwrap().cost;
        let stat = compile(&p, 0, Ctx::OutRegion, false).unwrap().cost;
        let dynamic = compile(&p, 0, Ctx::Dynamic, false).unwrap().cost;
        assert!(none < stat, "{none} < {stat}");
        assert!(stat < dynamic, "{stat} < {dynamic}");
    }

    #[test]
    fn statics_and_allocs_get_barriers_in_region() {
        let mut pb = ProgramBuilder::new();
        let s = pb.add_static("g");
        let c = pb.add_class("C", 0);
        pb.func("f", 0, false, 0, |b| {
            b.get_static(s).pop();
            b.push_int(1).put_static(s);
            b.new_object(c).pop();
            b.ret();
        });
        let p = pb.finish().unwrap();
        let comp = compile(&p, 0, Ctx::InRegion, true).unwrap();
        let barriers: Vec<Barrier> =
            comp.code.iter().filter_map(|ci| ci.barrier).collect();
        assert_eq!(
            barriers,
            vec![Barrier::StaticReadIn, Barrier::StaticWriteIn, Barrier::AllocIn]
        );
        // Outside a region: statics still get the labeled-space check
        // (labeled statics are inaccessible there); allocs are unlabeled
        // and need no barrier.
        let comp = compile(&p, 0, Ctx::OutRegion, true).unwrap();
        let barriers: Vec<Barrier> =
            comp.code.iter().filter_map(|ci| ci.barrier).collect();
        assert_eq!(barriers, vec![Barrier::StaticReadOut, Barrier::StaticWriteOut]);
    }
}
