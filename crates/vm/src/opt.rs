//! Redundant-barrier elimination (§5.1).
//!
//! "Because object labels are immutable and security regions cannot
//! change their labels, repeated barriers and checks on the same object
//! are redundant. We implement an intraprocedural, flow-sensitive
//! data-flow analysis that identifies redundant barriers and removes
//! them. A read (or write) barrier is redundant if the object has been
//! read (written), or if the object was allocated, along every incoming
//! path."
//!
//! Soundness rests on two invariants the VM maintains: labels are
//! immutable ([`crate::heap`]), and a thread's labels are fixed for the
//! lexical extent of one region (label changes require entering a nested
//! region, which is a different function body).

use crate::absint::{AbsStacks, AbsVal};
use crate::bytecode::Instr;
use crate::program::Function;
use std::collections::BTreeSet;

/// Per-instruction verdicts: may the barrier be omitted?
#[derive(Clone, Debug, Default)]
pub(crate) struct BarrierPlan {
    /// pcs whose *read* barrier is redundant.
    pub redundant_read: Vec<bool>,
    /// pcs whose *write* barrier is redundant.
    pub redundant_write: Vec<bool>,
}

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct Facts {
    read_ok: BTreeSet<u16>,
    write_ok: BTreeSet<u16>,
}

impl Facts {
    fn meet(&self, other: &Facts) -> Facts {
        Facts {
            read_ok: self.read_ok.intersection(&other.read_ok).copied().collect(),
            write_ok: self.write_ok.intersection(&other.write_ok).copied().collect(),
        }
    }
}

/// Depth (from stack top) of the object operand of a heap-access
/// instruction, together with whether it reads and/or writes the object.
fn access_shape(i: &Instr) -> Option<(usize, bool, bool)> {
    match i {
        Instr::GetField(_) => Some((0, true, false)),
        Instr::ArrayLen => Some((0, true, false)),
        Instr::PutField(_) => Some((1, false, true)),
        Instr::ALoad => Some((1, true, false)),
        Instr::AStore => Some((2, false, true)),
        _ => None,
    }
}

/// Computes which barriers in `func` are redundant, given the abstract
/// stacks from [`crate::absint`]. When `enabled` is false the plan marks
/// nothing redundant (the ablation baseline for the Figure 8 bench).
pub(crate) fn plan_barriers(
    func: &Function,
    abs: &AbsStacks,
    enabled: bool,
) -> BarrierPlan {
    let n = func.body.len();
    let mut plan =
        BarrierPlan { redundant_read: vec![false; n], redundant_write: vec![false; n] };
    if !enabled || n == 0 {
        return plan;
    }

    // Forward dataflow: Facts before each pc; meet = intersection.
    let mut before: Vec<Option<Facts>> = vec![None; n];
    before[0] = Some(Facts::default());
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        // The worklist only holds pcs whose before-state was just set.
        let Some(mut facts) = before[pc].clone() else { continue };
        let instr = func.body[pc];

        if let Some((depth, is_read, is_write)) = access_shape(&instr) {
            if let AbsVal::Local(l) = abs.operand(pc, depth) {
                if is_read {
                    facts.read_ok.insert(l);
                }
                if is_write {
                    facts.write_ok.insert(l);
                }
            }
        }
        if let Instr::Store(l) = instr {
            facts.read_ok.remove(&l);
            facts.write_ok.remove(&l);
        }

        let mut succs: Vec<usize> = Vec::with_capacity(2);
        if let Some(t) = instr.branch_target() {
            succs.push(t as usize);
        }
        if !instr.is_terminator() && pc + 1 < n {
            succs.push(pc + 1);
        }
        for s in succs {
            match &before[s] {
                None => {
                    before[s] = Some(facts.clone());
                    work.push(s);
                }
                Some(existing) => {
                    let met = existing.meet(&facts);
                    if met != *existing {
                        before[s] = Some(met);
                        work.push(s);
                    }
                }
            }
        }
    }

    // Mark redundancies.
    for (pc, instr) in func.body.iter().enumerate() {
        let facts = match &before[pc] {
            Some(f) => f,
            None => continue,
        };
        if let Some((depth, is_read, is_write)) = access_shape(instr) {
            match abs.operand(pc, depth) {
                AbsVal::Fresh(_) => {
                    // Allocated in this function on every path: both
                    // barriers are redundant.
                    plan.redundant_read[pc] = is_read;
                    plan.redundant_write[pc] = is_write;
                }
                AbsVal::Local(l) => {
                    if is_read && facts.read_ok.contains(&l) {
                        plan.redundant_read[pc] = true;
                    }
                    if is_write && facts.write_ok.contains(&l) {
                        plan.redundant_write[pc] = true;
                    }
                }
                AbsVal::Unknown => {}
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::analyze;
    use crate::program::ProgramBuilder;

    fn plan_for(pb: ProgramBuilder, name: &str) -> (BarrierPlan, Vec<Instr>) {
        let p = pb.finish().unwrap();
        let f = p.func_by_name(name).unwrap();
        let func = &p.functions[f.0 as usize];
        let abs = analyze(&p, func).unwrap();
        (plan_barriers(func, &abs, true), func.body.clone())
    }

    #[test]
    fn second_read_of_same_local_is_redundant() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            b.load(0).get_field(0).pop(); // first read: needed
            b.load(0).get_field(1).pop(); // second read: redundant
            b.ret();
        });
        let (plan, body) = plan_for(pb, "f");
        let reads: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::GetField(_)))
            .map(|(pc, _)| pc)
            .collect();
        assert!(!plan.redundant_read[reads[0]]);
        assert!(plan.redundant_read[reads[1]]);
    }

    #[test]
    fn read_does_not_license_write() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            b.load(0).get_field(0).pop();
            b.load(0).push_int(1).put_field(0); // write still needs its barrier
            b.ret();
        });
        let (plan, body) = plan_for(pb, "f");
        let put = body.iter().position(|i| matches!(i, Instr::PutField(_))).unwrap();
        assert!(!plan.redundant_write[put]);
    }

    #[test]
    fn allocation_makes_both_redundant() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", 1);
        pb.func("f", 0, false, 1, |b| {
            b.new_object(c).store(0);
            b.load(0).push_int(1).put_field(0); // write to fresh: wait, via local
            b.ret();
        });
        // After storing a Fresh value into local 0, subsequent Load(0)
        // is Local(0), not Fresh — conservatively NOT redundant on the
        // first touch (the paper's analysis has the same shape).
        let (plan, body) = plan_for(pb, "f");
        let put = body.iter().position(|i| matches!(i, Instr::PutField(_))).unwrap();
        assert!(!plan.redundant_write[put]);

        // But a direct access on the fresh reference IS redundant.
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", 1);
        pb.func("g", 0, false, 0, |b| {
            b.new_object(c).push_int(1).put_field(0).ret();
        });
        let (plan, body) = plan_for(pb, "g");
        let put = body.iter().position(|i| matches!(i, Instr::PutField(_))).unwrap();
        assert!(plan.redundant_write[put]);
    }

    #[test]
    fn merge_requires_barrier_on_every_path() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 2, false, 2, |b| {
            let skip = b.new_label();
            // Read param-ish local 1 only on one path. (Use non-region
            // function so locals are unrestricted.)
            b.load(0).get_field(0).pop(); // establishes read_ok for 0
            b.push_bool(true).jump_if_true(skip);
            b.load(1).get_field(0).pop(); // read of 1 on fallthrough path only
            b.bind(skip);
            b.load(1).get_field(1).pop(); // NOT redundant: path via skip never read 1
            b.load(0).get_field(1).pop(); // redundant: read on every path
            b.ret();
        });
        let (plan, body) = plan_for(pb, "f");
        let reads: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::GetField(_)))
            .map(|(pc, _)| pc)
            .collect();
        assert!(!plan.redundant_read[reads[2]], "merge must kill the fact");
        assert!(plan.redundant_read[reads[3]], "both-paths fact survives");
    }

    #[test]
    fn store_kills_facts() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 2, false, 2, |b| {
            b.load(0).get_field(0).pop();
            b.load(1).store(0); // local 0 now holds a different object
            b.load(0).get_field(0).pop(); // must keep its barrier
            b.ret();
        });
        let (plan, body) = plan_for(pb, "f");
        let reads: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::GetField(_)))
            .map(|(pc, _)| pc)
            .collect();
        assert!(!plan.redundant_read[reads[1]]);
    }

    #[test]
    fn disabled_plan_marks_nothing() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            b.load(0).get_field(0).pop();
            b.load(0).get_field(0).pop();
            b.ret();
        });
        let p = pb.finish().unwrap();
        let func = &p.functions[0];
        let abs = analyze(&p, func).unwrap();
        let plan = plan_barriers(func, &abs, false);
        assert!(plan.redundant_read.iter().all(|r| !r));
    }

    #[test]
    fn loop_body_reads_become_redundant_after_first_iteration_is_not_assumed() {
        // A barrier inside a loop whose object was read before the loop
        // is redundant (fact holds on the back edge too).
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 2, |b| {
            b.load(0).get_field(0).pop(); // pre-loop read
            b.push_int(10).store(1);
            let head = b.new_label();
            let done = b.new_label();
            b.bind(head);
            b.load(1).push_int(0).cmp_le().jump_if_true(done);
            b.load(0).get_field(1).pop(); // in-loop: redundant
            b.load(1).push_int(1).sub().store(1);
            b.jump(head);
            b.bind(done);
            b.ret();
        });
        let (plan, body) = plan_for(pb, "f");
        let reads: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::GetField(_)))
            .map(|(pc, _)| pc)
            .collect();
        assert!(plan.redundant_read[reads[1]]);
    }
}
