//! # laminar-vm — the managed-runtime half of Laminar
//!
//! A small managed runtime (the "MiniVM") reproducing the PL half of
//! *Laminar* (PLDI 2009, §5.1): Laminar modified Jikes RVM so that its
//! JIT inserts DIFC **read/write barriers** at every object access, and
//! added lexically scoped **security regions** with `secure {..} catch
//! {..}` semantics. There is no Jikes RVM to modify here, so this crate
//! *is* the managed runtime: a stack bytecode, a heap with a labeled
//! object space (two label words per object header), a verifier that
//! enforces the paper's region/local rules, a compiler that inserts
//! barriers under the paper's two strategies (static and dynamic), the
//! intraprocedural redundant-barrier elimination pass, and an
//! interpreter.
//!
//! ## Example: the implicit-flow program of Figure 5
//!
//! A security region with secrecy `{S(h)}` tries to leak the secret `H`
//! into public `L` through control flow; the write barrier stops it, the
//! exception is confined to the region, and execution continues after —
//! so code outside the region cannot distinguish `H = true` from
//! `H = false`.
//!
//! ```
//! use laminar_difc::{CapKind, Tag};
//! use laminar_vm::{BarrierMode, ProgramBuilder, Value, Vm};
//!
//! # fn main() -> Result<(), laminar_vm::VmError> {
//! let mut pb = ProgramBuilder::new();
//! let _cell = pb.add_class("Cell", 1);
//! // Region body: reads labeled H (param 0), writes unlabeled L (param 1).
//! let body = pb.region("leak", 2, 2, |b| {
//!     let done = b.new_label();
//!     b.load(0).get_field(0); // read H.value (allowed: region has S(h))
//!     b.jump_if_false(done);
//!     b.load(1).push_int(1).put_field(0); // L.value = 1  → flow violation!
//!     b.bind(done);
//!     b.ret();
//! });
//! let pair = pb.add_pair_spec(&[0], &[]); // {S(h)}
//! let spec = pb.add_region_spec(pair, &[(0, CapKind::Plus)], None);
//! pb.func("main", 2, false, 2, |b| {
//!     b.load(0).load(1).call_secure(body, spec).ret();
//! });
//! let program = pb.finish()?;
//!
//! let h = Tag::from_raw(99);
//! let mut vm = Vm::new(program, vec![h], BarrierMode::Dynamic);
//! let mut caps = laminar_difc::CapSet::new();
//! caps.grant(laminar_difc::Capability::plus(h));
//! vm.set_thread_caps(caps);
//!
//! let secret = laminar_difc::SecPair::secrecy_only(
//!     laminar_difc::Label::singleton(h));
//! let cls = laminar_vm::ClassId(0);
//! let h_obj = vm.host_alloc_object(cls, Some(secret))?;
//! vm.host_put_field(h_obj, 0, Value::Bool(true))?;
//! let l_obj = vm.host_alloc_object(cls, None)?;
//! vm.host_put_field(l_obj, 0, Value::Int(0))?;
//!
//! // Runs to completion: the violation is suppressed at the region edge.
//! vm.call_by_name("main", &[Value::Ref(h_obj), Value::Ref(l_obj)])?;
//! // And L was never written:
//! assert_eq!(vm.host_get_field(l_obj, 0)?, Value::Int(0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod absint;
pub mod asm;
mod bridge;
mod bytecode;
mod compile;
pub mod conformance;
mod error;
mod heap;
mod interp;
mod opt;
mod program;
mod stats;
mod value;
mod verify;

pub use asm::{assemble, disassemble};
pub use bridge::{NoOs, OsBridge};
pub use bytecode::{
    FuncId, Instr, PairSpec, PairSpecId, RegionSpec, RegionSpecId, StaticId, StrId,
    TagIdx,
};
pub use compile::BarrierMode;
pub use error::{VmError, VmResult};
pub use heap::{ClassId, Heap};
pub use interp::Vm;
pub use program::{
    Class, CodeLabel, Function, FunctionBuilder, Program, ProgramBuilder, StaticDecl,
};
pub use stats::{regions_aborted, reset_regions_aborted, VmStats};
pub use value::{ObjRef, Value};
pub use verify::verify;
