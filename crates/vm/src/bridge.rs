//! The VM→OS bridge (§4.4, "VM-OS interface").
//!
//! Security regions are invisible to the OS; when code inside a region
//! performs a syscall, the VM must first push the region's labels onto
//! the kernel task via `set_task_label` — and, as an optimization, "the
//! VM omits setting the labels in the kernel thread if the security
//! region does not perform a system call". The bridge trait is the seam
//! through which the `laminar` runtime crate connects a [`crate::Vm`]
//! to a `laminar-os` kernel task; the VM crate itself stays OS-agnostic.

use laminar_difc::SecPair;
use std::fmt;

/// Connects a VM thread to its kernel task.
///
/// Errors are strings because the VM reports them as opaque
/// [`crate::VmError::Os`] exceptions; the runtime crate maps real
/// `OsError`s into them.
pub trait OsBridge: Send {
    /// `set_task_label`: push the region's labels to the kernel task.
    ///
    /// # Errors
    /// If the kernel rejects the label change.
    fn sync_labels(&mut self, labels: &SecPair) -> Result<(), String>;

    /// Restore the kernel task's labels after a region that had synced
    /// exits (via the trusted `tcb` path — the thread itself may lack
    /// the declassification capabilities, §4.4).
    ///
    /// # Errors
    /// If the kernel rejects the restoration.
    fn restore_labels(&mut self, labels: &SecPair) -> Result<(), String>;

    /// Write one byte to the named file (creating it, labeled with the
    /// task's current labels, if absent).
    ///
    /// # Errors
    /// Propagates kernel errors (including DIFC denials).
    fn write_byte(&mut self, path: &str, byte: u8) -> Result<(), String>;

    /// Read one byte from the named file.
    ///
    /// # Errors
    /// Propagates kernel errors (including DIFC denials).
    fn read_byte(&mut self, path: &str) -> Result<Option<u8>, String>;
}

impl fmt::Debug for dyn OsBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn OsBridge")
    }
}

/// A bridge for VMs with no attached OS: every operation fails, making
/// accidental OS dependence loud in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoOs;

impl OsBridge for NoOs {
    fn sync_labels(&mut self, _labels: &SecPair) -> Result<(), String> {
        Err("no OS attached".into())
    }
    fn restore_labels(&mut self, _labels: &SecPair) -> Result<(), String> {
        Err("no OS attached".into())
    }
    fn write_byte(&mut self, _path: &str, _byte: u8) -> Result<(), String> {
        Err("no OS attached".into())
    }
    fn read_byte(&mut self, _path: &str) -> Result<Option<u8>, String> {
        Err("no OS attached".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_os_fails_everything() {
        let mut b = NoOs;
        assert!(b.sync_labels(&SecPair::unlabeled()).is_err());
        assert!(b.write_byte("x", 0).is_err());
        assert!(b.read_byte("x").is_err());
    }
}
