//! Conformance entry points for the VM read/write barriers.
//!
//! The interpreter's in-region barriers ([`crate::Vm`]) bottom out in
//! exactly these two checks; they are exposed here on bare label pairs
//! so the model-based testkit can replay a barrier event against both
//! this implementation and its reference oracle without constructing a
//! heap, a program, or a region. The interpreter delegates to these
//! functions — they *are* the enforcement code, not a copy of it.

use crate::error::{VmError, VmResult};
use laminar_difc::SecPair;

/// Decision-trace hook for the audit subsystem: reports a VM-barrier
/// verdict to `laminar-obs`. `#[cold]` and called only behind an
/// `enabled()` check, so the disabled-mode barrier cost is one relaxed
/// atomic load on top of the flow check itself.
#[cold]
fn trace_barrier(op: &'static str, subject: &SecPair, object: &SecPair, allowed: bool) {
    laminar_obs::emit(laminar_obs::Event::FlowCheck {
        layer: laminar_obs::Layer::Vm,
        op,
        subject: subject.id().as_u32(),
        object: object.id().as_u32(),
        verdict: if allowed {
            laminar_obs::Verdict::Allow
        } else {
            laminar_obs::Verdict::Deny
        },
        cache_hit: false,
    });
}

/// The in-region **read** barrier check: reading `obj` is a flow
/// `obj → thread`, so it requires `S_obj ⊆ S_thread` and
/// `I_thread ⊆ I_obj` (§4.3.2).
///
/// # Errors
/// [`VmError::Flow`] naming the violated component.
pub fn barrier_read_check(obj: &SecPair, thread: &SecPair) -> VmResult<()> {
    let r = obj.can_flow_to_cached(thread).map_err(VmError::from);
    if laminar_obs::enabled() {
        trace_barrier("barrier_read", thread, obj, r.is_ok());
    }
    r
}

/// The in-region **write** barrier check: writing `obj` is a flow
/// `thread → obj`, with the symmetric subset requirements.
///
/// # Errors
/// [`VmError::Flow`] naming the violated component.
pub fn barrier_write_check(thread: &SecPair, obj: &SecPair) -> VmResult<()> {
    let r = thread.can_flow_to_cached(obj).map_err(VmError::from);
    if laminar_obs::enabled() {
        trace_barrier("barrier_write", thread, obj, r.is_ok());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::{Label, Tag};

    fn s(n: u64) -> SecPair {
        SecPair::secrecy_only(Label::singleton(Tag::from_raw(n)))
    }

    #[test]
    fn read_is_flow_into_thread() {
        assert!(barrier_read_check(&s(300_001), &s(300_001)).is_ok());
        assert!(barrier_read_check(&s(300_001), &SecPair::unlabeled()).is_err());
        assert!(barrier_read_check(&SecPair::unlabeled(), &s(300_001)).is_ok());
    }

    #[test]
    fn write_is_flow_out_of_thread() {
        assert!(barrier_write_check(&s(300_002), &SecPair::unlabeled()).is_err());
        assert!(barrier_write_check(&SecPair::unlabeled(), &s(300_002)).is_ok());
    }
}
