//! Static bytecode verification, including the §5.1 security-region
//! rules.
//!
//! The paper's prototype "requires programs to adhere to" the
//! local-variable restrictions; a production implementation "could
//! decouple security regions from methods by enforcing local variable
//! restrictions as part of bytecode verification". This module is that
//! production verifier:
//!
//! * structural checks — every id in range, jump targets valid,
//!   consistent stack depths (via [`crate::absint`]);
//! * region-method rules — a security-region body (1) returns no value,
//!   (2) is entered only via `CallSecure`, and (3) *dereferences* its
//!   parameters but never reads or writes the reference values
//!   themselves (`obj.f` is allowed; `if (obj == null)` is not).

use crate::absint::{analyze, AbsVal};
use crate::bytecode::Instr;
use crate::error::{VmError, VmResult};
use crate::program::{Function, Program};

/// Verifies a whole program.
///
/// # Errors
///
/// [`VmError::Verify`] describing the first violation found.
pub fn verify(program: &Program) -> VmResult<()> {
    for (spec_i, spec) in program.region_specs.iter().enumerate() {
        if spec.pair.0 as usize >= program.pair_specs.len() {
            return Err(VmError::Verify(format!(
                "region spec {spec_i} references missing pair spec"
            )));
        }
        if let Some(catch) = spec.catch {
            let f = program
                .functions
                .get(catch.0 as usize)
                .ok_or_else(|| VmError::Verify("missing catch function".into()))?;
            if f.returns {
                return Err(VmError::Verify(format!(
                    "catch block {} must not return a value",
                    f.name
                )));
            }
        }
    }
    for (i, st) in program.statics.iter().enumerate() {
        if let Some(spec) = st.labels {
            if spec.0 as usize >= program.pair_specs.len() {
                return Err(VmError::Verify(format!(
                    "static {i} references missing pair spec"
                )));
            }
        }
    }
    for func in &program.functions {
        verify_function(program, func)?;
    }
    Ok(())
}

fn verify_function(program: &Program, func: &Function) -> VmResult<()> {
    if func.region && func.returns {
        // Rule (1) of §5.1: a region method does not return a value.
        return Err(VmError::Verify(format!(
            "security region {} must not return a value",
            func.name
        )));
    }

    // Structural checks that don't need the abstract stacks.
    for (pc, i) in func.body.iter().enumerate() {
        let err =
            |msg: String| Err(VmError::Verify(format!("{}:{pc}: {msg}", func.name)));
        match i {
            Instr::Load(l) | Instr::Store(l) if *l >= func.locals => {
                return err(format!("local {l} out of range"));
            }
            Instr::NewObject(c) | Instr::NewObjectLabeled(c, _) => {
                if c.0 as usize >= program.classes.len() {
                    return err("unknown class".into());
                }
                if let Instr::NewObjectLabeled(_, p) = i {
                    if p.0 as usize >= program.pair_specs.len() {
                        return err("unknown pair spec".into());
                    }
                }
            }
            Instr::NewArrayLabeled(p) | Instr::CopyAndLabel(p)
                if p.0 as usize >= program.pair_specs.len() =>
            {
                return err("unknown pair spec".into());
            }
            Instr::GetStatic(s) | Instr::PutStatic(s)
                if s.0 as usize >= program.statics.len() =>
            {
                return err("unknown static".into());
            }
            Instr::Call(f) => {
                let callee = match program.functions.get(f.0 as usize) {
                    Some(c) => c,
                    None => return err("unknown function".into()),
                };
                if callee.region {
                    return err(format!(
                        "security region {} may only be entered via CallSecure",
                        callee.name
                    ));
                }
            }
            Instr::CallSecure(f, r) => {
                let callee = match program.functions.get(f.0 as usize) {
                    Some(c) => c,
                    None => return err("unknown function".into()),
                };
                if !callee.region {
                    return err(format!(
                        "CallSecure target {} is not a security region",
                        callee.name
                    ));
                }
                if r.0 as usize >= program.region_specs.len() {
                    return err("unknown region spec".into());
                }
            }
            Instr::OsWriteByte(s) | Instr::OsReadByte(s)
                if s.0 as usize >= program.strings.len() =>
            {
                return err("unknown string".into());
            }
            _ => {}
        }
    }

    // Abstract interpretation: stack-depth soundness everywhere, plus
    // the parameter-consumption rules inside region bodies.
    let abs = analyze(program, func)?;
    if !func.region {
        return Ok(());
    }

    let is_param = |v: AbsVal| matches!(v, AbsVal::Local(l) if l < func.params);
    for (pc, i) in func.body.iter().enumerate() {
        if abs.before[pc].is_none() {
            continue; // unreachable
        }
        let err = |msg: &str| {
            Err(VmError::Verify(format!(
                "{}:{pc}: region parameter rule violated: {msg}",
                func.name
            )))
        };
        match i {
            // Storing to a parameter slot overwrites the reference.
            Instr::Store(l) => {
                if *l < func.params {
                    return err("parameters may not be reassigned");
                }
                if is_param(abs.operand(pc, 0)) {
                    return err("a parameter reference may not be copied into a local");
                }
            }
            // Dereferencing a parameter is the one allowed use: the
            // object position of field/array instructions.
            Instr::GetField(_) | Instr::ArrayLen => {} // base at depth 0: allowed
            Instr::PutField(_)
                // value at depth 0 must not be a param reference.
                if is_param(abs.operand(pc, 0)) => {
                    return err("a parameter reference may not be stored into a field");
                }
            Instr::ALoad => {} // [arr, idx]: arr allowed, idx would be int
            Instr::AStore
                if is_param(abs.operand(pc, 0)) => {
                    return err("a parameter reference may not be stored into an array");
                }
            // Reading the reference's value: comparisons, arithmetic,
            // control flow, throw, returning, OS writes.
            Instr::CmpEq | Instr::CmpLt | Instr::CmpLe
                if (is_param(abs.operand(pc, 0)) || is_param(abs.operand(pc, 1))) => {
                    return err("parameters may not be compared (e.g. `obj == null`)");
                }
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Mod
            | Instr::And
            | Instr::Or
                if (is_param(abs.operand(pc, 0)) || is_param(abs.operand(pc, 1))) => {
                    return err("parameters may not be used arithmetically");
                }
            Instr::Neg | Instr::Not | Instr::Throw | Instr::OsWriteByte(_)
                if is_param(abs.operand(pc, 0)) => {
                    return err("parameters may not be read as values");
                }
            Instr::JumpIfTrue(_) | Instr::JumpIfFalse(_)
                if is_param(abs.operand(pc, 0)) => {
                    return err("parameters may not drive control flow");
                }
            // Passing a parameter onward to a call is a dereference-like
            // use (the callee is itself verified); allowed.
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use laminar_difc::CapKind;

    #[test]
    fn region_may_deref_params() {
        let mut pb = ProgramBuilder::new();
        pb.region("r", 1, 2, |b| {
            b.load(0).get_field(0).store(1).ret();
        });
        assert!(pb.finish().is_ok());
    }

    #[test]
    fn region_may_not_return_value() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_func("r", 0, true);
        pb.program_mark_region_for_test(f);
        pb.define_func(f, 0, |b| {
            b.push_int(1).ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn region_may_not_compare_params() {
        let mut pb = ProgramBuilder::new();
        pb.region("r", 1, 1, |b| {
            let t = b.new_label();
            b.load(0).push_null().cmp_eq().jump_if_true(t);
            b.bind(t);
            b.ret();
        });
        let e = pb.finish().unwrap_err();
        assert!(e.to_string().contains("compared"), "{e}");
    }

    #[test]
    fn region_may_not_reassign_params() {
        let mut pb = ProgramBuilder::new();
        pb.region("r", 1, 1, |b| {
            b.push_null().store(0).ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn region_may_not_store_param_into_field() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", 1);
        pb.region("r", 1, 2, |b| {
            b.new_object(c).store(1); // local1 = new C
            b.load(1).load(0).put_field(0).ret(); // local1.f = param  ✗
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn regions_entered_only_via_call_secure() {
        let mut pb = ProgramBuilder::new();
        let r = pb.region("r", 0, 0, |b| {
            b.ret();
        });
        pb.func("main", 0, false, 0, |b| {
            b.call(r).ret();
        });
        let e = pb.finish().unwrap_err();
        assert!(e.to_string().contains("CallSecure"), "{e}");
    }

    #[test]
    fn call_secure_requires_region_target() {
        let mut pb = ProgramBuilder::new();
        let plain = pb.func("plain", 0, false, 0, |b| {
            b.ret();
        });
        let pair = pb.add_pair_spec(&[], &[]);
        let spec = pb.add_region_spec(pair, &[(0, CapKind::Plus)], None);
        pb.func("main", 0, false, 0, |b| {
            b.call_secure(plain, spec).ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn catch_must_not_return() {
        let mut pb = ProgramBuilder::new();
        let catch = pb.func("catch", 0, true, 0, |b| {
            b.push_int(0).ret();
        });
        let pair = pb.add_pair_spec(&[], &[]);
        let _spec = pb.add_region_spec(pair, &[], Some(catch));
        pb.func("main", 0, false, 0, |b| {
            b.ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn unknown_ids_rejected() {
        use crate::bytecode::{FuncId, Instr};
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, false, 0, |b| {
            b.emit(Instr::Call(FuncId(99))).ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }
}
