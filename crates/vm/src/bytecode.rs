//! The MiniVM bytecode: a small, stack-based, Java-flavoured instruction
//! set — enough surface (fields, arrays, statics, calls, exceptions,
//! security regions) to reproduce every barrier-placement decision of
//! Laminar's modified Jikes RVM (§5.1).

use crate::heap::ClassId;
use laminar_difc::CapKind;

/// Function identifier (index into the program's function table).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FuncId(pub u32);

/// Static-variable identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StaticId(pub u32);

/// Identifier of a label-pair specification (secrecy + integrity tag
/// index lists).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct PairSpecId(pub u32);

/// Identifier of a security-region specification.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegionSpecId(pub u32);

/// Identifier of an interned string constant (used for OS paths).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StrId(pub u32);

/// Index into the VM's runtime tag table. Programs reference tags
/// symbolically; the embedder supplies the actual [`laminar_difc::Tag`]s
/// when constructing the VM (tags are runtime values minted by
/// `alloc_tag`, not compile-time constants).
pub type TagIdx = u16;

/// A `{S(..), I(..)}` literal in program text, naming tags by index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairSpec {
    /// Secrecy tag indices.
    pub secrecy: Vec<TagIdx>,
    /// Integrity tag indices.
    pub integrity: Vec<TagIdx>,
}

/// The parameters of a `secure(..) {..} catch {..}` block: labels, the
/// capability subset the region retains, and the catch handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSpec {
    /// The region's labels.
    pub pair: PairSpecId,
    /// Capabilities the region runs with — rule (2) of §4.3.2 requires
    /// this to be a subset of the entering thread's capabilities.
    pub caps: Vec<(TagIdx, CapKind)>,
    /// The required catch block (§4.3.3). `None` models an empty catch.
    pub catch: Option<FuncId>,
}

/// One bytecode instruction.
///
/// Operand-stack conventions (top is rightmost):
/// `GetField`: `[obj] → [val]` · `PutField`: `[obj, val] → []` ·
/// `ALoad`: `[arr, idx] → [val]` · `AStore`: `[arr, idx, val] → []` ·
/// `NewArray`: `[len] → [arr]` · binary arithmetic: `[a, b] → [a ⊕ b]`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push null.
    PushNull,
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Read field `n` of the object on top.
    GetField(u16),
    /// Write field `n`: pops value then object.
    PutField(u16),
    /// Allocate an instance of a class (labels: current region's, or
    /// none outside a region — §5.1 allocation-time labeling).
    NewObject(ClassId),
    /// Allocate with explicit labels (must conform to DIFC rules).
    NewObjectLabeled(ClassId, PairSpecId),
    /// Allocate an array; length popped from the stack.
    NewArray,
    /// Allocate an array with explicit labels.
    NewArrayLabeled(PairSpecId),
    /// Array element read.
    ALoad,
    /// Array element write.
    AStore,
    /// Push the length of the array on top.
    ArrayLen,
    /// Read a static variable.
    GetStatic(StaticId),
    /// Write a static variable.
    PutStatic(StaticId),
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Integer remainder.
    Mod,
    /// Integer negation.
    Neg,
    /// Boolean not.
    Not,
    /// Boolean and.
    And,
    /// Boolean or.
    Or,
    /// Equality on ints/bools/refs.
    CmpEq,
    /// `<` on ints.
    CmpLt,
    /// `<=` on ints.
    CmpLe,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a bool; jump if true.
    JumpIfTrue(u32),
    /// Pop a bool; jump if false.
    JumpIfFalse(u32),
    /// Call an ordinary function; pops its arguments (last on top).
    Call(FuncId),
    /// Enter a security region: call a region function under a
    /// [`RegionSpec`]. Exceptions inside are handled by the spec's catch
    /// and then suppressed (§4.3.3); execution always continues after.
    CallSecure(FuncId, RegionSpecId),
    /// Return from the current function (pops the result if the function
    /// declares one).
    Return,
    /// `Laminar.copyAndLabel`: pops an object, pushes a copy carrying
    /// the spec's labels; legal iff the label-change rule passes with the
    /// current region's capabilities.
    CopyAndLabel(PairSpecId),
    /// Throw an application exception; pops an integer code.
    Throw,
    /// Bridge: write one byte (popped) to the named OS file. This is the
    /// syscall that triggers the lazy VM→OS label synchronisation (§4.4).
    OsWriteByte(StrId),
    /// Bridge: read one byte from the named OS file; pushes it, or -1.
    OsReadByte(StrId),
    /// No operation.
    Nop,
}

impl Instr {
    /// `(pops, pushes)` — the stack effect, used by the verifier and the
    /// abstract interpreter. `Call`'s effect depends on the callee and is
    /// handled specially by callers of this function.
    #[must_use]
    pub fn stack_effect(&self) -> (usize, usize) {
        use Instr::*;
        match self {
            PushInt(_) | PushBool(_) | PushNull => (0, 1),
            Pop => (1, 0),
            Dup => (1, 2),
            Load(_) => (0, 1),
            Store(_) => (1, 0),
            GetField(_) => (1, 1),
            PutField(_) => (2, 0),
            NewObject(_) | NewObjectLabeled(..) => (0, 1),
            NewArray | NewArrayLabeled(_) => (1, 1),
            ALoad => (2, 1),
            AStore => (3, 0),
            ArrayLen => (1, 1),
            GetStatic(_) => (0, 1),
            PutStatic(_) => (1, 0),
            Add | Sub | Mul | Div | Mod | And | Or | CmpEq | CmpLt | CmpLe => (2, 1),
            Neg | Not => (1, 1),
            Jump(_) => (0, 0),
            JumpIfTrue(_) | JumpIfFalse(_) => (1, 0),
            Call(_) | CallSecure(..) => (0, 0), // resolved by the caller
            Return => (0, 0),                   // resolved by the caller
            CopyAndLabel(_) => (1, 1),
            Throw => (1, 0),
            OsWriteByte(_) => (1, 0),
            OsReadByte(_) => (0, 1),
            Nop => (0, 0),
        }
    }

    /// Is this instruction a control-flow terminator (no fallthrough)?
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::Return | Instr::Throw)
    }

    /// Branch target, if any.
    #[must_use]
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => Some(*t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_effects_balance() {
        assert_eq!(Instr::PushInt(1).stack_effect(), (0, 1));
        assert_eq!(Instr::AStore.stack_effect(), (3, 0));
        assert_eq!(Instr::Dup.stack_effect(), (1, 2));
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Instr::Jump(3).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(!Instr::JumpIfTrue(3).is_terminator());
        assert_eq!(Instr::JumpIfFalse(7).branch_target(), Some(7));
        assert_eq!(Instr::Add.branch_target(), None);
    }
}
