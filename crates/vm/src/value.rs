//! Runtime values of the MiniVM.

use std::fmt;

/// Reference to a heap object (index into the VM heap).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjRef(pub(crate) u32);

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A MiniVM value: the operand-stack and field/array element type.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Value {
    /// The null reference (also the default field value).
    #[default]
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Heap reference.
    Ref(ObjRef),
}

impl Value {
    /// Interprets the value as an integer.
    ///
    /// # Errors
    /// [`crate::VmError::TypeError`] if it is not an `Int`.
    pub fn as_int(self) -> Result<i64, crate::VmError> {
        match self {
            Value::Int(i) => Ok(i),
            _ => Err(crate::VmError::TypeError("expected int")),
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// # Errors
    /// [`crate::VmError::TypeError`] if it is not a `Bool`.
    pub fn as_bool(self) -> Result<bool, crate::VmError> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(crate::VmError::TypeError("expected bool")),
        }
    }

    /// Interprets the value as a non-null reference.
    ///
    /// # Errors
    /// [`crate::VmError::NullPointer`] on null;
    /// [`crate::VmError::TypeError`] on a non-reference.
    pub fn as_ref(self) -> Result<ObjRef, crate::VmError> {
        match self {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(crate::VmError::NullPointer),
            _ => Err(crate::VmError::TypeError("expected reference")),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Ref(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64).as_int().unwrap(), 5);
        assert!(Value::from(true).as_bool().unwrap());
        let r = ObjRef(3);
        assert_eq!(Value::from(r).as_ref().unwrap(), r);
    }

    #[test]
    fn wrong_kind_errors() {
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Int(1).as_ref().is_err());
        assert!(matches!(Value::Null.as_ref(), Err(crate::VmError::NullPointer)));
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }
}
