//! The VM heap, with a separate *labeled object space*.
//!
//! §5.1: "The JVM allocates labeled objects into a separate labeled
//! object space in the heap, allowing instrumentation to quickly check
//! whether an object is labeled. We modify the allocator to add two words
//! to each object's header, which point to secrecy and integrity labels."
//!
//! Here the two header words are an `Option<SecPair>` (a `SecPair` is
//! exactly two shared label pointers): `None` means the object lives in
//! the ordinary space, so the out-of-region barrier's "is it labeled?"
//! test is a single discriminant check.

use crate::error::{VmError, VmResult};
use crate::value::{ObjRef, Value};
use laminar_difc::SecPair;

/// Class identifier (index into the program's class table).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClassId(pub u32);

/// Heap object payload: a class instance or an array.
#[derive(Clone, Debug)]
pub(crate) enum ObjKind {
    Object {
        #[allow(dead_code)] // kept in the header for parity with a real object model
        class: ClassId,
        fields: Vec<Value>,
    },
    Array {
        elems: Vec<Value>,
    },
}

/// A heap cell: payload plus the two label header words.
#[derive(Clone, Debug)]
pub(crate) struct HeapObject {
    pub kind: ObjKind,
    /// `None` = ordinary space; `Some` = labeled object space.
    pub labels: Option<SecPair>,
}

/// The garbage-free bump heap of the MiniVM.
///
/// Reclamation is out of scope (the paper's contribution is barrier
/// placement, not GC); workloads allocate bounded object graphs.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<HeapObject>,
}

impl Heap {
    /// An empty heap.
    #[must_use]
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of live objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the heap empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub(crate) fn alloc_object(
        &mut self,
        class: ClassId,
        nfields: usize,
        labels: Option<SecPair>,
    ) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(HeapObject {
            kind: ObjKind::Object { class, fields: vec![Value::Null; nfields] },
            labels,
        });
        r
    }

    pub(crate) fn alloc_array(&mut self, len: usize, labels: Option<SecPair>) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(HeapObject {
            kind: ObjKind::Array { elems: vec![Value::Null; len] },
            labels,
        });
        r
    }

    pub(crate) fn get(&self, r: ObjRef) -> VmResult<&HeapObject> {
        self.objects.get(r.0 as usize).ok_or(VmError::Malformed("dangling reference"))
    }

    pub(crate) fn get_mut(&mut self, r: ObjRef) -> VmResult<&mut HeapObject> {
        self.objects.get_mut(r.0 as usize).ok_or(VmError::Malformed("dangling reference"))
    }

    /// The labels of an object (`None` for the ordinary space).
    ///
    /// # Errors
    /// [`VmError::Malformed`] on a dangling reference.
    pub fn labels_of(&self, r: ObjRef) -> VmResult<Option<&SecPair>> {
        Ok(self.get(r)?.labels.as_ref())
    }

    /// Clones an object with new labels — the heap half of
    /// `copyAndLabel` (§4.5: labels are immutable, so relabeling copies).
    /// The copy is shallow, like `Object.clone()`.
    ///
    /// # Errors
    /// [`VmError::Malformed`] on a dangling reference.
    pub(crate) fn copy_with_labels(
        &mut self,
        r: ObjRef,
        labels: Option<SecPair>,
    ) -> VmResult<ObjRef> {
        let kind = self.get(r)?.kind.clone();
        let nr = ObjRef(self.objects.len() as u32);
        self.objects.push(HeapObject { kind, labels });
        Ok(nr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_difc::{Label, Tag};

    #[test]
    fn alloc_and_fetch() {
        let mut h = Heap::new();
        let r = h.alloc_object(ClassId(0), 2, None);
        assert_eq!(h.len(), 1);
        assert!(h.labels_of(r).unwrap().is_none());
        match &h.get(r).unwrap().kind {
            ObjKind::Object { fields, .. } => assert_eq!(fields.len(), 2),
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn labeled_space_is_distinguished() {
        let mut h = Heap::new();
        let labels = SecPair::secrecy_only(Label::singleton(Tag::from_raw(1)));
        let r = h.alloc_array(3, Some(labels.clone()));
        assert_eq!(h.labels_of(r).unwrap(), Some(&labels));
    }

    #[test]
    fn copy_with_labels_preserves_payload() {
        let mut h = Heap::new();
        let r = h.alloc_array(2, None);
        if let ObjKind::Array { elems } = &mut h.get_mut(r).unwrap().kind {
            elems[0] = Value::Int(7);
        }
        let labels = SecPair::secrecy_only(Label::singleton(Tag::from_raw(2)));
        let c = h.copy_with_labels(r, Some(labels.clone())).unwrap();
        assert_ne!(r, c);
        assert_eq!(h.labels_of(c).unwrap(), Some(&labels));
        match &h.get(c).unwrap().kind {
            ObjKind::Array { elems } => assert_eq!(elems[0], Value::Int(7)),
            _ => panic!("expected array"),
        }
        // Original unchanged.
        assert!(h.labels_of(r).unwrap().is_none());
    }

    #[test]
    fn dangling_reference_detected() {
        let h = Heap::new();
        assert!(h.get(ObjRef(9)).is_err());
    }
}
