//! A textual assembly front end for MiniVM programs.
//!
//! The paper's toolchain accepts programs from an *untrusted* compiler
//! (`javac`) and re-verifies them in the VM. This module provides the
//! equivalent untrusted front end for the MiniVM: a small assembly
//! language that lowers to [`Program`] through the ordinary
//! [`ProgramBuilder`] + verifier pipeline — nothing the assembler emits
//! is trusted.
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line
//! .class Point 2                 ; name, field count
//! .pair  P0 s=0,1 i=2            ; label literal over tag indices
//! .pair  EMPTY                   ; {S(), I()}
//! .static counter                ; unlabeled static
//! .lstatic secret P0             ; labeled static
//! .string PATH "data.bin"        ; interned OS path
//! .region R0 P0 caps=0+,1- catch=onfail
//!
//! .func main 1 -> 1 locals=3     ; params=1, returns, 3 local slots
//!     load 0
//!     push 2
//!     mul
//!     ret
//! .end
//!
//! .regionfn body 2 locals=3      ; a security-region body (void)
//!   head:                        ; jump label
//!     jump head                  ; (don't actually do this)
//! .end
//! ```
//!
//! Instruction mnemonics: `push <int>`, `pushb <true|false>`,
//! `pushnull`, `pop`, `dup`, `load/store <n>`, `getfield/putfield <n>`,
//! `new <class>`, `newl <class> <pair>`, `newarr`, `newarrl <pair>`,
//! `aload`, `astore`, `arraylen`, `getstatic/putstatic <name>`,
//! `add sub mul div mod neg not and or eq lt le`,
//! `jump/jt/jf <label>`, `call <func>`, `calls <func> <region>`,
//! `ret`, `copylabel <pair>`, `throw`, `oswrite/osread <string>`, `nop`.

use crate::bytecode::{FuncId, PairSpecId, RegionSpecId, StaticId, StrId, TagIdx};
use crate::error::{VmError, VmResult};
use crate::heap::ClassId;
use crate::program::{Program, ProgramBuilder};
use laminar_difc::CapKind;
use std::collections::HashMap;

/// Assembles MiniVM assembly text into a verified [`Program`].
///
/// # Errors
///
/// [`VmError::Verify`] with a line number for syntax errors, undefined
/// symbols, or any downstream verifier rejection.
pub fn assemble(src: &str) -> VmResult<Program> {
    Assembler::new(src).run()
}

#[derive(Clone, Debug)]
struct FuncSrc {
    name: String,
    params: u16,
    returns: bool,
    locals: u16,
    region: bool,
    /// (line number, text) of each body line.
    body: Vec<(usize, String)>,
}

struct Assembler<'s> {
    src: &'s str,
    classes: HashMap<String, ClassId>,
    pairs: HashMap<String, PairSpecId>,
    statics: HashMap<String, StaticId>,
    strings: HashMap<String, StrId>,
    regions: HashMap<String, RegionSpecId>,
    funcs: HashMap<String, FuncId>,
}

fn err(line: usize, msg: impl Into<String>) -> VmError {
    VmError::Verify(format!("asm line {line}: {}", msg.into()))
}

fn parse_u16(line: usize, tok: &str, what: &str) -> VmResult<u16> {
    tok.parse().map_err(|_| err(line, format!("bad {what}: {tok}")))
}

fn parse_i64(line: usize, tok: &str) -> VmResult<i64> {
    tok.parse().map_err(|_| err(line, format!("bad integer: {tok}")))
}

/// `s=0,1` / `i=2` tag lists.
fn parse_tag_list(line: usize, spec: &str) -> VmResult<Vec<TagIdx>> {
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    spec.split(',').map(|t| parse_u16(line, t.trim(), "tag index")).collect()
}

impl<'s> Assembler<'s> {
    fn new(src: &'s str) -> Self {
        Assembler {
            src,
            classes: HashMap::new(),
            pairs: HashMap::new(),
            statics: HashMap::new(),
            strings: HashMap::new(),
            regions: HashMap::new(),
            funcs: HashMap::new(),
        }
    }

    fn run(mut self) -> VmResult<Program> {
        let mut pb = ProgramBuilder::new();
        let mut funcs: Vec<FuncSrc> = Vec::new();
        let mut current: Option<FuncSrc> = None;
        // Region directives may reference functions (catch blocks) that
        // appear later; buffer them for a second pass.
        let mut pending_regions: Vec<(usize, String)> = Vec::new();

        for (lineno, raw) in self.src.lines().enumerate() {
            let line = lineno + 1;
            let text = raw.split(';').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            if let Some(f) = &mut current {
                if text == ".end" {
                    if let Some(done) = current.take() {
                        funcs.push(done);
                    }
                } else {
                    f.body.push((line, text.to_string()));
                }
                continue;
            }
            let mut toks = text.split_whitespace();
            // `text` is non-empty (checked above), so a head token exists.
            let Some(head) = toks.next() else { continue };
            match head {
                ".class" => {
                    let name =
                        toks.next().ok_or_else(|| err(line, "expected class name"))?;
                    let n = parse_u16(
                        line,
                        toks.next().ok_or_else(|| err(line, "expected field count"))?,
                        "field count",
                    )?;
                    let id = pb.add_class(name, n);
                    self.classes.insert(name.to_string(), id);
                }
                ".pair" => {
                    let name =
                        toks.next().ok_or_else(|| err(line, "expected pair name"))?;
                    let mut secrecy = Vec::new();
                    let mut integrity = Vec::new();
                    for t in toks {
                        if let Some(rest) = t.strip_prefix("s=") {
                            secrecy = parse_tag_list(line, rest)?;
                        } else if let Some(rest) = t.strip_prefix("i=") {
                            integrity = parse_tag_list(line, rest)?;
                        } else {
                            return Err(err(line, format!("unexpected token {t}")));
                        }
                    }
                    let id = pb.add_pair_spec(&secrecy, &integrity);
                    self.pairs.insert(name.to_string(), id);
                }
                ".static" => {
                    let name =
                        toks.next().ok_or_else(|| err(line, "expected static name"))?;
                    let id = pb.add_static(name);
                    self.statics.insert(name.to_string(), id);
                }
                ".lstatic" => {
                    let name =
                        toks.next().ok_or_else(|| err(line, "expected static name"))?;
                    let pair = self.pair(line, toks.next())?;
                    let id = pb.add_static_labeled(name, pair);
                    self.statics.insert(name.to_string(), id);
                }
                ".string" => {
                    let name =
                        toks.next().ok_or_else(|| err(line, "expected string name"))?;
                    let rest =
                        text.splitn(3, char::is_whitespace).nth(2).unwrap_or("").trim();
                    let value = rest
                        .strip_prefix('"')
                        .and_then(|r| r.strip_suffix('"'))
                        .ok_or_else(|| err(line, "expected quoted string value"))?;
                    let id = pb.add_string(value);
                    self.strings.insert(name.to_string(), id);
                }
                ".region" => {
                    pending_regions.push((line, text.to_string()));
                }
                ".func" | ".regionfn" => {
                    current = Some(self.parse_func_header(line, text)?);
                }
                other => return Err(err(line, format!("unknown directive {other}"))),
            }
        }
        if let Some(f) = current {
            return Err(err(0, format!("function {} missing .end", f.name)));
        }

        // Declare every function so bodies and regions may reference any.
        for f in &funcs {
            let id = if f.region {
                pb.declare_region(&f.name, f.params)
            } else {
                pb.declare_func(&f.name, f.params, f.returns)
            };
            self.funcs.insert(f.name.clone(), id);
        }
        // Region specs (may name catch functions).
        for (line, text) in pending_regions {
            self.parse_region(&mut pb, line, &text)?;
        }
        // Bodies.
        for f in funcs {
            let id = self.funcs[&f.name];
            let result = self.emit_body(&mut pb, id, &f);
            result?;
        }
        pb.finish()
    }

    fn parse_func_header(&self, line: usize, text: &str) -> VmResult<FuncSrc> {
        let mut toks = text.split_whitespace();
        let head = toks.next().ok_or_else(|| err(line, "expected directive"))?;
        let region = head == ".regionfn";
        let name =
            toks.next().ok_or_else(|| err(line, "expected function name"))?.to_string();
        let params = parse_u16(
            line,
            toks.next().ok_or_else(|| err(line, "expected param count"))?,
            "param count",
        )?;
        let mut returns = false;
        let mut locals = params;
        for t in toks.by_ref() {
            match t {
                "->" => {
                    // next token is 0/1
                }
                "0" => returns = false,
                "1" => returns = true,
                other => {
                    if let Some(rest) = other.strip_prefix("locals=") {
                        locals = parse_u16(line, rest, "locals")?;
                    } else {
                        return Err(err(line, format!("unexpected token {other}")));
                    }
                }
            }
        }
        if region && returns {
            return Err(err(line, "region functions must not return a value"));
        }
        Ok(FuncSrc {
            name,
            params,
            returns,
            locals: locals.max(params),
            region,
            body: Vec::new(),
        })
    }

    fn parse_region(
        &mut self,
        pb: &mut ProgramBuilder,
        line: usize,
        text: &str,
    ) -> VmResult<()> {
        let mut toks = text.split_whitespace();
        toks.next(); // .region
        let name = toks.next().ok_or_else(|| err(line, "expected region name"))?;
        let pair = self.pair(line, toks.next())?;
        let mut caps: Vec<(TagIdx, CapKind)> = Vec::new();
        let mut catch: Option<FuncId> = None;
        for t in toks {
            if let Some(rest) = t.strip_prefix("caps=") {
                for c in rest.split(',').filter(|c| !c.is_empty()) {
                    let (idx, kind) = if let Some(i) = c.strip_suffix('+') {
                        (i, CapKind::Plus)
                    } else if let Some(i) = c.strip_suffix('-') {
                        (i, CapKind::Minus)
                    } else {
                        return Err(err(
                            line,
                            format!("bad capability {c} (want N+ or N-)"),
                        ));
                    };
                    caps.push((parse_u16(line, idx, "tag index")?, kind));
                }
            } else if let Some(rest) = t.strip_prefix("catch=") {
                catch = Some(self.func(line, rest)?);
            } else {
                return Err(err(line, format!("unexpected token {t}")));
            }
        }
        let id = pb.add_region_spec(pair, &caps, catch);
        self.regions.insert(name.to_string(), id);
        Ok(())
    }

    fn emit_body(
        &self,
        pb: &mut ProgramBuilder,
        id: FuncId,
        f: &FuncSrc,
    ) -> VmResult<()> {
        // Pre-scan for labels (a token ending in ':' on its own line).
        let mut result: VmResult<()> = Ok(());
        pb.define_func(id, f.locals, |b| {
            let mut labels = HashMap::new();
            for (line, text) in &f.body {
                if let Some(name) = text.strip_suffix(':') {
                    if labels.insert(name.trim().to_string(), b.new_label()).is_some() {
                        result = Err(err(*line, format!("duplicate label {name}")));
                        return;
                    }
                }
            }
            for (line, text) in &f.body {
                if let Some(name) = text.strip_suffix(':') {
                    b.bind(labels[name.trim()]);
                    continue;
                }
                if let Err(e) = self.emit_instr(b, &labels, *line, text) {
                    result = Err(e);
                    return;
                }
            }
        });
        result
    }

    #[allow(clippy::too_many_lines)]
    fn emit_instr(
        &self,
        b: &mut crate::program::FunctionBuilder,
        labels: &HashMap<String, crate::program::CodeLabel>,
        line: usize,
        text: &str,
    ) -> VmResult<()> {
        let mut toks = text.split_whitespace();
        let op = toks.next().ok_or_else(|| err(line, "empty instruction"))?;
        let mut arg = || -> VmResult<&str> {
            toks.next().ok_or_else(|| err(line, format!("{op}: missing operand")))
        };
        let label = |labels: &HashMap<String, crate::program::CodeLabel>,
                     name: &str|
         -> VmResult<crate::program::CodeLabel> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label {name}")))
        };
        match op {
            "push" => {
                let v = parse_i64(line, arg()?)?;
                b.push_int(v);
            }
            "pushb" => {
                let v = match arg()? {
                    "true" => true,
                    "false" => false,
                    other => return Err(err(line, format!("bad bool {other}"))),
                };
                b.push_bool(v);
            }
            "pushnull" => {
                b.push_null();
            }
            "pop" => {
                b.pop();
            }
            "dup" => {
                b.dup();
            }
            "load" => {
                let n = parse_u16(line, arg()?, "local")?;
                b.load(n);
            }
            "store" => {
                let n = parse_u16(line, arg()?, "local")?;
                b.store(n);
            }
            "getfield" => {
                let n = parse_u16(line, arg()?, "field")?;
                b.get_field(n);
            }
            "putfield" => {
                let n = parse_u16(line, arg()?, "field")?;
                b.put_field(n);
            }
            "new" => {
                let c = self.class(line, Some(arg()?))?;
                b.new_object(c);
            }
            "newl" => {
                let c = self.class(line, Some(arg()?))?;
                let p = self.pair(line, Some(arg()?))?;
                b.new_object_labeled(c, p);
            }
            "newarr" => {
                b.new_array();
            }
            "newarrl" => {
                let p = self.pair(line, Some(arg()?))?;
                b.new_array_labeled(p);
            }
            "aload" => {
                b.aload();
            }
            "astore" => {
                b.astore();
            }
            "arraylen" => {
                b.array_len();
            }
            "getstatic" => {
                let s = self.static_(line, arg()?)?;
                b.get_static(s);
            }
            "putstatic" => {
                let s = self.static_(line, arg()?)?;
                b.put_static(s);
            }
            "add" => {
                b.add();
            }
            "sub" => {
                b.sub();
            }
            "mul" => {
                b.mul();
            }
            "div" => {
                b.div();
            }
            "mod" => {
                b.modulo();
            }
            "neg" => {
                b.neg();
            }
            "not" => {
                b.not();
            }
            "and" => {
                b.and();
            }
            "or" => {
                b.or();
            }
            "eq" => {
                b.cmp_eq();
            }
            "lt" => {
                b.cmp_lt();
            }
            "le" => {
                b.cmp_le();
            }
            "jump" => {
                let l = label(labels, arg()?)?;
                b.jump(l);
            }
            "jt" => {
                let l = label(labels, arg()?)?;
                b.jump_if_true(l);
            }
            "jf" => {
                let l = label(labels, arg()?)?;
                b.jump_if_false(l);
            }
            "call" => {
                let f = self.func(line, arg()?)?;
                b.call(f);
            }
            "calls" => {
                let f = self.func(line, arg()?)?;
                let r = self.region_spec(line, arg()?)?;
                b.call_secure(f, r);
            }
            "ret" => {
                b.ret();
            }
            "copylabel" => {
                let p = self.pair(line, Some(arg()?))?;
                b.copy_and_label(p);
            }
            "throw" => {
                b.throw();
            }
            "oswrite" => {
                let s = self.string(line, arg()?)?;
                b.os_write_byte(s);
            }
            "osread" => {
                let s = self.string(line, arg()?)?;
                b.os_read_byte(s);
            }
            "nop" => {
                b.nop();
            }
            other => return Err(err(line, format!("unknown instruction {other}"))),
        }
        Ok(())
    }

    fn class(&self, line: usize, name: Option<&str>) -> VmResult<ClassId> {
        let name = name.ok_or_else(|| err(line, "expected class name"))?;
        self.classes
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined class {name}")))
    }

    fn pair(&self, line: usize, name: Option<&str>) -> VmResult<PairSpecId> {
        let name = name.ok_or_else(|| err(line, "expected pair name"))?;
        self.pairs
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined pair {name}")))
    }

    fn static_(&self, line: usize, name: &str) -> VmResult<StaticId> {
        self.statics
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined static {name}")))
    }

    fn string(&self, line: usize, name: &str) -> VmResult<StrId> {
        self.strings
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined string {name}")))
    }

    fn func(&self, line: usize, name: &str) -> VmResult<FuncId> {
        self.funcs
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined function {name}")))
    }

    fn region_spec(&self, line: usize, name: &str) -> VmResult<RegionSpecId> {
        self.regions
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined region {name}")))
    }
}

/// Renders a program back to (approximate) assembly text, for debugging
/// and golden tests. Labels are synthesised as `Ln`.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use crate::bytecode::Instr;
    let mut out = String::new();
    for (i, c) in program.classes.iter().enumerate() {
        out.push_str(&format!(".class {} {}  ; #{i}\n", c.name, c.nfields));
    }
    for (i, p) in program.pair_specs.iter().enumerate() {
        let s: Vec<String> = p.secrecy.iter().map(u16::to_string).collect();
        let int: Vec<String> = p.integrity.iter().map(u16::to_string).collect();
        out.push_str(&format!(".pair P{i} s={} i={}\n", s.join(","), int.join(",")));
    }
    for st in &program.statics {
        match st.labels {
            Some(p) => out.push_str(&format!(".lstatic {} P{}\n", st.name, p.0)),
            None => out.push_str(&format!(".static {}\n", st.name)),
        }
    }
    for (i, s) in program.strings.iter().enumerate() {
        out.push_str(&format!(".string S{i} \"{s}\"\n"));
    }
    for (i, r) in program.region_specs.iter().enumerate() {
        let caps: Vec<String> = r
            .caps
            .iter()
            .map(|(t, k)| format!("{t}{}", if *k == CapKind::Plus { "+" } else { "-" }))
            .collect();
        let catch = r
            .catch
            .map(|f| format!(" catch={}", program.functions[f.0 as usize].name))
            .unwrap_or_default();
        out.push_str(&format!(
            ".region R{i} P{} caps={}{catch}\n",
            r.pair.0,
            caps.join(",")
        ));
    }
    for f in &program.functions {
        let head = if f.region { ".regionfn" } else { ".func" };
        let ret = if f.returns { " -> 1" } else { "" };
        out.push_str(&format!(
            "{head} {} {}{} locals={}\n",
            f.name, f.params, ret, f.locals
        ));
        // Collect jump targets for label synthesis.
        let mut targets: Vec<u32> =
            f.body.iter().filter_map(Instr::branch_target).collect();
        targets.sort_unstable();
        targets.dedup();
        // Only called for pcs in `targets`; the Err index still yields a
        // deterministic label rather than an unwind.
        let label_of =
            |pc: u32| format!("L{}", targets.binary_search(&pc).unwrap_or_else(|i| i));
        for (pc, instr) in f.body.iter().enumerate() {
            if targets.binary_search(&(pc as u32)).is_ok() {
                out.push_str(&format!("  {}:\n", label_of(pc as u32)));
            }
            let line = match instr {
                Instr::PushInt(v) => format!("push {v}"),
                Instr::PushBool(v) => format!("pushb {v}"),
                Instr::PushNull => "pushnull".into(),
                Instr::Pop => "pop".into(),
                Instr::Dup => "dup".into(),
                Instr::Load(n) => format!("load {n}"),
                Instr::Store(n) => format!("store {n}"),
                Instr::GetField(n) => format!("getfield {n}"),
                Instr::PutField(n) => format!("putfield {n}"),
                Instr::NewObject(c) => {
                    format!("new {}", program.classes[c.0 as usize].name)
                }
                Instr::NewObjectLabeled(c, p) => {
                    format!("newl {} P{}", program.classes[c.0 as usize].name, p.0)
                }
                Instr::NewArray => "newarr".into(),
                Instr::NewArrayLabeled(p) => format!("newarrl P{}", p.0),
                Instr::ALoad => "aload".into(),
                Instr::AStore => "astore".into(),
                Instr::ArrayLen => "arraylen".into(),
                Instr::GetStatic(s) => {
                    format!("getstatic {}", program.statics[s.0 as usize].name)
                }
                Instr::PutStatic(s) => {
                    format!("putstatic {}", program.statics[s.0 as usize].name)
                }
                Instr::Add => "add".into(),
                Instr::Sub => "sub".into(),
                Instr::Mul => "mul".into(),
                Instr::Div => "div".into(),
                Instr::Mod => "mod".into(),
                Instr::Neg => "neg".into(),
                Instr::Not => "not".into(),
                Instr::And => "and".into(),
                Instr::Or => "or".into(),
                Instr::CmpEq => "eq".into(),
                Instr::CmpLt => "lt".into(),
                Instr::CmpLe => "le".into(),
                Instr::Jump(t) => format!("jump {}", label_of(*t)),
                Instr::JumpIfTrue(t) => format!("jt {}", label_of(*t)),
                Instr::JumpIfFalse(t) => format!("jf {}", label_of(*t)),
                Instr::Call(f2) => {
                    format!("call {}", program.functions[f2.0 as usize].name)
                }
                Instr::CallSecure(f2, r) => {
                    format!("calls {} R{}", program.functions[f2.0 as usize].name, r.0)
                }
                Instr::Return => "ret".into(),
                Instr::CopyAndLabel(p) => format!("copylabel P{}", p.0),
                Instr::Throw => "throw".into(),
                Instr::OsWriteByte(s) => format!("oswrite S{}", s.0),
                Instr::OsReadByte(s) => format!("osread S{}", s.0),
                Instr::Nop => "nop".into(),
            };
            out.push_str(&format!("    {line}\n"));
        }
        out.push_str(".end\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::BarrierMode;
    use crate::interp::Vm;
    use crate::value::Value;

    #[test]
    fn assembles_and_runs_arithmetic() {
        let program = assemble(
            r"
            .func main 1 -> 1 locals=2
                load 0
                push 2
                mul
                push 1
                add
                ret
            .end
            ",
        )
        .unwrap();
        let mut vm = Vm::new(program, vec![], BarrierMode::Dynamic);
        assert_eq!(
            vm.call_by_name("main", &[Value::Int(20)]).unwrap(),
            Some(Value::Int(41))
        );
    }

    #[test]
    fn labels_and_branches() {
        let program = assemble(
            r"
            ; abs(x)
            .func abs 1 -> 1 locals=1
                load 0
                push 0
                lt
                jf nonneg
                load 0
                neg
                ret
              nonneg:
                load 0
                ret
            .end
            ",
        )
        .unwrap();
        let mut vm = Vm::new(program, vec![], BarrierMode::Static);
        assert_eq!(
            vm.call_by_name("abs", &[Value::Int(-5)]).unwrap(),
            Some(Value::Int(5))
        );
        assert_eq!(
            vm.call_by_name("abs", &[Value::Int(7)]).unwrap(),
            Some(Value::Int(7))
        );
    }

    #[test]
    fn regions_classes_and_pairs() {
        let program = assemble(
            r"
            .class Cell 1
            .pair SECRET s=0
            .pair EMPTY
            .region R SECRET caps=0+,0-
            .regionfn fill 1 locals=1
                load 0
                push 42
                putfield 0
                ret
            .end
            .func main 1 locals=1
                load 0
                calls fill R
                ret
            .end
            ",
        )
        .unwrap();
        assert_eq!(program.tags_used, 1);
        use laminar_difc::{CapSet, SecPair, Tag};
        let t = Tag::from_raw(5);
        let mut vm = Vm::new(program, vec![t], BarrierMode::Dynamic);
        let mut caps = CapSet::new();
        caps.grant_both(t);
        vm.set_thread_caps(caps);
        let obj = vm
            .host_alloc_object(
                crate::heap::ClassId(0),
                Some(SecPair::secrecy_only(laminar_difc::Label::singleton(t))),
            )
            .unwrap();
        vm.call_by_name("main", &[Value::Ref(obj)]).unwrap();
        assert_eq!(vm.host_get_field(obj, 0).unwrap(), Value::Int(42));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = assemble(".func f 0 locals=0\n    bogus\n.end\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = assemble(".func f 0 locals=0\n    jump nowhere\n.end\n").unwrap_err();
        assert!(e.to_string().contains("undefined label"), "{e}");
        let e = assemble(".bogus x\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"), "{e}");
    }

    #[test]
    fn assembled_programs_are_verified() {
        // Stack underflow is caught by the verifier behind the assembler.
        let e = assemble(".func f 0 locals=0\n    pop\n    ret\n.end\n").unwrap_err();
        assert!(matches!(e, VmError::Verify(_)));
    }

    #[test]
    fn round_trip_through_disassembler() {
        let src = r"
            .class Node 2
            .static total
            .func main 1 -> 1 locals=2
                push 0
                store 1
              head:
                load 0
                push 0
                le
                jt done
                load 1
                load 0
                add
                store 1
                load 0
                push 1
                sub
                store 0
                jump head
              done:
                load 1
                ret
            .end
            ";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        // Same behaviour after a round trip.
        let run = |p: Program| {
            let mut vm = Vm::new(p, vec![], BarrierMode::Static);
            vm.call_by_name("main", &[Value::Int(10)]).unwrap()
        };
        assert_eq!(run(p1), run(p2));
    }

    #[test]
    fn labeled_static_directive() {
        let program = assemble(
            r"
            .pair SECRET s=0
            .lstatic hidden SECRET
            .func main 0 locals=0
                nop
                ret
            .end
            ",
        )
        .unwrap();
        assert!(program.statics[0].labels.is_some());
    }
}
