//! Intraprocedural abstract interpretation over the operand stack.
//!
//! Both the static verifier (§5.1 local-variable rules) and the
//! redundant-barrier elimination pass (§5.1's "intraprocedural,
//! flow-sensitive data-flow analysis") need to know, for every
//! instruction, *which value* each stack slot holds — specifically
//! whether it is a copy of a local variable or a freshly allocated
//! object. This module computes that by a worklist fixpoint over the CFG.

use crate::bytecode::Instr;
use crate::error::{VmError, VmResult};
use crate::program::{Function, Program};

/// Abstract value of one stack slot.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum AbsVal {
    /// Nothing known.
    Unknown,
    /// The value currently stored in local slot `n`.
    Local(u16),
    /// An object allocated by the instruction at this pc (so definitely
    /// allocated in this function, on every path reaching here).
    Fresh(u32),
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Unknown
        }
    }
}

/// Result of the analysis: the abstract stack *before* each instruction
/// (`None` = unreachable).
pub(crate) struct AbsStacks {
    pub before: Vec<Option<Vec<AbsVal>>>,
}

impl AbsStacks {
    /// The abstract operand at depth `d` from the top of the stack
    /// before instruction `pc` (`d = 0` is the top).
    pub(crate) fn operand(&self, pc: usize, d: usize) -> AbsVal {
        match &self.before[pc] {
            Some(stack) if stack.len() > d => stack[stack.len() - 1 - d],
            _ => AbsVal::Unknown,
        }
    }
}

fn call_effect(program: &Program, i: &Instr) -> Option<(usize, usize)> {
    match i {
        Instr::Call(f) | Instr::CallSecure(f, _) => {
            let func = program.functions.get(f.0 as usize)?;
            Some((func.params as usize, usize::from(func.returns)))
        }
        _ => None,
    }
}

/// Runs the analysis for `func`.
///
/// # Errors
///
/// [`VmError::Verify`] on stack underflow, inconsistent stack depths at a
/// join point, or an out-of-range jump — making this double as the
/// structural half of bytecode verification.
pub(crate) fn analyze(program: &Program, func: &Function) -> VmResult<AbsStacks> {
    let n = func.body.len();
    let mut before: Vec<Option<Vec<AbsVal>>> = vec![None; n];
    if n == 0 {
        return Ok(AbsStacks { before });
    }
    before[0] = Some(Vec::new());
    let mut work = vec![0usize];

    while let Some(pc) = work.pop() {
        let instr = func.body[pc];
        // The worklist only holds pcs whose before-state was just set.
        let Some(mut stack) = before[pc].clone() else { continue };

        // Apply the transfer function.
        let (pops, pushes) =
            call_effect(program, &instr).unwrap_or_else(|| instr.stack_effect());
        let (pops, pushes) = match instr {
            Instr::Return => (usize::from(func.returns), 0),
            _ => (pops, pushes),
        };
        if stack.len() < pops {
            return Err(VmError::Verify(format!(
                "stack underflow at {}:{pc} ({instr:?})",
                func.name
            )));
        }
        let popped: Vec<AbsVal> = stack.split_off(stack.len() - pops);

        match instr {
            Instr::Load(l) => stack.push(AbsVal::Local(l)),
            Instr::Dup => {
                let v = popped[0];
                stack.push(v);
                stack.push(v);
            }
            Instr::Store(l) => {
                // The old value of local `l` is gone: any stack slot that
                // claimed to alias it no longer does.
                for v in stack.iter_mut() {
                    if *v == AbsVal::Local(l) {
                        *v = AbsVal::Unknown;
                    }
                }
            }
            Instr::NewObject(_)
            | Instr::NewObjectLabeled(..)
            | Instr::NewArray
            | Instr::NewArrayLabeled(_) => stack.push(AbsVal::Fresh(pc as u32)),
            _ => {
                for _ in 0..pushes {
                    stack.push(AbsVal::Unknown);
                }
            }
        }

        // Propagate to successors.
        let mut succs: Vec<usize> = Vec::with_capacity(2);
        if let Some(t) = instr.branch_target() {
            if t as usize >= n {
                return Err(VmError::Verify(format!(
                    "jump target {t} out of range in {}",
                    func.name
                )));
            }
            succs.push(t as usize);
        }
        if !instr.is_terminator() {
            if pc + 1 >= n {
                return Err(VmError::Verify(format!(
                    "control flow falls off the end of {}",
                    func.name
                )));
            }
            succs.push(pc + 1);
        }

        for s in succs {
            match &mut before[s] {
                None => {
                    before[s] = Some(stack.clone());
                    work.push(s);
                }
                Some(existing) => {
                    if existing.len() != stack.len() {
                        return Err(VmError::Verify(format!(
                            "inconsistent stack depth at {}:{s}",
                            func.name
                        )));
                    }
                    let mut changed = false;
                    for (e, v) in existing.iter_mut().zip(stack.iter()) {
                        let j = e.join(*v);
                        if j != *e {
                            *e = j;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(s);
                    }
                }
            }
        }
    }
    Ok(AbsStacks { before })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn analyze_named(pb: ProgramBuilder, name: &str) -> VmResult<AbsStacks> {
        let p = pb.finish()?;
        let f = p.func_by_name(name).unwrap();
        analyze(&p, &p.functions[f.0 as usize])
    }

    #[test]
    fn tracks_locals_through_straightline_code() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            b.load(0).get_field(0).pop().ret();
        });
        let abs = analyze_named(pb, "f").unwrap();
        // Before GetField (pc=1) the top of stack is Local(0).
        assert_eq!(abs.operand(1, 0), AbsVal::Local(0));
    }

    #[test]
    fn fresh_allocations_are_tracked() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", 1);
        pb.func("f", 0, false, 1, |b| {
            b.new_object(c).push_int(1).put_field(0).ret();
        });
        let abs = analyze_named(pb, "f").unwrap();
        // Before PutField (pc=2): stack is [Fresh, Unknown]; base at depth 1.
        assert_eq!(abs.operand(2, 1), AbsVal::Fresh(0));
    }

    #[test]
    fn store_invalidates_stack_aliases() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, false, 2, |b| {
            // local1 pushed twice, then local1 reassigned: remaining
            // stack copy must degrade to Unknown.
            b.load(1).load(1).store(1).get_field(0).pop().ret();
        });
        let abs = analyze_named(pb, "f").unwrap();
        assert_eq!(abs.operand(3, 0), AbsVal::Unknown);
    }

    #[test]
    fn join_degrades_disagreeing_slots() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 3, |b| {
            let els = b.new_label();
            let done = b.new_label();
            b.load(0).jump_if_true(els);
            b.load(1).jump(done);
            b.bind(els);
            b.load(2);
            b.bind(done);
            // Merge point: one path pushed Local(1), other Local(2).
            b.get_field(0).pop().ret();
        });
        let abs = analyze_named(pb, "f").unwrap();
        let merge_pc = 5; // the GetField
        assert_eq!(abs.operand(merge_pc, 0), AbsVal::Unknown);
    }

    #[test]
    fn underflow_is_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, false, 0, |b| {
            b.pop().ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn inconsistent_depths_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, false, 1, |b| {
            let t = b.new_label();
            b.load(0).jump_if_true(t);
            b.push_int(1); // one path pushes
            b.bind(t); // other path arrives with empty stack
            b.nop().ret();
        });
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }
}
