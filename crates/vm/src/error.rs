//! VM error types: DIFC violations surface as VM exceptions.

use laminar_difc::{FlowError, LabelChangeError};
use std::error::Error;
use std::fmt;

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, VmError>;

/// Errors raised by the Laminar VM.
///
/// Inside a security region these become the exceptions handled by the
/// region's `catch` block (§4.3.3); outside they propagate to the host.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// A read/write barrier detected an illegal information flow.
    Flow(FlowError),
    /// `copyAndLabel` or region entry needed capabilities the thread lacks.
    LabelChange(LabelChangeError),
    /// Security-region entry rules (§4.3.2) failed.
    RegionEntry(&'static str),
    /// A barrier outside any security region touched a *labeled* object.
    LabeledAccessOutsideRegion,
    /// A region with secrecy labels wrote a static, or one with integrity
    /// labels read a static (§5.1).
    StaticAccessInRegion(&'static str),
    /// A statically-barriered method was invoked from the opposite
    /// security context it was compiled for (the failure mode of static
    /// barriers, §5.1).
    BarrierContextMismatch {
        /// The function that was mis-compiled.
        function: String,
    },
    /// An application-level `throw` with an error code.
    Thrown(i64),
    /// Type confusion (wrong operand kind for an instruction).
    TypeError(&'static str),
    /// Reference was null.
    NullPointer,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Arithmetic fault (division by zero).
    DivideByZero,
    /// A region exit was requested with no matching region entry — an
    /// interpreter-invariant failure that must surface as a typed error
    /// (fail-closed), never as an unwind.
    RegionUnderflow,
    /// Malformed program detected at run time (bad ids, stack underflow).
    Malformed(&'static str),
    /// Static verification rejected the program before execution.
    Verify(String),
    /// A bridged OS syscall failed.
    Os(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Flow(e) => write!(f, "flow violation: {e}"),
            VmError::LabelChange(e) => write!(f, "label change rejected: {e}"),
            VmError::RegionEntry(why) => write!(f, "security region entry denied: {why}"),
            VmError::LabeledAccessOutsideRegion => {
                f.write_str("labeled object accessed outside a security region")
            }
            VmError::StaticAccessInRegion(why) => {
                write!(f, "illegal static access in security region: {why}")
            }
            VmError::BarrierContextMismatch { function } => write!(
                f,
                "method {function} was compiled with static barriers for the \
                 opposite security context"
            ),
            VmError::Thrown(code) => write!(f, "application exception {code}"),
            VmError::TypeError(what) => write!(f, "type error: {what}"),
            VmError::NullPointer => f.write_str("null reference"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            VmError::DivideByZero => f.write_str("division by zero"),
            VmError::RegionUnderflow => {
                f.write_str("security region exit without a matching entry")
            }
            VmError::Malformed(what) => write!(f, "malformed program: {what}"),
            VmError::Verify(what) => write!(f, "verification failed: {what}"),
            VmError::Os(what) => write!(f, "os bridge error: {what}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Flow(e) => Some(e),
            VmError::LabelChange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for VmError {
    fn from(e: FlowError) -> Self {
        VmError::Flow(e)
    }
}

impl From<LabelChangeError> for VmError {
    fn from(e: LabelChangeError) -> Self {
        VmError::LabelChange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = VmError::BarrierContextMismatch { function: "foo".into() };
        assert!(e.to_string().contains("foo"));
        let e = VmError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>() {}
        takes_err::<VmError>();
    }
}
