//! Program representation and a builder for assembling MiniVM programs.
//!
//! Programs are produced by an *untrusted* frontend (the paper's
//! `javac`): the VM re-verifies every program before execution
//! ([`crate::verify`]), so nothing here is trusted.

use crate::bytecode::{
    FuncId, Instr, PairSpec, PairSpecId, RegionSpec, RegionSpecId, StaticId, StrId,
    TagIdx,
};
use crate::error::{VmError, VmResult};
use crate::heap::ClassId;
use laminar_difc::CapKind;

/// A class: a name and a number of fields.
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name (diagnostics only).
    pub name: String,
    /// Number of instance fields.
    pub nfields: u16,
}

/// A static variable: name plus optional labels (labeled statics are the
/// §5.1 "production implementation could support labeling statics"
/// extension; unlabeled statics behave like the paper's prototype).
#[derive(Clone, Debug)]
pub struct StaticDecl {
    /// Variable name (diagnostics only).
    pub name: String,
    /// Labels, if the static lives in the labeled space.
    pub labels: Option<PairSpecId>,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (diagnostics only).
    pub name: String,
    /// Number of parameters (stored in the first local slots).
    pub params: u16,
    /// Total local slots (≥ `params`).
    pub locals: u16,
    /// Does the function return a value?
    pub returns: bool,
    /// Is this a security-region body? Region bodies are entered only
    /// via `CallSecure` and obey the §5.1 restrictions (checked by the
    /// verifier): no return value, parameters only dereferenced.
    pub region: bool,
    /// The bytecode.
    pub body: Vec<Instr>,
}

/// A complete MiniVM program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Class table.
    pub classes: Vec<Class>,
    /// Function table.
    pub functions: Vec<Function>,
    /// Static-variable declarations.
    pub statics: Vec<StaticDecl>,
    /// Label-pair literals.
    pub pair_specs: Vec<PairSpec>,
    /// Security-region specifications.
    pub region_specs: Vec<RegionSpec>,
    /// Interned strings (OS paths).
    pub strings: Vec<String>,
    /// Number of distinct tag indices the program references; the VM
    /// must be constructed with at least this many runtime tags.
    pub tags_used: u16,
}

impl Program {
    /// Looks up a function id by name (test convenience).
    #[must_use]
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }
}

/// Assembles a [`Program`].
///
/// # Examples
///
/// ```
/// use laminar_vm::{ProgramBuilder, Value, Vm, BarrierMode};
///
/// # fn main() -> Result<(), laminar_vm::VmError> {
/// let mut pb = ProgramBuilder::new();
/// let f = pb.declare_func("double", 1, true);
/// pb.define_func(f, 1, |b| {
///     b.load(0).push_int(2).mul().ret();
/// });
/// let program = pb.finish()?;
/// let mut vm = Vm::new(program, vec![], BarrierMode::Dynamic);
/// let out = vm.call_by_name("double", &[Value::Int(21)])?;
/// assert_eq!(out, Some(Value::Int(42)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    defined: Vec<bool>,
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds a class with `nfields` instance fields.
    pub fn add_class(&mut self, name: &str, nfields: u16) -> ClassId {
        self.program.classes.push(Class { name: name.to_string(), nfields });
        ClassId(self.program.classes.len() as u32 - 1)
    }

    /// Adds an unlabeled static variable.
    pub fn add_static(&mut self, name: &str) -> StaticId {
        self.program.statics.push(StaticDecl { name: name.to_string(), labels: None });
        StaticId(self.program.statics.len() as u32 - 1)
    }

    /// Adds a *labeled* static variable (accessible only inside security
    /// regions whose labels permit the flow).
    pub fn add_static_labeled(&mut self, name: &str, labels: PairSpecId) -> StaticId {
        self.program
            .statics
            .push(StaticDecl { name: name.to_string(), labels: Some(labels) });
        StaticId(self.program.statics.len() as u32 - 1)
    }

    /// Interns a string constant (an OS path).
    pub fn add_string(&mut self, s: &str) -> StrId {
        self.program.strings.push(s.to_string());
        StrId(self.program.strings.len() as u32 - 1)
    }

    /// Adds a `{S(..), I(..)}` literal over tag indices.
    pub fn add_pair_spec(
        &mut self,
        secrecy: &[TagIdx],
        integrity: &[TagIdx],
    ) -> PairSpecId {
        for &t in secrecy.iter().chain(integrity) {
            self.program.tags_used = self.program.tags_used.max(t + 1);
        }
        self.program
            .pair_specs
            .push(PairSpec { secrecy: secrecy.to_vec(), integrity: integrity.to_vec() });
        PairSpecId(self.program.pair_specs.len() as u32 - 1)
    }

    /// Adds a security-region specification.
    pub fn add_region_spec(
        &mut self,
        pair: PairSpecId,
        caps: &[(TagIdx, CapKind)],
        catch: Option<FuncId>,
    ) -> RegionSpecId {
        for &(t, _) in caps {
            self.program.tags_used = self.program.tags_used.max(t + 1);
        }
        self.program.region_specs.push(RegionSpec { pair, caps: caps.to_vec(), catch });
        RegionSpecId(self.program.region_specs.len() as u32 - 1)
    }

    /// Declares a function signature, returning its id so bodies can
    /// reference it (mutual recursion, regions referencing catch blocks).
    pub fn declare_func(&mut self, name: &str, params: u16, returns: bool) -> FuncId {
        self.program.functions.push(Function {
            name: name.to_string(),
            params,
            locals: params,
            returns,
            region: false,
            body: Vec::new(),
        });
        self.defined.push(false);
        FuncId(self.program.functions.len() as u32 - 1)
    }

    /// Declares a security-region body (void, entered via `CallSecure`).
    pub fn declare_region(&mut self, name: &str, params: u16) -> FuncId {
        let id = self.declare_func(name, params, false);
        self.program.functions[id.0 as usize].region = true;
        id
    }

    /// Defines a previously declared function's body. `locals` is the
    /// total local-slot count (parameters occupy the first slots).
    ///
    /// # Panics
    /// Panics if the function is already defined or `locals < params`.
    pub fn define_func<F: FnOnce(&mut FunctionBuilder)>(
        &mut self,
        id: FuncId,
        locals: u16,
        build: F,
    ) {
        let f = &self.program.functions[id.0 as usize];
        assert!(!self.defined[id.0 as usize], "function {} defined twice", f.name);
        assert!(locals >= f.params, "locals must include parameter slots");
        let mut fb = FunctionBuilder::new();
        build(&mut fb);
        let body = fb.finish();
        let f = &mut self.program.functions[id.0 as usize];
        f.locals = locals;
        f.body = body;
        self.defined[id.0 as usize] = true;
    }

    /// Shorthand: declare + define an ordinary function.
    pub fn func<F: FnOnce(&mut FunctionBuilder)>(
        &mut self,
        name: &str,
        params: u16,
        returns: bool,
        locals: u16,
        build: F,
    ) -> FuncId {
        let id = self.declare_func(name, params, returns);
        self.define_func(id, locals, build);
        id
    }

    /// Shorthand: declare + define a security-region body.
    pub fn region<F: FnOnce(&mut FunctionBuilder)>(
        &mut self,
        name: &str,
        params: u16,
        locals: u16,
        build: F,
    ) -> FuncId {
        let id = self.declare_region(name, params);
        self.define_func(id, locals, build);
        id
    }

    /// Test-only: force the region flag on a declared function, to
    /// exercise verifier rejections that `declare_region` prevents.
    #[cfg(test)]
    pub(crate) fn program_mark_region_for_test(&mut self, id: FuncId) {
        self.program.functions[id.0 as usize].region = true;
    }

    /// Verifies and returns the program.
    ///
    /// # Errors
    /// [`VmError::Verify`] if static checks fail (§5.1 region rules,
    /// malformed ids, inconsistent stack depths).
    pub fn finish(self) -> VmResult<Program> {
        for (i, d) in self.defined.iter().enumerate() {
            if !d && self.program.functions[i].body.is_empty() {
                return Err(VmError::Verify(format!(
                    "function {} declared but never defined",
                    self.program.functions[i].name
                )));
            }
        }
        crate::verify::verify(&self.program)?;
        Ok(self.program)
    }
}

/// A forward-referencing label inside a function body.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CodeLabel(usize);

/// Emits the body of a single function, with label patching.
#[derive(Debug, Default)]
pub struct FunctionBuilder {
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    // (instruction index, label) pairs to patch at finish.
    fixups: Vec<(usize, CodeLabel)>,
}

impl FunctionBuilder {
    fn new() -> Self {
        FunctionBuilder::default()
    }

    /// Raw emit.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    /// Creates a label to be bound later.
    pub fn new_label(&mut self) -> CodeLabel {
        self.labels.push(None);
        CodeLabel(self.labels.len() - 1)
    }

    /// Binds a label to the next instruction.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, l: CodeLabel) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len() as u32);
        self
    }

    fn emit_branch(&mut self, make: fn(u32) -> Instr, l: CodeLabel) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.code.push(make(u32::MAX));
        self
    }

    /// `Jump` to a label.
    pub fn jump(&mut self, l: CodeLabel) -> &mut Self {
        self.emit_branch(Instr::Jump, l)
    }

    /// `JumpIfTrue` to a label.
    pub fn jump_if_true(&mut self, l: CodeLabel) -> &mut Self {
        self.emit_branch(Instr::JumpIfTrue, l)
    }

    /// `JumpIfFalse` to a label.
    pub fn jump_if_false(&mut self, l: CodeLabel) -> &mut Self {
        self.emit_branch(Instr::JumpIfFalse, l)
    }

    fn finish(mut self) -> Vec<Instr> {
        for (at, l) in self.fixups {
            // An unbound label leaves the u32::MAX placeholder in place;
            // verification rejects the out-of-range jump with a typed
            // error instead of unwinding here.
            let Some(target) = self.labels.get(l.0).copied().flatten() else {
                continue;
            };
            self.code[at] = match self.code[at] {
                Instr::Jump(_) => Instr::Jump(target),
                Instr::JumpIfTrue(_) => Instr::JumpIfTrue(target),
                Instr::JumpIfFalse(_) => Instr::JumpIfFalse(target),
                other => other,
            };
        }
        if !matches!(
            self.code.last(),
            Some(Instr::Return | Instr::Jump(_) | Instr::Throw)
        ) {
            self.code.push(Instr::Return);
        }
        self.code
    }
}

// Fluent emit helpers: one tiny method per opcode keeps workload and test
// code legible.
macro_rules! emitters {
    ($($(#[$doc:meta])* $fn_name:ident ( $($arg:ident : $ty:ty),* ) => $instr:expr;)*) => {
        impl FunctionBuilder {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self, $($arg: $ty),*) -> &mut Self {
                    self.emit($instr)
                }
            )*
        }
    };
}

emitters! {
    /// Push an integer constant.
    push_int(v: i64) => Instr::PushInt(v);
    /// Push a boolean constant.
    push_bool(v: bool) => Instr::PushBool(v);
    /// Push null.
    push_null() => Instr::PushNull;
    /// Discard top of stack.
    pop() => Instr::Pop;
    /// Duplicate top of stack.
    dup() => Instr::Dup;
    /// Push a local.
    load(n: u16) => Instr::Load(n);
    /// Pop into a local.
    store(n: u16) => Instr::Store(n);
    /// Read an object field.
    get_field(n: u16) => Instr::GetField(n);
    /// Write an object field.
    put_field(n: u16) => Instr::PutField(n);
    /// Allocate an object.
    new_object(c: ClassId) => Instr::NewObject(c);
    /// Allocate an object with explicit labels.
    new_object_labeled(c: ClassId, p: PairSpecId) => Instr::NewObjectLabeled(c, p);
    /// Allocate an array (length on stack).
    new_array() => Instr::NewArray;
    /// Allocate a labeled array (length on stack).
    new_array_labeled(p: PairSpecId) => Instr::NewArrayLabeled(p);
    /// Array element read.
    aload() => Instr::ALoad;
    /// Array element write.
    astore() => Instr::AStore;
    /// Array length.
    array_len() => Instr::ArrayLen;
    /// Read a static.
    get_static(s: StaticId) => Instr::GetStatic(s);
    /// Write a static.
    put_static(s: StaticId) => Instr::PutStatic(s);
    /// Integer add.
    add() => Instr::Add;
    /// Integer subtract.
    sub() => Instr::Sub;
    /// Integer multiply.
    mul() => Instr::Mul;
    /// Integer divide.
    div() => Instr::Div;
    /// Integer remainder.
    modulo() => Instr::Mod;
    /// Integer negate.
    neg() => Instr::Neg;
    /// Boolean not.
    not() => Instr::Not;
    /// Boolean and.
    and() => Instr::And;
    /// Boolean or.
    or() => Instr::Or;
    /// Equality comparison.
    cmp_eq() => Instr::CmpEq;
    /// Less-than comparison.
    cmp_lt() => Instr::CmpLt;
    /// Less-or-equal comparison.
    cmp_le() => Instr::CmpLe;
    /// Call a function.
    call(f: FuncId) => Instr::Call(f);
    /// Enter a security region.
    call_secure(f: FuncId, r: RegionSpecId) => Instr::CallSecure(f, r);
    /// Return from the function.
    ret() => Instr::Return;
    /// Copy-and-relabel the object on top of the stack.
    copy_and_label(p: PairSpecId) => Instr::CopyAndLabel(p);
    /// Throw an application exception (code on stack).
    throw() => Instr::Throw;
    /// Write a byte (on stack) to an OS file.
    os_write_byte(s: StrId) => Instr::OsWriteByte(s);
    /// Read a byte from an OS file.
    os_read_byte(s: StrId) => Instr::OsReadByte(s);
    /// No-op.
    nop() => Instr::Nop;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_straightline_code() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, true, 0, |b| {
            b.push_int(1).push_int(2).add().ret();
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.functions[0].body.len(), 4);
    }

    #[test]
    fn labels_patch_forward_references() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 1, true, 1, |b| {
            let els = b.new_label();
            let done = b.new_label();
            b.load(0).push_int(0).cmp_lt();
            b.jump_if_true(els);
            b.push_int(1).jump(done);
            b.bind(els);
            b.push_int(-1);
            b.bind(done);
            b.ret();
        });
        let p = pb.finish().unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[3], Instr::JumpIfTrue(t) if t == 6));
        assert!(matches!(body[5], Instr::Jump(t) if t == 7));
    }

    #[test]
    fn implicit_return_appended() {
        let mut pb = ProgramBuilder::new();
        pb.func("f", 0, false, 0, |b| {
            b.push_int(1).pop();
        });
        let p = pb.finish().unwrap();
        assert_eq!(*p.functions[0].body.last().unwrap(), Instr::Return);
    }

    #[test]
    fn undefined_function_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.declare_func("ghost", 0, false);
        assert!(matches!(pb.finish(), Err(VmError::Verify(_))));
    }

    #[test]
    fn pair_spec_tracks_tag_count() {
        let mut pb = ProgramBuilder::new();
        pb.add_pair_spec(&[0, 3], &[1]);
        pb.func("f", 0, false, 0, |b| {
            b.nop();
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.tags_used, 4);
    }

    #[test]
    fn func_by_name() {
        let mut pb = ProgramBuilder::new();
        pb.func("alpha", 0, false, 0, |b| {
            b.nop();
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.func_by_name("alpha"), Some(FuncId(0)));
        assert_eq!(p.func_by_name("beta"), None);
    }
}
