//! Execution and compilation statistics.
//!
//! The Figure 8 and Figure 9 benchmarks decompose Laminar's overhead into
//! barrier work, allocation work and region entry/exit; these counters
//! are how the harness attributes cost.
//!
//! [`regions_aborted`] is the process-global fail-closed counter: it
//! counts security regions whose labeled writes were rolled back because
//! the region terminated abnormally (an uncaught suppressible exception,
//! or a non-suppressible fault unwinding through the region boundary).
//! It mirrors `laminar_os::syscalls_rolled_back`.

use std::sync::atomic::{AtomicU64, Ordering};

static REGIONS_ABORTED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_region_aborted() {
    REGIONS_ABORTED.fetch_add(1, Ordering::Relaxed);
}

/// Number of security regions aborted (labeled writes rolled back) since
/// process start or the last [`reset_regions_aborted`].
#[must_use]
pub fn regions_aborted() -> u64 {
    REGIONS_ABORTED.load(Ordering::Relaxed)
}

/// Resets the global region-abort counter to zero.
pub fn reset_regions_aborted() {
    REGIONS_ABORTED.store(0, Ordering::Relaxed);
}

/// Counters accumulated by a [`crate::Vm`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Read barriers executed.
    pub read_barriers: u64,
    /// Write barriers executed.
    pub write_barriers: u64,
    /// Static-variable barriers executed.
    pub static_barriers: u64,
    /// Allocation barriers executed (labeled-space allocations).
    pub alloc_barriers: u64,
    /// Dynamic barriers that had to test the region context at run time.
    pub dynamic_dispatches: u64,
    /// Barriers removed at compile time by redundancy elimination.
    pub barriers_eliminated: u64,
    /// Security regions entered.
    pub regions_entered: u64,
    /// Exceptions suppressed at a region boundary (§4.3.3).
    pub exceptions_suppressed: u64,
    /// Regions aborted: labeled writes rolled back to the entry snapshot
    /// because the region terminated without a successful catch.
    pub regions_aborted: u64,
    /// Functions compiled.
    pub functions_compiled: u64,
    /// Abstract compile cost (instructions + inlined barrier bloat).
    pub compile_cost: u64,
    /// `copyAndLabel` operations performed.
    pub copy_and_label: u64,
    /// Lazy VM→OS label synchronisations actually performed.
    pub os_label_syncs: u64,
    /// OS label syncs *skipped* because the region made no syscall.
    pub os_label_syncs_elided: u64,
    /// Instructions interpreted.
    pub instructions: u64,
}

impl VmStats {
    /// Total barriers executed at run time.
    #[must_use]
    pub fn total_barriers(&self) -> u64 {
        self.read_barriers
            + self.write_barriers
            + self.static_barriers
            + self.alloc_barriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = VmStats {
            read_barriers: 2,
            write_barriers: 3,
            static_barriers: 4,
            alloc_barriers: 1,
            ..VmStats::default()
        };
        assert_eq!(s.total_barriers(), 10);
    }
}
