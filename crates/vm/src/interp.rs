//! The MiniVM interpreter: security regions, barriers, exceptions.
//!
//! One [`Vm`] instance executes one VM thread (the Laminar principal).
//! Multithreaded programs run several `Vm`s, each bound to its own
//! kernel task via an [`crate::OsBridge`]; cross-thread sharing of
//! labeled data happens through the OS (pipes, files) or through the
//! `laminar` runtime crate's `Labeled<T>` cells, keeping this
//! interpreter single-threaded and lock-free like a JIT'd mutator.

use crate::bridge::OsBridge;
use crate::bytecode::{FuncId, Instr, PairSpecId, RegionSpecId};
use crate::compile::{Barrier, BarrierMode, CInstr, CompiledFunction, Ctx};
use crate::error::{VmError, VmResult};
use crate::heap::{ClassId, Heap, ObjKind};
use crate::program::Program;
use crate::stats::VmStats;
use crate::value::{ObjRef, Value};
use laminar_difc::{CapKind, CapSet, Capability, Label, SecPair, Tag};

use std::sync::Arc;

/// One entry of the thread's region stack.
#[derive(Debug)]
struct RegionFrame {
    saved_labels: SecPair,
    saved_caps: CapSet,
    /// Length of the region undo log at entry: on abort, everything above
    /// this mark is rolled back (secure termination, §4.3.3).
    undo_mark: usize,
}

/// One journaled labeled write, undoable on region abort.
#[derive(Debug)]
enum RegionUndo {
    /// Old value of field/element `1` of labeled object `0`.
    Field(ObjRef, usize, Value),
    /// Old value of labeled static `0`.
    Static(usize, Value),
}

/// The Laminar virtual machine (one thread).
///
/// See the crate docs for a complete example.
#[derive(Debug)]
pub struct Vm {
    program: Program,
    tags: Vec<Tag>,
    heap: Heap,
    statics: Vec<Value>,
    /// Resolved labels of each static (unlabeled pair when none).
    static_labels: Vec<SecPair>,
    mode: BarrierMode,
    optimize: bool,
    /// Compile cache, indexed `[func][ctx]` (ctx: 0 = NoBarriers,
    /// 1 = InRegion, 2 = OutRegion, 3 = Dynamic). Vector-indexed so a
    /// warm call is one load — the paper's warm JIT dispatch.
    compiled: Vec<[Option<Arc<CompiledFunction>>; 4]>,
    /// `Static` mode: the context each function was first compiled for.
    static_choice: Vec<Option<Ctx>>,
    stats: VmStats,
    labels: SecPair,
    caps: CapSet,
    regions: Vec<RegionFrame>,
    /// Undo log for labeled writes inside security regions. An abnormal
    /// region exit rolls the log back to the frame's mark; the outermost
    /// normal exit commits (clears) it.
    region_undo: Vec<RegionUndo>,
    bridge: Option<Box<dyn OsBridge>>,
    /// Labels currently pushed to the kernel task (`None` = unlabeled).
    kernel_labels: Option<SecPair>,
}

impl Vm {
    /// Creates a VM for `program` with the given runtime tag table and
    /// barrier strategy. Redundant-barrier elimination is on by default.
    ///
    /// # Panics
    ///
    /// Panics if the program references more tag indices than `tags`
    /// provides (`program.tags_used`).
    #[must_use]
    pub fn new(program: Program, tags: Vec<Tag>, mode: BarrierMode) -> Self {
        assert!(
            tags.len() >= program.tags_used as usize,
            "program references {} tags but only {} were supplied",
            program.tags_used,
            tags.len()
        );
        let statics = vec![Value::Null; program.statics.len()];
        let static_labels: Vec<SecPair> = program
            .statics
            .iter()
            .map(|st| match st.labels {
                Some(spec) => {
                    let ps = &program.pair_specs[spec.0 as usize];
                    SecPair::new(
                        Label::from_tags(ps.secrecy.iter().map(|&i| tags[i as usize])),
                        Label::from_tags(ps.integrity.iter().map(|&i| tags[i as usize])),
                    )
                }
                None => SecPair::unlabeled(),
            })
            .collect();
        let nfuncs = program.functions.len();
        Vm {
            program,
            tags,
            heap: Heap::new(),
            statics,
            static_labels,
            mode,
            optimize: true,
            compiled: vec![[None, None, None, None]; nfuncs],
            static_choice: vec![None; nfuncs],
            stats: VmStats::default(),
            labels: SecPair::unlabeled(),
            caps: CapSet::new(),
            regions: Vec::new(),
            region_undo: Vec::new(),
            bridge: None,
            kernel_labels: None,
        }
    }

    /// Sets the thread's capability set (normally granted at login or
    /// inherited from the spawning thread).
    pub fn set_thread_caps(&mut self, caps: CapSet) {
        self.caps = caps;
    }

    /// Toggles redundant-barrier elimination (ablation knob; recompiles
    /// nothing already compiled).
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Attaches the OS bridge for syscall instructions and label sync.
    pub fn set_bridge(&mut self, bridge: Box<dyn OsBridge>) {
        self.bridge = Some(bridge);
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Resets statistics (not the compile caches).
    pub fn reset_stats(&mut self) {
        self.stats = VmStats::default();
    }

    /// The thread's current labels (empty outside security regions).
    #[must_use]
    pub fn current_labels(&self) -> &SecPair {
        &self.labels
    }

    /// The heap (for embedder inspection).
    #[must_use]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    // --- trusted embedder (host) heap access -----------------------------

    /// Allocates an object from the host, optionally into the labeled
    /// space. Host access is part of the TCB and is not barrier-checked.
    ///
    /// # Errors
    /// [`VmError::Malformed`] on an unknown class.
    pub fn host_alloc_object(
        &mut self,
        class: ClassId,
        labels: Option<SecPair>,
    ) -> VmResult<ObjRef> {
        let nfields = self
            .program
            .classes
            .get(class.0 as usize)
            .ok_or(VmError::Malformed("unknown class"))?
            .nfields as usize;
        Ok(self.heap.alloc_object(class, nfields, labels))
    }

    /// Allocates an array from the host.
    pub fn host_alloc_array(&mut self, len: usize, labels: Option<SecPair>) -> ObjRef {
        self.heap.alloc_array(len, labels)
    }

    /// Reads a field from the host (TCB; no barrier).
    ///
    /// # Errors
    /// [`VmError::Malformed`] / bounds errors.
    pub fn host_get_field(&self, obj: ObjRef, field: usize) -> VmResult<Value> {
        match &self.heap.get(obj)?.kind {
            ObjKind::Object { fields, .. } => fields
                .get(field)
                .copied()
                .ok_or(VmError::Malformed("field index out of range")),
            ObjKind::Array { elems } => elems
                .get(field)
                .copied()
                .ok_or(VmError::Malformed("element index out of range")),
        }
    }

    /// Writes a field from the host (TCB; no barrier).
    ///
    /// # Errors
    /// [`VmError::Malformed`] / bounds errors.
    pub fn host_put_field(
        &mut self,
        obj: ObjRef,
        field: usize,
        value: Value,
    ) -> VmResult<()> {
        match &mut self.heap.get_mut(obj)?.kind {
            ObjKind::Object { fields, .. } => {
                *fields
                    .get_mut(field)
                    .ok_or(VmError::Malformed("field index out of range"))? = value;
            }
            ObjKind::Array { elems } => {
                *elems
                    .get_mut(field)
                    .ok_or(VmError::Malformed("element index out of range"))? = value;
            }
        }
        Ok(())
    }

    /// Builds a label pair from a pair-spec id (resolving tag indices
    /// through the runtime tag table).
    ///
    /// # Errors
    /// [`VmError::Malformed`] on a bad spec id.
    pub fn pair_from_spec(&self, id: PairSpecId) -> VmResult<SecPair> {
        let spec = self
            .program
            .pair_specs
            .get(id.0 as usize)
            .ok_or(VmError::Malformed("unknown pair spec"))?;
        let s = Label::from_tags(spec.secrecy.iter().map(|&i| self.tags[i as usize]));
        let i = Label::from_tags(spec.integrity.iter().map(|&i| self.tags[i as usize]));
        Ok(SecPair::new(s, i))
    }

    // --- entry points -----------------------------------------------------

    /// Calls a non-region function from the host (outside any region).
    ///
    /// # Errors
    ///
    /// Any [`VmError`] the program raises outside a security region
    /// (in-region exceptions are handled by catch blocks and suppressed).
    pub fn call(&mut self, f: FuncId, args: &[Value]) -> VmResult<Option<Value>> {
        let func = self
            .program
            .functions
            .get(f.0 as usize)
            .ok_or(VmError::Malformed("unknown function"))?;
        if func.region {
            return Err(VmError::Malformed(
                "security regions are entered via CallSecure, not host calls",
            ));
        }
        if args.len() != func.params as usize {
            return Err(VmError::Malformed("wrong argument count"));
        }
        self.exec(f, args.to_vec())
    }

    /// [`Self::call`] by function name.
    ///
    /// # Errors
    /// [`VmError::Malformed`] if no such function; else as [`Self::call`].
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: &[Value],
    ) -> VmResult<Option<Value>> {
        let f = self
            .program
            .func_by_name(name)
            .ok_or(VmError::Malformed("unknown function name"))?;
        self.call(f, args)
    }

    // --- compilation ------------------------------------------------------

    fn in_region(&self) -> bool {
        !self.regions.is_empty()
    }

    fn ctx_slot(ctx: Ctx) -> usize {
        match ctx {
            Ctx::NoBarriers => 0,
            Ctx::InRegion => 1,
            Ctx::OutRegion => 2,
            Ctx::Dynamic => 3,
        }
    }

    fn compiled_for_call(&mut self, f: FuncId) -> VmResult<Arc<CompiledFunction>> {
        let wanted = match self.mode {
            BarrierMode::None => Ctx::NoBarriers,
            BarrierMode::Dynamic => Ctx::Dynamic,
            // Static and Cloning both bake the context in; Cloning keeps
            // one compiled clone per context instead of failing on a
            // dual-context method (§5.1's production design).
            BarrierMode::Static | BarrierMode::Cloning => {
                if self.in_region() {
                    Ctx::InRegion
                } else {
                    Ctx::OutRegion
                }
            }
        };
        if self.mode == BarrierMode::Static {
            match self.static_choice[f.0 as usize] {
                Some(chosen) if chosen != wanted => {
                    // The paper's static-barrier failure mode: the method
                    // was compiled for the other context (§5.1). A real
                    // mis-barriered run would be unsound; we fail loudly.
                    return Err(VmError::BarrierContextMismatch {
                        function: self.program.functions[f.0 as usize].name.clone(),
                    });
                }
                Some(_) => {}
                None => self.static_choice[f.0 as usize] = Some(wanted),
            }
        }
        let slot = Self::ctx_slot(wanted);
        if let Some(c) = &self.compiled[f.0 as usize][slot] {
            return Ok(Arc::clone(c));
        }
        let c =
            Arc::new(crate::compile::compile(&self.program, f.0, wanted, self.optimize)?);
        self.stats.functions_compiled += 1;
        self.stats.compile_cost += c.cost;
        self.stats.barriers_eliminated += c.eliminated;
        self.compiled[f.0 as usize][slot] = Some(Arc::clone(&c));
        Ok(c)
    }

    // --- regions ----------------------------------------------------------

    fn enter_region(&mut self, spec_id: RegionSpecId) -> VmResult<()> {
        let r = self.enter_region_checked(spec_id);
        if laminar_obs::enabled() {
            laminar_obs::emit(laminar_obs::Event::RegionEnter {
                layer: laminar_obs::Layer::Vm,
                verdict: if r.is_ok() {
                    laminar_obs::Verdict::Allow
                } else {
                    laminar_obs::Verdict::Deny
                },
            });
        }
        r
    }

    fn enter_region_checked(&mut self, spec_id: RegionSpecId) -> VmResult<()> {
        let spec = self
            .program
            .region_specs
            .get(spec_id.0 as usize)
            .ok_or(VmError::Malformed("unknown region spec"))?
            .clone();
        let pair = self.pair_from_spec(spec.pair)?;
        let mut rcaps = CapSet::new();
        for &(ti, kind) in &spec.caps {
            let tag = self.tags[ti as usize];
            rcaps.grant(match kind {
                CapKind::Plus => Capability::plus(tag),
                CapKind::Minus => Capability::minus(tag),
            });
        }
        // Rule (1) of §4.3.2: SR ⊆ (Cp+ ∪ SP) and IR ⊆ (Cp+ ∪ IP).
        for t in pair.secrecy().iter() {
            if !self.caps.can_add(t) && !self.labels.secrecy().contains(t) {
                return Err(VmError::RegionEntry(
                    "thread lacks the capability or label for a region secrecy tag",
                ));
            }
        }
        for t in pair.integrity().iter() {
            if !self.caps.can_add(t) && !self.labels.integrity().contains(t) {
                return Err(VmError::RegionEntry(
                    "thread lacks the capability or label for a region integrity tag",
                ));
            }
        }
        // Rule (2): CR ⊆ CP.
        if !rcaps.is_subset_of(&self.caps) {
            return Err(VmError::RegionEntry(
                "region capabilities exceed the entering thread's",
            ));
        }
        self.regions.push(RegionFrame {
            saved_labels: std::mem::replace(&mut self.labels, pair),
            saved_caps: std::mem::replace(&mut self.caps, rcaps),
            undo_mark: self.region_undo.len(),
        });
        self.stats.regions_entered += 1;
        Ok(())
    }

    /// Rolls the undo log back to the current (innermost) region's entry
    /// mark, restoring every labeled field, element and static the region
    /// wrote — the heap half of secure termination (§4.3.3): an aborted
    /// region must leave labeled state as it found it.
    fn abort_region_writes(&mut self) {
        let Some(frame) = self.regions.last() else { return };
        let mark = frame.undo_mark;
        while self.region_undo.len() > mark {
            match self.region_undo.pop() {
                Some(RegionUndo::Field(obj, idx, old)) => {
                    // The object existed when the write was journaled; a
                    // dangling entry here would itself be an invariant
                    // break, so restore best-effort without unwinding.
                    if let Ok(ho) = self.heap.get_mut(obj) {
                        let slot = match &mut ho.kind {
                            ObjKind::Object { fields, .. } => fields.get_mut(idx),
                            ObjKind::Array { elems } => elems.get_mut(idx),
                        };
                        if let Some(slot) = slot {
                            *slot = old;
                        }
                    }
                }
                Some(RegionUndo::Static(idx, old)) => {
                    if let Some(slot) = self.statics.get_mut(idx) {
                        *slot = old;
                    }
                }
                None => break,
            }
        }
        self.stats.regions_aborted += 1;
        crate::stats::note_region_aborted();
        laminar_obs::emit(laminar_obs::Event::RegionAbort {
            layer: laminar_obs::Layer::Vm,
        });
    }

    fn exit_region(&mut self) -> VmResult<()> {
        let frame = self.regions.pop().ok_or(VmError::RegionUnderflow)?;
        if self.regions.is_empty() {
            // Outermost exit: the surviving writes are committed; the
            // journal has nothing left to guard.
            self.region_undo.clear();
        }
        // If the kernel task carries this region's labels, restore it to
        // the unlabeled state through the trusted tcb path (§4.4); the
        // next syscall in an outer region will re-sync lazily.
        if self.kernel_labels.as_ref() == Some(&self.labels) {
            if let Some(bridge) = self.bridge.as_mut() {
                bridge.restore_labels(&SecPair::unlabeled()).map_err(VmError::Os)?;
            }
            self.kernel_labels = None;
        } else if !self.labels.is_unlabeled() {
            // Labeled region that never made a syscall: the lazy
            // optimization skipped two syscalls.
            self.stats.os_label_syncs_elided += 1;
        }
        self.labels = frame.saved_labels;
        self.caps = frame.saved_caps;
        Ok(())
    }

    fn ensure_os_sync(&mut self) -> VmResult<()> {
        if self.kernel_labels.as_ref() == Some(&self.labels)
            || (self.kernel_labels.is_none() && self.labels.is_unlabeled())
        {
            return Ok(());
        }
        let bridge =
            self.bridge.as_mut().ok_or(VmError::Os("no OS bridge attached".into()))?;
        if self.labels.is_unlabeled() {
            bridge.restore_labels(&SecPair::unlabeled()).map_err(VmError::Os)?;
            self.kernel_labels = None;
        } else {
            bridge.sync_labels(&self.labels).map_err(VmError::Os)?;
            self.kernel_labels = Some(self.labels.clone());
            self.stats.os_label_syncs += 1;
        }
        Ok(())
    }

    /// Is this error suppressed at a region boundary? Configuration and
    /// program-form errors propagate; everything a program can raise at
    /// run time is suppressed (§4.3.3: "The VM suppresses all exceptions
    /// inside a security region that are not explicitly caught").
    fn suppressible(e: &VmError) -> bool {
        !matches!(
            e,
            VmError::Malformed(_)
                | VmError::Verify(_)
                | VmError::BarrierContextMismatch { .. }
                | VmError::RegionUnderflow
        )
    }

    // --- barriers ---------------------------------------------------------

    fn object_pair(&self, obj: ObjRef) -> VmResult<SecPair> {
        Ok(self.heap.labels_of(obj)?.cloned().unwrap_or_else(SecPair::unlabeled))
    }

    fn barrier_read_in(&mut self, obj: ObjRef) -> VmResult<()> {
        self.stats.read_barriers += 1;
        let pair = self.object_pair(obj)?;
        crate::conformance::barrier_read_check(&pair, &self.labels)
    }

    fn barrier_write_in(&mut self, obj: ObjRef) -> VmResult<()> {
        self.stats.write_barriers += 1;
        let pair = self.object_pair(obj)?;
        crate::conformance::barrier_write_check(&self.labels, &pair)
    }

    fn barrier_out(&mut self, obj: ObjRef, is_read: bool) -> VmResult<()> {
        if is_read {
            self.stats.read_barriers += 1;
        } else {
            self.stats.write_barriers += 1;
        }
        if self.heap.labels_of(obj)?.is_some() {
            return Err(VmError::LabeledAccessOutsideRegion);
        }
        Ok(())
    }

    fn run_access_barrier(
        &mut self,
        b: Barrier,
        instr: &Instr,
        stack: &[Value],
    ) -> VmResult<()> {
        let depth = match instr {
            Instr::GetField(_) | Instr::ArrayLen => 0,
            Instr::PutField(_) | Instr::ALoad => 1,
            Instr::AStore => 2,
            _ => 0,
        };
        let obj_at = |d: usize| -> VmResult<ObjRef> {
            stack
                .get(stack.len().wrapping_sub(1 + d))
                .copied()
                .ok_or(VmError::Malformed("barrier operand missing"))?
                .as_ref()
        };
        match b {
            Barrier::ReadIn => {
                let o = obj_at(depth)?;
                self.barrier_read_in(o)
            }
            Barrier::WriteIn => {
                let o = obj_at(depth)?;
                self.barrier_write_in(o)
            }
            Barrier::ReadOut => {
                let o = obj_at(depth)?;
                self.barrier_out(o, true)
            }
            Barrier::WriteOut => {
                let o = obj_at(depth)?;
                self.barrier_out(o, false)
            }
            Barrier::ReadDyn => {
                self.stats.dynamic_dispatches += 1;
                let o = obj_at(depth)?;
                if self.in_region() {
                    self.barrier_read_in(o)
                } else {
                    self.barrier_out(o, true)
                }
            }
            Barrier::WriteDyn => {
                self.stats.dynamic_dispatches += 1;
                let o = obj_at(depth)?;
                if self.in_region() {
                    self.barrier_write_in(o)
                } else {
                    self.barrier_out(o, false)
                }
            }
            Barrier::StaticReadIn => {
                self.stats.static_barriers += 1;
                let pair = self.static_pair_of(instr)?;
                // For an unlabeled static this is exactly the prototype's
                // rule: an integrity region may not read it (I_thr ⊄ {}).
                pair.can_flow_to_cached(&self.labels).map_err(VmError::from)
            }
            Barrier::StaticWriteIn => {
                self.stats.static_barriers += 1;
                let pair = self.static_pair_of(instr)?;
                // Unlabeled static: a secrecy region may not write it.
                self.labels.can_flow_to_cached(&pair).map_err(VmError::from)
            }
            Barrier::StaticReadOut | Barrier::StaticWriteOut => {
                self.stats.static_barriers += 1;
                if !self.static_pair_of(instr)?.is_unlabeled() {
                    return Err(VmError::LabeledAccessOutsideRegion);
                }
                Ok(())
            }
            Barrier::StaticReadDyn => {
                self.stats.dynamic_dispatches += 1;
                if self.in_region() {
                    self.run_access_barrier(Barrier::StaticReadIn, instr, stack)
                } else {
                    self.run_access_barrier(Barrier::StaticReadOut, instr, stack)
                }
            }
            Barrier::StaticWriteDyn => {
                self.stats.dynamic_dispatches += 1;
                if self.in_region() {
                    self.run_access_barrier(Barrier::StaticWriteIn, instr, stack)
                } else {
                    self.run_access_barrier(Barrier::StaticWriteOut, instr, stack)
                }
            }
            // Alloc barriers are folded into the allocation instructions.
            Barrier::AllocIn | Barrier::AllocDyn => Ok(()),
        }
    }

    /// The labels of the static referenced by a Get/PutStatic instruction.
    fn static_pair_of(&self, instr: &Instr) -> VmResult<SecPair> {
        match instr {
            Instr::GetStatic(s) | Instr::PutStatic(s) => self
                .static_labels
                .get(s.0 as usize)
                .cloned()
                .ok_or(VmError::Malformed("unknown static")),
            _ => Err(VmError::Malformed("static barrier on non-static op")),
        }
    }

    /// Labels for a plain in-program allocation under barrier `b`.
    fn alloc_labels(&mut self, b: Option<Barrier>) -> Option<SecPair> {
        let labeled = match b {
            Some(Barrier::AllocIn) => true,
            Some(Barrier::AllocDyn) => {
                self.stats.dynamic_dispatches += 1;
                self.in_region()
            }
            _ => false,
        };
        if labeled && !self.labels.is_unlabeled() {
            self.stats.alloc_barriers += 1;
            Some(self.labels.clone())
        } else {
            None
        }
    }

    /// Labels for an explicitly labeled allocation: must occur inside a
    /// region (except in the unsafe `None` mode where no barrier runs),
    /// and the new labels must be writable by the thread.
    fn alloc_labels_explicit(
        &mut self,
        b: Option<Barrier>,
        spec: PairSpecId,
    ) -> VmResult<Option<SecPair>> {
        let pair = self.pair_from_spec(spec)?;
        match b {
            Some(Barrier::AllocIn) => {}
            Some(Barrier::AllocDyn) => {
                self.stats.dynamic_dispatches += 1;
                if !self.in_region() {
                    return Err(VmError::LabeledAccessOutsideRegion);
                }
            }
            None
                // None occurs in BarrierMode::None (unsafe baseline) or
                // for out-of-region static compilation, where explicitly
                // labeled allocation must be rejected.
                if self.mode != BarrierMode::None => {
                    return Err(VmError::LabeledAccessOutsideRegion);
                }
            _ => {}
        }
        if b.is_some() {
            self.stats.alloc_barriers += 1;
            self.labels.can_flow_to_cached(&pair)?;
        }
        Ok(if pair.is_unlabeled() { None } else { Some(pair) })
    }

    // --- the interpreter loop ----------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, f: FuncId, args: Vec<Value>) -> VmResult<Option<Value>> {
        let compiled = self.compiled_for_call(f)?;
        let func = &self.program.functions[f.0 as usize];
        let (nlocals, returns, params) =
            (func.locals as usize, func.returns, func.params as usize);
        debug_assert_eq!(args.len(), params);

        let mut locals = vec![Value::Null; nlocals];
        locals[..params].copy_from_slice(&args);
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::Malformed("operand stack underflow"))?
            };
        }

        while pc < compiled.code.len() {
            let CInstr { barrier, instr } = compiled.code[pc];
            self.stats.instructions += 1;
            if let Some(b) = barrier {
                if !matches!(b, Barrier::AllocIn | Barrier::AllocDyn) {
                    self.run_access_barrier(b, &instr, &stack)?;
                }
            }
            match instr {
                Instr::PushInt(v) => stack.push(Value::Int(v)),
                Instr::PushBool(v) => stack.push(Value::Bool(v)),
                Instr::PushNull => stack.push(Value::Null),
                Instr::Pop => {
                    pop!();
                }
                Instr::Dup => {
                    let v = *stack.last().ok_or(VmError::Malformed("dup on empty"))?;
                    stack.push(v);
                }
                Instr::Load(l) => stack.push(locals[l as usize]),
                Instr::Store(l) => locals[l as usize] = pop!(),
                Instr::GetField(n) => {
                    let obj = pop!().as_ref()?;
                    match &self.heap.get(obj)?.kind {
                        ObjKind::Object { fields, .. } => {
                            let v = fields
                                .get(n as usize)
                                .copied()
                                .ok_or(VmError::Malformed("field index out of range"))?;
                            stack.push(v);
                        }
                        ObjKind::Array { .. } => {
                            return Err(VmError::TypeError("GetField on array"))
                        }
                    }
                }
                Instr::PutField(n) => {
                    let val = pop!();
                    let obj = pop!().as_ref()?;
                    let journal = self.in_region();
                    let ho = self.heap.get_mut(obj)?;
                    let labeled = ho.labels.is_some();
                    match &mut ho.kind {
                        ObjKind::Object { fields, .. } => {
                            let slot = fields
                                .get_mut(n as usize)
                                .ok_or(VmError::Malformed("field index out of range"))?;
                            if journal && labeled {
                                self.region_undo
                                    .push(RegionUndo::Field(obj, n as usize, *slot));
                            }
                            *slot = val;
                        }
                        ObjKind::Array { .. } => {
                            return Err(VmError::TypeError("PutField on array"))
                        }
                    }
                }
                Instr::NewObject(c) => {
                    let labels = self.alloc_labels(barrier);
                    let nfields = self.program.classes[c.0 as usize].nfields as usize;
                    let r = self.heap.alloc_object(c, nfields, labels);
                    stack.push(Value::Ref(r));
                }
                Instr::NewObjectLabeled(c, spec) => {
                    let labels = self.alloc_labels_explicit(barrier, spec)?;
                    let nfields = self.program.classes[c.0 as usize].nfields as usize;
                    let r = self.heap.alloc_object(c, nfields, labels);
                    stack.push(Value::Ref(r));
                }
                Instr::NewArray => {
                    let len = pop!().as_int()?;
                    if len < 0 {
                        return Err(VmError::Malformed("negative array length"));
                    }
                    let labels = self.alloc_labels(barrier);
                    let r = self.heap.alloc_array(len as usize, labels);
                    stack.push(Value::Ref(r));
                }
                Instr::NewArrayLabeled(spec) => {
                    let len = pop!().as_int()?;
                    if len < 0 {
                        return Err(VmError::Malformed("negative array length"));
                    }
                    let labels = self.alloc_labels_explicit(barrier, spec)?;
                    let r = self.heap.alloc_array(len as usize, labels);
                    stack.push(Value::Ref(r));
                }
                Instr::ALoad => {
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref()?;
                    match &self.heap.get(arr)?.kind {
                        ObjKind::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            stack.push(elems[idx as usize]);
                        }
                        ObjKind::Object { .. } => {
                            return Err(VmError::TypeError("ALoad on object"))
                        }
                    }
                }
                Instr::AStore => {
                    let val = pop!();
                    let idx = pop!().as_int()?;
                    let arr = pop!().as_ref()?;
                    let journal = self.in_region();
                    let ho = self.heap.get_mut(arr)?;
                    let labeled = ho.labels.is_some();
                    match &mut ho.kind {
                        ObjKind::Array { elems } => {
                            if idx < 0 || idx as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: idx,
                                    len: elems.len(),
                                });
                            }
                            if journal && labeled {
                                self.region_undo.push(RegionUndo::Field(
                                    arr,
                                    idx as usize,
                                    elems[idx as usize],
                                ));
                            }
                            elems[idx as usize] = val;
                        }
                        ObjKind::Object { .. } => {
                            return Err(VmError::TypeError("AStore on object"))
                        }
                    }
                }
                Instr::ArrayLen => {
                    let arr = pop!().as_ref()?;
                    match &self.heap.get(arr)?.kind {
                        ObjKind::Array { elems } => {
                            stack.push(Value::Int(elems.len() as i64));
                        }
                        ObjKind::Object { .. } => {
                            return Err(VmError::TypeError("ArrayLen on object"))
                        }
                    }
                }
                Instr::GetStatic(s) => stack.push(self.statics[s.0 as usize]),
                Instr::PutStatic(s) => {
                    let val = pop!();
                    let idx = s.0 as usize;
                    if self.in_region()
                        && self.static_labels.get(idx).is_some_and(|p| !p.is_unlabeled())
                    {
                        self.region_undo.push(RegionUndo::Static(idx, self.statics[idx]));
                    }
                    self.statics[idx] = val;
                }
                Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Mod => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    let v = match instr {
                        Instr::Add => a.wrapping_add(b),
                        Instr::Sub => a.wrapping_sub(b),
                        Instr::Mul => a.wrapping_mul(b),
                        Instr::Div => {
                            if b == 0 {
                                return Err(VmError::DivideByZero);
                            }
                            a.wrapping_div(b)
                        }
                        Instr::Mod => {
                            if b == 0 {
                                return Err(VmError::DivideByZero);
                            }
                            a.wrapping_rem(b)
                        }
                        _ => unreachable!(),
                    };
                    stack.push(Value::Int(v));
                }
                Instr::Neg => {
                    let a = pop!().as_int()?;
                    stack.push(Value::Int(a.wrapping_neg()));
                }
                Instr::Not => {
                    let a = pop!().as_bool()?;
                    stack.push(Value::Bool(!a));
                }
                Instr::And | Instr::Or => {
                    let b = pop!().as_bool()?;
                    let a = pop!().as_bool()?;
                    stack.push(Value::Bool(if matches!(instr, Instr::And) {
                        a && b
                    } else {
                        a || b
                    }));
                }
                Instr::CmpEq => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(Value::Bool(a == b));
                }
                Instr::CmpLt => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    stack.push(Value::Bool(a < b));
                }
                Instr::CmpLe => {
                    let b = pop!().as_int()?;
                    let a = pop!().as_int()?;
                    stack.push(Value::Bool(a <= b));
                }
                Instr::Jump(t) => {
                    pc = t as usize;
                    continue;
                }
                Instr::JumpIfTrue(t) => {
                    if pop!().as_bool()? {
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::JumpIfFalse(t) => {
                    if !pop!().as_bool()? {
                        pc = t as usize;
                        continue;
                    }
                }
                Instr::Call(callee) => {
                    let cf = &self.program.functions[callee.0 as usize];
                    let (nparams, creturns) = (cf.params as usize, cf.returns);
                    if stack.len() < nparams {
                        return Err(VmError::Malformed("missing call arguments"));
                    }
                    let cargs = stack.split_off(stack.len() - nparams);
                    let r = self.exec(callee, cargs)?;
                    if creturns {
                        stack.push(r.ok_or(VmError::Malformed("missing return value"))?);
                    }
                }
                Instr::CallSecure(callee, spec) => {
                    let cf = &self.program.functions[callee.0 as usize];
                    let nparams = cf.params as usize;
                    if stack.len() < nparams {
                        return Err(VmError::Malformed("missing call arguments"));
                    }
                    let cargs = stack.split_off(stack.len() - nparams);
                    // Entry failures terminate (propagate): §5.1 "the
                    // program terminates at L1".
                    self.enter_region(spec)?;
                    let catch = self.program.region_specs[spec.0 as usize].catch;
                    let result = self.exec(callee, cargs.clone());
                    if let Err(e) = result {
                        if !Self::suppressible(&e) {
                            // Abort: undo the region's labeled writes,
                            // then unwind the region before propagating.
                            self.abort_region_writes();
                            self.exit_region()?;
                            return Err(e);
                        }
                        self.stats.exceptions_suppressed += 1;
                        // Run the catch block with the region's labels and
                        // the capabilities at exception time; suppress its
                        // exceptions too (§4.3.3). The catch sees the
                        // region's writes as-is — it exists to repair
                        // invariants, so the undo log does not fire.
                        if let Some(cfid) = catch {
                            let cfunc = &self.program.functions[cfid.0 as usize];
                            let catch_args = cargs
                                [..(cfunc.params as usize).min(cargs.len())]
                                .to_vec();
                            if catch_args.len() == cfunc.params as usize {
                                match self.exec(cfid, catch_args) {
                                    Ok(_) => {}
                                    Err(ce) if Self::suppressible(&ce) => {
                                        self.stats.exceptions_suppressed += 1;
                                    }
                                    Err(ce) => {
                                        self.abort_region_writes();
                                        self.exit_region()?;
                                        return Err(ce);
                                    }
                                }
                            }
                        } else {
                            // No catch: secure termination rolls every
                            // labeled write back to the entry snapshot.
                            self.abort_region_writes();
                        }
                    }
                    self.exit_region()?;
                }
                Instr::Return => {
                    return if returns { Ok(Some(pop!())) } else { Ok(None) };
                }
                Instr::CopyAndLabel(spec) => {
                    if !self.in_region() && self.mode != BarrierMode::None {
                        return Err(VmError::LabeledAccessOutsideRegion);
                    }
                    let obj = pop!().as_ref()?;
                    let src = self.object_pair(obj)?;
                    let dst = self.pair_from_spec(spec)?;
                    laminar_difc::check_pair_change(&src, &dst, &self.caps)?;
                    let labels = if dst.is_unlabeled() { None } else { Some(dst) };
                    let copy = self.heap.copy_with_labels(obj, labels)?;
                    self.stats.copy_and_label += 1;
                    stack.push(Value::Ref(copy));
                }
                Instr::Throw => {
                    let code = pop!().as_int()?;
                    return Err(VmError::Thrown(code));
                }
                Instr::OsWriteByte(s) => {
                    let byte = pop!().as_int()?;
                    self.ensure_os_sync()?;
                    let path = self.program.strings[s.0 as usize].clone();
                    let bridge = self
                        .bridge
                        .as_mut()
                        .ok_or(VmError::Os("no OS bridge attached".into()))?;
                    bridge.write_byte(&path, byte as u8).map_err(VmError::Os)?;
                }
                Instr::OsReadByte(s) => {
                    self.ensure_os_sync()?;
                    let path = self.program.strings[s.0 as usize].clone();
                    let bridge = self
                        .bridge
                        .as_mut()
                        .ok_or(VmError::Os("no OS bridge attached".into()))?;
                    let b = bridge.read_byte(&path).map_err(VmError::Os)?;
                    stack.push(Value::Int(b.map_or(-1, i64::from)));
                }
                Instr::Nop => {}
            }
            pc += 1;
        }
        // Function bodies are terminated by Return (the builder appends
        // one), so falling off the end is malformed.
        Err(VmError::Malformed("control flow fell off function end"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn trivial_vm() -> Vm {
        let mut pb = ProgramBuilder::new();
        pb.func("main", 0, false, 0, |b| {
            b.ret();
        });
        Vm::new(pb.finish().unwrap(), vec![], BarrierMode::Dynamic)
    }

    #[test]
    fn exit_without_enter_is_a_typed_error_not_a_panic() {
        let mut vm = trivial_vm();
        assert!(matches!(vm.exit_region(), Err(VmError::RegionUnderflow)));
        // The VM keeps working afterwards (fail-closed, not poisoned).
        assert!(vm.call_by_name("main", &[]).is_ok());
    }

    #[test]
    fn region_underflow_is_not_suppressible() {
        assert!(!Vm::suppressible(&VmError::RegionUnderflow));
    }

    #[test]
    fn abort_outside_any_region_is_a_no_op() {
        let mut vm = trivial_vm();
        vm.abort_region_writes();
        assert_eq!(vm.stats().regions_aborted, 0);
        assert!(vm.region_undo.is_empty());
    }
}
