//! **Table 3** — application characteristics.
//!
//! The paper reports, per case study: total LOC, the protected data, the
//! LOC added by the retrofit, and the fraction of execution time spent
//! inside security regions. LOC here are measured over this repo's
//! ports (total = secured module source; added ≈ secured − baseline,
//! the DIFC-specific code), and %-time-in-SRs is *measured* by the
//! runtime's region timer while running each app's workload.
//!
//! Paper row targets: GradeSheet 6%, Battleship 54%, Calendar 1%,
//! FreeCS <1% of time in security regions.

use laminar::Laminar;
use laminar_apps::battleship::Battleship;
use laminar_apps::calendar::CalendarSystem;
use laminar_apps::freecs::ChatServer;
use laminar_apps::gradesheet::GradeSheet;
use std::time::Instant;

struct Row {
    app: &'static str,
    loc_total: usize,
    protected: &'static str,
    loc_added: usize,
    pct_in_sr: f64,
    paper_pct: &'static str,
}

/// Counts non-empty, non-comment lines in a source string.
fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Lines of the baseline (unsecured) portion of a module, approximated
/// as everything from the `Baseline` struct definition to the test
/// module.
fn baseline_loc(src: &str) -> usize {
    let start = src.find("pub struct Baseline").unwrap_or(0);
    let end = src.find("#[cfg(test)]").unwrap_or(src.len());
    loc(&src[start..end])
}

fn main() {
    println!("Table 3: application characteristics");
    println!();

    let gradesheet_src = include_str!("../../apps/src/gradesheet.rs");
    let battleship_src = include_str!("../../apps/src/battleship.rs");
    let calendar_src = include_str!("../../apps/src/calendar.rs");
    let freecs_src = include_str!("../../apps/src/freecs.rs");

    let mut rows = Vec::new();

    // GradeSheet.
    {
        let sys = Laminar::boot();
        let gs = GradeSheet::new(&sys, 12, 4).unwrap();
        gs.reset_stats();
        let t = Instant::now();
        gs.run_workload(400).unwrap();
        let total_ns = t.elapsed().as_nanos() as u64;
        rows.push(Row {
            app: "GradeSheet",
            loc_total: loc(gradesheet_src),
            protected: "Student grades",
            loc_added: loc(gradesheet_src) - baseline_loc(gradesheet_src),
            pct_in_sr: gs.stats().pct_in_regions(total_ns),
            paper_pct: "6%",
        });
    }

    // Battleship.
    {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 17, false).unwrap();
        game.reset_stats();
        let t = Instant::now();
        for round in 0..6 {
            game.play(round).unwrap();
        }
        let total_ns = t.elapsed().as_nanos() as u64;
        rows.push(Row {
            app: "Battleship",
            loc_total: loc(battleship_src),
            protected: "Ship locations",
            loc_added: loc(battleship_src) - baseline_loc(battleship_src),
            pct_in_sr: game.stats().pct_in_regions(total_ns),
            paper_pct: "54%",
        });
    }

    // Calendar.
    {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        cal.reset_stats();
        let t = Instant::now();
        cal.run_workload(300).unwrap();
        let total_ns = t.elapsed().as_nanos() as u64;
        rows.push(Row {
            app: "Calendar",
            loc_total: loc(calendar_src),
            protected: "Schedules",
            loc_added: loc(calendar_src) - baseline_loc(calendar_src),
            pct_in_sr: cal.stats().pct_in_regions(total_ns),
            paper_pct: "1%",
        });
    }

    // FreeCS.
    {
        let sys = Laminar::boot();
        let srv = ChatServer::new(&sys).unwrap();
        srv.login_user("owner", false).unwrap();
        srv.create_group("lobby", "owner").unwrap();
        for i in 0..64 {
            srv.login_user(&format!("u{i}"), false).unwrap();
        }
        srv.reset_stats();
        let t = Instant::now();
        srv.run_workload(64, "lobby").unwrap();
        let total_ns = t.elapsed().as_nanos() as u64;
        rows.push(Row {
            app: "FreeCS",
            loc_total: loc(freecs_src),
            protected: "Membership properties",
            loc_added: loc(freecs_src) - baseline_loc(freecs_src),
            pct_in_sr: srv.stats().pct_in_regions(total_ns),
            paper_pct: "<1%",
        });
    }

    let header = format!(
        "{:<12} {:>6} {:<24} {:>10} {:>14} {:>10}",
        "application", "LOC", "protected data", "LOC added", "%time in SRs", "paper"
    );
    println!("{header}");
    laminar_bench::rule_for(&header);
    for r in rows {
        println!(
            "{:<12} {:>6} {:<24} {:>6} ({:>2.0}%) {:>12.1}% {:>10}",
            r.app,
            r.loc_total,
            r.protected,
            r.loc_added,
            100.0 * r.loc_added as f64 / r.loc_total as f64,
            r.pct_in_sr,
            r.paper_pct
        );
    }
    println!();
    println!("(paper: all retrofits changed <=10% of each code base; our 'LOC added'");
    println!(" is the DIFC-specific portion of the port, secured minus baseline)");
}
