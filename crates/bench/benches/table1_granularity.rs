//! **Table 1 (quantified)** — what fine-grained labels buy.
//!
//! Table 1's central qualitative claim is that OS-level DIFC systems
//! either cannot express heterogeneously labeled data structures in one
//! address space or make them prohibitively expensive: Flume labels a
//! whole address space, so per-datum labels require one *process per
//! label* and IPC for every access; HiStar enforces at page granularity.
//! Laminar's per-object barriers make the same policy one in-process
//! check.
//!
//! This harness measures both designs *on the same kernel*: accessing a
//! `{S(s_i)}`-labeled datum (GradeSheet-style, one label per student)
//!
//! * the Laminar way — a `Labeled` cell read inside an already-entered
//!   security region (one barrier), and including the region cost; and
//! * the address-space-granularity way — a per-label worker process
//!   holding the datum, queried over labeled pipes (two mediated pipe
//!   crossings per access), like a Flume-style deployment.

use laminar::{Laminar, RegionParams};
use laminar_bench::median_time;
use laminar_difc::{Capability, Label, SecPair};
use laminar_os::{OpenMode, UserId};

const ACCESSES: u32 = 2_000;
const TRIALS: usize = 7;

fn main() {
    println!("Table 1 quantified: per-access cost of one heterogeneously-labeled datum");
    println!();

    let sys = Laminar::boot();
    sys.add_user(UserId(1), "bench");
    let p = sys.login(UserId(1)).unwrap();
    let t = p.create_tag().unwrap();
    let params = RegionParams::new()
        .secrecy(Label::singleton(t))
        .grant(Capability::plus(t))
        .grant(Capability::minus(t));

    // --- Laminar: fine-grained in-process labels -------------------------
    let cell = p.secure(&params, |g| Ok(g.new_labeled(42i64)), |_| {}).unwrap().unwrap();

    // (a) barrier only, region amortised over many accesses
    let barrier_only = median_time(TRIALS, || {
        p.secure(
            &params,
            |g| {
                for _ in 0..ACCESSES {
                    cell.read(g, |v| std::hint::black_box(*v)).unwrap();
                }
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    }) / ACCESSES;

    // (b) one region per access (worst case for Laminar)
    let region_per_access = median_time(TRIALS, || {
        for _ in 0..ACCESSES / 10 {
            p.secure(&params, |g| cell.read(g, |v| std::hint::black_box(*v)), |_| {})
                .unwrap();
        }
    }) / (ACCESSES / 10);

    // --- Flume-style: one process per label, IPC per access --------------
    // The "worker" process holds the secret datum; it is tainted {S(t)}
    // for its whole life (address-space granularity). Queries arrive on a
    // request pipe; answers return on a {S(t)}-labeled response pipe (the
    // response derives from the secret). The *client* must taint itself
    // to read responses — whole-process, as Flume requires.
    let task = p.task();
    // Both channels carry the label: the client process is itself
    // tainted for its whole life (address-space granularity), so even
    // its *requests* live at {S(t)}. Create the pipes while tainted.
    task.set_task_label(laminar_difc::LabelType::Secrecy, Label::singleton(t)).unwrap();
    let (req_r, req_w) = task.pipe().unwrap();
    let (resp_r, resp_w) = task.pipe().unwrap();
    task.set_task_label(laminar_difc::LabelType::Secrecy, Label::empty()).unwrap();

    let worker = task.fork(None).unwrap();
    worker.set_task_label(laminar_difc::LabelType::Secrecy, Label::singleton(t)).unwrap();
    let secret_datum = 42u8;

    // Client runs tainted too (it consumes labeled responses).
    let client = task.fork(None).unwrap();
    client.set_task_label(laminar_difc::LabelType::Secrecy, Label::singleton(t)).unwrap();

    let ipc = median_time(TRIALS, || {
        for _ in 0..ACCESSES {
            // client → worker: request
            client.write(req_w, &[1]).unwrap();
            // worker: serve
            let q = worker.read(req_r, 1).unwrap();
            assert_eq!(q.len(), 1);
            worker.write(resp_w, &[secret_datum]).unwrap();
            // client: consume labeled response
            let r = client.read(resp_r, 1).unwrap();
            assert_eq!(r, vec![42]);
        }
    }) / ACCESSES;

    // A file-mediated variant (per-label files instead of live workers).
    // Pre-created labeled by the untainted principal (§5.2 discipline).
    let fd = task
        .create_file_labeled(
            "/tmp/secret_cell",
            SecPair::secrecy_only(Label::singleton(t)),
        )
        .unwrap();
    task.close(fd).unwrap();
    let fd = client.open("/tmp/secret_cell", OpenMode::Write).unwrap();
    client.write(fd, &[42]).unwrap();
    client.close(fd).unwrap();
    let file = median_time(TRIALS, || {
        for _ in 0..ACCESSES / 10 {
            let fd = client.open("/tmp/secret_cell", OpenMode::Read).unwrap();
            std::hint::black_box(client.read(fd, 8).unwrap());
            client.close(fd).unwrap();
        }
    }) / (ACCESSES / 10);

    let header = format!("{:<52} {:>12}", "design", "per-access");
    println!("{header}");
    laminar_bench::rule_for(&header);
    println!(
        "{:<52} {:>9.0} ns",
        "Laminar: barrier (region amortised)",
        barrier_only.as_nanos()
    );
    println!(
        "{:<52} {:>9.0} ns",
        "Laminar: one region per access",
        region_per_access.as_nanos()
    );
    println!(
        "{:<52} {:>9.0} ns",
        "address-space granularity: worker process + pipes",
        ipc.as_nanos()
    );
    println!(
        "{:<52} {:>9.0} ns",
        "address-space granularity: labeled file per datum",
        file.as_nanos()
    );
    println!();
    println!(
        "fine-grained barrier vs process-per-label IPC: {:.0}x cheaper",
        ipc.as_secs_f64() / barrier_only.as_secs_f64()
    );
    println!();
    println!("…and the GradeSheet policy needs n×m distinct labels: one worker");
    println!("process per label under address-space DIFC, versus one Labeled");
    println!("cell each under Laminar (Table 1 / §7.5).");
}
