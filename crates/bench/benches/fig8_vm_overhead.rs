//! **Figure 8** — Laminar VM overhead on programs *without* security
//! regions (the paper's DaCapo + pseudojbb experiment).
//!
//! For each workload, the harness runs the MiniVM under three barrier
//! configurations — no barriers (the "unmodified JVM" baseline), static
//! barriers, and dynamic barriers — mimicking the paper's methodology:
//! the first iteration includes compilation, the measured iterations do
//! not (compile caches are warm), and the median of several trials is
//! reported. Also reported: the compile-cost ratios (the paper observes
//! static barriers double compile time and dynamic barriers triple it)
//! and an ablation with redundant-barrier elimination disabled.
//!
//! Paper result: static ≈ +6% average, dynamic ≈ +17% average.

use laminar_bench::{geomean_overhead, overhead_pct, workloads};
use laminar_vm::{BarrierMode, Program, Value, Vm};
use std::time::{Duration, Instant};

const TRIALS: usize = 11;

struct Run {
    time: Duration,
    compile_cost: u64,
    eliminated: u64,
}

/// Runs all five configurations of one workload with *interleaved*
/// trials (every trial times each configuration back to back, so clock
/// drift and cache state hit them equally) and returns per-config
/// medians.
fn run_all(program: &Program, n: i64) -> Vec<Run> {
    let configs = [
        (BarrierMode::None, true),
        (BarrierMode::Static, true),
        (BarrierMode::Dynamic, true),
        (BarrierMode::Cloning, true),
        (BarrierMode::Static, false),
        (BarrierMode::Dynamic, false),
    ];
    let mut vms: Vec<Vm> = configs
        .iter()
        .map(|&(mode, opt)| {
            let mut vm = Vm::new(program.clone(), vec![], mode);
            vm.set_optimize(opt);
            // Warmup iteration: includes compilation (the paper's first
            // iteration) and checks the workload completes.
            vm.call_by_name("main", &[Value::Int(n)]).expect("workload failed");
            vm
        })
        .collect();
    let mut samples: Vec<Vec<Duration>> = vec![Vec::with_capacity(TRIALS); vms.len()];
    for _ in 0..TRIALS {
        for (vm, s) in vms.iter_mut().zip(samples.iter_mut()) {
            let t = Instant::now();
            vm.call_by_name("main", &[Value::Int(n)]).expect("workload failed");
            s.push(t.elapsed());
        }
    }
    vms.iter()
        .zip(samples.iter_mut())
        .map(|(vm, s)| {
            s.sort_unstable();
            Run {
                time: s[s.len() / 2],
                compile_cost: vm.stats().compile_cost,
                eliminated: vm.stats().barriers_eliminated,
            }
        })
        .collect()
}

fn main() {
    println!("Figure 8: Laminar VM overhead on programs without security regions");
    println!("(overheads relative to the no-barrier baseline; median of {TRIALS} runs)");
    println!();
    let header = format!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>13} {:>11} {:>10}",
        "benchmark",
        "base(ms)",
        "static%",
        "dynamic%",
        "cloning%",
        "static-noopt%",
        "dyn-noopt%",
        "elim-bars"
    );
    println!("{header}");
    laminar_bench::rule_for(&header);

    let mut static_pcts = Vec::new();
    let mut dynamic_pcts = Vec::new();
    let mut cloning_pcts = Vec::new();
    let mut static_no = Vec::new();
    let mut dynamic_no = Vec::new();
    let mut compile_ratios: Vec<(f64, f64)> = Vec::new();

    for (name, program, n) in workloads::all() {
        let mut runs = run_all(&program, n).into_iter();
        let base = runs.next().unwrap();
        let stat = runs.next().unwrap();
        let dynm = runs.next().unwrap();
        let clone = runs.next().unwrap();
        let stat_no = runs.next().unwrap();
        let dynm_no = runs.next().unwrap();

        let sp = overhead_pct(base.time, stat.time);
        let dp = overhead_pct(base.time, dynm.time);
        let cp = overhead_pct(base.time, clone.time);
        let spn = overhead_pct(base.time, stat_no.time);
        let dpn = overhead_pct(base.time, dynm_no.time);
        static_pcts.push(sp);
        dynamic_pcts.push(dp);
        cloning_pcts.push(cp);
        static_no.push(spn);
        dynamic_no.push(dpn);
        compile_ratios.push((
            stat.compile_cost as f64 / base.compile_cost as f64,
            dynm.compile_cost as f64 / base.compile_cost as f64,
        ));

        println!(
            "{:<14} {:>10.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>12.1}% {:>10.1}% {:>10}",
            name,
            base.time.as_secs_f64() * 1e3,
            sp,
            dp,
            cp,
            spn,
            dpn,
            stat.eliminated
        );
    }

    println!();
    println!(
        "geomean overhead:        static {:+.1}%   dynamic {:+.1}%   cloning {:+.1}%   (paper: +6% / +17%)",
        geomean_overhead(&static_pcts),
        geomean_overhead(&dynamic_pcts),
        geomean_overhead(&cloning_pcts)
    );
    println!(
        "geomean w/o elimination: static {:+.1}%   dynamic {:+.1}%   (ablation)",
        geomean_overhead(&static_no),
        geomean_overhead(&dynamic_no)
    );
    let n = compile_ratios.len() as f64;
    let (s_ratio, d_ratio) =
        compile_ratios.iter().fold((0.0, 0.0), |(a, b), (s, d)| (a + s / n, b + d / n));
    println!(
        "compile-cost ratio:      static {s_ratio:.1}x   dynamic {d_ratio:.1}x   (paper: ~2x / ~3x)"
    );
}
