//! Criterion microbenchmarks of Laminar's primitive operations: label
//! lattice math, flow checks, labeled-cell barriers (static vs dynamic),
//! region entry/exit and the kernel's hot syscall path. These are the
//! unit costs the Figure 9 decomposition builds on.

use criterion::{criterion_group, criterion_main, Criterion};
use laminar::{Laminar, RegionParams};
use laminar_difc::{Capability, Label, SecPair, Tag};
use laminar_os::{Kernel, LaminarModule, NullModule, OpenMode, UserId};

fn labels(c: &mut Criterion) {
    let a = Label::from_tags((1..8).map(Tag::from_raw));
    let b = Label::from_tags((4..12).map(Tag::from_raw));
    c.bench_function("label_subset", |bench| {
        bench.iter(|| std::hint::black_box(a.is_subset_of(&b)))
    });
    c.bench_function("label_union", |bench| {
        bench.iter(|| std::hint::black_box(a.union(&b)))
    });
    let pa = SecPair::secrecy_only(a.clone());
    let pb = SecPair::secrecy_only(b.clone());
    c.bench_function("flow_check", |bench| {
        bench.iter(|| std::hint::black_box(pa.flows_to(&pb)))
    });
}

fn regions_and_barriers(c: &mut Criterion) {
    let sys = Laminar::boot();
    sys.add_user(UserId(1), "bench");
    let p = sys.login(UserId(1)).unwrap();
    let t = p.create_tag().unwrap();
    let params = RegionParams::new()
        .secrecy(Label::singleton(t))
        .grant(Capability::plus(t));

    c.bench_function("region_enter_exit", |bench| {
        bench.iter(|| p.secure(&params, |_| Ok(()), |_| {}).unwrap())
    });

    let cell = p
        .secure(&params, |g| Ok(g.new_labeled(7u64)), |_| {})
        .unwrap()
        .unwrap();
    c.bench_function("static_barrier_read", |bench| {
        bench.iter(|| {
            p.secure(&params, |g| cell.read(g, |v| std::hint::black_box(*v)), |_| {})
                .unwrap()
        })
    });
    c.bench_function("dynamic_barrier_read", |bench| {
        bench.iter(|| {
            p.secure(
                &params,
                |_| cell.read_dyn(|v| std::hint::black_box(*v)),
                |_| {},
            )
            .unwrap()
        })
    });
}

fn kernel_hooks(c: &mut Criterion) {
    for (name, stat_name) in [("null_lsm", "stat/null"), ("laminar_lsm", "stat/laminar")]
    {
        let k = if name == "null_lsm" {
            Kernel::boot(NullModule)
        } else {
            Kernel::boot(LaminarModule)
        };
        k.add_user(UserId(1), "bench");
        let t = k.login(UserId(1)).unwrap();
        let fd = t.create("f").unwrap();
        t.close(fd).unwrap();
        c.bench_function(stat_name, |bench| {
            bench.iter(|| std::hint::black_box(t.stat("f").unwrap()))
        });
        let w = t.open("/dev/null", OpenMode::Write).unwrap();
        let io_name = if name == "null_lsm" { "null_io/null" } else { "null_io/laminar" };
        c.bench_function(io_name, |bench| {
            bench.iter(|| t.write(w, &[0]).unwrap())
        });
    }
}

fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = short_config();
    targets = labels, regions_and_barriers, kernel_hooks
}
criterion_main!(benches);
