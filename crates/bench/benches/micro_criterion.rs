//! Microbenchmarks of Laminar's primitive operations: label lattice
//! math, flow checks (uncached structural walk vs the interned-id memo
//! cache), labeled-cell barriers (static vs dynamic), region entry/exit
//! and the kernel's hot syscall path. These are the unit costs the
//! Figure 9 decomposition builds on.
//!
//! The harness is hand-rolled (median-of-trials over fixed-count inner
//! loops) so it runs with zero external crates in offline CI. The
//! cached-vs-uncached section also prints the flow-cache hit rate over
//! the workload, which must exceed 90% on repeated checks.

use laminar::{Laminar, RegionParams};
use laminar_bench::{interleaved_medians, median_time};
use laminar_difc::{flow_cache_stats, Capability, Label, SecPair, Tag};
use laminar_os::{Kernel, LaminarModule, NullModule, OpenMode, UserId};
use laminar_util::SplitMix64;
use std::time::Duration;

const TRIALS: usize = 15;

fn ns_per_op(d: Duration, iters: u64) -> f64 {
    d.as_nanos() as f64 / iters as f64
}

fn report(name: &str, d: Duration, iters: u64) {
    println!("{name:<34} {:>10.1} ns/op", ns_per_op(d, iters));
}

/// Label lattice primitives over medium-width labels.
fn labels() {
    println!("\n== label lattice primitives ==");
    let a = Label::from_tags((1..8).map(Tag::from_raw));
    let b = Label::from_tags((4..12).map(Tag::from_raw));
    const N: u64 = 100_000;

    let d = median_time(TRIALS, || {
        for _ in 0..N {
            std::hint::black_box(a.is_subset_of(std::hint::black_box(&b)));
        }
    });
    report("label_subset (uncached)", d, N);

    let d = median_time(TRIALS, || {
        for _ in 0..N {
            std::hint::black_box(a.is_subset_of_cached(std::hint::black_box(&b)));
        }
    });
    report("label_subset (cached)", d, N);

    let d = median_time(TRIALS, || {
        for _ in 0..N {
            std::hint::black_box(a.union(std::hint::black_box(&b)));
        }
    });
    report("label_union", d, N);

    let pa = SecPair::secrecy_only(a.clone());
    let pb = SecPair::secrecy_only(b.clone());
    let d = median_time(TRIALS, || {
        for _ in 0..N {
            std::hint::black_box(pa.flows_to(std::hint::black_box(&pb)));
        }
    });
    report("flow_check (uncached)", d, N);

    let d = median_time(TRIALS, || {
        for _ in 0..N {
            std::hint::black_box(pa.flows_to_cached(std::hint::black_box(&pb)));
        }
    });
    report("flow_check (cached)", d, N);
}

/// The tentpole comparison: repeated flow checks over a realistic
/// working set of wide labels, uncached structural walk vs the
/// interned-id memo cache, with the observed hit rate.
///
/// The working set is a *nested chain* of compartment labels (secrecy
/// growing, integrity shrinking), so `pair_i` flows to `pair_j` exactly
/// when `i <= j` — half the checks succeed. Successful subset checks are
/// the expensive case for the structural walk (it must scan the whole
/// superset; failures early-exit), and they dominate real enforcement,
/// where almost every mediated access is a permitted one.
fn cached_vs_uncached_workload() {
    println!("\n== flow-check cache: repeated-check workload ==");
    let mut rng = SplitMix64::new(0xBEEF);
    let mut s_universe: Vec<u64> = (1..=256).collect();
    let mut i_universe: Vec<u64> = (1_000..1_256).collect();
    rng.shuffle(&mut s_universe);
    rng.shuffle(&mut i_universe);
    let working_set: Vec<SecPair> = (0..16usize)
        .map(|k| {
            let s = Label::from_tags(
                s_universe[..16 + k * 8].iter().map(|&t| Tag::from_raw(t)),
            );
            let i = Label::from_tags(
                i_universe[..16 + (15 - k) * 8].iter().map(|&t| Tag::from_raw(t)),
            );
            SecPair::new(s, i)
        })
        .collect();

    const ROUNDS: u64 = 2_000;
    let checks = ROUNDS * (16 * 16);

    // Warm the cache so the cached side measures steady state (real
    // enforcement reaches steady state within one pass of the workload).
    for a in &working_set {
        for b in &working_set {
            std::hint::black_box(a.flows_to_cached(b));
        }
    }

    let before = flow_cache_stats();
    let (uncached, cached) = interleaved_medians(
        TRIALS,
        || {
            for _ in 0..ROUNDS {
                for a in &working_set {
                    for b in &working_set {
                        std::hint::black_box(a.flows_to(std::hint::black_box(b)));
                    }
                }
            }
        },
        || {
            for _ in 0..ROUNDS {
                for a in &working_set {
                    for b in &working_set {
                        std::hint::black_box(a.flows_to_cached(std::hint::black_box(b)));
                    }
                }
            }
        },
    );
    let after = flow_cache_stats();

    report("flow_check uncached (16x16 set)", uncached, checks);
    report("flow_check cached   (16x16 set)", cached, checks);
    let speedup = uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    let answered = (after.hits + after.fast_hits) - (before.hits + before.fast_hits);
    let missed = after.misses - before.misses;
    let rate = answered as f64 / (answered + missed).max(1) as f64;
    println!("cached speedup: {speedup:.1}x   hit rate: {:.2}%", rate * 100.0);
    println!(
        "cache totals: {} hits, {} fast hits, {} misses, {} inserts, {} entries",
        after.hits, after.fast_hits, after.misses, after.inserts, after.entries
    );
    assert!(rate > 0.90, "repeated-check workload must exceed 90% hit rate");
}

/// Region entry/exit and the heap barriers.
fn regions_and_barriers() {
    println!("\n== regions and barriers ==");
    let sys = Laminar::boot();
    sys.add_user(UserId(1), "bench");
    let p = sys.login(UserId(1)).unwrap();
    let t = p.create_tag().unwrap();
    let params =
        RegionParams::new().secrecy(Label::singleton(t)).grant(Capability::plus(t));

    const N: u64 = 5_000;
    let d = median_time(TRIALS, || {
        for _ in 0..N {
            p.secure(&params, |_| Ok(()), |_| {}).unwrap();
        }
    });
    report("region_enter_exit", d, N);

    let cell = p.secure(&params, |g| Ok(g.new_labeled(7u64)), |_| {}).unwrap().unwrap();
    let d = median_time(TRIALS, || {
        for _ in 0..N {
            p.secure(&params, |g| cell.read(g, |v| std::hint::black_box(*v)), |_| {})
                .unwrap();
        }
    });
    report("static_barrier_read", d, N);

    let d = median_time(TRIALS, || {
        for _ in 0..N {
            p.secure(&params, |_| cell.read_dyn(|v| std::hint::black_box(*v)), |_| {})
                .unwrap();
        }
    });
    report("dynamic_barrier_read", d, N);
}

/// The kernel's hot syscall path, Null vs Laminar LSM.
fn kernel_hooks() {
    println!("\n== kernel hooks (Null vs Laminar LSM) ==");
    for null_lsm in [true, false] {
        let k =
            if null_lsm { Kernel::boot(NullModule) } else { Kernel::boot(LaminarModule) };
        k.add_user(UserId(1), "bench");
        let t = k.login(UserId(1)).unwrap();
        let fd = t.create("f").unwrap();
        t.close(fd).unwrap();
        let module = if null_lsm { "null" } else { "laminar" };

        const N: u64 = 20_000;
        let d = median_time(TRIALS, || {
            for _ in 0..N {
                std::hint::black_box(t.stat("f").unwrap());
            }
        });
        report(&format!("stat/{module}"), d, N);

        let w = t.open("/dev/null", OpenMode::Write).unwrap();
        let d = median_time(TRIALS, || {
            for _ in 0..N {
                t.write(w, &[0]).unwrap();
            }
        });
        report(&format!("null_io/{module}"), d, N);
    }
}

fn main() {
    println!("Laminar microbenchmarks (median of {TRIALS} trials)");
    labels();
    cached_vs_uncached_workload();
    regions_and_barriers();
    kernel_hooks();
}
