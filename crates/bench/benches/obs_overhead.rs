//! Decision-trace (`laminar-obs`) overhead on the PR 4 SMP workloads:
//! the same three syscall mixes, each measured twice on the same
//! kernel — tracing disabled (the default; every emit point is one
//! relaxed atomic load) and tracing enabled (typed events staged
//! per-syscall, flushed into bounded per-thread rings on commit).
//!
//! Nobody drains the rings during the run, so the enabled numbers are
//! the worst case of a lagging reader: rings wrap and count truncation
//! rather than blocking the hot path.
//!
//! Results go to stdout and `BENCH_obs_overhead.json` at the repo root.
//! `BENCH_SMOKE=1` shrinks volume and *asserts* the audited kernel
//! keeps ≥ 90% of untraced throughput in every cell (the ≤ 10%
//! enabled-overhead gate; disabled-mode overhead is gated separately by
//! the pr4_smp smoke run, which executes with tracing off).

use laminar_bench::{interleaved_best, overhead_pct};
use laminar_difc::{CapSet, Label, LabelType, SecPair};
use laminar_os::{Fd, Kernel, LaminarModule, TaskHandle, UserId};
use std::sync::Arc;

struct Volume {
    ops_per_worker: usize,
    trials: usize,
    thread_counts: &'static [usize],
    smoke: bool,
}

fn volume() -> Volume {
    if std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1") {
        // Each trial must be long enough to dominate scheduling jitter —
        // sub-millisecond trials make the gate a coin flip on small hosts.
        Volume { ops_per_worker: 2_000, trials: 5, thread_counts: &[1, 2], smoke: true }
    } else {
        Volume {
            ops_per_worker: 4_000,
            trials: 5,
            thread_counts: &[1, 2, 4],
            smoke: false,
        }
    }
}

type WorkerBody = Box<dyn Fn(usize, &TaskHandle, usize) + Sync>;

struct Fixture {
    kernel: Arc<Kernel>,
    workers: Vec<TaskHandle>,
    run: WorkerBody,
}

fn boot() -> (Arc<Kernel>, TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "bench");
    let root = k.login(UserId(1)).unwrap();
    (k, root)
}

/// Tainted workers on labeled files, 7 reads : 1 write — every
/// iteration crosses flow checks at all the traced layers.
fn labeled_file_read_heavy(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let tag = root.alloc_tag().unwrap();
    let secret = SecPair::secrecy_only(Label::singleton(tag));
    kernel.install_dir("/tmp/vault", secret.clone()).unwrap();
    root.set_task_label(LabelType::Secrecy, Label::singleton(tag)).unwrap();
    for w in 0..n {
        let fd = root
            .create_file_labeled(&format!("/tmp/vault/w{w}.dat"), secret.clone())
            .unwrap();
        root.write(fd, &[0u8; 64]).unwrap();
        root.close(fd).unwrap();
    }
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(|w, t, i| {
            let path = format!("/tmp/vault/w{w}.dat");
            if i % 8 == 7 {
                t.write_file_at(&path, &[i as u8; 64]).unwrap();
            } else {
                t.read_file_at(&path, 64).unwrap();
            }
        }),
    }
}

/// Per-worker pipe: one 64-byte write, one 64-byte read per iteration —
/// the LSM delivery-verdict emit point on every write.
fn pipe_pingpong(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let pipes: Vec<(Fd, Fd)> = (0..n).map(|_| root.pipe().unwrap()).collect();
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(move |w, t, _| {
            let (r, wr) = pipes[w];
            t.write(wr, &[0x42u8; 64]).unwrap();
            let got = t.read(r, 64).unwrap();
            assert_eq!(got.len(), 64);
        }),
    }
}

/// Per-worker path in the shared `/tmp`: create, close, unlink — three
/// commits (three span flushes) per iteration.
fn create_unlink_churn(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(|w, t, _| {
            let path = format!("/tmp/churn{w}");
            let fd = t.create(&path).unwrap();
            t.close(fd).unwrap();
            t.unlink(&path).unwrap();
        }),
    }
}

fn run_all(fx: &Fixture, ops_per_worker: usize) {
    let task_sets: Vec<Vec<TaskHandle>> =
        fx.workers.iter().map(|t| vec![t.clone()]).collect();
    fx.kernel.run_parallel(task_sets, |w, own| {
        for i in 0..ops_per_worker {
            (fx.run)(w, &own[0], i);
        }
    });
}

struct Cell {
    threads: usize,
    disabled: f64,
    enabled: f64,
}

fn main() {
    let vol = volume();
    let host_cpus =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    type WorkloadRow = (&'static str, fn(usize) -> Fixture);
    let workloads: &[WorkloadRow] = &[
        ("labeled_file_read_heavy", labeled_file_read_heavy),
        ("pipe_pingpong", pipe_pingpong),
        ("create_unlink_churn", create_unlink_churn),
    ];

    println!(
        "laminar-obs tracing overhead — {} ops/worker, best of {} interleaved trials, \
         host_cpus={host_cpus}",
        vol.ops_per_worker, vol.trials
    );
    let mut json_workloads = Vec::new();
    let mut failures = Vec::new();
    for (name, build) in workloads {
        println!("\n{name}");
        println!(
            "  {:>7}  {:>15}  {:>14}  {:>9}",
            "threads", "disabled op/s", "enabled op/s", "overhead"
        );
        let mut cells: Vec<Cell> = Vec::new();
        for &n in vol.thread_counts {
            let fx = build(n);
            let total = vol.ops_per_worker * n;
            // Interleaved trials: each runs disabled then enabled back to
            // back, so drift and cache warmth hit both variants. Best-of-N
            // rather than median, because this target gates CI on shared
            // hosts where scheduling noise exceeds the overhead budget.
            let (d_dis, d_en) = interleaved_best(
                vol.trials,
                || {
                    laminar_obs::set_enabled(false);
                    run_all(&fx, vol.ops_per_worker);
                },
                || {
                    laminar_obs::set_enabled(true);
                    run_all(&fx, vol.ops_per_worker);
                    laminar_obs::set_enabled(false);
                },
            );
            let cell = Cell {
                threads: n,
                disabled: total as f64 / d_dis.as_secs_f64(),
                enabled: total as f64 / d_en.as_secs_f64(),
            };
            println!(
                "  {:>7}  {:>15.0}  {:>14.0}  {:>8.1}%",
                n,
                cell.disabled,
                cell.enabled,
                overhead_pct(d_dis, d_en)
            );
            cells.push(cell);
        }
        if vol.smoke {
            for c in &cells {
                if c.enabled < 0.90 * c.disabled {
                    failures.push(format!(
                        "{name}: enabled tracing exceeds the 10% overhead budget at \
                         {} threads ({:.0} vs {:.0} op/s)",
                        c.threads, c.enabled, c.disabled
                    ));
                }
            }
        }
        let rows: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "        {{\"threads\": {}, \"disabled_ops_per_sec\": {:.0}, \
                     \"enabled_ops_per_sec\": {:.0}, \"enabled_vs_disabled\": {:.3}}}",
                    c.threads,
                    c.disabled,
                    c.enabled,
                    c.enabled / c.disabled
                )
            })
            .collect();
        json_workloads.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"rows\": [\n{}\n      ]\n    }}",
            rows.join(",\n")
        ));
    }
    // Leave the process in the default state however the run ended.
    laminar_obs::set_enabled(false);
    laminar_obs::reset();

    assert!(failures.is_empty(), "{}", failures.join("\n"));

    let json = format!(
        "{{\n  \"bench\": \"BENCH_obs_overhead\",\n  \"host_cpus\": {host_cpus},\n  \
         \"smoke\": {},\n  \"ops_per_worker\": {},\n  \"trials\": {},\n  \
         \"caveat\": \"enabled numbers are the lagging-reader worst case: nothing \
         drains the rings mid-run, so they wrap and count truncation; \
         disabled-mode overhead vs the untraced seed is gated by the pr4_smp \
         smoke run, which executes with tracing off\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        vol.smoke,
        vol.ops_per_worker,
        vol.trials,
        json_workloads.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs_overhead.json");
    if vol.smoke {
        println!("\nsmoke mode: all cells within the 10% budget; not overwriting {path}");
    } else {
        std::fs::write(path, json).unwrap();
        println!("\nwrote {path}");
    }
}
