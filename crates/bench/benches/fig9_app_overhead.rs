//! **Figure 9** — overhead of the applications retrofitted with Laminar.
//!
//! Each case study runs the identical workload in its unsecured baseline
//! and its Laminar-secured variant; the total overhead is decomposed —
//! as in the paper's stacked bars — into *start/end SR*, *alloc
//! barriers*, and *read/write barriers* (static vs dynamic), by
//! multiplying measured per-event unit costs (microbenchmarked below)
//! with the per-app event counts from the runtime statistics.
//!
//! Paper results: GradeSheet +7%, Battleship +56% (static barriers; ~1%
//! in the display variant), Calendar +14%, FreeCS <1%.

use laminar::{Labeled, Laminar, RegionParams};
use laminar_apps::battleship::{BaselineBattleship, Battleship};
use laminar_apps::calendar::{BaselineCalendar, CalendarSystem};
use laminar_apps::freecs::{BaselineChatServer, ChatServer};
use laminar_apps::gradesheet::{BaselineGradeSheet, GradeSheet};
use laminar_bench::{interleaved_medians, median_time, overhead_pct};
use laminar_os::UserId;
use std::time::Duration;

const TRIALS: usize = 5;

/// Measured unit costs of the Laminar primitives on this machine.
struct UnitCosts {
    region_ns: f64,
    alloc_ns: f64,
    access_ns: f64,
    dyn_access_ns: f64,
}

fn unit_costs() -> UnitCosts {
    let sys = Laminar::boot();
    sys.add_user(UserId(9), "cal");
    let p = sys.login(UserId(9)).unwrap();
    let t = p.create_tag().unwrap();
    let params = RegionParams::new()
        .secrecy(laminar_difc::Label::singleton(t))
        .grant(laminar_difc::Capability::plus(t));

    const N: u32 = 3_000;
    let region = median_time(TRIALS, || {
        for _ in 0..N {
            p.secure(&params, |_| Ok(()), |_| {}).unwrap();
        }
    }) / N;

    let cell = p.secure(&params, |g| Ok(g.new_labeled(0u64)), |_| {}).unwrap().unwrap();
    let alloc = median_time(TRIALS, || {
        p.secure(
            &params,
            |g| {
                for _ in 0..64 {
                    std::hint::black_box(g.new_labeled(0u64));
                }
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    }) / 64u32;

    let access = median_time(TRIALS, || {
        p.secure(
            &params,
            |g| {
                for _ in 0..64 {
                    cell.read(g, |v| std::hint::black_box(*v)).unwrap();
                }
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    }) / 64;

    let dyn_access = median_time(TRIALS, || {
        p.secure(
            &params,
            |_g| {
                let c: &Labeled<u64> = &cell;
                for _ in 0..64 {
                    c.read_dyn(|v| std::hint::black_box(*v)).unwrap();
                }
                Ok(())
            },
            |_| {},
        )
        .unwrap();
    }) / 64;

    UnitCosts {
        region_ns: region.as_nanos() as f64,
        alloc_ns: alloc.as_nanos() as f64,
        access_ns: access.as_nanos() as f64,
        dyn_access_ns: (dyn_access.as_nanos() as f64 - access.as_nanos() as f64).max(0.0),
    }
}

struct AppRow {
    name: String,
    base: Duration,
    secured: Duration,
    start_end_ns: f64,
    alloc_ns: f64,
    static_ns: f64,
    dynamic_ns: f64,
    paper: &'static str,
}

fn breakdown(stats: &laminar_apps::AppStats, u: &UnitCosts) -> (f64, f64, f64, f64) {
    let static_accesses = stats.labeled_reads + stats.labeled_writes
        - stats.dynamic_dispatches.min(stats.labeled_reads + stats.labeled_writes);
    (
        stats.regions_entered as f64 * u.region_ns,
        stats.labeled_allocs as f64 * u.alloc_ns,
        static_accesses as f64 * u.access_ns,
        stats.dynamic_dispatches as f64 * (u.access_ns + u.dyn_access_ns),
    )
}

fn main() {
    println!("Figure 9: overhead of applications retrofitted with Laminar");
    println!();
    // Spin briefly so CPU frequency scaling settles before the first
    // row is measured.
    let warm = std::time::Instant::now();
    while warm.elapsed() < std::time::Duration::from_millis(700) {
        std::hint::black_box(laminar_apps::workload::request_work(&["warmup"], 512));
    }
    let u = unit_costs();
    println!(
        "unit costs: region start/end {:.0}ns, labeled alloc {:.0}ns, \
         static barrier {:.0}ns, dynamic dispatch +{:.0}ns",
        u.region_ns, u.alloc_ns, u.access_ns, u.dyn_access_ns
    );
    println!();

    let mut rows: Vec<AppRow> = Vec::new();

    // --- GradeSheet -------------------------------------------------------
    {
        let sys = Laminar::boot();
        let gs = GradeSheet::new(&sys, 12, 4).unwrap();
        let mut base_app = BaselineGradeSheet::new(12, 4);
        let q = 600;
        gs.reset_stats();
        let (base, secured) = interleaved_medians(
            TRIALS,
            || {
                std::hint::black_box(base_app.run_workload(q).unwrap());
            },
            || {
                std::hint::black_box(gs.run_workload(q).unwrap());
            },
        );
        let stats = gs.stats();
        let (se, al, st, dy) = breakdown(&stats, &u);
        rows.push(AppRow {
            name: "GradeSheet".into(),
            base,
            secured,
            start_end_ns: se / TRIALS as f64,
            alloc_ns: al / TRIALS as f64,
            static_ns: st / TRIALS as f64,
            dynamic_ns: dy / TRIALS as f64,
            paper: "+7%",
        });
    }

    // --- Battleship (no display) -------------------------------------------
    {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 21, false).unwrap();
        let mut base_game = BaselineBattleship::new(&sys, 21, false).unwrap();
        game.reset_stats();
        let (base, secured) = interleaved_medians(
            TRIALS,
            || {
                std::hint::black_box(base_game.play(4).unwrap());
            },
            || {
                std::hint::black_box(game.play(4).unwrap());
            },
        );
        let stats = game.stats();
        let (se, al, st, dy) = breakdown(&stats, &u);
        rows.push(AppRow {
            name: "Battleship".into(),
            base,
            secured,
            start_end_ns: se / TRIALS as f64,
            alloc_ns: al / TRIALS as f64,
            static_ns: st / TRIALS as f64,
            dynamic_ns: dy / TRIALS as f64,
            paper: "+56%",
        });
    }

    // --- Battleship (display variant) --------------------------------------
    {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 21, true).unwrap();
        let mut base_game = BaselineBattleship::new(&sys, 21, true).unwrap();
        let (base, secured) = interleaved_medians(
            TRIALS,
            || {
                std::hint::black_box(base_game.play(4).unwrap());
            },
            || {
                std::hint::black_box(game.play(4).unwrap());
            },
        );
        rows.push(AppRow {
            name: "Battleship+display".into(),
            base,
            secured,
            start_end_ns: 0.0,
            alloc_ns: 0.0,
            static_ns: 0.0,
            dynamic_ns: 0.0,
            paper: "+1%",
        });
    }

    // --- Calendar -----------------------------------------------------------
    {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        let base_cal = BaselineCalendar::new(&sys).unwrap();
        let n = 250;
        cal.reset_stats();
        let (base, secured) = interleaved_medians(
            TRIALS,
            || {
                std::hint::black_box(base_cal.run_workload(n).unwrap());
            },
            || {
                std::hint::black_box(cal.run_workload(n).unwrap());
            },
        );
        let stats = cal.stats();
        let (se, al, st, dy) = breakdown(&stats, &u);
        rows.push(AppRow {
            name: "Calendar".into(),
            base,
            secured,
            start_end_ns: se / TRIALS as f64,
            alloc_ns: al / TRIALS as f64,
            static_ns: st / TRIALS as f64,
            dynamic_ns: dy / TRIALS as f64,
            paper: "+14%",
        });
    }

    // --- FreeCS --------------------------------------------------------------
    {
        let sys = Laminar::boot();
        let srv = ChatServer::new(&sys).unwrap();
        srv.login_user("owner", false).unwrap();
        srv.create_group("lobby", "owner").unwrap();
        let users = 128;
        for i in 0..users {
            srv.login_user(&format!("u{i}"), false).unwrap();
        }
        let mut base_srv = BaselineChatServer::new();
        base_srv.create_group("lobby", "owner");
        for i in 0..users {
            base_srv.login_user(&format!("u{i}"), false);
        }
        srv.reset_stats();
        let (base, secured) = interleaved_medians(
            TRIALS,
            || {
                std::hint::black_box(base_srv.run_workload(users, "lobby"));
            },
            || {
                std::hint::black_box(srv.run_workload(users, "lobby").unwrap());
            },
        );
        let stats = srv.stats();
        let (se, al, st, dy) = breakdown(&stats, &u);
        rows.push(AppRow {
            name: "FreeCS".into(),
            base,
            secured,
            start_end_ns: se / TRIALS as f64,
            alloc_ns: al / TRIALS as f64,
            static_ns: st / TRIALS as f64,
            dynamic_ns: dy / TRIALS as f64,
            paper: "<1%",
        });
    }

    let header = format!(
        "{:<19} {:>10} {:>12} {:>9} {:>8} | {:>9} {:>9} {:>9} {:>9}",
        "application",
        "base(ms)",
        "secured(ms)",
        "overhead",
        "paper",
        "startSR%",
        "alloc%",
        "static%",
        "dynamic%"
    );
    println!("{header}");
    laminar_bench::rule_for(&header);
    for r in rows {
        let base_ms = r.base.as_secs_f64() * 1e3;
        let sec_ms = r.secured.as_secs_f64() * 1e3;
        let extra = r.secured.as_nanos() as f64 - r.base.as_nanos() as f64;
        let frac = |x: f64| {
            if extra > 0.0 {
                100.0 * x / extra
            } else {
                0.0
            }
        };
        println!(
            "{:<19} {:>10.2} {:>12.2} {:>8.1}% {:>8} | {:>8.0}% {:>8.0}% {:>8.0}% {:>8.0}%",
            r.name,
            base_ms,
            sec_ms,
            overhead_pct(r.base, r.secured),
            r.paper,
            frac(r.start_end_ns),
            frac(r.alloc_ns),
            frac(r.static_ns),
            frac(r.dynamic_ns),
        );
    }
    println!();
    println!("(breakdown columns attribute the measured extra time to Laminar");
    println!(" primitives via counted events x microbenchmarked unit costs; they");
    println!(" can over/under-shoot 100% when cache effects dominate)");
}
