//! **PR 4** — lmbench-style multi-threaded syscall throughput on the
//! sharded kernel.
//!
//! Three workloads, each at 1/2/4/8 worker threads, each measured twice
//! on the *same* kernel: once in big-lock emulation
//! ([`Kernel::set_serial_mode`] — every syscall serialises on one
//! global mutex, the pre-PR-4 design) and once sharded (the default).
//!
//! * `labeled_file_read_heavy` — per-worker labeled file in a secret
//!   dir, 7 reads : 1 write. Disjoint inode shards; the workload the
//!   shard split exists for.
//! * `pipe_pingpong` — per-worker pipe, 64-byte write then read.
//! * `create_unlink_churn` — per-worker path created and unlinked; two
//!   directory-mutating syscalls per iteration on the shared `/tmp`.
//!
//! Results go to stdout and to `BENCH_PR4_smp.json` at the repo root.
//! `BENCH_SMOKE=1` shrinks volume, measures only 1 and 2 threads, and
//! *asserts* that the sharded kernel is no slower than the big-lock
//! baseline at each thread count (CI's anti-regression gate).
//!
//! Honesty note: aggregate wall-clock throughput cannot exceed what the
//! host's cores can retire. The JSON records `host_cpus`; on a 1-CPU
//! host the interesting ratio is sharded-vs-biglock at each thread
//! count (lock handoff and serialisation overhead), not parallel
//! speedup, and the JSON says so in its `caveat` field.

use laminar_bench::median_time;
use laminar_difc::{CapSet, Label, LabelType, SecPair};
use laminar_os::{Fd, Kernel, LaminarModule, TaskHandle, UserId};
use std::sync::Arc;
use std::time::Duration;

struct Volume {
    ops_per_worker: usize,
    trials: usize,
    thread_counts: &'static [usize],
    smoke: bool,
}

fn volume() -> Volume {
    if std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1") {
        Volume { ops_per_worker: 400, trials: 3, thread_counts: &[1, 2], smoke: true }
    } else {
        Volume {
            ops_per_worker: 4_000,
            trials: 5,
            thread_counts: &[1, 2, 4, 8],
            smoke: false,
        }
    }
}

/// One iteration of a workload: `f(worker_index, handle, iteration)`.
type WorkerBody = Box<dyn Fn(usize, &TaskHandle, usize) + Sync>;

/// A workload fixture: a booted kernel plus one task handle per worker,
/// and the per-iteration body each worker runs.
struct Fixture {
    kernel: Arc<Kernel>,
    workers: Vec<TaskHandle>,
    run: WorkerBody,
}

fn boot() -> (Arc<Kernel>, TaskHandle) {
    let k = Kernel::boot(LaminarModule);
    k.add_user(UserId(1), "bench");
    let root = k.login(UserId(1)).unwrap();
    (k, root)
}

/// Per-worker labeled file in a secret dir; workers are tainted at fork
/// so every read and write crosses a real flow check. 7 reads : 1 write.
fn labeled_file_read_heavy(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let tag = root.alloc_tag().unwrap();
    let secret = SecPair::secrecy_only(Label::singleton(tag));
    kernel.install_dir("/tmp/vault", secret.clone()).unwrap();
    root.set_task_label(LabelType::Secrecy, Label::singleton(tag)).unwrap();
    for w in 0..n {
        let fd = root
            .create_file_labeled(&format!("/tmp/vault/w{w}.dat"), secret.clone())
            .unwrap();
        root.write(fd, &[0u8; 64]).unwrap();
        root.close(fd).unwrap();
    }
    // Forked while tainted: the workers inherit the secrecy label.
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(|w, t, i| {
            let path = format!("/tmp/vault/w{w}.dat");
            if i % 8 == 7 {
                t.write_file_at(&path, &[i as u8; 64]).unwrap();
            } else {
                t.read_file_at(&path, 64).unwrap();
            }
        }),
    }
}

/// Per-worker pipe: one 64-byte write, one 64-byte read per iteration.
fn pipe_pingpong(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let pipes: Vec<(Fd, Fd)> = (0..n).map(|_| root.pipe().unwrap()).collect();
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(move |w, t, _| {
            let (r, wr) = pipes[w];
            t.write(wr, &[0x42u8; 64]).unwrap();
            let got = t.read(r, 64).unwrap();
            assert_eq!(got.len(), 64);
        }),
    }
}

/// Per-worker path in the shared `/tmp`: create, close, unlink.
fn create_unlink_churn(n: usize) -> Fixture {
    let (kernel, root) = boot();
    let workers = (0..n).map(|_| root.fork(Some(CapSet::new())).unwrap()).collect();
    Fixture {
        kernel,
        workers,
        run: Box::new(|w, t, _| {
            let path = format!("/tmp/churn{w}");
            let fd = t.create(&path).unwrap();
            t.close(fd).unwrap();
            t.unlink(&path).unwrap();
        }),
    }
}

/// One timed cell: `ops_per_worker` iterations on each of the fixture's
/// workers through [`Kernel::run_parallel`], median of `trials`.
fn measure(fx: &Fixture, ops_per_worker: usize, trials: usize) -> Duration {
    let task_sets: Vec<Vec<TaskHandle>> =
        fx.workers.iter().map(|t| vec![t.clone()]).collect();
    median_time(trials, || {
        fx.kernel.run_parallel(task_sets.clone(), |w, own| {
            for i in 0..ops_per_worker {
                (fx.run)(w, &own[0], i);
            }
        });
    })
}

fn ops_per_sec(total_ops: usize, d: Duration) -> f64 {
    total_ops as f64 / d.as_secs_f64()
}

struct Cell {
    threads: usize,
    biglock: f64,
    sharded: f64,
}

fn main() {
    let vol = volume();
    let host_cpus =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    type WorkloadRow = (&'static str, fn(usize) -> Fixture);
    let workloads: &[WorkloadRow] = &[
        ("labeled_file_read_heavy", labeled_file_read_heavy),
        ("pipe_pingpong", pipe_pingpong),
        ("create_unlink_churn", create_unlink_churn),
    ];

    println!(
        "PR4 SMP syscall throughput — {} ops/worker, median of {} trials, host_cpus={}",
        vol.ops_per_worker, vol.trials, host_cpus
    );
    let mut json_workloads = Vec::new();
    for (name, build) in workloads {
        println!("\n{name}");
        println!(
            "  {:>7}  {:>14}  {:>14}  {:>9}",
            "threads", "biglock op/s", "sharded op/s", "ratio"
        );
        let mut cells: Vec<Cell> = Vec::new();
        for &n in vol.thread_counts {
            let fx = build(n);
            let total = vol.ops_per_worker * n;
            // Warm-up (page in paths, fill caches) outside the timing.
            fx.kernel.run_parallel(
                fx.workers.iter().map(|t| vec![t.clone()]).collect(),
                |w, own| {
                    for i in 0..32 {
                        (fx.run)(w, &own[0], i);
                    }
                },
            );
            // Interleave the two modes so frequency drift hits both.
            fx.kernel.set_serial_mode(true);
            let big = measure(&fx, vol.ops_per_worker, vol.trials);
            fx.kernel.set_serial_mode(false);
            let shard = measure(&fx, vol.ops_per_worker, vol.trials);
            let cell = Cell {
                threads: n,
                biglock: ops_per_sec(total, big),
                sharded: ops_per_sec(total, shard),
            };
            println!(
                "  {:>7}  {:>14.0}  {:>14.0}  {:>8.2}x",
                n,
                cell.biglock,
                cell.sharded,
                cell.sharded / cell.biglock
            );
            cells.push(cell);
        }
        if vol.smoke {
            for c in &cells {
                assert!(
                    c.sharded >= 0.85 * c.biglock,
                    "{name}: sharded kernel regressed vs big-lock at {} threads \
                     ({:.0} vs {:.0} op/s)",
                    c.threads,
                    c.sharded,
                    c.biglock
                );
            }
        }
        let rows: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "        {{\"threads\": {}, \"biglock_ops_per_sec\": {:.0}, \
                     \"sharded_ops_per_sec\": {:.0}, \"sharded_vs_biglock\": {:.3}}}",
                    c.threads,
                    c.biglock,
                    c.sharded,
                    c.sharded / c.biglock
                )
            })
            .collect();
        let agg = cells
            .iter()
            .find(|c| c.threads == 4)
            .map_or(1.0, |c4| c4.sharded / cells[0].sharded);
        json_workloads.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"rows\": [\n{}\n      ],\n      \
             \"sharded_aggregate_4t_vs_1t\": {agg:.3}\n    }}",
            rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_PR4_smp\",\n  \"host_cpus\": {host_cpus},\n  \
         \"smoke\": {},\n  \"ops_per_worker\": {},\n  \"trials\": {},\n  \
         \"caveat\": \"aggregate wall-clock throughput is bounded by host_cpus; on a \
         single-CPU host the meaningful column is sharded_vs_biglock at each thread \
         count (serialisation overhead removed by the shard split), while \
         sharded_aggregate_4t_vs_1t reflects hardware parallelism, not kernel \
         scalability\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        vol.smoke,
        vol.ops_per_worker,
        vol.trials,
        json_workloads.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4_smp.json");
    if vol.smoke {
        println!("\nsmoke mode: not overwriting {path}");
    } else {
        std::fs::write(path, json).unwrap();
        println!("\nwrote {path}");
    }
}
