//! **Table 4** — the GradeSheet security sets, printed and *probed*.
//!
//! Beyond printing the policy table, this target verifies the policy
//! end-to-end: for every (principal, operation) pair it attempts the
//! access and reports allow/deny, demonstrating that the label
//! assignment implements exactly the intended matrix:
//!
//! 1. the professor can read/write any cell,
//! 2. a TA can read all marks but modify only her own project's,
//! 3. a student can view only their own marks, on any project.

use laminar::Laminar;
use laminar_apps::gradesheet::GradeSheet;

fn verdict(ok: bool) -> &'static str {
    if ok {
        "allow"
    } else {
        "deny"
    }
}

fn main() {
    let sys = Laminar::boot();
    let gs = GradeSheet::new(&sys, 3, 2).unwrap();

    println!("Table 4: security sets of the GradeSheet principals and data");
    println!();
    print!("{}", gs.policy_table());
    println!();

    // Seed some grades.
    for i in 0..3 {
        for j in 0..2 {
            gs.professor_set(i, j, (10 * (i + 1) + j) as i64).unwrap();
        }
    }

    println!("policy probe (every access attempted against the live labels):");
    let header = format!("{:<44} {:>8}", "operation", "verdict");
    println!("{header}");
    laminar_bench::rule_for(&header);

    println!(
        "{:<44} {:>8}",
        "professor writes cell (0,0)",
        verdict(gs.professor_set(0, 0, 91).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "professor reads class average (project 0)",
        verdict(gs.professor_average(0).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "TA(0) writes cell (1,0)  [own project]",
        verdict(gs.ta_set(0, 1, 0, 80).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "TA(0) writes cell (1,1)  [other project]",
        verdict(gs.ta_set(0, 1, 1, 80).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "TA(1) reads cell (2,0)   [any student]",
        verdict(gs.ta_read(1, 2, 0).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "student(0) reads cell (0,1) [own marks]",
        verdict(gs.student_read(0, 1).is_ok())
    );
    println!(
        "{:<44} {:>8}",
        "student(0) reads cell (1,1) [other student]",
        verdict(gs.student_read_other(0, 1, 1).is_ok())
    );

    println!();
    println!("the leak Laminar found: under the original policy any student could");
    println!("compute the average (leaking others' marks); here only the professor");
    println!("holds every s_i- needed to declassify an aggregate.");
}
