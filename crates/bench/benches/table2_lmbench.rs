//! **Table 2** — lmbench-style OS microbenchmarks.
//!
//! Runs the same simulated kernel twice — once with the do-nothing
//! [`NullModule`] ("unmodified Linux") and once with the Laminar LSM —
//! and reports per-operation latency and percentage overhead for the
//! paper's rows: `stat`, `fork`, `exec`, 0k file create, 0k file delete,
//! mmap latency, prot fault and null I/O.
//!
//! Methodology: both kernels are set up first; for each row the base and
//! Laminar variants are measured in *interleaved* trials (so CPU
//! frequency drift hits both equally), and medians are reported.
//!
//! Paper result: everything under 8% except null I/O at 31% (the
//! syscall does so little work that the label check dominates). Flume,
//! for comparison, adds 4–35× to syscall latency.

use laminar_bench::overhead_pct;
use laminar_os::{
    Kernel, LaminarModule, NullModule, OpenMode, SecurityModule, TaskHandle, UserId,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ITERS: usize = 4_000;
const TRIALS: usize = 9;

fn setup<M: SecurityModule + 'static>(module: M) -> (Arc<Kernel>, TaskHandle) {
    let k = Kernel::boot(module);
    k.add_user(UserId(1), "bench");
    let t = k.login(UserId(1)).unwrap();
    let fd = t.create("data.bin").unwrap();
    t.write(fd, &[0u8; 64]).unwrap();
    t.close(fd).unwrap();
    (k, t)
}

/// One microbenchmark: `run(task)` performs ITERS operations and leaves
/// the filesystem in its starting state.
struct Row {
    name: &'static str,
    paper: &'static str,
    run: Box<dyn Fn(&TaskHandle)>,
}

fn rows() -> Vec<Row> {
    let names: Arc<Vec<String>> =
        Arc::new((0..ITERS).map(|i| format!("t{i}.tmp")).collect());

    vec![
        Row {
            name: "stat",
            paper: "2.0%",
            run: Box::new(|t| {
                for _ in 0..ITERS {
                    t.stat("data.bin").unwrap();
                }
            }),
        },
        Row {
            name: "fork",
            paper: "0.6%",
            run: Box::new(|t| {
                for _ in 0..ITERS {
                    t.fork(None).unwrap().exit().unwrap();
                }
            }),
        },
        Row {
            name: "exec",
            paper: "0.6%",
            run: Box::new(|t| {
                for _ in 0..ITERS {
                    let c = t.fork(None).unwrap();
                    c.exec("data.bin").unwrap();
                    c.exit().unwrap();
                }
            }),
        },
        Row {
            name: "0k file create",
            paper: "4.0%",
            run: {
                let names = Arc::clone(&names);
                Box::new(move |t| {
                    for n in names.iter() {
                        let fd = t.create(n).unwrap();
                        t.close(fd).unwrap();
                    }
                    // Restore state (untimed share is identical across
                    // modules, so the comparison stays fair).
                    for n in names.iter() {
                        t.unlink(n).unwrap();
                    }
                })
            },
        },
        Row {
            name: "0k file delete",
            paper: "6.0%",
            run: {
                let names = Arc::clone(&names);
                Box::new(move |t| {
                    for n in names.iter() {
                        let fd = t.create(n).unwrap();
                        t.close(fd).unwrap();
                    }
                    for n in names.iter() {
                        t.unlink(n).unwrap();
                    }
                })
            },
        },
        Row {
            name: "mmap latency",
            paper: "2.0%",
            run: Box::new(|t| {
                for _ in 0..ITERS {
                    let a = t.mmap(16, None).unwrap();
                    t.munmap(a).unwrap();
                }
            }),
        },
        Row {
            name: "prot fault",
            paper: "7.0%",
            run: Box::new(|t| {
                let area = t.mmap(4, None).unwrap();
                t.mprotect(area, false, false).unwrap();
                for _ in 0..ITERS {
                    let _ = t.page_access(area, false);
                }
                t.munmap(area).unwrap();
            }),
        },
        Row {
            name: "null I/O",
            paper: "31.0%",
            run: Box::new(|t| {
                let w = t.open("/dev/null", OpenMode::Write).unwrap();
                let r = t.open("/dev/null", OpenMode::Read).unwrap();
                for _ in 0..ITERS {
                    t.write(w, &[0]).unwrap();
                    let _ = t.read(r, 1).unwrap();
                }
                t.close(w).unwrap();
                t.close(r).unwrap();
            }),
        },
    ]
}

fn main() {
    println!("Table 2: lmbench-style OS microbenchmarks (per-op latency)");
    println!("(kernel identical; only the loaded security module differs;");
    println!(" {TRIALS} interleaved trials of {ITERS} ops each, medians)");
    println!();

    let (_k0, base_task) = setup(NullModule);
    let (_k1, lam_task) = setup(LaminarModule);

    let header = format!(
        "{:<16} {:>12} {:>14} {:>10}   {}",
        "benchmark", "linux(us)", "laminar(us)", "overhead", "paper"
    );
    println!("{header}");
    laminar_bench::rule_for(&header);

    for row in rows() {
        // Warmup both.
        (row.run)(&base_task);
        (row.run)(&lam_task);
        let mut base_samples = Vec::with_capacity(TRIALS);
        let mut lam_samples = Vec::with_capacity(TRIALS);
        for _ in 0..TRIALS {
            let t0 = Instant::now();
            (row.run)(&base_task);
            base_samples.push(t0.elapsed());
            let t1 = Instant::now();
            (row.run)(&lam_task);
            lam_samples.push(t1.elapsed());
        }
        base_samples.sort_unstable();
        lam_samples.sort_unstable();
        let b: Duration = base_samples[TRIALS / 2] / ITERS as u32;
        let l: Duration = lam_samples[TRIALS / 2] / ITERS as u32;
        println!(
            "{:<16} {:>12.3} {:>14.3} {:>9.1}%   {}",
            row.name,
            b.as_secs_f64() * 1e6,
            l.as_secs_f64() * 1e6,
            overhead_pct(b, l),
            row.paper
        );
    }
    println!();
    println!("laminar hook invocations during suite: {}", lam_task.kernel().hook_calls());
}
