//! # laminar-bench — the evaluation harness
//!
//! Regenerates every table and figure of the Laminar paper's evaluation
//! (§6–§7). Each `benches/` target prints the same rows/series the paper
//! reports:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig8_vm_overhead` | Figure 8: VM barrier overhead (static ≈ +6%, dynamic ≈ +17%) and compile-time ratios |
//! | `table2_lmbench` | Table 2: lmbench-style OS microbenchmarks, Null vs Laminar LSM |
//! | `table3_apps` | Table 3: application characteristics incl. % time in security regions |
//! | `table4_gradesheet_policy` | Table 4: the GradeSheet security sets, printed and probed |
//! | `fig9_app_overhead` | Figure 9: per-application overhead with the cost breakdown |
//! | `micro_criterion` | Microbenchmarks of the primitive operations, incl. cached vs uncached flow checks |
//!
//! The library half hosts the DaCapo-like [`workloads`] and the timing
//! utilities shared by the targets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod workloads;

use std::time::{Duration, Instant};

/// Times one invocation of `f`.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Runs `f` `trials` times and returns the median duration — the paper
/// reports medians over 10 trials for the same reason (compilation and
/// scheduling jitter).
pub fn median_time<F: FnMut()>(trials: usize, mut f: F) -> Duration {
    assert!(trials > 0);
    let mut samples: Vec<Duration> = (0..trials).map(|_| time_once(&mut f)).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times two closures with *interleaved* trials (each trial runs both,
/// back to back) and returns their median durations — the methodology
/// every comparative harness here uses, so frequency drift and cache
/// warmth hit both variants equally.
pub fn interleaved_medians<FA: FnMut(), FB: FnMut()>(
    trials: usize,
    mut a: FA,
    mut b: FB,
) -> (Duration, Duration) {
    assert!(trials > 0);
    // Warmup both.
    a();
    b();
    let mut sa = Vec::with_capacity(trials);
    let mut sb = Vec::with_capacity(trials);
    for _ in 0..trials {
        sa.push(time_once(&mut a));
        sb.push(time_once(&mut b));
    }
    sa.sort_unstable();
    sb.sort_unstable();
    (sa[trials / 2], sb[trials / 2])
}

/// Like [`interleaved_medians`], but returns each closure's *minimum*
/// duration. For CPU-bound bodies, external interference (scheduling,
/// frequency drift, a noisy co-tenant) only ever adds time, so best-of-N
/// is the lowest-variance estimator of intrinsic cost — the right choice
/// when a pass/fail gate must not flake on small or shared hosts, where
/// a median can still land on a perturbed trial.
pub fn interleaved_best<FA: FnMut(), FB: FnMut()>(
    trials: usize,
    mut a: FA,
    mut b: FB,
) -> (Duration, Duration) {
    assert!(trials > 0);
    a();
    b();
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..trials {
        best_a = best_a.min(time_once(&mut a));
        best_b = best_b.min(time_once(&mut b));
    }
    (best_a, best_b)
}

/// Percentage overhead of `new` relative to `base`.
#[must_use]
pub fn overhead_pct(base: Duration, new: Duration) -> f64 {
    if base.as_nanos() == 0 {
        return 0.0;
    }
    (new.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// Geometric mean of (1 + overhead) factors, expressed back as a
/// percentage — how the paper aggregates per-benchmark overheads.
#[must_use]
pub fn geomean_overhead(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).max(1e-9).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

/// Prints a table rule line sized to the given header.
pub fn rule_for(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let base = Duration::from_millis(100);
        let new = Duration::from_millis(106);
        assert!((overhead_pct(base, new) - 6.0).abs() < 0.01);
        assert_eq!(overhead_pct(Duration::ZERO, new), 0.0);
    }

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        let g = geomean_overhead(&[10.0, 10.0, 10.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geomean_overhead(&[]), 0.0);
    }

    #[test]
    fn interleaved_best_takes_the_minimum() {
        // Timed trials sleep 8ms then 1ms (the warmup call sleeps 8ms
        // too); the min estimator must report the cheap trial.
        let mut sleeps = [8u64, 8, 1].into_iter();
        let (a, _b) = interleaved_best(
            2,
            || std::thread::sleep(Duration::from_millis(sleeps.next().unwrap_or(1))),
            || {},
        );
        assert!(a < Duration::from_millis(8), "best-of-N must pick the 1ms trial: {a:?}");
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // smoke
    }
}
