//! Field-heavy workload: build a complete binary tree of `Node` objects
//! (depth `n`), then traverse it several times summing values. Dominated
//! by `GetField` barriers, with an allocation-heavy build phase.

use laminar_vm::{Program, ProgramBuilder};

/// Builds the program. `main(depth)` returns the traversal checksum.
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    // Node { left, right, val }
    let node = pb.add_class("Node", 3);

    // mktree(depth) -> Node
    let mktree = pb.declare_func("mktree", 1, true);
    pb.define_func(mktree, 2, |b| {
        // if depth == 0 -> leaf
        let rec = b.new_label();
        b.load(0).push_int(0).cmp_eq().jump_if_false(rec);
        b.new_object(node).store(1);
        b.load(1).push_int(0).get_field_init(); // leaf val = depth marker 1
        b.load(1).ret();
        b.bind(rec);
        b.new_object(node).store(1);
        // left
        b.load(1);
        b.load(0).push_int(1).sub().call(mktree);
        b.put_field(0);
        // right
        b.load(1);
        b.load(0).push_int(1).sub().call(mktree);
        b.put_field(1);
        // val = depth
        b.load(1).load(0).put_field(2);
        b.load(1).ret();
    });

    // sum(node) -> int  (recursive traversal)
    let sum = pb.declare_func("sum", 1, true);
    pb.define_func(sum, 3, |b| {
        // locals: 0=node, 1=acc, 2=child
        b.load(0).get_field(2).store(1);
        // left
        b.load(0).get_field(0).store(2);
        let no_left = b.new_label();
        b.load(2).push_null().cmp_eq().jump_if_true(no_left);
        b.load(1).load(2).call(sum).add().store(1);
        b.bind(no_left);
        // right
        b.load(0).get_field(1).store(2);
        let no_right = b.new_label();
        b.load(2).push_null().cmp_eq().jump_if_true(no_right);
        b.load(1).load(2).call(sum).add().store(1);
        b.bind(no_right);
        b.load(1).ret();
    });

    pb.func("main", 1, true, 4, |b| {
        // locals: 0=depth, 1=root, 2=acc, 3=i
        b.load(0).call(mktree).store(1);
        b.push_int(0).store(2);
        b.push_int(0).store(3);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(3).push_int(4).cmp_lt().jump_if_false(done);
        b.load(2).load(1).call(sum).add().store(2);
        b.load(3).push_int(1).add().store(3);
        b.jump(head);
        b.bind(done);
        b.load(2).ret();
    });

    pb.finish().expect("object_graph workload must verify")
}

/// Leaf initialisation helper: sets `val = 1` on the object whose ref and
/// field index are on the stack (keeps the builder call sites terse).
trait LeafInit {
    /// Consumes `[node, fieldidx]`, emits `node.val = 1` via field 2.
    fn get_field_init(&mut self) -> &mut Self;
}

impl LeafInit for laminar_vm::FunctionBuilder {
    fn get_field_init(&mut self) -> &mut Self {
        // stack: [node, 0]; drop the 0, write val=1.
        self.pop().push_int(1).put_field(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn tree_sum_is_deterministic_and_correct() {
        let mut vm = Vm::new(build(), vec![], BarrierMode::Static);
        // depth 3: internal nodes carry their depth, leaves carry 1.
        // sum = Σ_{d=1..3} d·2^(3-d) + 2^3·1 = (3·1 + 2·2 + 1·4) + 8 = 19
        // traversed 4 times → 76.
        let out = vm.call_by_name("main", &[Value::Int(3)]).unwrap().unwrap();
        assert_eq!(out, Value::Int(76));
    }
}
