//! Open-addressing hash-table workload: insert and probe `n` keys in a
//! linear-probed table held in two arrays. Mixes `ALoad`-dominated
//! probing with `AStore` insertion traffic.

use laminar_vm::{Program, ProgramBuilder};

const TABLE: i64 = 1 << 15;
const MASK: i64 = TABLE - 1;

/// Builds the program. `main(n)` inserts keys `k·2654435761 mod 2^31`
/// for `k < n`, then probes them all; returns hits plus a value sample.
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();

    // insert(keys, vals, k, v): linear probe for empty slot (key 0 = empty).
    let insert = pb.func("insert", 4, false, 6, |b| {
        // locals: 0=keys,1=vals,2=k,3=v,4=idx
        b.load(2).push_int(MASK).and_mask();
        b.store(4);
        let probe = b.new_label();
        let done = b.new_label();
        b.bind(probe);
        // if keys[idx] == 0 -> place
        b.load(0).load(4).aload().push_int(0).cmp_eq();
        let place = b.new_label();
        b.jump_if_true(place);
        // if keys[idx] == k -> overwrite value
        b.load(0).load(4).aload().load(2).cmp_eq();
        b.jump_if_true(place);
        // idx = (idx + 1) & MASK
        b.load(4).push_int(1).add().push_int(MASK).and_mask().store(4);
        b.jump(probe);
        b.bind(place);
        b.load(0).load(4).load(2).astore();
        b.load(1).load(4).load(3).astore();
        b.jump(done);
        b.bind(done);
        b.ret();
    });

    // lookup(keys, vals, k) -> v or -1
    let lookup = pb.func("lookup", 3, true, 5, |b| {
        b.load(2).push_int(MASK).and_mask().store(3);
        b.push_int(0).store(4); // steps guard
        let probe = b.new_label();
        let miss = b.new_label();
        b.bind(probe);
        b.load(4).push_int(TABLE).cmp_lt();
        b.jump_if_false(miss);
        b.load(0).load(3).aload().load(2).cmp_eq();
        let hit = b.new_label();
        b.jump_if_true(hit);
        b.load(0).load(3).aload().push_int(0).cmp_eq();
        b.jump_if_true(miss);
        b.load(3).push_int(1).add().push_int(MASK).and_mask().store(3);
        b.load(4).push_int(1).add().store(4);
        b.jump(probe);
        b.bind(hit);
        b.load(1).load(3).aload().ret();
        b.bind(miss);
        b.push_int(-1).ret();
    });

    pb.func("main", 1, true, 6, |b| {
        // locals: 0=n,1=keys,2=vals,3=i,4=acc
        b.push_int(TABLE).new_array().store(1);
        b.push_int(TABLE).new_array().store(2);
        // zero-init keys (Null != Int 0, so fill explicitly)
        b.push_int(0).store(3);
        let z = b.new_label();
        let zdone = b.new_label();
        b.bind(z);
        b.load(3).push_int(TABLE).cmp_lt().jump_if_false(zdone);
        b.load(1).load(3).push_int(0).astore();
        b.load(3).push_int(1).add().store(3);
        b.jump(z);
        b.bind(zdone);

        // inserts
        b.push_int(0).store(3);
        let ins = b.new_label();
        let insdone = b.new_label();
        b.bind(ins);
        b.load(3).load(0).cmp_lt().jump_if_false(insdone);
        // k = (i+1) * 2654435761 mod 2^31, never 0
        b.load(1).load(2);
        b.load(3)
            .push_int(1)
            .add()
            .push_int(2_654_435_761)
            .mul()
            .push_int(0x7fff_ffff)
            .and_mask()
            .push_int(1)
            .or_one();
        b.load(3); // value = i
        b.call(insert);
        b.load(3).push_int(1).add().store(3);
        b.jump(ins);
        b.bind(insdone);

        // lookups
        b.push_int(0).store(3);
        b.push_int(0).store(4);
        let lk = b.new_label();
        let lkdone = b.new_label();
        b.bind(lk);
        b.load(3).load(0).cmp_lt().jump_if_false(lkdone);
        b.load(1).load(2);
        b.load(3)
            .push_int(1)
            .add()
            .push_int(2_654_435_761)
            .mul()
            .push_int(0x7fff_ffff)
            .and_mask()
            .push_int(1)
            .or_one();
        b.call(lookup);
        b.load(4).add().store(4);
        b.load(3).push_int(1).add().store(3);
        b.jump(lk);
        b.bind(lkdone);
        b.load(4).ret();
    });

    pb.finish().expect("hash_churn workload must verify")
}

/// Integer helpers the instruction set lacks, expressed as emit patterns.
trait BitHelp {
    /// `x & mask` for a power-of-two mask via `x mod (mask+1)` on a
    /// non-negative operand.
    fn and_mask(&mut self) -> &mut Self;
    /// `x | 1` via parity: `x + 1 - (x mod 2)`.
    fn or_one(&mut self) -> &mut Self;
}

impl BitHelp for laminar_vm::FunctionBuilder {
    fn and_mask(&mut self) -> &mut Self {
        // stack: [x, mask] -> [x mod (mask+1)]; operands guaranteed >= 0.
        self.push_int(1).add().modulo()
    }
    fn or_one(&mut self) -> &mut Self {
        // stack: [x, 1] -> discard the 1, compute x + (1 - x mod 2)
        self.pop().dup().push_int(2).modulo().neg().push_int(1).add().add()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn all_inserted_keys_are_found() {
        let mut vm = Vm::new(build(), vec![], BarrierMode::Static);
        let out = vm.call_by_name("main", &[Value::Int(100)]).unwrap().unwrap();
        // acc = sum of values 0..100 = 4950 (every lookup hits).
        assert_eq!(out, Value::Int(4950));
    }
}
