//! Synthetic DaCapo-like workloads for the MiniVM.
//!
//! Figure 8 of the paper measures barrier overhead on the DaCapo suite
//! and pseudojbb — ordinary Java programs *without* security regions.
//! DaCapo needs a real JVM, so these bytecode programs stand in: each is
//! barrier-dense in a different way (array churn, field-heavy object
//! graphs, hash probing, numeric kernels, buffer growth, transaction
//! records), which is the property the measurement depends on.
//!
//! Every workload exposes `build()` → a verified [`Program`] whose
//! `main(n)` entry returns a checksum, so results can be validated
//! across barrier modes (all modes must compute identical values).

mod hash_churn;
mod list_sort;
mod matrix_mult;
mod object_graph;
mod pseudojbb;
mod vec_grow;

pub use hash_churn::build as hash_churn;
pub use list_sort::build as list_sort;
pub use matrix_mult::build as matrix_mult;
pub use object_graph::build as object_graph;
pub use pseudojbb::build as pseudojbb;
pub use vec_grow::build as vec_grow;

use laminar_vm::Program;

/// All workloads with display names and the `n` sizing used by the
/// Figure 8 harness.
#[must_use]
pub fn all() -> Vec<(&'static str, Program, i64)> {
    vec![
        ("list_sort", list_sort(), 600),
        ("hash_churn", hash_churn(), 20_000),
        ("object_graph", object_graph(), 14),
        ("matrix_mult", matrix_mult(), 48),
        ("vec_grow", vec_grow(), 30_000),
        ("pseudojbb", pseudojbb(), 8_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    /// Small test sizes; note `object_graph`'s n is a tree *depth*.
    fn test_size(name: &str) -> i64 {
        if name == "object_graph" {
            5
        } else {
            32
        }
    }

    #[test]
    fn all_workloads_verify_and_run_consistently() {
        for (name, program, _) in all() {
            let n = test_size(name);
            let mut results = Vec::new();
            for mode in [BarrierMode::None, BarrierMode::Static, BarrierMode::Dynamic] {
                let mut vm = Vm::new(program.clone(), vec![], mode);
                let out = vm
                    .call_by_name("main", &[Value::Int(n)])
                    .unwrap_or_else(|e| panic!("{name} failed under {mode:?}: {e}"));
                results.push(out);
            }
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "{name}: barrier modes disagree: {results:?}"
            );
        }
    }

    #[test]
    fn workloads_execute_barriers() {
        for (name, program, _) in all() {
            let mut vm = Vm::new(program, vec![], BarrierMode::Dynamic);
            vm.call_by_name("main", &[Value::Int(test_size(name))]).unwrap();
            assert!(
                vm.stats().read_barriers + vm.stats().write_barriers > 0,
                "{name} must exercise barriers"
            );
        }
    }

    #[test]
    fn redundancy_elimination_removes_barriers_somewhere() {
        let mut any = 0;
        for (name, program, _) in all() {
            let mut vm = Vm::new(program, vec![], BarrierMode::Dynamic);
            vm.call_by_name("main", &[Value::Int(test_size(name))]).unwrap();
            any += vm.stats().barriers_eliminated;
        }
        assert!(any > 0, "the optimization should fire on the suite");
    }
}
