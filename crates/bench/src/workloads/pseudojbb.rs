//! pseudojbb-like workload: a fixed-work transaction loop over order
//! objects (the paper's SPECjbb2000 variant runs a fixed workload
//! instead of a fixed time). Each transaction allocates an order,
//! updates warehouse stock fields, and retires the oldest in-flight
//! order — a steady mix of allocation, field reads and field writes.

use laminar_vm::{Program, ProgramBuilder};

const WINDOW: i64 = 64;

/// Builds the program. `main(n)` processes `n` transactions and returns
/// the final stock checksum.
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();
    // Order { item, qty, amount }
    let order = pb.add_class("Order", 3);
    // Warehouse { stock_array, cash }
    let warehouse = pb.add_class("Warehouse", 2);

    // new_order(w, i) -> Order
    let new_order = pb.func("new_order", 2, true, 4, |b| {
        // locals: 0=w,1=i,2=o,3=item
        b.new_object(order).store(2);
        b.load(1).push_int(17).mul().push_int(256).modulo().store(3);
        b.load(2).load(3).put_field(0);
        b.load(2).load(1).push_int(7).modulo().push_int(1).add().put_field(1);
        b.load(2).load(3).push_int(3).mul().put_field(2);
        // stock[item] -= qty; cash += amount
        b.load(0).get_field(0); // stock array
        b.load(3);
        b.load(0).get_field(0).load(3).aload();
        b.load(2).get_field(1).sub();
        b.astore();
        b.load(0);
        b.load(0).get_field(1).load(2).get_field(2).add();
        b.put_field(1);
        b.load(2).ret();
    });

    // retire(w, o): restock
    let retire = pb.func("retire", 2, false, 3, |b| {
        b.load(0).get_field(0);
        b.load(1).get_field(0);
        b.load(0).get_field(0).load(1).get_field(0).aload();
        b.load(1).get_field(1).add();
        b.astore();
        b.ret();
    });

    pb.func("main", 1, true, 6, |b| {
        // locals: 0=n,1=w,2=ring,3=i,4=o
        b.new_object(warehouse).store(1);
        b.load(1).push_int(256).new_array().put_field(0);
        b.load(1).push_int(0).put_field(1);
        // zero stock
        b.push_int(0).store(3);
        let z = b.new_label();
        let zdone = b.new_label();
        b.bind(z);
        b.load(3).push_int(256).cmp_lt().jump_if_false(zdone);
        b.load(1).get_field(0).load(3).push_int(1_000).astore();
        b.load(3).push_int(1).add().store(3);
        b.jump(z);
        b.bind(zdone);
        // in-flight ring of orders
        b.push_int(WINDOW).new_array().store(2);
        // transactions
        b.push_int(0).store(3);
        let tx = b.new_label();
        let txdone = b.new_label();
        b.bind(tx);
        b.load(3).load(0).cmp_lt().jump_if_false(txdone);
        // retire slot if occupied
        b.load(2).load(3).push_int(WINDOW).modulo().aload().store(4);
        b.load(4).push_null().cmp_eq();
        let fresh = b.new_label();
        b.jump_if_true(fresh);
        b.load(1).load(4).call(retire);
        b.bind(fresh);
        // place new order in ring
        b.load(2).load(3).push_int(WINDOW).modulo();
        b.load(1).load(3).call(new_order);
        b.astore();
        b.load(3).push_int(1).add().store(3);
        b.jump(tx);
        b.bind(txdone);
        // checksum: cash + stock[1] + stock[100]
        b.load(1).get_field(1);
        b.load(1).get_field(0).push_int(1).aload().add();
        b.load(1).get_field(0).push_int(100).aload().add();
        b.ret();
    });

    pb.finish().expect("pseudojbb workload must verify")
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn fixed_workload_is_deterministic() {
        let run = |mode| {
            let mut vm = Vm::new(build(), vec![], mode);
            vm.call_by_name("main", &[Value::Int(500)]).unwrap().unwrap()
        };
        let a = run(BarrierMode::None);
        let b = run(BarrierMode::Static);
        let c = run(BarrierMode::Dynamic);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
