//! Buffer-growth workload: append `n` values into a growable vector
//! implemented over plain arrays with doubling-and-copy, like a
//! string-builder. Mixes allocation, bulk copies and bounds-heavy
//! access.

use laminar_vm::{Program, ProgramBuilder};

/// Builds the program. `main(n)` appends `n` values (doubling capacity
/// from 8) and returns a sampled checksum.
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();

    // copy(src, dst, len)
    let copy = pb.func("copy", 3, false, 4, |b| {
        b.push_int(0).store(3);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(3).load(2).cmp_lt().jump_if_false(done);
        b.load(1).load(3);
        b.load(0).load(3).aload();
        b.astore();
        b.load(3).push_int(1).add().store(3);
        b.jump(head);
        b.bind(done);
        b.ret();
    });

    pb.func("main", 1, true, 7, |b| {
        // locals: 0=n,1=buf,2=len,3=cap,4=i,5=tmp
        b.push_int(8).new_array().store(1);
        b.push_int(0).store(2);
        b.push_int(8).store(3);
        b.push_int(0).store(4);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(4).load(0).cmp_lt().jump_if_false(done);
        // grow if len == cap
        b.load(2).load(3).cmp_eq();
        let nogrow = b.new_label();
        b.jump_if_false(nogrow);
        b.load(3).push_int(2).mul().new_array().store(5);
        b.load(1).load(5).load(2).call(copy);
        b.load(5).store(1);
        b.load(3).push_int(2).mul().store(3);
        b.bind(nogrow);
        // buf[len++] = i*31 mod 1009
        b.load(1).load(2);
        b.load(4).push_int(31).mul().push_int(1009).modulo();
        b.astore();
        b.load(2).push_int(1).add().store(2);
        b.load(4).push_int(1).add().store(4);
        b.jump(head);
        b.bind(done);
        // checksum: buf[0] + buf[len/2] + buf[len-1] + len
        b.load(1).push_int(0).aload();
        b.load(1).load(2).push_int(2).div().aload().add();
        b.load(1).load(2).push_int(1).sub().aload().add();
        b.load(2).add();
        b.ret();
    });

    pb.finish().expect("vec_grow workload must verify")
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn growth_preserves_contents() {
        let mut vm = Vm::new(build(), vec![], BarrierMode::Dynamic);
        let out = vm.call_by_name("main", &[Value::Int(100)]).unwrap().unwrap();
        // buf[0]=0, buf[50]=50*31%1009=541, buf[99]=99*31%1009=42; +100
        assert_eq!(out, Value::Int(541 + 42 + 100));
    }
}
