//! Array-churn workload: fill an array from an LCG, insertion-sort it,
//! and checksum. Dominated by `ALoad`/`AStore` barriers.

use laminar_vm::{Program, ProgramBuilder};

/// Builds the program. `main(n)` sorts an `n`-element array and returns
/// `a[0] + a[n/2] + a[n-1]` plus an order-violation count (always 0 when
/// correct, keeping the sort honest).
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();

    // fill(arr, n): arr[i] = lcg stream, bounded to 0..100000.
    let fill = pb.func("fill", 2, false, 5, |b| {
        // locals: 0=arr, 1=n, 2=i, 3=seed
        b.push_int(0).store(2);
        b.push_int(123_456_789).store(3);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(2).load(1).cmp_lt().jump_if_false(done);
        // seed = seed * 1103515245 + 12345
        b.load(3).push_int(1_103_515_245).mul().push_int(12_345).add().store(3);
        // arr[i] = abs(seed) % 100000
        b.load(0).load(2);
        b.load(3).dup().push_int(0).cmp_lt();
        let pos = b.new_label();
        b.jump_if_false(pos);
        b.neg();
        b.bind(pos);
        b.push_int(100_000).modulo();
        b.astore();
        b.load(2).push_int(1).add().store(2);
        b.jump(head);
        b.bind(done);
        b.ret();
    });

    // sort(arr, n): insertion sort.
    let sort = pb.func("sort", 2, false, 6, |b| {
        // locals: 0=arr, 1=n, 2=i, 3=j, 4=key
        b.push_int(1).store(2);
        let outer = b.new_label();
        let outer_done = b.new_label();
        b.bind(outer);
        b.load(2).load(1).cmp_lt().jump_if_false(outer_done);
        // key = arr[i]; j = i - 1
        b.load(0).load(2).aload().store(4);
        b.load(2).push_int(1).sub().store(3);
        let inner = b.new_label();
        let inner_done = b.new_label();
        b.bind(inner);
        // while j >= 0 && arr[j] > key
        b.load(3).push_int(0).cmp_lt();
        b.jump_if_true(inner_done);
        b.load(0).load(3).aload().load(4).cmp_le();
        b.jump_if_true(inner_done);
        // arr[j+1] = arr[j]; j--
        b.load(0).load(3).push_int(1).add();
        b.load(0).load(3).aload();
        b.astore();
        b.load(3).push_int(1).sub().store(3);
        b.jump(inner);
        b.bind(inner_done);
        // arr[j+1] = key
        b.load(0).load(3).push_int(1).add().load(4).astore();
        b.load(2).push_int(1).add().store(2);
        b.jump(outer);
        b.bind(outer_done);
        b.ret();
    });

    // violations(arr, n) -> count of out-of-order adjacent pairs.
    let violations = pb.func("violations", 2, true, 5, |b| {
        b.push_int(0).store(2); // i
        b.push_int(0).store(3); // count
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(2).load(1).push_int(1).sub().cmp_lt().jump_if_false(done);
        b.load(0).load(2).push_int(1).add().aload(); // arr[i+1]
        b.load(0).load(2).aload(); // arr[i]
        b.cmp_lt(); // arr[i+1] < arr[i] ?
        let no = b.new_label();
        b.jump_if_false(no);
        b.load(3).push_int(1).add().store(3);
        b.bind(no);
        b.load(2).push_int(1).add().store(2);
        b.jump(head);
        b.bind(done);
        b.load(3).ret();
    });

    pb.func("main", 1, true, 3, |b| {
        // locals: 0=n, 1=arr
        b.load(0).new_array().store(1);
        b.load(1).load(0).call(fill);
        b.load(1).load(0).call(sort);
        // checksum = arr[0] + arr[n/2] + arr[n-1] + violations*1000000
        b.load(1).push_int(0).aload();
        b.load(1).load(0).push_int(2).div().aload().add();
        b.load(1).load(0).push_int(1).sub().aload().add();
        b.load(1).load(0).call(violations).push_int(1_000_000).mul().add();
        b.ret();
    });

    pb.finish().expect("list_sort workload must verify")
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn sorts_correctly() {
        let mut vm = Vm::new(build(), vec![], BarrierMode::Dynamic);
        let out = vm.call_by_name("main", &[Value::Int(64)]).unwrap().unwrap();
        // No violations component means the value is < 1_000_000.
        let v = match out {
            Value::Int(i) => i,
            other => panic!("unexpected {other:?}"),
        };
        assert!(v < 1_000_000, "sort produced violations: {v}");
        assert!(v > 0);
    }
}
