//! Numeric-kernel workload: `n×n` integer matrix multiply over flat
//! arrays. The inner loop is three array touches per iteration — the
//! worst case for naive barrier insertion and the best case for
//! redundant-barrier elimination (the row/col bases repeat).

use laminar_vm::{Program, ProgramBuilder};

/// Builds the program. `main(n)` multiplies two deterministic `n×n`
/// matrices and returns the trace of the product.
#[must_use]
pub fn build() -> Program {
    let mut pb = ProgramBuilder::new();

    // fill(m, n, seed): m[i] = (i*seed) mod 97
    let fill = pb.func("fill", 3, false, 5, |b| {
        b.push_int(0).store(3);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(3).load(1).cmp_lt().jump_if_false(done);
        b.load(0).load(3);
        b.load(3).load(2).mul().push_int(97).modulo();
        b.astore();
        b.load(3).push_int(1).add().store(3);
        b.jump(head);
        b.bind(done);
        b.ret();
    });

    // mul(a, b, c, n): c = a×b
    let mul = pb.func("mul", 4, false, 9, |b| {
        // locals: 0=a,1=b,2=c,3=n,4=i,5=j,6=k,7=acc
        b.push_int(0).store(4);
        let li = b.new_label();
        let li_done = b.new_label();
        b.bind(li);
        b.load(4).load(3).cmp_lt().jump_if_false(li_done);
        b.push_int(0).store(5);
        let lj = b.new_label();
        let lj_done = b.new_label();
        b.bind(lj);
        b.load(5).load(3).cmp_lt().jump_if_false(lj_done);
        b.push_int(0).store(6);
        b.push_int(0).store(7);
        let lk = b.new_label();
        let lk_done = b.new_label();
        b.bind(lk);
        b.load(6).load(3).cmp_lt().jump_if_false(lk_done);
        // acc += a[i*n+k] * b[k*n+j]
        b.load(0).load(4).load(3).mul().load(6).add().aload();
        b.load(1).load(6).load(3).mul().load(5).add().aload();
        b.mul().load(7).add().store(7);
        b.load(6).push_int(1).add().store(6);
        b.jump(lk);
        b.bind(lk_done);
        // c[i*n+j] = acc
        b.load(2).load(4).load(3).mul().load(5).add().load(7).astore();
        b.load(5).push_int(1).add().store(5);
        b.jump(lj);
        b.bind(lj_done);
        b.load(4).push_int(1).add().store(4);
        b.jump(li);
        b.bind(li_done);
        b.ret();
    });

    pb.func("main", 1, true, 7, |b| {
        // locals: 0=n,1=a,2=b,3=c,4=i,5=acc
        b.load(0).load(0).mul().new_array().store(1);
        b.load(0).load(0).mul().new_array().store(2);
        b.load(0).load(0).mul().new_array().store(3);
        b.load(1).load(0).load(0).mul().push_int(7).call(fill);
        b.load(2).load(0).load(0).mul().push_int(13).call(fill);
        b.load(1).load(2).load(3).load(0).call(mul);
        // trace(c)
        b.push_int(0).store(4);
        b.push_int(0).store(5);
        let head = b.new_label();
        let done = b.new_label();
        b.bind(head);
        b.load(4).load(0).cmp_lt().jump_if_false(done);
        b.load(3).load(4).load(0).mul().load(4).add().aload();
        b.load(5).add().store(5);
        b.load(4).push_int(1).add().store(4);
        b.jump(head);
        b.bind(done);
        b.load(5).ret();
    });

    pb.finish().expect("matrix_mult workload must verify")
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_vm::{BarrierMode, Value, Vm};

    #[test]
    fn trace_is_stable_across_modes() {
        let mut expect = None;
        for mode in [BarrierMode::None, BarrierMode::Static, BarrierMode::Dynamic] {
            let mut vm = Vm::new(build(), vec![], mode);
            let out = vm.call_by_name("main", &[Value::Int(8)]).unwrap();
            match expect {
                None => expect = Some(out),
                Some(e) => assert_eq!(e, out),
            }
        }
    }

    #[test]
    fn inner_loop_is_barrier_dense() {
        // Every a/b element touch in the O(n^3) kernel needs its barrier
        // (distinct indices defeat the redundancy analysis here — the
        // conservative behaviour the paper's analysis shares), so this
        // workload is the stress case for raw barrier cost.
        let mut vm = Vm::new(build(), vec![], BarrierMode::Static);
        vm.call_by_name("main", &[Value::Int(8)]).unwrap();
        let s = vm.stats();
        assert!(s.read_barriers as i64 >= 2 * 8 * 8 * 8);
    }
}
