//! # laminar — practical fine-grained decentralized information flow control
//!
//! A Rust reproduction of *Laminar* (Roy, Porter, Bond, McKinley,
//! Witchel — PLDI 2009): the first DIFC system with a **single set of
//! abstractions for OS resources and heap-allocated objects**.
//! Programmers label data with secrecy and integrity labels and access
//! it inside lexically scoped **security regions**; the runtime (the
//! paper's modified JVM — here this crate plus [`laminar_vm`]) and the
//! OS (a simulated kernel with a Laminar security module —
//! [`laminar_os`]) enforce the labels at run time.
//!
//! ## The pieces
//!
//! * [`Laminar`] — boots the OS with the Laminar LSM and logs principals
//!   in (granting each login shell the user's persistent capabilities).
//! * [`Principal`] — a kernel-thread principal;
//!   [`Principal::secure`] is the `secure {..} catch {..}` construct.
//! * [`Labeled`] — fine-grained labeled heap data with per-access
//!   barriers (static via [`RegionGuard`], dynamic via
//!   [`Labeled::read_dyn`]).
//! * [`RegionGuard`] — the in-region handle: the Fig. 2 library API
//!   (`getCurrentLabel`, `createAndAddCapability`, `removeCapability`,
//!   `copyAndLabel`) plus mediated OS access with lazy label sync.
//! * [`KernelBridge`] — binds a [`laminar_vm::Vm`] MiniVM thread to a
//!   kernel task for the bytecode-level experiments.
//!
//! ## Example: Alice's secret calendar (§3.3)
//!
//! ```
//! use laminar::{Labeled, Laminar, RegionParams};
//! use laminar_difc::{Capability, Label, SecPair};
//! use laminar_os::UserId;
//!
//! # fn main() -> Result<(), laminar::LaminarError> {
//! let system = Laminar::boot();
//! system.add_user(UserId(1), "alice");
//! let alice = system.login(UserId(1))?;
//!
//! // Alice mints her secrecy tag a; the server thread is given only a+.
//! let a = alice.create_tag()?;
//! let sa = Label::singleton(a);
//!
//! // Build the labeled calendar inside a region with {S(a)}.
//! let params = RegionParams::new()
//!     .secrecy(sa.clone())
//!     .grant(Capability::plus(a));
//! let calendar = alice
//!     .secure(&params, |g| Ok(g.new_labeled(vec!["mon 10:00", "tue 13:30"])),
//!             |_| {})?
//!     .expect("region completed");
//!
//! // Inside a region with a's secrecy the data is readable…
//! let n = alice
//!     .secure(&params, |g| calendar.read(g, |c| c.len()), |_| {})?;
//! assert_eq!(n, Some(2));
//!
//! // …but a region without it cannot read, and the violation is
//! // confined to the region (the catch ran; execution continues).
//! let empty = RegionParams::new();
//! let out = alice.secure(&empty, |g| calendar.read(g, |c| c.len()), |_| {})?;
//! assert_eq!(out, None);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod labeled;
mod principal;
mod runtime;
pub mod stats;
mod vmbridge;

pub use error::{LaminarError, LaminarResult};
pub use labeled::Labeled;
pub use principal::{check_region_entry, Principal, RegionGuard, RegionParams};
pub use runtime::{unlabeled, Laminar};
pub use stats::{fault_stats, reset_fault_stats, FaultStats, RuntimeStats};
pub use vmbridge::KernelBridge;

// Re-export the substrate crates so applications depend on one crate.
pub use laminar_difc as difc;
pub use laminar_os as os;
pub use laminar_vm as vm;
