//! Connects a `laminar-vm` MiniVM thread to a `laminar-os` kernel task:
//! the concrete [`laminar_vm::OsBridge`] of §4.4's VM–OS interface.

use laminar_difc::SecPair;
use laminar_os::{OpenMode, TaskHandle};
use laminar_vm::OsBridge;

/// Bridge backed by a kernel task plus the process's trusted `tcb`
/// thread (which performs the privileged label pushes/drops on the
/// task's behalf, §4.4).
#[derive(Debug)]
pub struct KernelBridge {
    task: TaskHandle,
    vm_task: TaskHandle,
}

impl KernelBridge {
    /// Creates a bridge for `task`, using `vm_task` (which must carry the
    /// `tcb` integrity tag and live in the same process) for privileged
    /// label management.
    #[must_use]
    pub fn new(task: TaskHandle, vm_task: TaskHandle) -> Self {
        KernelBridge { task, vm_task }
    }
}

impl OsBridge for KernelBridge {
    fn sync_labels(&mut self, labels: &SecPair) -> Result<(), String> {
        self.vm_task
            .set_task_labels_tcb(self.task.id(), labels.clone())
            .map_err(|e| e.to_string())
    }

    fn restore_labels(&mut self, labels: &SecPair) -> Result<(), String> {
        self.vm_task
            .set_task_labels_tcb(self.task.id(), labels.clone())
            .map_err(|e| e.to_string())
    }

    fn write_byte(&mut self, path: &str, byte: u8) -> Result<(), String> {
        let fd = match self.task.open(path, OpenMode::Write) {
            Ok(fd) => fd,
            Err(laminar_os::OsError::NotFound) => {
                self.task.create(path).map_err(|e| e.to_string())?
            }
            Err(e) => return Err(e.to_string()),
        };
        let r = self.task.write(fd, &[byte]).map(|_| ());
        let _ = self.task.close(fd);
        r.map_err(|e| e.to_string())
    }

    fn read_byte(&mut self, path: &str) -> Result<Option<u8>, String> {
        let fd = self.task.open(path, OpenMode::Read).map_err(|e| e.to_string())?;
        let r = self.task.read(fd, 1).map(|v| v.first().copied());
        let _ = self.task.close(fd);
        r.map_err(|e| e.to_string())
    }
}
