//! Per-principal runtime statistics and the global flow-cache counters.
//!
//! Table 3 reports the fraction of execution time spent inside security
//! regions; Figure 9 decomposes application overhead into region
//! start/end, allocation barriers and read/write barriers. These
//! counters (and the region timer) are what the benchmark harness reads.
//!
//! The global label-interning and flow-check-cache counters of
//! `laminar_difc` are re-exported here ([`flow_cache_stats`],
//! [`intern_stats`], [`reset_flow_cache`]) so harnesses that only link
//! `laminar` can observe hot-path hit rates.

pub use laminar_difc::{
    flow_cache_stats, intern_stats, reset_flow_cache, FlowCacheStats, InternStats,
};

/// Snapshot of the process-global fail-closed fault counters across all
/// three layers: lock-poison recoveries in the utility layer, syscall
/// rollbacks at the kernel dispatch boundary, and security-region aborts
/// in the VM. Together they answer "did anything fault, and was every
/// fault contained?" after a stress or fault-injection run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Mutex poison events recovered by `laminar_util::sync`.
    pub poison_recoveries: u64,
    /// Kernel syscalls rolled back after an internal fault
    /// ([`laminar_os::syscalls_rolled_back`]).
    pub syscalls_rolled_back: u64,
    /// VM security regions whose labeled writes were rolled back
    /// ([`laminar_vm::regions_aborted`]).
    pub regions_aborted: u64,
}

impl FaultStats {
    /// Total contained faults across all layers.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.poison_recoveries + self.syscalls_rolled_back + self.regions_aborted
    }
}

/// Reads the current global fault counters of every layer.
#[must_use]
pub fn fault_stats() -> FaultStats {
    FaultStats {
        poison_recoveries: laminar_util::sync::poison_recoveries(),
        syscalls_rolled_back: laminar_os::syscalls_rolled_back(),
        regions_aborted: laminar_vm::regions_aborted(),
    }
}

/// Resets every layer's global fault counter to zero.
pub fn reset_fault_stats() {
    laminar_util::sync::reset_poison_recoveries();
    laminar_os::reset_syscalls_rolled_back();
    laminar_vm::reset_regions_aborted();
}

/// Counters accumulated by a [`crate::Principal`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Security regions entered.
    pub regions_entered: u64,
    /// Nanoseconds spent inside security regions (body + catch).
    pub region_ns: u64,
    /// Reads of labeled cells (static-barrier API).
    pub labeled_reads: u64,
    /// Writes of labeled cells (static-barrier API).
    pub labeled_writes: u64,
    /// Labeled allocations.
    pub labeled_allocs: u64,
    /// `copy_and_label` operations.
    pub copies: u64,
    /// Dynamic barriers that had to look up the region context.
    pub dynamic_dispatches: u64,
    /// Exceptions suppressed at region boundaries.
    pub exceptions_suppressed: u64,
    /// VM→OS label synchronisations performed.
    pub os_syncs: u64,
    /// Label synchronisations elided because the region made no syscall.
    pub os_syncs_elided: u64,
    /// Capabilities created via `create_and_add_capability`.
    pub caps_created: u64,
}

impl RuntimeStats {
    /// Merges another principal's counters into this one (for
    /// application-wide aggregation).
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.regions_entered += other.regions_entered;
        self.region_ns += other.region_ns;
        self.labeled_reads += other.labeled_reads;
        self.labeled_writes += other.labeled_writes;
        self.labeled_allocs += other.labeled_allocs;
        self.copies += other.copies;
        self.dynamic_dispatches += other.dynamic_dispatches;
        self.exceptions_suppressed += other.exceptions_suppressed;
        self.os_syncs += other.os_syncs;
        self.os_syncs_elided += other.os_syncs_elided;
        self.caps_created += other.caps_created;
    }

    /// Total labeled-data accesses.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.labeled_reads + self.labeled_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let mut a =
            RuntimeStats { labeled_reads: 2, region_ns: 10, ..Default::default() };
        let b =
            RuntimeStats { labeled_reads: 3, labeled_writes: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.labeled_reads, 5);
        assert_eq!(a.labeled_writes, 1);
        assert_eq!(a.region_ns, 10);
        assert_eq!(a.total_accesses(), 6);
    }
}
