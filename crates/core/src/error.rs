//! Unified error type of the Laminar runtime.

use laminar_difc::{FlowError, LabelChangeError};
use laminar_os::OsError;
use std::error::Error;
use std::fmt;

/// Result alias used throughout the `laminar` crate.
pub type LaminarResult<T> = Result<T, LaminarError>;

/// Errors raised by the Laminar runtime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LaminarError {
    /// A barrier on a [`crate::Labeled`] cell detected an illegal flow.
    Flow(FlowError),
    /// A label change (e.g. `copy_and_label`) lacked capabilities.
    LabelChange(LabelChangeError),
    /// The security-region entry rules (§4.3.2) rejected the region.
    RegionEntry(&'static str),
    /// The operation is only legal inside a security region.
    NotInRegion,
    /// An OS syscall performed on behalf of the runtime failed.
    Os(OsError),
    /// An application exception raised by region code (the payload is the
    /// application's message); confined by the region's catch semantics.
    App(String),
    /// A runtime-internal invariant failed; the operation was abandoned
    /// fail-closed (no security state was changed) instead of unwinding.
    Internal(&'static str),
}

impl fmt::Display for LaminarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaminarError::Flow(e) => write!(f, "flow violation: {e}"),
            LaminarError::LabelChange(e) => write!(f, "label change rejected: {e}"),
            LaminarError::RegionEntry(why) => {
                write!(f, "security region entry denied: {why}")
            }
            LaminarError::NotInRegion => {
                f.write_str("labeled data may only be accessed inside a security region")
            }
            LaminarError::Os(e) => write!(f, "os error: {e}"),
            LaminarError::App(msg) => write!(f, "application exception: {msg}"),
            LaminarError::Internal(msg) => {
                write!(f, "internal runtime fault: {msg}")
            }
        }
    }
}

impl Error for LaminarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LaminarError::Flow(e) => Some(e),
            LaminarError::LabelChange(e) => Some(e),
            LaminarError::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for LaminarError {
    fn from(e: FlowError) -> Self {
        LaminarError::Flow(e)
    }
}

impl From<LabelChangeError> for LaminarError {
    fn from(e: LabelChangeError) -> Self {
        LaminarError::LabelChange(e)
    }
}

impl From<OsError> for LaminarError {
    fn from(e: OsError) -> Self {
        LaminarError::Os(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(LaminarError::NotInRegion.to_string().contains("security region"));
        assert!(LaminarError::App("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn conversions() {
        let e: LaminarError = OsError::NotFound.into();
        assert!(matches!(e, LaminarError::Os(OsError::NotFound)));
    }
}
