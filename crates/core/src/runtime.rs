//! The Laminar runtime: boots the OS, logs principals in, and owns the
//! trusted per-process VM thread.
//!
//! Trust model (§4.7): only the VM and the OS are trusted. Here the OS
//! is a `laminar-os` kernel running the Laminar LSM, and "the VM" is
//! this crate's runtime machinery — in particular the one trusted kernel
//! thread per process that carries the special `tcb` integrity tag and
//! is the only code allowed to drop or set labels without capability
//! checks (§4.4).

use crate::error::{LaminarError, LaminarResult};
use crate::principal::{Principal, ProcessRt, ThreadState};
use crate::stats::RuntimeStats;
use laminar_difc::{CapSet, Capability, Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, TaskHandle, UserId};
use laminar_util::sync::Mutex;
use std::sync::Arc;

/// The top-level Laminar system: a booted kernel plus login services.
///
/// # Examples
///
/// ```
/// use laminar::{Laminar, RegionParams};
/// use laminar_os::UserId;
///
/// # fn main() -> Result<(), laminar::LaminarError> {
/// let system = Laminar::boot();
/// system.add_user(UserId(1), "alice");
/// let alice = system.login(UserId(1))?;
///
/// // Mint a tag and run a security region that can see it.
/// let t = alice.create_tag()?;
/// let params = RegionParams::new()
///     .secrecy(laminar_difc::Label::singleton(t))
///     .grant(laminar_difc::Capability::plus(t));
/// let out = alice.secure(&params, |_guard| Ok(21 * 2), |_| {})?;
/// assert_eq!(out, Some(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Laminar {
    kernel: Arc<Kernel>,
}

impl Laminar {
    /// Boots a kernel with the Laminar security module loaded.
    #[must_use]
    pub fn boot() -> Arc<Laminar> {
        Arc::new(Laminar { kernel: Kernel::boot(LaminarModule) })
    }

    /// The underlying kernel (for OS-level operations and inspection).
    #[must_use]
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Registers a user and creates `/home/<name>`.
    pub fn add_user(&self, user: UserId, name: &str) {
        self.kernel.add_user(user, name);
    }

    /// Logs a user in *onto the Laminar VM*: creates their process,
    /// marks it trusted (heterogeneously-labeled threads allowed, §4.1),
    /// starts the process's trusted `tcb` thread, and strips the `tcb`
    /// capabilities from the application-visible task so untrusted code
    /// cannot reach the privileged path.
    ///
    /// # Errors
    ///
    /// Fails if the user is unknown or kernel setup fails.
    pub fn login(self: &Arc<Self>, user: UserId) -> LaminarResult<Principal> {
        let task = self.kernel.login(user)?;
        self.adopt(task)
    }

    /// Turns an existing kernel task (e.g. one produced by `fork`) into a
    /// Laminar principal: blesses its process as a trusted VM, starts the
    /// process's `tcb` thread, and strips the `tcb` capabilities from the
    /// application-visible task. This models `exec`ing the Laminar VM in
    /// a child process.
    ///
    /// # Errors
    ///
    /// Fails if kernel setup fails (task exited).
    pub fn adopt(self: &Arc<Self>, task: TaskHandle) -> LaminarResult<Principal> {
        self.kernel.bless_vm_process(&task)?;

        // The trusted thread: a separate kernel task in the same address
        // space, running with the tcb integrity tag. Only it may drop or
        // set labels without capability checks.
        let tcb = self.kernel.tcb_tag();
        let mut tcb_caps = CapSet::new();
        tcb_caps.grant_both(tcb);
        let vm_task = task.spawn_thread(Some(tcb_caps))?;
        vm_task.set_task_label(LabelType::Integrity, Label::singleton(tcb))?;

        // Untrusted application code must not be able to assume the tcb
        // tag itself.
        task.drop_capabilities(&[Capability::plus(tcb), Capability::minus(tcb)])?;

        let caps = task.current_caps()?;
        Ok(Principal::new(
            task,
            Arc::new(ProcessRt { vm_task }),
            Arc::new(Mutex::new(ThreadState::new(caps))),
            Arc::new(Mutex::new(RuntimeStats::default())),
        ))
    }

    /// Logs a user in as a plain (non-VM) process: a bare kernel task
    /// with the user's persistent capabilities, no trusted thread, and
    /// therefore no security regions — the paper's "unlabeled or
    /// non-Laminar applications", which the OS alone constrains.
    ///
    /// # Errors
    ///
    /// Fails if the user is unknown.
    pub fn login_raw(&self, user: UserId) -> LaminarResult<TaskHandle> {
        self.kernel.login(user).map_err(LaminarError::from)
    }

    /// Stores `caps` as the user's persistent capabilities (granted to
    /// their login shell at the next login, §4.4).
    pub fn set_persistent_caps(&self, user: UserId, caps: CapSet) {
        self.kernel.set_persistent_caps(user, caps);
    }
}

/// Convenience: the empty `{S(), I()}` pair.
#[must_use]
pub fn unlabeled() -> SecPair {
    SecPair::unlabeled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_and_login() {
        let sys = Laminar::boot();
        sys.add_user(UserId(1), "alice");
        let alice = sys.login(UserId(1)).unwrap();
        assert!(alice.current_labels().is_unlabeled());
        // The tcb capability is not visible to the application task.
        let tcb = sys.kernel().tcb_tag();
        assert!(!alice.current_caps().can_add(tcb));
        assert!(!alice.current_caps().can_remove(tcb));
    }

    #[test]
    fn login_raw_has_no_vm_privileges() {
        let sys = Laminar::boot();
        sys.add_user(UserId(2), "bob");
        let raw = sys.login_raw(UserId(2)).unwrap();
        // A raw task cannot reach the tcb paths.
        assert!(raw.drop_label_tcb(raw.id()).is_err());
    }

    #[test]
    fn persistent_caps_reach_the_next_login() {
        let sys = Laminar::boot();
        sys.add_user(UserId(3), "carol");
        let carol = sys.login(UserId(3)).unwrap();
        let t = carol.create_tag().unwrap();
        carol.task().save_persistent_caps().unwrap();
        drop(carol);
        let carol2 = sys.login(UserId(3)).unwrap();
        assert!(carol2.current_caps().can_add(t));
        assert!(carol2.current_caps().can_remove(t));
    }
}
