//! Principals and security regions.
//!
//! Laminar's principals are kernel threads (§3); in this runtime a
//! [`Principal`] binds one kernel task to the VM-level state the paper
//! keeps in the Jikes thread object: the current labels and capabilities,
//! the region stack, and the lazy kernel-synchronisation flag.
//!
//! [`Principal::secure`] is the `secure(..) {..} catch {..}` construct
//! (§4.2/§4.3): a lexically scoped closure that runs with the region's
//! labels and capabilities; every exception inside is handled by the
//! catch closure and then suppressed, so code after the region cannot
//! observe the region's control flow (the Figure 5 guarantee).

use crate::error::{LaminarError, LaminarResult};
use crate::labeled::Labeled;
use crate::stats::RuntimeStats;
use laminar_difc::{CapKind, CapSet, Capability, Label, LabelType, SecPair, Tag};
use laminar_os::{TaskHandle, UserId};
use laminar_util::sync::Mutex;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Per-process trusted runtime state: the `tcb` thread.
#[derive(Debug)]
pub(crate) struct ProcessRt {
    pub(crate) vm_task: TaskHandle,
}

/// One security-region stack frame.
#[derive(Debug)]
struct Frame {
    saved_labels: SecPair,
    saved_caps: CapSet,
    /// Kernel capabilities suspended for the scope of this region
    /// (`drop_capabilities` with the tmp flag; restored at exit).
    /// Filled in lazily at the first syscall — a region that never
    /// enters the kernel costs no kernel traffic at all (§4.4's lazy
    /// `set_task_label` optimization, extended to capability state).
    suspended: CapSet,
}

/// VM-level thread state (the paper's per-thread label/capability cache,
/// §5.1 "The JVM then caches a copy of the current capabilities of each
/// thread to make the checks efficient inside the security region").
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub(crate) labels: SecPair,
    pub(crate) caps: CapSet,
    frames: Vec<Frame>,
    /// Kernel task currently carries `labels` (lazy sync, §4.4).
    synced: bool,
}

impl ThreadState {
    pub(crate) fn new(caps: CapSet) -> Self {
        ThreadState {
            labels: SecPair::unlabeled(),
            caps,
            frames: Vec::new(),
            synced: false,
        }
    }

    /// Is the thread currently inside any security region?
    pub(crate) fn in_region(&self) -> bool {
        !self.frames.is_empty()
    }
}

/// The per-region dynamic-barrier context: the owning principal's thread
/// state plus its stats sink.
type RegionCtx = (Arc<Mutex<ThreadState>>, Arc<Mutex<RuntimeStats>>);

thread_local! {
    /// Stack of (state, stats) for principals whose regions are active on
    /// this OS thread — the lookup table for *dynamic barriers*
    /// ([`Labeled::read_dyn`]), which must discover the region context at
    /// run time exactly like the paper's dynamic-barrier configuration.
    static REGION_CTX: RefCell<Vec<RegionCtx>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn with_dynamic_ctx<R>(
    f: impl FnOnce(Option<(&Arc<Mutex<ThreadState>>, &Arc<Mutex<RuntimeStats>>)>) -> R,
) -> R {
    REGION_CTX.with(|ctx| {
        let ctx = ctx.borrow();
        f(ctx.last().map(|(s, t)| (s, t)))
    })
}

/// The parameters of a security region: labels and the capability subset
/// it runs with (Fig. 4's `secure({S(a,b), I(i), C(a-)})` literal).
#[derive(Clone, Debug, Default)]
pub struct RegionParams {
    secrecy: Label,
    integrity: Label,
    caps: CapSet,
}

impl RegionParams {
    /// A region with empty labels and no capabilities.
    #[must_use]
    pub fn new() -> Self {
        RegionParams::default()
    }

    /// Sets the secrecy label.
    #[must_use]
    pub fn secrecy(mut self, label: Label) -> Self {
        self.secrecy = label;
        self
    }

    /// Sets the integrity label.
    #[must_use]
    pub fn integrity(mut self, label: Label) -> Self {
        self.integrity = label;
        self
    }

    /// Grants one capability to the region (chainable).
    #[must_use]
    pub fn grant(mut self, cap: Capability) -> Self {
        self.caps.grant(cap);
        self
    }

    /// Grants a whole capability set.
    #[must_use]
    pub fn grant_all(mut self, caps: &CapSet) -> Self {
        self.caps = self.caps.union(caps);
        self
    }

    /// The region's label pair.
    #[must_use]
    pub fn pair(&self) -> SecPair {
        SecPair::new(self.secrecy.clone(), self.integrity.clone())
    }

    /// The region's capability set.
    #[must_use]
    pub fn caps(&self) -> &CapSet {
        &self.caps
    }
}

/// Checks the security-region entry rules of §4.3.2 for a thread with
/// the given `labels` and `caps` against `params`, without entering:
///
/// 1. `SR ⊆ (Cp+ ∪ SP)` and `IR ⊆ (Cp+ ∪ IP)` — each region tag is
///    either already carried or addable;
/// 2. `CR ⊆ CP` — the region's capabilities are a subset of the
///    thread's.
///
/// [`Principal::secure`] runs exactly this check before swapping in the
/// region's context; it is public so the model-based conformance
/// testkit can replay region-entry events against its reference oracle.
///
/// # Errors
/// [`LaminarError::RegionEntry`] naming the violated rule.
pub fn check_region_entry(
    labels: &SecPair,
    caps: &CapSet,
    params: &RegionParams,
) -> LaminarResult<()> {
    // Rule (1) of §4.3.2: SR ⊆ (Cp+ ∪ SP) and IR ⊆ (Cp+ ∪ IP).
    for t in params.secrecy.iter() {
        if !caps.can_add(t) && !labels.secrecy().contains(t) {
            return Err(LaminarError::RegionEntry(
                "thread lacks capability or label for a region secrecy tag",
            ));
        }
    }
    for t in params.integrity.iter() {
        if !caps.can_add(t) && !labels.integrity().contains(t) {
            return Err(LaminarError::RegionEntry(
                "thread lacks capability or label for a region integrity tag",
            ));
        }
    }
    // Rule (2): CR ⊆ CP.
    if !params.caps.is_subset_of(caps) {
        return Err(LaminarError::RegionEntry(
            "region capabilities exceed the entering thread's",
        ));
    }
    Ok(())
}

/// A kernel-thread principal bound to the Laminar runtime.
///
/// Obtained from [`crate::Laminar::login`] (or
/// [`Principal::spawn_thread`]); owned by one OS thread at a time
/// (`Send`, not shared).
#[derive(Debug)]
pub struct Principal {
    task: TaskHandle,
    rt: Arc<ProcessRt>,
    state: Arc<Mutex<ThreadState>>,
    stats: Arc<Mutex<RuntimeStats>>,
}

impl Principal {
    pub(crate) fn new(
        task: TaskHandle,
        rt: Arc<ProcessRt>,
        state: Arc<Mutex<ThreadState>>,
        stats: Arc<Mutex<RuntimeStats>>,
    ) -> Self {
        Principal { task, rt, state, stats }
    }

    /// The underlying kernel task (for direct OS syscalls outside
    /// security regions — labels there are empty, so the kernel's own
    /// checks suffice).
    #[must_use]
    pub fn task(&self) -> &TaskHandle {
        &self.task
    }

    /// Is this principal currently executing inside a security region?
    #[must_use]
    pub fn in_region(&self) -> bool {
        self.state.lock().in_region()
    }

    /// The principal's current labels (empty outside security regions).
    #[must_use]
    pub fn current_labels(&self) -> SecPair {
        self.state.lock().labels.clone()
    }

    /// The principal's current capability set.
    #[must_use]
    pub fn current_caps(&self) -> CapSet {
        self.state.lock().caps.clone()
    }

    /// The user this principal runs as.
    ///
    /// # Errors
    /// Fails if the kernel task has exited.
    pub fn user(&self) -> LaminarResult<UserId> {
        self.task.user().map_err(LaminarError::from)
    }

    /// Runtime statistics accumulated by this principal.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats.lock().clone()
    }

    /// Resets the statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = RuntimeStats::default();
    }

    /// Allocates a fresh tag, granting this principal both capabilities
    /// (the `createAndAddCapability` API of Fig. 2, outside-region form).
    ///
    /// # Errors
    /// Fails if the kernel task has exited.
    pub fn create_tag(&self) -> LaminarResult<Tag> {
        let tag = self.task.alloc_tag()?;
        let mut st = self.state.lock();
        st.caps.grant_both(tag);
        for f in &mut st.frames {
            f.saved_caps.grant_both(tag);
        }
        self.stats.lock().caps_created += 1;
        Ok(tag)
    }

    /// Receives a capability from a pipe fd (the kernel-mediated
    /// `write_capability` transfer of Fig. 3), registering it with both
    /// the kernel task and the runtime's cached capability state. The
    /// received capability persists across region exits like any other
    /// gained capability (§4.4).
    ///
    /// # Errors
    /// Propagates kernel errors (bad fd, labels forbidding the receive).
    pub fn receive_capability(
        &self,
        fd: laminar_os::Fd,
    ) -> LaminarResult<Option<Capability>> {
        let cap = self.task.read_capability(fd)?;
        if let Some(c) = cap {
            let mut st = self.state.lock();
            st.caps.grant(c);
            for f in &mut st.frames {
                f.saved_caps.grant(c);
            }
        }
        Ok(cap)
    }

    /// Spawns a sibling kernel thread with a subset of this principal's
    /// capabilities (`None` = all), returning its [`Principal`]. The new
    /// thread starts outside any region with empty labels.
    ///
    /// # Errors
    /// [`laminar_os::OsError::PermissionDenied`] on a capability superset.
    pub fn spawn_thread(&self, caps: Option<CapSet>) -> LaminarResult<Principal> {
        // Kernel-level spawn uses the *kernel* capability set; VM-level
        // current caps may be narrower inside a region, so the subset
        // check against VM caps is done here.
        if let Some(ref c) = caps {
            let st = self.state.lock();
            if !c.is_subset_of(&st.caps) {
                return Err(LaminarError::RegionEntry(
                    "thread capabilities must be a subset of the spawner's",
                ));
            }
        }
        let effective = caps.unwrap_or_else(|| self.current_caps());
        let task = self.task.spawn_thread(Some(effective.clone()))?;
        Ok(Principal::new(
            task,
            Arc::clone(&self.rt),
            Arc::new(Mutex::new(ThreadState::new(effective))),
            Arc::new(Mutex::new(RuntimeStats::default())),
        ))
    }

    // --- security regions ---------------------------------------------------

    fn enter_region(&self, params: &RegionParams) -> LaminarResult<()> {
        let mut st = self.state.lock();
        check_region_entry(&st.labels, &st.caps, params)?;
        let saved_labels = std::mem::replace(&mut st.labels, params.pair());
        let saved_caps = std::mem::replace(&mut st.caps, params.caps.clone());
        st.frames.push(Frame { saved_labels, saved_caps, suspended: CapSet::new() });
        st.synced = false;
        drop(st);
        self.stats.lock().regions_entered += 1;
        Ok(())
    }

    fn exit_region(&self) -> LaminarResult<()> {
        let mut st = self.state.lock();
        // An exit with no matching entry is an internal invariant break;
        // surface it fail-closed instead of unwinding with the lock held.
        let frame =
            st.frames.pop().ok_or(LaminarError::Internal("region exit without entry"))?;
        if st.synced {
            // The kernel task carries the region's labels; only the
            // trusted tcb thread can drop them — the thread itself may
            // lack the minus capabilities (§4.4).
            self.rt.vm_task.set_task_labels_tcb(self.task.id(), SecPair::unlabeled())?;
        } else if !st.labels.is_unlabeled() {
            self.stats.lock().os_syncs_elided += 1;
        }
        st.synced = false;
        if !frame.suspended.is_empty() {
            // Restore capabilities suspended for the region's scope.
            self.rt.vm_task.grant_capabilities_tcb(self.task.id(), &frame.suspended)?;
        }
        st.labels = frame.saved_labels;
        st.caps = frame.saved_caps;
        Ok(())
    }

    /// Pushes the region's security context to the kernel task if a
    /// syscall is about to happen: labels (lazy `set_task_label`, §4.4)
    /// and the suspension of capabilities the region does not retain
    /// (lazy `drop_capabilities` with the tmp flag). A region that makes
    /// no syscall costs no kernel traffic at all.
    pub(crate) fn ensure_os_sync(&self) -> LaminarResult<()> {
        let mut st = self.state.lock();
        if st.synced || st.frames.is_empty() {
            return Ok(());
        }
        // Align the kernel's capability view with the region's: suspend
        // everything the region did not retain, remember it for restore.
        let kernel_caps = self.task.current_caps()?;
        let to_suspend: CapSet =
            kernel_caps.iter().filter(|c| !st.caps.has(*c)).collect();
        if !to_suspend.is_empty() {
            let drops: Vec<Capability> = to_suspend.iter().collect();
            self.task.drop_capabilities(&drops)?;
            // Non-empty frames were checked at function entry; treat a
            // vanished frame as an internal fault rather than unwinding.
            let frame = st
                .frames
                .last_mut()
                .ok_or(LaminarError::Internal("capability sync outside a region"))?;
            frame.suspended = frame.suspended.union(&to_suspend);
        }
        if !st.labels.is_unlabeled() {
            self.rt.vm_task.set_task_labels_tcb(self.task.id(), st.labels.clone())?;
        }
        st.synced = true;
        drop(st);
        self.stats.lock().os_syncs += 1;
        Ok(())
    }

    /// Runs `body` in a lexically scoped security region with the given
    /// labels and capabilities; `catch` is the required catch block
    /// (§4.3.3), run with the region's labels when `body` raises.
    ///
    /// Returns `Ok(Some(value))` if the body completed, or `Ok(None)` if
    /// an exception was confined to the region (including panics — the
    /// analogue of the VM suppressing all uncaught exceptions). Code
    /// after `secure` therefore cannot distinguish the region's internal
    /// control flow, which is how Laminar bounds implicit flows.
    ///
    /// # Errors
    ///
    /// Only region *entry* failures (§4.3.2) are reported as `Err` — the
    /// paper terminates the program at that point (Fig. 7: "the program
    /// terminates at L1").
    ///
    /// # Panics
    ///
    /// Never panics on body panics (they are confined); panics only on
    /// runtime-internal invariant failures.
    pub fn secure<R>(
        &self,
        params: &RegionParams,
        body: impl FnOnce(&RegionGuard<'_>) -> LaminarResult<R>,
        catch: impl FnOnce(&RegionGuard<'_>),
    ) -> LaminarResult<Option<R>> {
        // The region timer covers the whole secure block — entry checks,
        // body, catch, and exit restoration — matching how Table 3's
        // "% of time in security regions" is accounted. Only the
        // outermost region accounts, so nesting is not double-counted.
        let outermost = !self.in_region();
        let started = Instant::now();
        self.enter_region(params)?;
        REGION_CTX.with(|ctx| {
            ctx.borrow_mut().push((Arc::clone(&self.state), Arc::clone(&self.stats)))
        });

        let guard = RegionGuard { principal: self };
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&guard)));

        let result = match outcome {
            Ok(Ok(v)) => Some(v),
            Ok(Err(_)) | Err(_) => {
                self.stats.lock().exceptions_suppressed += 1;
                // The catch block runs with the region's labels and the
                // capability set at exception time; its own exceptions
                // are suppressed too.
                let catch_outcome = catch_unwind(AssertUnwindSafe(|| catch(&guard)));
                if catch_outcome.is_err() {
                    self.stats.lock().exceptions_suppressed += 1;
                }
                None
            }
        };

        REGION_CTX.with(|ctx| {
            ctx.borrow_mut().pop();
        });
        self.exit_region()?;
        if outermost {
            self.stats.lock().region_ns += started.elapsed().as_nanos() as u64;
        }
        Ok(result)
    }
}

/// Capability token proving execution inside a security region; the
/// handle through which labeled data and the Laminar library API
/// (Fig. 2) are reached.
#[derive(Debug)]
pub struct RegionGuard<'p> {
    principal: &'p Principal,
}

impl RegionGuard<'_> {
    pub(crate) fn state(&self) -> &Arc<Mutex<ThreadState>> {
        &self.principal.state
    }

    pub(crate) fn stats_handle(&self) -> &Arc<Mutex<RuntimeStats>> {
        &self.principal.stats
    }

    /// `getCurrentLabel` (Fig. 2): the region's secrecy or integrity
    /// label.
    #[must_use]
    pub fn current_label(&self, ty: LabelType) -> Label {
        self.principal.state.lock().labels.label(ty).clone()
    }

    /// Both current labels.
    #[must_use]
    pub fn current_labels(&self) -> SecPair {
        self.principal.state.lock().labels.clone()
    }

    /// The region's current capability set.
    #[must_use]
    pub fn current_caps(&self) -> CapSet {
        self.principal.state.lock().caps.clone()
    }

    /// `createAndAddCapability` (Fig. 2): mints a tag and grants both
    /// capabilities to the principal. The capability persists after the
    /// region exits unless explicitly removed (§4.4).
    ///
    /// # Errors
    /// Fails if the kernel task has exited.
    pub fn create_and_add_capability(&self) -> LaminarResult<Tag> {
        self.principal.create_tag()
    }

    /// `removeCapability` (Fig. 2): drops a capability. With
    /// `global = true` the drop is permanent; otherwise it is scoped to
    /// this security region and restored at exit.
    ///
    /// # Errors
    /// Fails if the kernel task has exited.
    pub fn remove_capability(
        &self,
        tag: Tag,
        kind: CapKind,
        global: bool,
    ) -> LaminarResult<()> {
        let cap = match kind {
            CapKind::Plus => Capability::plus(tag),
            CapKind::Minus => Capability::minus(tag),
        };
        self.principal.task.drop_capabilities(&[cap])?;
        let mut st = self.principal.state.lock();
        st.caps.revoke(cap);
        if global {
            for f in &mut st.frames {
                f.saved_caps.revoke(cap);
                f.suspended.revoke(cap);
            }
        } else if let Some(top) = st.frames.last_mut() {
            // Scoped drop: the capability re-appears when this region
            // exits (it is already recorded in saved_caps; make sure the
            // kernel re-grant at exit includes it).
            top.suspended.grant(cap);
        }
        Ok(())
    }

    /// Allocates a labeled cell carrying this region's current labels
    /// (§4.5: objects allocated in a region take the region's labels).
    #[must_use]
    pub fn new_labeled<T>(&self, value: T) -> Labeled<T> {
        self.principal.stats.lock().labeled_allocs += 1;
        Labeled::with_labels_unchecked(value, self.current_labels())
    }

    /// Allocates a labeled cell with explicit alternate labels, which
    /// must conform to the DIFC rules (the thread must be able to write
    /// the new cell).
    ///
    /// # Errors
    /// [`LaminarError::Flow`] if the region cannot write such a cell.
    pub fn new_labeled_with<T>(
        &self,
        value: T,
        labels: SecPair,
    ) -> LaminarResult<Labeled<T>> {
        let st = self.principal.state.lock();
        st.labels.can_flow_to_cached(&labels)?;
        drop(st);
        self.principal.stats.lock().labeled_allocs += 1;
        Ok(Labeled::with_labels_unchecked(value, labels))
    }

    /// `copyAndLabel` (Fig. 2): clones a cell under new labels. Legal iff
    /// the label-change rule (§3.2) passes with the region's current
    /// capabilities — this is Laminar's declassification/endorsement
    /// primitive.
    ///
    /// # Errors
    /// [`LaminarError::LabelChange`] when a capability is missing.
    pub fn copy_and_label<T: Clone>(
        &self,
        source: &Labeled<T>,
        labels: SecPair,
    ) -> LaminarResult<Labeled<T>> {
        let st = self.principal.state.lock();
        laminar_difc::check_pair_change(source.labels(), &labels, &st.caps)?;
        drop(st);
        let mut stats = self.principal.stats.lock();
        stats.copies += 1;
        stats.labeled_allocs += 1;
        drop(stats);
        Ok(Labeled::with_labels_unchecked(source.clone_value(), labels))
    }

    /// Access to the kernel task for syscalls from inside the region.
    /// Performs the lazy VM→OS label synchronisation first, so the OS
    /// mediates the syscall under the region's labels (§4.4).
    ///
    /// # Errors
    /// Fails if the label push is rejected (task exited).
    pub fn os(&self) -> LaminarResult<&TaskHandle> {
        self.principal.ensure_os_sync()?;
        Ok(&self.principal.task)
    }

    /// Enters a nested security region (§4.3.2 nesting rules apply
    /// against this region's labels and capabilities).
    ///
    /// # Errors
    /// As [`Principal::secure`].
    pub fn secure<R>(
        &self,
        params: &RegionParams,
        body: impl FnOnce(&RegionGuard<'_>) -> LaminarResult<R>,
        catch: impl FnOnce(&RegionGuard<'_>),
    ) -> LaminarResult<Option<R>> {
        self.principal.secure(params, body, catch)
    }

    /// Raises an application exception: confined to this region, handled
    /// by the catch block. (Convenience for `Err(LaminarError::App(..))`.)
    pub fn throw<T>(&self, msg: impl Into<String>) -> LaminarResult<T> {
        Err(LaminarError::App(msg.into()))
    }
}
