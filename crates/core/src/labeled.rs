//! `Labeled<T>`: fine-grained labeled heap data.
//!
//! The paper's VM stores two label words in every object header and
//! checks a barrier at every access (§5.1). In this runtime a
//! [`Labeled<T>`] cell is the labeled object: its labels are immutable
//! (relabeling copies, §4.5), and every access runs a barrier against
//! the accessing thread's current labels.
//!
//! Two access APIs mirror the paper's two barrier strategies:
//!
//! * [`Labeled::read`]/[`Labeled::write`] take a
//!   [`RegionGuard`], so the "am I inside a security region?" question is
//!   resolved statically — these are **static barriers**;
//! * [`Labeled::read_dyn`]/[`Labeled::write_dyn`] discover the region
//!   context through a thread-local lookup at run time — **dynamic
//!   barriers**, required when the same code runs both inside and outside
//!   regions (the Calendar/FreeCS situation of §7).

use crate::error::{LaminarError, LaminarResult};
use crate::principal::{with_dynamic_ctx, RegionGuard};
use laminar_difc::SecPair;
use laminar_util::sync::RwLock;
use std::fmt;

/// A labeled heap cell. Shareable across threads via `Arc`.
pub struct Labeled<T> {
    labels: SecPair,
    cell: RwLock<T>,
}

impl<T> Labeled<T> {
    /// Constructs a cell without an allocation-context check. Internal:
    /// public construction goes through [`RegionGuard::new_labeled`] /
    /// [`RegionGuard::new_labeled_with`] so that labeled data is only
    /// minted inside security regions.
    pub(crate) fn with_labels_unchecked(value: T, labels: SecPair) -> Self {
        Labeled { labels, cell: RwLock::new(value) }
    }

    /// Creates an **unlabeled** cell (`{S(), I()}`): freely accessible,
    /// the implicit label of ordinary data. Useful as the public sink in
    /// examples and tests.
    #[must_use]
    pub fn unlabeled(value: T) -> Self {
        Labeled { labels: SecPair::unlabeled(), cell: RwLock::new(value) }
    }

    /// The cell's immutable labels.
    #[must_use]
    pub fn labels(&self) -> &SecPair {
        &self.labels
    }

    pub(crate) fn clone_value(&self) -> T
    where
        T: Clone,
    {
        self.cell.read().clone()
    }

    /// Reads the cell through a static (guard-resolved) barrier.
    ///
    /// # Errors
    /// [`LaminarError::Flow`] if the cell's labels may not flow to the
    /// region (secrecy: `S_obj ⊆ S_thr`; integrity: `I_thr ⊆ I_obj`).
    pub fn read<R>(
        &self,
        guard: &RegionGuard<'_>,
        f: impl FnOnce(&T) -> R,
    ) -> LaminarResult<R> {
        {
            let st = guard.state().lock();
            self.labels.can_flow_to_cached(&st.labels)?;
        }
        guard.stats_handle().lock().labeled_reads += 1;
        Ok(f(&self.cell.read()))
    }

    /// Writes the cell through a static barrier.
    ///
    /// # Errors
    /// [`LaminarError::Flow`] if the region's labels may not flow to the
    /// cell.
    pub fn write<R>(
        &self,
        guard: &RegionGuard<'_>,
        f: impl FnOnce(&mut T) -> R,
    ) -> LaminarResult<R> {
        {
            let st = guard.state().lock();
            st.labels.can_flow_to_cached(&self.labels)?;
        }
        guard.stats_handle().lock().labeled_writes += 1;
        Ok(f(&mut self.cell.write()))
    }

    /// Reads the cell through a **dynamic** barrier: the region context
    /// is looked up at run time. Outside any region only unlabeled cells
    /// are accessible (threads have empty labels there, §4.2).
    ///
    /// # Errors
    /// [`LaminarError::NotInRegion`] for labeled cells outside a region;
    /// [`LaminarError::Flow`] on an illegal flow.
    pub fn read_dyn<R>(&self, f: impl FnOnce(&T) -> R) -> LaminarResult<R> {
        with_dynamic_ctx(|ctx| match ctx {
            Some((state, stats)) => {
                {
                    let mut s = stats.lock();
                    s.dynamic_dispatches += 1;
                    s.labeled_reads += 1;
                }
                let st = state.lock();
                self.labels.can_flow_to_cached(&st.labels)?;
                drop(st);
                Ok(f(&self.cell.read()))
            }
            None => {
                if self.labels.is_unlabeled() {
                    Ok(f(&self.cell.read()))
                } else {
                    Err(LaminarError::NotInRegion)
                }
            }
        })
    }

    /// Writes the cell through a dynamic barrier.
    ///
    /// # Errors
    /// As [`Labeled::read_dyn`].
    pub fn write_dyn<R>(&self, f: impl FnOnce(&mut T) -> R) -> LaminarResult<R> {
        with_dynamic_ctx(|ctx| match ctx {
            Some((state, stats)) => {
                {
                    let mut s = stats.lock();
                    s.dynamic_dispatches += 1;
                    s.labeled_writes += 1;
                }
                let st = state.lock();
                st.labels.can_flow_to_cached(&self.labels)?;
                drop(st);
                Ok(f(&mut self.cell.write()))
            }
            None => {
                if self.labels.is_unlabeled() {
                    Ok(f(&mut self.cell.write()))
                } else {
                    Err(LaminarError::NotInRegion)
                }
            }
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for Labeled<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately does NOT print the value: a Debug dump must not
        // become a declassification channel. Labels are public metadata
        // (protected by the container in the OS case; benign here).
        f.debug_struct("Labeled")
            .field("labels", &self.labels)
            .field("value", &"<protected>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlabeled_cells_are_freely_accessible_dynamically() {
        let cell = Labeled::unlabeled(7);
        assert_eq!(cell.read_dyn(|v| *v).unwrap(), 7);
        cell.write_dyn(|v| *v = 8).unwrap();
        assert_eq!(cell.read_dyn(|v| *v).unwrap(), 8);
    }

    #[test]
    fn debug_does_not_leak_value() {
        let cell = Labeled::unlabeled("secret-string");
        let s = format!("{cell:?}");
        assert!(!s.contains("secret-string"), "{s}");
    }
}
