//! # laminar-obs — trusted audit & decision-trace subsystem
//!
//! Laminar's enforcement is deliberately *silent* toward untrusted
//! subjects: pipe writes, capability transfers and signals that fail the
//! flow check are dropped with no error, because the error code would
//! itself be a channel (§5.2). The flip side is that the reference
//! monitor's decisions are invisible — to operators and auditors as well
//! as to adversaries. This crate restores visibility **on the trusted
//! side only**: a low-overhead, kernel-side decision trace that records
//! what every enforcement layer (the `laminar-difc` check/cache path,
//! the OS LSM hooks and syscall transaction boundary, the VM barriers
//! and security regions) decided, correlated with the kernel's commit
//! tickets so an audit trail can be replayed against the linearization
//! witness.
//!
//! ## Trust gating
//!
//! The read side ([`snapshot`], [`take_local`]) is deliberately **not**
//! reachable from the syscall surface: `TaskHandle` exposes no audit
//! API, and nothing here is keyed by or filtered to a calling task. A
//! subject that could observe its own `SilentDrop` events would have
//! exactly the covert channel §5.2 closes — the audit log is the
//! operator's view, read by `Kernel`-level (trusted) callers and tests.
//! Untrusted code runs *under* the kernel simulation and never links
//! against this crate directly.
//!
//! ## Exactly-once semantics
//!
//! Syscall bodies may rerun (the sharded kernel's footprint-restart
//! loop), so events emitted inside a body are *staged* in a thread-local
//! buffer and only reach the ring when the dispatch loop commits the
//! attempt — a restart discards the stage. A denial is a final outcome
//! and flushes like a commit; only a caught panic (rollback) discards
//! staged decision events, since the half-executed body's decisions were
//! undone. Events emitted outside any syscall (VM barriers, region
//! entry) join the thread's pending batch directly.
//!
//! ## Cost when disabled
//!
//! Every emit point first reads one relaxed [`AtomicBool`]; when tracing
//! is off that is the entire cost (no clock reads, no locks, no
//! allocation), so the subsystem compiles to a near-no-op in production
//! configurations that never enable it.
//!
//! ## Cost when enabled
//!
//! The enabled hot path is thread-local: committed records accumulate in
//! a per-thread batch and reach the shared (mutex-protected, bounded)
//! ring in blocks — one lock acquisition and one global sequence-block
//! allocation per [`FLUSH_BATCH`]-sized batch, never per record. Clock
//! reads are sampled (one dispatch in [`DEFAULT_LATENCY_SAMPLE_EVERY`]
//! feeds the log2 latency histograms; the rest record no latency), and
//! the layers emit *decisions*, not checks: the difc memo path records a
//! verdict only when it is actually computed (a cache hit replays an
//! already-recorded decision), LSM hooks record only denials, and a
//! decision-free successful dispatch — no staged events, no typed error —
//! leaves no records at all (only its sampled latency). Sequence
//! numbers are allocated per flushed block, so cross-thread interleaving
//! in a merged snapshot is flush-grained; within a thread, and between a
//! syscall's staged events and its commit record, order is exact, and
//! commit *tickets* remain the precise cross-thread linearization
//! witness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Which enforcement layer produced an event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The `laminar-difc` label model: the memoized check/cache path.
    Difc,
    /// The OS kernel: LSM hooks and the syscall transaction boundary.
    Os,
    /// The managed runtime: VM read/write barriers and security regions.
    Vm,
}

impl Layer {
    fn as_str(self) -> &'static str {
        match self {
            Layer::Difc => "difc",
            Layer::Os => "os",
            Layer::Vm => "vm",
        }
    }
}

/// The unreliable channel on which a message was silently dropped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropChannel {
    /// A pipe write (flow veto or full buffer).
    Pipe,
    /// A socket write (same semantics as pipes).
    Socket,
    /// A signal whose sender → target flow was vetoed.
    Signal,
    /// A capability transfer through a pipe.
    Cap,
}

impl DropChannel {
    fn as_str(self) -> &'static str {
        match self {
            DropChannel::Pipe => "pipe",
            DropChannel::Socket => "socket",
            DropChannel::Signal => "signal",
            DropChannel::Cap => "cap",
        }
    }
}

/// The outcome of one flow/subset check.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The flow was allowed.
    Allow,
    /// The flow was denied (for unreliable channels: silently dropped).
    Deny,
}

/// One audit event. All payloads are plain ids and static strings so
/// events are `Copy` and recording never allocates per-event payloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// One subset/flow decision. `subject`/`object` are interned label or
    /// pair ids (`laminar-difc` interning makes them stable process-wide
    /// for the life of the run). `cache_hit` is meaningful only for
    /// [`Layer::Difc`] events (the memo-table path); hook-level events
    /// report `false`.
    FlowCheck {
        /// Layer that asked the question.
        layer: Layer,
        /// Which check: `"subset"`/`"flow"` at the difc layer, the LSM
        /// hook or barrier name above it.
        op: &'static str,
        /// Interned id of the subject (task / source) label or pair.
        subject: u32,
        /// Interned id of the object (target) label or pair.
        object: u32,
        /// The decision.
        verdict: Verdict,
        /// Whether the memo table answered (difc layer only).
        cache_hit: bool,
    },
    /// A message silently dropped on an unreliable channel (§5.2). The
    /// subject saw full success; only this trusted log records the drop.
    SilentDrop {
        /// Which channel dropped.
        channel: DropChannel,
    },
    /// A task label change that passed the label-change rule. A shrink
    /// of the secrecy label (or growth of integrity) is a
    /// declassification-side transition and sets `declassify`.
    LabelChange {
        /// Task whose label changed.
        task: u64,
        /// `"secrecy"` or `"integrity"`.
        ty: &'static str,
        /// Interned label id before the change.
        before: u32,
        /// Interned label id after the change.
        after: u32,
        /// Whether the transition released information (secrecy shrank
        /// or integrity grew) — the §4.3 declassification direction.
        declassify: bool,
    },
    /// A security-region entry decision.
    RegionEnter {
        /// Layer that evaluated the entry rule.
        layer: Layer,
        /// The decision (a denied entry never runs the region body).
        verdict: Verdict,
    },
    /// A security region aborted: its body faulted and its labeled
    /// writes were rolled back (secure termination, §4.3.3).
    RegionAbort {
        /// Layer that performed the abort.
        layer: Layer,
    },
    /// A syscall entered the dispatch loop. Recorded at flush time,
    /// immediately before the events its body staged.
    SyscallEnter {
        /// Static syscall name.
        name: &'static str,
    },
    /// A syscall reached a final outcome (success *or* typed denial) and
    /// took a commit ticket.
    SyscallCommit {
        /// Static syscall name.
        name: &'static str,
        /// The commit ticket (PR 4 linearization witness position).
        ticket: u64,
        /// Wall-clock latency of the whole dispatch, in nanoseconds —
        /// `None` when this dispatch was not latency-sampled (see
        /// [`set_latency_sample_every`]).
        latency_ns: Option<u64>,
        /// `Some(reason)` when the outcome was a typed denial.
        denied: Option<&'static str>,
    },
    /// A syscall was rolled back after a caught panic: its staged
    /// decision events were discarded along with its side effects.
    SyscallRollback {
        /// Static syscall name.
        name: &'static str,
        /// The commit ticket the rollback consumed.
        ticket: u64,
        /// Wall-clock latency of the whole dispatch, in nanoseconds —
        /// `None` when this dispatch was not latency-sampled.
        latency_ns: Option<u64>,
    },
    /// A resource allocation was denied by a [`Quotas`]-style limit.
    ///
    /// [`Quotas`]: https://docs.rs/laminar-os
    QuotaExceeded {
        /// Static name of the exhausted resource.
        resource: &'static str,
    },
}

/// One recorded event with its global sequence number. Sequence numbers
/// are process-wide and strictly increasing, so records from different
/// per-thread rings merge into one total order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Global sequence number (allocation order into the rings).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// Number of log2 latency buckets: bucket `i` counts syscalls whose
/// latency `t` satisfies `2^i ≤ t < 2^(i+1)` nanoseconds (bucket 0 also
/// absorbs `t < 1 ns`; the last bucket absorbs everything ≥ 2^31 ns).
pub const HIST_BUCKETS: usize = 32;

/// A fixed log2-bucket latency histogram for one syscall.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    /// Bucket counts; see [`HIST_BUCKETS`] for the bucket boundaries.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist { buckets: [0; HIST_BUCKETS] }
    }
}

impl LatencyHist {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    fn record(&mut self, nanos: u64) {
        let b = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b] += 1;
    }
}

/// Default per-thread ring capacity, in records.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Default latency sampling period: one dispatch in this many per thread
/// carries a clock read and joins the histograms.
pub const DEFAULT_LATENCY_SAMPLE_EVERY: u32 = 64;

/// Records accumulated thread-locally before one batched push into the
/// shared ring (one lock acquisition and one global sequence-block
/// allocation per batch).
pub const FLUSH_BATCH: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static LATENCY_EVERY: AtomicU32 = AtomicU32::new(DEFAULT_LATENCY_SAMPLE_EVERY);

/// One thread's bounded event ring plus its latency histograms. Shared
/// (behind a mutex) between the owning thread's flushes and cross-thread
/// [`snapshot`] readers; the hot path never touches it except in batches.
#[derive(Default)]
struct Ring {
    buf: VecDeque<Record>,
    /// Oldest-record drops forced by the capacity bound.
    truncated: u64,
    hist: BTreeMap<&'static str, LatencyHist>,
}

impl Ring {
    /// Appends a batch under one sequence-block allocation, then trims
    /// to capacity from the front (oldest records go first).
    fn push_batch(
        &mut self,
        events: std::vec::Drain<'_, Event>,
        samples: std::vec::Drain<'_, (&'static str, u64)>,
    ) {
        let first = SEQ.fetch_add(events.len() as u64, Ordering::Relaxed);
        self.buf.extend(
            events.enumerate().map(|(i, event)| Record { seq: first + i as u64, event }),
        );
        let cap = RING_CAPACITY.load(Ordering::Relaxed).max(1);
        while self.buf.len() > cap {
            self.buf.pop_front();
            self.truncated += 1;
        }
        for (name, ns) in samples {
            self.hist.entry(name).or_default().record(ns);
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// All of one thread's tracing state, in a single TLS slot so the hot
/// path pays one TLS lookup: the stage for the in-flight syscall
/// attempt, the pending batch awaiting a ring flush, the syscall nesting
/// depth, and the latency-sampling tick.
struct Local {
    ring: Arc<Mutex<Ring>>,
    staged: Vec<Event>,
    pending: Vec<Event>,
    pending_samples: Vec<(&'static str, u64)>,
    depth: u32,
    tick: u32,
}

impl Local {
    fn new() -> Self {
        let ring = Arc::new(Mutex::new(Ring::default()));
        registry().lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&ring));
        Local {
            ring,
            staged: Vec::new(),
            pending: Vec::new(),
            pending_samples: Vec::new(),
            depth: 0,
            tick: 0,
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() && self.pending_samples.is_empty() {
            return;
        }
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_batch(self.pending.drain(..), self.pending_samples.drain(..));
    }

    fn maybe_flush(&mut self) {
        if self.pending.len() >= FLUSH_BATCH || self.pending_samples.len() >= FLUSH_BATCH
        {
            self.flush();
        }
    }
}

impl Drop for Local {
    /// Thread exit flushes whatever the thread committed but had not yet
    /// batched out, so short-lived worker threads lose nothing.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// Enables or disables tracing process-wide. Disabled is the default;
/// every emit point degrades to a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether tracing is currently enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Overrides the per-thread ring capacity (records). Intended for tests
/// exercising wraparound; takes effect on subsequent flushes.
pub fn set_ring_capacity(cap: usize) {
    RING_CAPACITY.store(cap.max(1), Ordering::SeqCst);
}

/// Sets the latency sampling period: one syscall dispatch in `every` (per
/// thread) reads the clock and feeds the per-syscall histograms; the
/// rest record `latency_ns: None`. `1` samples every dispatch (tests);
/// the default ([`DEFAULT_LATENCY_SAMPLE_EVERY`]) keeps clock reads off
/// the common path.
pub fn set_latency_sample_every(every: u32) {
    LATENCY_EVERY.store(every.max(1), Ordering::SeqCst);
}

/// Records one event. No-op when tracing is disabled. Inside a syscall
/// dispatch the event is staged (and reaches the ring only if the
/// attempt is final — see the module docs); outside, it joins the
/// thread's pending batch directly.
#[inline]
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    emit_slow(event);
}

#[cold]
fn emit_slow(event: Event) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.depth > 0 {
            l.staged.push(event);
        } else {
            l.pending.push(event);
            l.maybe_flush();
        }
    });
}

/// An in-flight syscall dispatch: marks the thread as inside a syscall
/// so emits stage instead of landing directly, and (when this dispatch
/// is latency-sampled) holds the start timestamp. Obtained from
/// [`syscall_begin`]; finished with [`SyscallSpan::commit`] or
/// [`SyscallSpan::rollback`] (dropping it without finishing discards the
/// staged events).
#[derive(Debug)]
pub struct SyscallSpan {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SyscallSpan {
    fn drop(&mut self) {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            l.staged.clear();
        });
    }
}

/// Starts a syscall span. Returns `None` (and costs one atomic load)
/// when tracing is disabled.
#[must_use]
pub fn syscall_begin(name: &'static str) -> Option<SyscallSpan> {
    if !enabled() {
        return None;
    }
    let sampled = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.depth += 1;
        let every = LATENCY_EVERY.load(Ordering::Relaxed).max(1);
        let sampled = l.tick % every == 0;
        l.tick = l.tick.wrapping_add(1);
        sampled
    });
    Some(SyscallSpan { name, start: sampled.then(Instant::now) })
}

impl SyscallSpan {
    /// Discards events staged by an attempt that is about to rerun
    /// (footprint restart): the body re-executes, so its decisions must
    /// not be recorded twice.
    pub fn retry(&self) {
        LOCAL.with(|l| l.borrow_mut().staged.clear());
    }

    fn latency_ns(&self) -> Option<u64> {
        self.start.map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Flushes the span as a final outcome. A **decision-bearing**
    /// dispatch — one that staged at least one event, or ended in a
    /// typed denial — records `SyscallEnter`, the staged body events,
    /// then `SyscallCommit` (with `denied` naming the typed error, if
    /// any) contiguously in the thread's pending batch. A decision-free
    /// success leaves no records at all: its cached allows were logged
    /// when first computed, so an Enter/Commit pair would tell the
    /// auditor nothing — and *not* logging it keeps enabled tracing
    /// nearly free on the hot path. Either way, a sampled latency joins
    /// the per-syscall histogram.
    pub fn commit(self, ticket: u64, denied: Option<&'static str>) {
        let latency_ns = self.latency_ns();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let Local { staged, pending, pending_samples, .. } = &mut *l;
            if !staged.is_empty() || denied.is_some() {
                pending.push(Event::SyscallEnter { name: self.name });
                pending.append(staged);
                pending.push(Event::SyscallCommit {
                    name: self.name,
                    ticket,
                    latency_ns,
                    denied,
                });
            }
            if let Some(ns) = latency_ns {
                pending_samples.push((self.name, ns));
            }
            l.maybe_flush();
        });
    }

    /// Flushes the span as a caught-panic rollback: the staged decision
    /// events are discarded (the body's effects were undone) and only
    /// `SyscallEnter` + `SyscallRollback` are recorded.
    pub fn rollback(self, ticket: u64) {
        let latency_ns = self.latency_ns();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.staged.clear();
            l.pending.push(Event::SyscallEnter { name: self.name });
            l.pending.push(Event::SyscallRollback {
                name: self.name,
                ticket,
                latency_ns,
            });
            if let Some(ns) = latency_ns {
                l.pending_samples.push((self.name, ns));
            }
            l.maybe_flush();
        });
    }
}

/// A merged, ordered snapshot of every thread's ring: the trusted
/// audit log.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    /// All records, sorted by global sequence number.
    pub records: Vec<Record>,
    /// Total records discarded by ring-capacity truncation, across all
    /// threads. Non-zero means the log is a suffix, not a full history.
    pub truncated: u64,
    /// Per-syscall latency histograms, merged across threads.
    pub histograms: BTreeMap<&'static str, LatencyHist>,
}

impl AuditLog {
    /// Serialises the log as JSON lines: one object per record, then one
    /// per histogram, then a trailing summary object. Hand-rolled (the
    /// workspace is dependency-free); all strings are static identifiers
    /// but are escaped anyway.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&record_json(r));
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"syscall\":{},\"count\":{},\"log2_ns_buckets\":[{}]}}\n",
                json_str(name),
                h.count(),
                h.buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"records\":{},\"truncated\":{}}}\n",
            self.records.len(),
            self.truncated
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn record_json(r: &Record) -> String {
    let body = match &r.event {
        Event::FlowCheck { layer, op, subject, object, verdict, cache_hit } => format!(
            "\"type\":\"flow_check\",\"layer\":\"{}\",\"op\":{},\"subject\":{subject},\
             \"object\":{object},\"verdict\":\"{}\",\"cache_hit\":{cache_hit}",
            layer.as_str(),
            json_str(op),
            if *verdict == Verdict::Allow { "allow" } else { "deny" },
        ),
        Event::SilentDrop { channel } => {
            format!("\"type\":\"silent_drop\",\"channel\":\"{}\"", channel.as_str())
        }
        Event::LabelChange { task, ty, before, after, declassify } => format!(
            "\"type\":\"label_change\",\"task\":{task},\"label\":{},\"before\":{before},\
             \"after\":{after},\"declassify\":{declassify}",
            json_str(ty),
        ),
        Event::RegionEnter { layer, verdict } => format!(
            "\"type\":\"region_enter\",\"layer\":\"{}\",\"verdict\":\"{}\"",
            layer.as_str(),
            if *verdict == Verdict::Allow { "allow" } else { "deny" },
        ),
        Event::RegionAbort { layer } => {
            format!("\"type\":\"region_abort\",\"layer\":\"{}\"", layer.as_str())
        }
        Event::SyscallEnter { name } => {
            format!("\"type\":\"syscall_enter\",\"name\":{}", json_str(name))
        }
        Event::SyscallCommit { name, ticket, latency_ns, denied } => format!(
            "\"type\":\"syscall_commit\",\"name\":{},\"ticket\":{ticket},\
             \"latency_ns\":{},\"denied\":{}",
            json_str(name),
            latency_ns.map_or_else(|| "null".to_string(), |ns| ns.to_string()),
            denied.map_or_else(|| "null".to_string(), json_str),
        ),
        Event::SyscallRollback { name, ticket, latency_ns } => format!(
            "\"type\":\"syscall_rollback\",\"name\":{},\"ticket\":{ticket},\
             \"latency_ns\":{}",
            json_str(name),
            latency_ns.map_or_else(|| "null".to_string(), |ns| ns.to_string()),
        ),
        Event::QuotaExceeded { resource } => {
            format!("\"type\":\"quota_exceeded\",\"resource\":{}", json_str(resource))
        }
    };
    format!("{{\"seq\":{},{body}}}", r.seq)
}

/// Snapshots every thread's ring into one ordered [`AuditLog`] without
/// draining anything. **Trusted read API**: reachable from `Kernel`-level
/// code and tests only — see the module docs for why no syscall exposes
/// it.
///
/// The calling thread's pending batch is flushed first; *other* live
/// threads' batches appear after their next flush (or their exit, which
/// flushes) — snapshots taken mid-run can lag those threads by up to one
/// batch.
#[must_use]
pub fn snapshot() -> AuditLog {
    LOCAL.with(|l| l.borrow_mut().flush());
    let rings: Vec<Arc<Mutex<Ring>>> =
        registry().lock().unwrap_or_else(PoisonError::into_inner).clone();
    let mut log = AuditLog::default();
    for ring in rings {
        let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        log.records.extend(ring.buf.iter().copied());
        log.truncated += ring.truncated;
        for (name, h) in &ring.hist {
            let merged = log.histograms.entry(name).or_default();
            for (dst, src) in merged.buckets.iter_mut().zip(h.buckets.iter()) {
                *dst += src;
            }
        }
    }
    log.records.sort_by_key(|r| r.seq);
    log
}

/// Drains and returns the *current thread's* ring, in order. The
/// single-threaded conformance harness uses this to bracket the audit
/// delta of one operation. **Trusted read API** (see module docs).
#[must_use]
pub fn take_local() -> Vec<Record> {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.flush();
        let mut ring = l.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.truncated = 0;
        ring.buf.drain(..).collect()
    })
}

/// Clears every ring, histogram and truncation counter, plus the calling
/// thread's staged and pending batches (the enabled flag is left as-is).
/// For tests and benchmarks that need a clean baseline.
pub fn reset() {
    let rings: Vec<Arc<Mutex<Ring>>> =
        registry().lock().unwrap_or_else(PoisonError::into_inner).clone();
    for ring in rings {
        let mut ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.buf.clear();
        ring.truncated = 0;
        ring.hist.clear();
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.staged.clear();
        l.pending.clear();
        l.pending_samples.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share process-global state (the enabled flag and ring
    /// capacity), so they serialize on one mutex.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn drop_event() -> Event {
        Event::SilentDrop { channel: DropChannel::Pipe }
    }

    #[test]
    fn disabled_emits_nothing() {
        let _g = serial();
        set_enabled(false);
        reset();
        let _ = take_local();
        emit(drop_event());
        assert!(syscall_begin("noop").is_none());
        assert!(take_local().is_empty());
    }

    #[test]
    fn ring_wraparound_counts_truncation() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        set_ring_capacity(4);
        for _ in 0..10 {
            emit(drop_event());
        }
        let log = snapshot();
        assert_eq!(log.truncated, 6, "10 pushes into a 4-slot ring drop 6");
        let local = take_local();
        assert_eq!(local.len(), 4, "ring holds the newest 4");
        // The survivors are the *latest* records, in order.
        for w in local.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_enabled(false);
    }

    #[test]
    fn staged_events_flush_on_commit_and_clear_on_retry() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();

        // Attempt 1 stages an event, then restarts: nothing recorded.
        let span = syscall_begin("write").expect("enabled");
        emit(drop_event());
        span.retry();
        // Attempt 2 stages again and commits: exactly one drop recorded.
        emit(drop_event());
        span.commit(7, None);

        let recs = take_local();
        let drops =
            recs.iter().filter(|r| matches!(r.event, Event::SilentDrop { .. })).count();
        assert_eq!(drops, 1, "retry must discard the first attempt's stage");
        assert!(matches!(
            recs.first().map(|r| r.event),
            Some(Event::SyscallEnter { name: "write" })
        ));
        assert!(matches!(
            recs.last().map(|r| r.event),
            Some(Event::SyscallCommit { name: "write", ticket: 7, denied: None, .. })
        ));
        set_enabled(false);
    }

    #[test]
    fn rollback_discards_staged_decisions() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        let span = syscall_begin("kill").expect("enabled");
        emit(drop_event());
        span.rollback(9);
        let recs = take_local();
        assert!(recs.iter().all(|r| !matches!(r.event, Event::SilentDrop { .. })));
        assert!(matches!(
            recs.last().map(|r| r.event),
            Some(Event::SyscallRollback { name: "kill", ticket: 9, .. })
        ));
        set_enabled(false);
    }

    #[test]
    fn unfinished_span_discards_stage_on_drop() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        {
            let _span = syscall_begin("open").expect("enabled");
            emit(drop_event());
            // dropped without commit/rollback
        }
        assert!(take_local().is_empty());
        // And the thread is no longer "inside a syscall": emits go direct.
        emit(drop_event());
        assert_eq!(take_local().len(), 1);
        set_enabled(false);
    }

    #[test]
    fn latency_histogram_buckets_are_log2() {
        let mut h = LatencyHist::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn latency_sampling_period_controls_clock_reads() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        // Period 1: every dispatch carries a latency and feeds the hist.
        // (Each span stages a drop so its commit is decision-bearing and
        // actually recorded.)
        set_latency_sample_every(1);
        for i in 0..4 {
            let span = syscall_begin("seek").expect("enabled");
            emit(drop_event());
            span.commit(i, None);
        }
        let sampled = take_local()
            .iter()
            .filter(|r| {
                matches!(r.event, Event::SyscallCommit { latency_ns: Some(_), .. })
            })
            .count();
        assert_eq!(sampled, 4);
        // A long period leaves later dispatches unsampled (the first
        // tick of a fresh period boundary may sample; none after).
        set_latency_sample_every(u32::MAX);
        for i in 0..4 {
            let span = syscall_begin("seek").expect("enabled");
            emit(drop_event());
            span.commit(i, None);
        }
        let unsampled = take_local()
            .iter()
            .filter(|r| matches!(r.event, Event::SyscallCommit { latency_ns: None, .. }))
            .count();
        assert!(unsampled >= 3, "period u32::MAX must skip the clock");
        set_latency_sample_every(DEFAULT_LATENCY_SAMPLE_EVERY);
        set_enabled(false);
    }

    #[test]
    fn decision_free_success_leaves_no_records() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        set_latency_sample_every(1);
        // No staged events, no denial: nothing lands in the ring…
        let span = syscall_begin("read").expect("enabled");
        span.commit(1, None);
        assert!(take_local().is_empty());
        // …but the sampled latency still feeds the histogram…
        assert!(snapshot().histograms.get("read").is_some_and(|h| h.count() >= 1));
        // …and a denied commit with no staged events is still recorded.
        let span = syscall_begin("read").expect("enabled");
        span.commit(2, Some("flow"));
        let recs = take_local();
        assert!(matches!(
            recs.last().map(|r| r.event),
            Some(Event::SyscallCommit { denied: Some("flow"), .. })
        ));
        set_latency_sample_every(DEFAULT_LATENCY_SAMPLE_EVERY);
        set_enabled(false);
    }

    #[test]
    fn json_lines_export_is_one_object_per_line() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        let span = syscall_begin("write").expect("enabled");
        emit(Event::QuotaExceeded { resource: "file size" });
        span.commit(3, Some("quota"));
        let log = snapshot();
        let json = log.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines.len() >= 4, "3 records + histogram + summary");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not an object: {l}");
        }
        assert!(json.contains("\"type\":\"quota_exceeded\""));
        assert!(json.contains("\"denied\":\"quota\""));
        assert!(json.contains("\"type\":\"histogram\""));
        let _ = take_local();
        set_enabled(false);
    }

    #[test]
    fn snapshot_merges_threads_in_seq_order() {
        let _g = serial();
        set_enabled(true);
        reset();
        let _ = take_local();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..8 {
                        emit(drop_event());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let log = snapshot();
        let drops = log
            .records
            .iter()
            .filter(|r| matches!(r.event, Event::SilentDrop { .. }))
            .count();
        assert!(drops >= 32);
        for w in log.records.windows(2) {
            assert!(w[0].seq < w[1].seq, "snapshot must be seq-sorted");
        }
        reset();
        set_enabled(false);
    }
}

#[cfg(test)]
mod micro {
    use super::*;

    #[test]
    #[ignore = "manual microbenchmark"]
    fn span_cost() {
        set_enabled(true);
        reset();
        let _ = take_local();
        let n = 2_000_000u64;
        let t = Instant::now();
        for i in 0..n {
            let s = syscall_begin("x").unwrap();
            s.commit(i, None);
        }
        let per = t.elapsed().as_nanos() as f64 / n as f64;
        eprintln!("enabled span+commit: {per:.1} ns/syscall");
        let t = Instant::now();
        for _ in 0..n {
            emit(Event::SilentDrop { channel: DropChannel::Pipe });
        }
        let per = t.elapsed().as_nanos() as f64 / n as f64;
        eprintln!("enabled emit (direct): {per:.1} ns/event");
        set_enabled(false);
        let t = Instant::now();
        for i in 0..n {
            let s = syscall_begin("x");
            if let Some(s) = s {
                s.commit(i, None);
            }
        }
        let per = t.elapsed().as_nanos() as f64 / n as f64;
        eprintln!("disabled span+commit: {per:.1} ns/syscall");
        reset();
    }
}
