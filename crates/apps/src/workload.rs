//! Shared reporting types for the case-study applications.

use laminar::RuntimeStats;

/// Simulates the application work surrounding one request — parsing the
/// command line, rendering the response, logging — which both the
/// secured and baseline variants perform identically. The paper's case
/// studies are full applications (FreeCS alone is 22k LOC) whose
/// request handling dwarfs the security operations; our ports compress
/// them to their security-relevant skeleton, so this shared component
/// restores a realistic work-to-security ratio (`units` sizes it per
/// app, chosen so the measured %-time-in-regions lands near Table 3).
#[must_use]
#[inline(never)] // one shared code path for every caller: comparisons
                 // between variants must not depend on inlining luck or
                 // on each variant's allocator state (hence no allocation)
pub fn request_work(parts: &[&str], units: u32) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for u in 0..units {
        acc ^= u64::from(u);
        for p in parts {
            for b in p.bytes() {
                acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
            }
            // One mixing round per token (checksum/CRC-style protocol work).
            acc ^= acc >> 27;
            acc = acc.wrapping_mul(0x94d0_49bb_1331_11eb);
        }
    }
    std::hint::black_box(acc)
}

/// Aggregated per-application statistics, the raw material for Table 3
/// ("% time in SRs") and the Figure 9 overhead decomposition.
#[derive(Clone, Debug, Default)]
pub struct AppStats {
    /// Application name.
    pub name: String,
    /// Security regions entered.
    pub regions_entered: u64,
    /// Nanoseconds spent inside security regions.
    pub region_ns: u64,
    /// Labeled reads (static + dynamic APIs).
    pub labeled_reads: u64,
    /// Labeled writes.
    pub labeled_writes: u64,
    /// Labeled allocations.
    pub labeled_allocs: u64,
    /// `copy_and_label` declassifications/endorsements.
    pub copies: u64,
    /// Dynamic-barrier context lookups.
    pub dynamic_dispatches: u64,
    /// Exceptions confined to regions.
    pub exceptions_suppressed: u64,
    /// VM→OS label syncs performed.
    pub os_syncs: u64,
    /// VM→OS label syncs elided by the lazy optimization.
    pub os_syncs_elided: u64,
}

impl AppStats {
    /// Converts the runtime counter struct.
    #[must_use]
    pub fn from_runtime(name: &str, s: &RuntimeStats) -> Self {
        AppStats {
            name: name.to_string(),
            regions_entered: s.regions_entered,
            region_ns: s.region_ns,
            labeled_reads: s.labeled_reads,
            labeled_writes: s.labeled_writes,
            labeled_allocs: s.labeled_allocs,
            copies: s.copies,
            dynamic_dispatches: s.dynamic_dispatches,
            exceptions_suppressed: s.exceptions_suppressed,
            os_syncs: s.os_syncs,
            os_syncs_elided: s.os_syncs_elided,
        }
    }

    /// Fraction of `total_ns` spent inside security regions (Table 3's
    /// "% time in SRs").
    #[must_use]
    pub fn pct_in_regions(&self, total_ns: u64) -> f64 {
        if total_ns == 0 {
            0.0
        } else {
            100.0 * self.region_ns as f64 / total_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_in_regions_handles_zero() {
        let s = AppStats { region_ns: 50, ..Default::default() };
        assert_eq!(s.pct_in_regions(0), 0.0);
        assert!((s.pct_in_regions(200) - 25.0).abs() < 1e-9);
    }
}
