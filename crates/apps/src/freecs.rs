//! FreeCS chat server (§7.4): roles as integrity labels.
//!
//! The original FreeCS authorization framework is a pile of ad-hoc
//! `if..then` role checks. The Laminar retrofit localizes all security
//! into labels on the `Group` and `User` data structures: the
//! role-abstraction maps onto integrity tags. The paper's flagship
//! example: the `banList` is protected by *two* integrity tags — one for
//! the VIP role and one for the group's superuser — so "only users who
//! have the add capability for these two tags can use the ban command".
//! The authentication module grants capabilities at login.
//!
//! All user principals are threads of the one server process with
//! heterogeneous labels — precisely the multithreaded labeled workload
//! prior OS DIFC systems cannot express (§7.5).
//!
//! This port implements a representative 12 of FreeCS's 47 commands.

use crate::workload::AppStats;
use laminar::{Labeled, Laminar, LaminarError, LaminarResult, Principal, RegionParams};
use laminar_difc::{Capability, Label, SecPair, Tag};
use laminar_os::UserId;
use laminar_util::sync::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A chat group: membership, ban list and theme are integrity-labeled;
/// the message log is unlabeled (public), accessed through *dynamic*
/// barriers because the same logging code runs both inside command
/// regions and outside (server maintenance) — the situation that forces
/// dynamic barriers in §7.
#[derive(Debug)]
pub struct Group {
    su_tag: Tag,
    members: Arc<Labeled<BTreeSet<String>>>,
    banlist: Arc<Labeled<BTreeSet<String>>>,
    theme: Arc<Labeled<String>>,
    log: Arc<Labeled<Vec<String>>>,
}

/// A connected user: principal, secrecy tag and private inbox `{S(u)}`.
#[derive(Debug)]
pub struct User {
    principal: Principal,
    tag: Tag,
    inbox: Arc<Labeled<Vec<String>>>,
    vip: bool,
}

/// The Laminar-secured chat server.
#[derive(Debug)]
pub struct ChatServer {
    server: Principal,
    /// Integrity tag of the "registered user" role (membership writes).
    member_tag: Tag,
    /// Integrity tag of the VIP role.
    vip_tag: Tag,
    users: Mutex<BTreeMap<String, Arc<User>>>,
    groups: Mutex<BTreeMap<String, Arc<Group>>>,
}

/// Result of one command: did the authorization framework permit it?
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CmdOutcome {
    /// Executed.
    Ok,
    /// Refused (role/label failure) — confined, server keeps running.
    Denied,
}

impl ChatServer {
    /// Boots the server and mints the role tags.
    ///
    /// # Errors
    /// Propagates setup failures.
    pub fn new(system: &Arc<Laminar>) -> LaminarResult<Self> {
        system.add_user(UserId(4000), "freecs");
        let server = system.login(UserId(4000))?;
        let member_tag = server.create_tag()?;
        let vip_tag = server.create_tag()?;
        Ok(ChatServer {
            server,
            member_tag,
            vip_tag,
            users: Mutex::new(BTreeMap::new()),
            groups: Mutex::new(BTreeMap::new()),
        })
    }

    /// The authentication module: admits a user and grants the
    /// capabilities their roles warrant (`m+` for every registered user;
    /// `vip+` for VIPs).
    ///
    /// # Errors
    /// Propagates kernel failures.
    pub fn login_user(&self, name: &str, vip: bool) -> LaminarResult<()> {
        // Grant via kernel-mediated capability transfer (Fig. 3): the
        // server writes the role capabilities into a pipe the user reads.
        let (rx, tx) = self.server.task().pipe()?;
        self.server.task().write_capability(Capability::plus(self.member_tag), tx)?;
        if vip {
            self.server.task().write_capability(Capability::plus(self.vip_tag), tx)?;
        }
        let principal = self.server.spawn_thread(Some(laminar_difc::CapSet::new()))?;
        principal.receive_capability(rx)?;
        if vip {
            principal.receive_capability(rx)?;
        }
        let tag = principal.create_tag()?;
        let inbox = self.make_inbox(&principal, tag)?;
        self.server.task().close(rx)?;
        self.server.task().close(tx)?;
        self.users
            .lock()
            .insert(name.to_string(), Arc::new(User { principal, tag, inbox, vip }));
        Ok(())
    }

    fn make_inbox(
        &self,
        p: &Principal,
        tag: Tag,
    ) -> LaminarResult<Arc<Labeled<Vec<String>>>> {
        let params = RegionParams::new()
            .secrecy(Label::singleton(tag))
            .grant(Capability::plus(tag));
        p.secure(&params, |g| Ok(Arc::new(g.new_labeled(Vec::new()))), |_| {})?
            .ok_or(LaminarError::App("inbox allocation failed".into()))
    }

    /// Creates a group whose superuser is `owner` (granted `su_g+`).
    ///
    /// # Errors
    /// Fails for unknown owners.
    pub fn create_group(&self, name: &str, owner: &str) -> LaminarResult<()> {
        let su_tag = self.server.create_tag()?;
        let owner_user = self
            .users
            .lock()
            .get(owner)
            .cloned()
            .ok_or(LaminarError::App("unknown owner".into()))?;
        let (rx, tx) = self.server.task().pipe()?;
        self.server.task().write_capability(Capability::plus(su_tag), tx)?;
        owner_user.principal.receive_capability(rx)?;
        self.server.task().close(rx)?;
        self.server.task().close(tx)?;

        // The server endorses the initial structures: banlist carries
        // BOTH the VIP and superuser integrity tags (the §7.4 policy).
        let ban_integrity = Label::from_tags([self.vip_tag, su_tag]);
        let su_integrity = Label::singleton(su_tag);
        let member_integrity = Label::singleton(self.member_tag);
        let params = RegionParams::new()
            .integrity(Label::from_tags([self.vip_tag, su_tag, self.member_tag]))
            .grant(Capability::plus(self.vip_tag))
            .grant(Capability::plus(su_tag))
            .grant(Capability::plus(self.member_tag));
        let group = self
            .server
            .secure(
                &params,
                |g| {
                    let members = Arc::new(g.new_labeled_with(
                        BTreeSet::new(),
                        SecPair::integrity_only(member_integrity.clone()),
                    )?);
                    let banlist = Arc::new(g.new_labeled_with(
                        BTreeSet::new(),
                        SecPair::integrity_only(ban_integrity.clone()),
                    )?);
                    let theme = Arc::new(g.new_labeled_with(
                        String::from("default"),
                        SecPair::integrity_only(su_integrity.clone()),
                    )?);
                    Ok(Arc::new(Group {
                        su_tag,
                        members,
                        banlist,
                        theme,
                        log: Arc::new(Labeled::unlabeled(Vec::new())),
                    }))
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("group creation failed".into()))?;
        self.groups.lock().insert(name.to_string(), group);
        Ok(())
    }

    fn user(&self, name: &str) -> LaminarResult<Arc<User>> {
        self.users
            .lock()
            .get(name)
            .cloned()
            .ok_or(LaminarError::App("unknown user".into()))
    }

    fn group(&self, name: &str) -> LaminarResult<Arc<Group>> {
        self.groups
            .lock()
            .get(name)
            .cloned()
            .ok_or(LaminarError::App("unknown group".into()))
    }

    /// `JOIN`: a registered user adds themself to the member list, after
    /// a ban check. Two regions: an unlabeled one to read the ban list,
    /// then one carrying the `m` endorsement to write membership.
    ///
    /// # Errors
    /// Propagates lookup failures; label denials return
    /// [`CmdOutcome::Denied`].
    pub fn join(&self, who: &str, group: &str) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let banned = user
            .principal
            .secure(
                &RegionParams::new(),
                |guard| g.banlist.read(guard, |b| b.contains(who)),
                |_| {},
            )?
            .unwrap_or(true);
        if banned {
            return Ok(CmdOutcome::Denied);
        }
        let params = RegionParams::new()
            .integrity(Label::singleton(self.member_tag))
            .grant(Capability::plus(self.member_tag));
        let who_owned = who.to_string();
        let members = Arc::clone(&g.members);
        match user.principal.secure(
            &params,
            move |guard| {
                members.write(guard, |m| {
                    m.insert(who_owned.clone());
                })
            },
            |_| {},
        )? {
            Some(()) => Ok(CmdOutcome::Ok),
            None => Ok(CmdOutcome::Denied),
        }
    }

    /// `LEAVE`.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn leave(&self, who: &str, group: &str) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let params = RegionParams::new()
            .integrity(Label::singleton(self.member_tag))
            .grant(Capability::plus(self.member_tag));
        let who_owned = who.to_string();
        let members = Arc::clone(&g.members);
        match user.principal.secure(
            &params,
            move |guard| {
                members.write(guard, |m| {
                    m.remove(&who_owned);
                })
            },
            |_| {},
        )? {
            Some(()) => Ok(CmdOutcome::Ok),
            None => Ok(CmdOutcome::Denied),
        }
    }

    /// `SAY`: members post to the public group log. The log itself is
    /// unlabeled; the append runs through a *dynamic* barrier because the
    /// same code path also runs outside regions (server maintenance).
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn say(&self, who: &str, group: &str, msg: &str) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let line = format!("{who}: {msg}");
        let members = Arc::clone(&g.members);
        let log = Arc::clone(&g.log);
        let who_owned = who.to_string();
        let allowed = user
            .principal
            .secure(
                &RegionParams::new(),
                move |guard| {
                    let is_member = members.read(guard, |m| m.contains(&who_owned))?;
                    if is_member {
                        // Dynamic barrier: context discovered at run time.
                        log.write_dyn(|l| l.push(line.clone()))?;
                    }
                    Ok(is_member)
                },
                |_| {},
            )?
            .unwrap_or(false);
        Ok(if allowed { CmdOutcome::Ok } else { CmdOutcome::Denied })
    }

    /// `BAN`: requires the VIP *and* group-superuser endorsements — the
    /// flagship policy of §7.4. A non-VIP or non-superuser cannot even
    /// enter the region (missing `+` capability), and the denial is
    /// confined.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn ban(&self, who: &str, group: &str, victim: &str) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let params = RegionParams::new()
            .integrity(Label::from_tags([self.vip_tag, g.su_tag]))
            .grant(Capability::plus(self.vip_tag))
            .grant(Capability::plus(g.su_tag));
        let banlist = Arc::clone(&g.banlist);
        let victim_owned = victim.to_string();
        match user.principal.secure(
            &params,
            move |guard| {
                banlist.write(guard, |b| {
                    b.insert(victim_owned.clone());
                })
            },
            |_| {},
        ) {
            Ok(Some(())) => Ok(CmdOutcome::Ok),
            Ok(None) => Ok(CmdOutcome::Denied),
            Err(LaminarError::RegionEntry(_)) => Ok(CmdOutcome::Denied),
            Err(e) => Err(e),
        }
    }

    /// `UNBAN`: same protection as `BAN`.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn unban(
        &self,
        who: &str,
        group: &str,
        victim: &str,
    ) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let params = RegionParams::new()
            .integrity(Label::from_tags([self.vip_tag, g.su_tag]))
            .grant(Capability::plus(self.vip_tag))
            .grant(Capability::plus(g.su_tag));
        let banlist = Arc::clone(&g.banlist);
        let victim_owned = victim.to_string();
        match user.principal.secure(
            &params,
            move |guard| {
                banlist.write(guard, |b| {
                    b.remove(&victim_owned);
                })
            },
            |_| {},
        ) {
            Ok(Some(())) => Ok(CmdOutcome::Ok),
            Ok(None) => Ok(CmdOutcome::Denied),
            Err(LaminarError::RegionEntry(_)) => Ok(CmdOutcome::Denied),
            Err(e) => Err(e),
        }
    }

    /// `KICK`: superuser-only membership removal.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn kick(
        &self,
        who: &str,
        group: &str,
        victim: &str,
    ) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let params = RegionParams::new()
            .integrity(Label::from_tags([self.member_tag, g.su_tag]))
            .grant(Capability::plus(self.member_tag))
            .grant(Capability::plus(g.su_tag));
        let members = Arc::clone(&g.members);
        let victim_owned = victim.to_string();
        match user.principal.secure(
            &params,
            move |guard| {
                members.write(guard, |m| {
                    m.remove(&victim_owned);
                })
            },
            |_| {},
        ) {
            Ok(Some(())) => Ok(CmdOutcome::Ok),
            Ok(None) => Ok(CmdOutcome::Denied),
            Err(LaminarError::RegionEntry(_)) => Ok(CmdOutcome::Denied),
            Err(e) => Err(e),
        }
    }

    /// `THEME`: superuser-only.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn set_theme(
        &self,
        who: &str,
        group: &str,
        theme: &str,
    ) -> LaminarResult<CmdOutcome> {
        let user = self.user(who)?;
        let g = self.group(group)?;
        let params = RegionParams::new()
            .integrity(Label::singleton(g.su_tag))
            .grant(Capability::plus(g.su_tag));
        let cell = Arc::clone(&g.theme);
        let theme_owned = theme.to_string();
        match user.principal.secure(
            &params,
            move |guard| cell.write(guard, |t| *t = theme_owned.clone()),
            |_| {},
        ) {
            Ok(Some(())) => Ok(CmdOutcome::Ok),
            Ok(None) => Ok(CmdOutcome::Denied),
            Err(LaminarError::RegionEntry(_)) => Ok(CmdOutcome::Denied),
            Err(e) => Err(e),
        }
    }

    /// `WHOIS`: public role info.
    ///
    /// # Errors
    /// Fails for unknown users.
    pub fn whois(&self, name: &str) -> LaminarResult<String> {
        let user = self.user(name)?;
        Ok(format!("{name} vip={}", user.vip))
    }

    /// `GROUPS`: lists groups and membership counts (reads run in an
    /// unlabeled region).
    ///
    /// # Errors
    /// Propagates region failures.
    pub fn list_groups(&self) -> LaminarResult<Vec<(String, usize)>> {
        let groups: Vec<(String, Arc<Group>)> =
            self.groups.lock().iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        let mut out = Vec::new();
        for (name, g) in groups {
            let count = self
                .server
                .secure(
                    &RegionParams::new(),
                    |guard| g.members.read(guard, BTreeSet::len),
                    |_| {},
                )?
                .unwrap_or(0);
            out.push((name, count));
        }
        Ok(out)
    }

    /// `THEME?`: anyone may read the theme.
    ///
    /// # Errors
    /// Propagates lookup/region failures.
    pub fn theme(&self, group: &str) -> LaminarResult<String> {
        let g = self.group(group)?;
        self.server
            .secure(
                &RegionParams::new(),
                |guard| g.theme.read(guard, Clone::clone),
                |_| {},
            )?
            .ok_or(LaminarError::App("theme read suppressed".into()))
    }

    /// `MSG`: a private message — written *up* into the recipient's
    /// `{S(u)}` inbox (classification needs no capability).
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn msg(&self, from: &str, to: &str, text: &str) -> LaminarResult<CmdOutcome> {
        let sender = self.user(from)?;
        let recipient = self.user(to)?;
        let inbox = Arc::clone(&recipient.inbox);
        let line = format!("{from}: {text}");
        match sender.principal.secure(
            &RegionParams::new(),
            move |guard| inbox.write(guard, |i| i.push(line.clone())),
            |_| {},
        )? {
            Some(()) => Ok(CmdOutcome::Ok),
            None => Ok(CmdOutcome::Denied),
        }
    }

    /// `INBOX`: the recipient reads (and thereby declassifies for their
    /// own eyes) their private messages.
    ///
    /// # Errors
    /// Propagates lookup/region failures.
    pub fn read_inbox(&self, who: &str) -> LaminarResult<Vec<String>> {
        let user = self.user(who)?;
        let params = RegionParams::new()
            .secrecy(Label::singleton(user.tag))
            .grant(Capability::plus(user.tag))
            .grant(Capability::minus(user.tag));
        let inbox = Arc::clone(&user.inbox);
        user.principal
            .secure(&params, move |g| inbox.read(g, Clone::clone), |_| {})?
            .ok_or(LaminarError::App("inbox read suppressed".into()))
    }

    /// Server maintenance: log length, read *outside* any region via the
    /// dynamic barrier (legal because the log is unlabeled) — this is the
    /// "same method called from both contexts" pattern that forces
    /// dynamic barriers for FreeCS in §7.
    ///
    /// # Errors
    /// Propagates lookup failures.
    pub fn log_len(&self, group: &str) -> LaminarResult<usize> {
        let g = self.group(group)?;
        g.log.read_dyn(Vec::len)
    }

    /// Aggregated statistics across the server and every user principal.
    #[must_use]
    pub fn stats(&self) -> AppStats {
        let mut s = self.server.stats();
        for u in self.users.lock().values() {
            s.merge(&u.principal.stats());
        }
        AppStats::from_runtime("FreeCS", &s)
    }

    /// Resets all statistics.
    pub fn reset_stats(&self) {
        self.server.reset_stats();
        for u in self.users.lock().values() {
            u.principal.reset_stats();
        }
    }

    /// The paper's experiment: `users` users, three commands each
    /// (join, say, theme-read), each surrounded by the network/protocol
    /// handling a chat server performs per command. Returns the number
    /// of successful commands as a checksum.
    ///
    /// # Errors
    /// Propagates the first failure.
    pub fn run_workload(&self, users: usize, group: &str) -> LaminarResult<u64> {
        let names: Vec<String> = (0..users).map(|i| format!("u{i}")).collect();
        let mut ok = 0u64;
        for n in &names {
            let _ = crate::workload::request_work(&["JOIN", group, n], REQUEST_UNITS);
            if self.join(n, group)? == CmdOutcome::Ok {
                ok += 1;
            }
            let _ = crate::workload::request_work(&["SAY", group, n], REQUEST_UNITS);
            if self.say(n, group, "hello")? == CmdOutcome::Ok {
                ok += 1;
            }
            let _ = crate::workload::request_work(&["THEME?", group], REQUEST_UNITS);
            self.theme(group)?;
            ok += 1;
        }
        Ok(ok)
    }
}

/// Per-command protocol work units (FreeCS is a 22k-LOC server whose
/// command dispatch dwarfs the label checks — Table 3 reports <1% of
/// time in security regions).
const REQUEST_UNITS: u32 = 1280;

// ---------------------------------------------------------------------------

/// The unsecured baseline: original-style ad-hoc role checks.
#[derive(Debug, Default)]
pub struct BaselineChatServer {
    users: BTreeMap<String, (bool, BTreeSet<String>)>, // vip, su-of
    groups: BTreeMap<String, BaselineGroup>,
}

#[derive(Debug, Default)]
struct BaselineGroup {
    members: BTreeSet<String>,
    banlist: BTreeSet<String>,
    theme: String,
    log: Vec<String>,
}

impl BaselineChatServer {
    /// An empty server.
    #[must_use]
    pub fn new() -> Self {
        BaselineChatServer::default()
    }

    /// Registers a user.
    pub fn login_user(&mut self, name: &str, vip: bool) {
        self.users.insert(name.to_string(), (vip, BTreeSet::new()));
    }

    /// Creates a group with a superuser.
    pub fn create_group(&mut self, name: &str, owner: &str) {
        self.groups.insert(
            name.to_string(),
            BaselineGroup { theme: "default".into(), ..Default::default() },
        );
        if let Some((_, su)) = self.users.get_mut(owner) {
            su.insert(name.to_string());
        }
    }

    /// `JOIN` with an if-check.
    pub fn join(&mut self, who: &str, group: &str) -> CmdOutcome {
        let Some(g) = self.groups.get_mut(group) else { return CmdOutcome::Denied };
        if g.banlist.contains(who) || !self.users.contains_key(who) {
            return CmdOutcome::Denied;
        }
        g.members.insert(who.to_string());
        CmdOutcome::Ok
    }

    /// `SAY` with an if-check.
    pub fn say(&mut self, who: &str, group: &str, msg: &str) -> CmdOutcome {
        let Some(g) = self.groups.get_mut(group) else { return CmdOutcome::Denied };
        if !g.members.contains(who) {
            return CmdOutcome::Denied;
        }
        g.log.push(format!("{who}: {msg}"));
        CmdOutcome::Ok
    }

    /// `BAN`: the original `if (vip && superuser)` check.
    pub fn ban(&mut self, who: &str, group: &str, victim: &str) -> CmdOutcome {
        let allowed = self
            .users
            .get(who)
            .map(|(vip, su)| *vip && su.contains(group))
            .unwrap_or(false);
        if !allowed {
            return CmdOutcome::Denied;
        }
        if let Some(g) = self.groups.get_mut(group) {
            g.banlist.insert(victim.to_string());
        }
        CmdOutcome::Ok
    }

    /// `THEME?`.
    #[must_use]
    pub fn theme(&self, group: &str) -> String {
        self.groups.get(group).map(|g| g.theme.clone()).unwrap_or_default()
    }

    /// Same workload shape as [`ChatServer::run_workload`], including
    /// the identical per-command protocol work. Users must be logged in
    /// beforehand (as in the secured variant).
    pub fn run_workload(&mut self, users: usize, group: &str) -> u64 {
        let names: Vec<String> = (0..users).map(|i| format!("u{i}")).collect();
        let mut ok = 0u64;
        for n in &names {
            let _ = crate::workload::request_work(&["JOIN", group, n], REQUEST_UNITS);
            if self.join(n, group) == CmdOutcome::Ok {
                ok += 1;
            }
            let _ = crate::workload::request_work(&["SAY", group, n], REQUEST_UNITS);
            if self.say(n, group, "hello") == CmdOutcome::Ok {
                ok += 1;
            }
            let _ = crate::workload::request_work(&["THEME?", group], REQUEST_UNITS);
            let _ = self.theme(group);
            ok += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_group() -> (Arc<Laminar>, ChatServer) {
        let sys = Laminar::boot();
        let srv = ChatServer::new(&sys).unwrap();
        srv.login_user("queen", true).unwrap(); // VIP
        srv.login_user("owner", false).unwrap();
        srv.login_user("pleb", false).unwrap();
        srv.create_group("lobby", "owner").unwrap();
        (sys, srv)
    }

    #[test]
    fn members_can_say_nonmembers_cannot() {
        let (_sys, srv) = server_with_group();
        srv.join("pleb", "lobby").unwrap();
        assert_eq!(srv.say("pleb", "lobby", "hi").unwrap(), CmdOutcome::Ok);
        assert_eq!(srv.say("queen", "lobby", "hi").unwrap(), CmdOutcome::Denied);
        assert_eq!(srv.log_len("lobby").unwrap(), 1);
    }

    #[test]
    fn ban_requires_vip_and_superuser() {
        let (_sys, srv) = server_with_group();
        // owner is superuser but not VIP; queen is VIP but not superuser;
        // pleb is neither. None can ban…
        assert_eq!(srv.ban("owner", "lobby", "pleb").unwrap(), CmdOutcome::Denied);
        assert_eq!(srv.ban("queen", "lobby", "pleb").unwrap(), CmdOutcome::Denied);
        assert_eq!(srv.ban("pleb", "lobby", "pleb").unwrap(), CmdOutcome::Denied);
        // …until someone holds both roles.
        srv.login_user("boss", true).unwrap();
        srv.create_group("vault", "boss").unwrap();
        assert_eq!(srv.ban("boss", "vault", "pleb").unwrap(), CmdOutcome::Ok);
        // And the ban takes effect.
        assert_eq!(srv.join("pleb", "vault").unwrap(), CmdOutcome::Denied);
        assert_eq!(srv.unban("boss", "vault", "pleb").unwrap(), CmdOutcome::Ok);
        assert_eq!(srv.join("pleb", "vault").unwrap(), CmdOutcome::Ok);
    }

    #[test]
    fn theme_is_superuser_only() {
        let (_sys, srv) = server_with_group();
        assert_eq!(srv.set_theme("owner", "lobby", "retro").unwrap(), CmdOutcome::Ok);
        assert_eq!(srv.set_theme("pleb", "lobby", "hax").unwrap(), CmdOutcome::Denied);
        assert_eq!(srv.theme("lobby").unwrap(), "retro");
    }

    #[test]
    fn kick_removes_members() {
        let (_sys, srv) = server_with_group();
        srv.join("pleb", "lobby").unwrap();
        assert_eq!(srv.kick("owner", "lobby", "pleb").unwrap(), CmdOutcome::Ok);
        assert_eq!(srv.say("pleb", "lobby", "still here?").unwrap(), CmdOutcome::Denied);
        // Non-superusers cannot kick.
        srv.join("pleb", "lobby").unwrap();
        assert_eq!(srv.kick("pleb", "lobby", "owner").unwrap(), CmdOutcome::Denied);
    }

    #[test]
    fn private_messages_reach_only_the_recipient() {
        let (_sys, srv) = server_with_group();
        srv.msg("queen", "pleb", "psst").unwrap();
        let inbox = srv.read_inbox("pleb").unwrap();
        assert_eq!(inbox, vec!["queen: psst".to_string()]);
        assert!(srv.read_inbox("owner").unwrap().is_empty());
    }

    #[test]
    fn workload_matches_baseline() {
        let (_sys, srv) = server_with_group();
        for i in 0..8 {
            srv.login_user(&format!("u{i}"), false).unwrap();
        }
        let secured = srv.run_workload(8, "lobby").unwrap();
        let mut base = BaselineChatServer::new();
        base.create_group("lobby", "owner");
        for i in 0..8 {
            base.login_user(&format!("u{i}"), false);
        }
        let baseline = base.run_workload(8, "lobby");
        assert_eq!(secured, baseline);
    }

    #[test]
    fn stats_capture_dynamic_dispatches() {
        let (_sys, srv) = server_with_group();
        srv.join("pleb", "lobby").unwrap();
        srv.reset_stats();
        srv.say("pleb", "lobby", "x").unwrap();
        srv.log_len("lobby").unwrap();
        let stats = srv.stats();
        assert!(stats.dynamic_dispatches > 0, "say/log_len use dynamic barriers");
    }

    #[test]
    fn whois_and_groups() {
        let (_sys, srv) = server_with_group();
        assert!(srv.whois("queen").unwrap().contains("vip=true"));
        srv.join("pleb", "lobby").unwrap();
        let groups = srv.list_groups().unwrap();
        assert_eq!(groups, vec![("lobby".to_string(), 1)]);
    }
}
