//! Battleship (§7.2): two mutually distrusting players.
//!
//! Each player allocates a tag `p_i` and labels her board and ships with
//! it; the `p_i-` declassification capability is never shared. Under
//! Laminar a player cannot inspect the opponent's board: she sends her
//! guess over an (unlabeled) pipe, the opponent updates his board inside
//! a security region `{S(p_opp)}`, *declassifies* only the hit/miss bit
//! with `p_opp-`, and sends that back. In the original JavaBattle,
//! players directly inspected each other's ship coordinates — the
//! baseline here preserves that structure.
//!
//! The two players run in separate kernel processes (forked, inheriting
//! the pipe fds), exercising the OS half of Laminar as well.

use crate::workload::AppStats;
use laminar::{Labeled, Laminar, LaminarError, LaminarResult, Principal, RegionParams};
use laminar_difc::{Capability, Label, SecPair, Tag};
use laminar_os::{Fd, UserId};
use laminar_util::SplitMix64;
use std::sync::Arc;

/// Board side length (the paper's experiments use a 15×15 grid).
pub const GRID: usize = 15;

/// Fleet: classic ship lengths.
pub const FLEET: [usize; 5] = [5, 4, 3, 3, 2];

/// One player's board: ship cells and hits taken.
#[derive(Clone, Debug)]
pub struct Board {
    /// `true` where a ship segment lies.
    ship: Vec<bool>,
    /// `true` where a shot already landed.
    hit: Vec<bool>,
    remaining: usize,
}

impl Board {
    /// Places the fleet deterministically from a seed.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut ship = vec![false; GRID * GRID];
        let mut remaining = 0;
        for &len in &FLEET {
            loop {
                let horizontal = rng.gen_bool();
                let (maxx, maxy) =
                    if horizontal { (GRID - len, GRID) } else { (GRID, GRID - len) };
                let x = rng.gen_range(0..maxx);
                let y = rng.gen_range(0..maxy);
                let cells: Vec<usize> =
                    (0..len)
                        .map(|k| {
                            if horizontal {
                                y * GRID + x + k
                            } else {
                                (y + k) * GRID + x
                            }
                        })
                        .collect();
                if cells.iter().all(|&c| !ship[c]) {
                    for &c in &cells {
                        ship[c] = true;
                    }
                    remaining += len;
                    break;
                }
            }
        }
        Board { ship, hit: vec![false; GRID * GRID], remaining }
    }

    /// Applies a shot; returns `(hit, all_sunk)`.
    pub fn shoot(&mut self, x: usize, y: usize) -> (bool, bool) {
        let c = y * GRID + x;
        let mut hit = false;
        if self.ship[c] && !self.hit[c] {
            self.hit[c] = true;
            self.remaining -= 1;
            hit = true;
        }
        (hit, self.remaining == 0)
    }

    /// Renders the public view (hits only) — the per-move display used by
    /// the paper's low-overhead variant of the experiment.
    #[must_use]
    pub fn render_public(&self) -> String {
        let mut s = String::with_capacity(GRID * (GRID + 1));
        for y in 0..GRID {
            for x in 0..GRID {
                s.push(if self.hit[y * GRID + x] { 'X' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

struct Player {
    principal: Principal,
    tag: Tag,
    board: Arc<Labeled<Board>>,
    /// Read end of the pipe carrying incoming guesses; write end for
    /// outgoing results (and vice versa on the opponent's side).
    rx: Fd,
    tx: Fd,
}

impl Player {
    fn region(&self) -> RegionParams {
        RegionParams::new()
            .secrecy(Label::singleton(self.tag))
            .grant(Capability::plus(self.tag))
            .grant(Capability::minus(self.tag))
    }
}

/// Per-shot protocol work units (turn bookkeeping / message handling the
/// original game performs; Table 3 reports 54% of Battleship's time in
/// security regions, so the shared work is deliberately small).
const SHOT_UNITS: u32 = 192;

/// Per-frame display work (the paper's display run drops Laminar's
/// overhead to ~1% because redrawing the board dominates each move).
const DISPLAY_UNITS: u32 = 3584;

/// Outcome of a full game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GameResult {
    /// 0 or 1.
    pub winner: usize,
    /// Total shots fired by both players.
    pub shots: u64,
    /// Total hits scored by both players.
    pub hits: u64,
}

/// The Laminar-secured Battleship game.
pub struct Battleship {
    players: [Player; 2],
    placement_seed: u64,
    /// Public knowledge per player: which cells were hit. Derived purely
    /// from already-declassified shot outcomes, so the display path
    /// needs no security region at all.
    public_hits: [laminar_util::sync::Mutex<Vec<bool>>; 2],
    /// Emit the public board after each move (the "deployed" variant in
    /// which Laminar overhead drops to ~1%).
    pub display: bool,
    display_sink: Option<Fd>,
}

impl std::fmt::Debug for Battleship {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Battleship").field("display", &self.display).finish()
    }
}

impl Battleship {
    /// Sets up two player processes (the second forked from the first),
    /// two unlabeled pipes between them, and each player's labeled board.
    ///
    /// # Errors
    /// Propagates runtime/OS errors from setup.
    pub fn new(system: &Arc<Laminar>, seed: u64, display: bool) -> LaminarResult<Self> {
        system.add_user(UserId(2000), "player0");
        let p0 = system.login(UserId(2000))?;

        // Pipes created before the fork so both processes share them.
        let (g0_r, g0_w) = p0.task().pipe()?; // guesses for player0's board
        let (g1_r, g1_w) = p0.task().pipe()?; // guesses for player1's board
        let p1_task = p0.task().fork(None)?;
        let p1 = system.adopt(p1_task)?;

        let t0 = p0.create_tag()?;
        let t1 = p1.create_tag()?;

        let board0 = Self::make_board(&p0, t0, seed)?;
        let board1 = Self::make_board(&p1, t1, seed.wrapping_add(1))?;

        let display_sink = if display {
            Some(p0.task().open("/dev/null", laminar_os::OpenMode::Write)?)
        } else {
            None
        };

        Ok(Battleship {
            players: [
                Player { principal: p0, tag: t0, board: board0, rx: g0_r, tx: g1_w },
                Player { principal: p1, tag: t1, board: board1, rx: g1_r, tx: g0_w },
            ],
            placement_seed: seed,
            public_hits: [
                laminar_util::sync::Mutex::new(vec![false; GRID * GRID]),
                laminar_util::sync::Mutex::new(vec![false; GRID * GRID]),
            ],
            display,
            display_sink,
        })
    }

    fn make_board(
        p: &Principal,
        tag: Tag,
        seed: u64,
    ) -> LaminarResult<Arc<Labeled<Board>>> {
        let params = RegionParams::new()
            .secrecy(Label::singleton(tag))
            .grant(Capability::plus(tag));
        p.secure(&params, |g| Ok(Arc::new(g.new_labeled(Board::generate(seed)))), |_| {})?
            .ok_or(LaminarError::App("board setup failed".into()))
    }

    /// Resets both boards to their initial placement (each owner does it
    /// inside their own region), so repeated games are independent.
    ///
    /// # Errors
    /// Propagates runtime errors.
    pub fn reset(&self) -> LaminarResult<()> {
        for (k, p) in self.players.iter().enumerate() {
            let seed = self.placement_seed.wrapping_add(k as u64);
            let board = Arc::clone(&p.board);
            p.principal
                .secure(
                    &p.region(),
                    move |g| board.write(g, |b| *b = Board::generate(seed)),
                    |_| {},
                )?
                .ok_or(LaminarError::App("board reset suppressed".into()))?;
            *self.public_hits[k].lock() = vec![false; GRID * GRID];
        }
        Ok(())
    }

    /// Plays a full game (resetting the boards first); both players
    /// shoot deterministic pseudo-random permutations so the secured and
    /// baseline games are identical.
    ///
    /// # Errors
    /// Propagates runtime/OS errors.
    pub fn play(&self, seed: u64) -> LaminarResult<GameResult> {
        self.reset()?;
        let mut orders: Vec<Vec<(usize, usize)>> = Vec::new();
        for k in 0..2u64 {
            let mut cells: Vec<(usize, usize)> =
                (0..GRID * GRID).map(|c| (c % GRID, c / GRID)).collect();
            SplitMix64::new(seed.wrapping_add(k)).shuffle(&mut cells);
            orders.push(cells);
        }
        let mut shots = 0u64;
        let mut hits = 0u64;
        #[allow(clippy::needless_range_loop)] // round/attacker index two
        // parallel shot orders and pick the defender as `1 - attacker`
        for round in 0..GRID * GRID {
            for attacker in 0..2 {
                let defender = 1 - attacker;
                let (x, y) = orders[attacker][round];
                shots += 1;
                // Per-move protocol handling (turn bookkeeping, message
                // serialisation) shared with the baseline.
                let _ = crate::workload::request_work(&["shot"], SHOT_UNITS);
                // Attacker sends the guess over the unlabeled pipe.
                let att = &self.players[attacker];
                att.principal.task().write(att.tx, &[x as u8, y as u8])?;
                // Defender receives and resolves it inside his region.
                let (hit, sunk) = self.resolve_shot(defender)?;
                if hit {
                    hits += 1;
                    // Public knowledge: the outcome was declassified.
                    self.public_hits[defender].lock()[y * GRID + x] = true;
                }
                if self.display {
                    self.display_board(defender)?;
                }
                if sunk {
                    return Ok(GameResult { winner: attacker, shots, hits });
                }
            }
        }
        Ok(GameResult { winner: 0, shots, hits })
    }

    /// The defender reads the guess from his pipe, updates the labeled
    /// board inside `{S(p_def)}`, and declassifies exactly two bits.
    fn resolve_shot(&self, defender: usize) -> LaminarResult<(bool, bool)> {
        let def = &self.players[defender];
        let guess = def.principal.task().read(def.rx, 2)?;
        if guess.len() != 2 {
            return Err(LaminarError::App("lost guess".into()));
        }
        let (x, y) = (guess[0] as usize, guess[1] as usize);
        let board = Arc::clone(&def.board);
        def.principal
            .secure(
                &def.region(),
                move |g| {
                    let outcome = board.write(g, |b| b.shoot(x, y))?;
                    let labeled = g.new_labeled(outcome);
                    // Declassification: only (hit, sunk) leaves the region.
                    let public = g.copy_and_label(&labeled, SecPair::unlabeled())?;
                    public.read(g, |v| *v)
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("shot resolution suppressed".into()))
    }

    fn display_board(&self, defender: usize) -> LaminarResult<()> {
        // The public view derives only from already-declassified shot
        // outcomes, so no security region is needed: exactly why the
        // paper's display variant dilutes Laminar's overhead to ~1%.
        // The terminal redraw itself is the expensive part.
        let _ = crate::workload::request_work(&["frame", "redraw"], DISPLAY_UNITS);
        let mask = self.public_hits[defender].lock();
        let mut rendered = String::with_capacity(GRID * (GRID + 1));
        for y in 0..GRID {
            for x in 0..GRID {
                rendered.push(if mask[y * GRID + x] { 'X' } else { '.' });
            }
            rendered.push('\n');
        }
        drop(mask);
        if let Some(fd) = self.display_sink {
            self.players[0].principal.task().write(fd, rendered.as_bytes())?;
        }
        Ok(())
    }

    /// Aggregated statistics from both players.
    #[must_use]
    pub fn stats(&self) -> AppStats {
        let mut s = self.players[0].principal.stats();
        s.merge(&self.players[1].principal.stats());
        AppStats::from_runtime("Battleship", &s)
    }

    /// Resets both players' statistics.
    pub fn reset_stats(&self) {
        self.players[0].principal.reset_stats();
        self.players[1].principal.reset_stats();
    }
}

/// The unsecured baseline: the same two player processes exchanging
/// guesses and results over the same kernel pipes — the original
/// JavaBattle is a networked game too — but with *plain* boards each
/// player inspects directly, no regions, no labels, no declassification.
pub struct BaselineBattleship {
    boards: [Board; 2],
    tasks: [laminar_os::TaskHandle; 2],
    pipes: [(Fd, Fd); 2], // (rx of incoming guesses, tx toward opponent)
    placement_seed: u64,
    /// Render the public board each move.
    pub display: bool,
    display_sink: Option<Fd>,
}

impl std::fmt::Debug for BaselineBattleship {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineBattleship").field("display", &self.display).finish()
    }
}

impl BaselineBattleship {
    /// Boards placed with the same seeds as the secured game; the same
    /// process/pipe topology is set up so only the DIFC machinery
    /// differs between the variants.
    ///
    /// # Errors
    /// Propagates OS setup failures.
    pub fn new(
        system: &std::sync::Arc<Laminar>,
        seed: u64,
        display: bool,
    ) -> LaminarResult<Self> {
        system.add_user(UserId(2100), "plainplayer");
        let p0 = system.login_raw(UserId(2100))?;
        let (g0_r, g0_w) = p0.pipe()?;
        let (g1_r, g1_w) = p0.pipe()?;
        let p1 = p0.fork(None)?;
        let display_sink = if display {
            Some(p0.open("/dev/null", laminar_os::OpenMode::Write)?)
        } else {
            None
        };
        Ok(BaselineBattleship {
            boards: [Board::generate(seed), Board::generate(seed.wrapping_add(1))],
            tasks: [p0, p1],
            pipes: [(g0_r, g1_w), (g1_r, g0_w)],
            placement_seed: seed,
            display,
            display_sink,
        })
    }

    /// Same deterministic game as [`Battleship::play`] (boards reset).
    ///
    /// # Errors
    /// Propagates OS failures on the pipe traffic.
    pub fn play(&mut self, seed: u64) -> LaminarResult<GameResult> {
        self.boards = [
            Board::generate(self.placement_seed),
            Board::generate(self.placement_seed.wrapping_add(1)),
        ];
        let mut orders: Vec<Vec<(usize, usize)>> = Vec::new();
        for k in 0..2u64 {
            let mut cells: Vec<(usize, usize)> =
                (0..GRID * GRID).map(|c| (c % GRID, c / GRID)).collect();
            SplitMix64::new(seed.wrapping_add(k)).shuffle(&mut cells);
            orders.push(cells);
        }
        let mut shots = 0u64;
        let mut hits = 0u64;
        #[allow(clippy::needless_range_loop)] // round/attacker index two
        // parallel shot orders and pick the defender as `1 - attacker`
        for round in 0..GRID * GRID {
            for attacker in 0..2 {
                let defender = 1 - attacker;
                let (x, y) = orders[attacker][round];
                shots += 1;
                let _ = crate::workload::request_work(&["shot"], SHOT_UNITS);
                // Same message exchange as the secured game...
                self.tasks[attacker]
                    .write(self.pipes[attacker].1, &[x as u8, y as u8])?;
                let guess = self.tasks[defender].read(self.pipes[defender].0, 2)?;
                // ...but the defender inspects his plain board directly.
                let (hit, sunk) =
                    self.boards[defender].shoot(guess[0] as usize, guess[1] as usize);
                if hit {
                    hits += 1;
                }
                if self.display {
                    let _ = crate::workload::request_work(
                        &["frame", "redraw"],
                        DISPLAY_UNITS,
                    );
                    let rendered = self.boards[defender].render_public();
                    if let Some(fd) = self.display_sink {
                        self.tasks[0].write(fd, rendered.as_bytes())?;
                    }
                }
                if sunk {
                    return Ok(GameResult { winner: attacker, shots, hits });
                }
            }
        }
        Ok(GameResult { winner: 0, shots, hits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_generation_places_full_fleet() {
        let b = Board::generate(7);
        let cells: usize = b.ship.iter().filter(|&&s| s).count();
        assert_eq!(cells, FLEET.iter().sum::<usize>());
        assert_eq!(b.remaining, cells);
    }

    #[test]
    fn shooting_every_cell_sinks_everything() {
        let mut b = Board::generate(3);
        let mut sunk = false;
        for y in 0..GRID {
            for x in 0..GRID {
                let (_, s) = b.shoot(x, y);
                sunk |= s;
            }
        }
        assert!(sunk);
        assert_eq!(b.remaining, 0);
    }

    #[test]
    fn repeated_shot_does_not_double_count() {
        let mut b = Board::generate(3);
        // Find a ship cell.
        let c = b.ship.iter().position(|&s| s).unwrap();
        let (x, y) = (c % GRID, c / GRID);
        assert!(b.shoot(x, y).0);
        assert!(!b.shoot(x, y).0);
    }

    #[test]
    fn secured_game_matches_baseline() {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 11, false).unwrap();
        let secured = game.play(99).unwrap();
        let mut base = BaselineBattleship::new(&sys, 11, false).unwrap();
        let baseline = base.play(99).unwrap();
        assert_eq!(secured, baseline);
        assert!(secured.shots > 0 && secured.hits > 0);
    }

    #[test]
    fn stats_show_time_in_regions() {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 5, false).unwrap();
        game.reset_stats();
        game.play(42).unwrap();
        let stats = game.stats();
        assert!(stats.regions_entered > 0);
        assert!(stats.copies > 0, "each shot declassifies");
        assert!(stats.region_ns > 0);
    }

    #[test]
    fn display_variant_renders() {
        let sys = Laminar::boot();
        let game = Battleship::new(&sys, 5, true).unwrap();
        let r = game.play(42).unwrap();
        assert!(r.shots > 0);
    }
}
