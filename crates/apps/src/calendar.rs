//! Calendar (§7.3): multi-user meeting scheduling over labeled files.
//!
//! Modelled on the paper's retrofit of the k5nCal desktop calendar: every
//! user's calendar data — the in-memory data structures *and* the `.ics`
//! file — carries the user's secrecy tag, and all code touching it runs
//! in security regions. The scheduling thread holds the capability to
//! *read* both Alice's and Bob's calendars but can only *declassify*
//! Bob's data (`C(a+, b+, b-)`); the meeting it computes is written to an
//! output file labeled `{S(a)}` that only Alice can read.
//!
//! Capabilities travel from the owners to the scheduler through
//! kernel-mediated pipes (`write_capability`, Fig. 3).

use crate::workload::AppStats;
use laminar::{Laminar, LaminarError, LaminarResult, Principal, RegionParams};
use laminar_difc::{CapSet, Capability, Label, SecPair, Tag};
use laminar_os::{OpenMode, UserId};
use std::sync::Arc;

/// Number of schedulable time slots per horizon.
pub const SLOTS: u8 = 240;

/// The secured calendar system: Alice, Bob and the scheduling service.
pub struct CalendarSystem {
    alice: Principal,
    bob: Principal,
    scheduler: Principal,
    tag_a: Tag,
    tag_b: Tag,
}

impl std::fmt::Debug for CalendarSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarSystem").finish_non_exhaustive()
    }
}

impl CalendarSystem {
    /// Boots the calendar service: the scheduler process is forked into
    /// per-user processes; each user mints their tag, labels their
    /// calendar file, and hands the scheduler exactly the capabilities
    /// the paper describes (`a+` from Alice; `b+` and `b-` from Bob)
    /// through kernel pipes.
    ///
    /// # Errors
    /// Propagates runtime/OS setup failures.
    pub fn new(system: &Arc<Laminar>) -> LaminarResult<Self> {
        system.add_user(UserId(3000), "scheduler");
        let sched_login = system.login(UserId(3000))?;

        // A pipe per user for capability transfer (created pre-fork so
        // both processes share it).
        let (cap_rx_a, cap_tx_a) = sched_login.task().pipe()?;
        let (cap_rx_b, cap_tx_b) = sched_login.task().pipe()?;

        let alice = system.adopt(sched_login.task().fork(None)?)?;
        let bob = system.adopt(sched_login.task().fork(None)?)?;

        let tag_a = alice.create_tag()?;
        let tag_b = bob.create_tag()?;

        // Each user pre-creates a labeled calendar file (before tainting
        // themselves — the §5.2 creation discipline), then fills it from
        // inside a region.
        Self::init_calendar(&alice, tag_a, "/tmp/alice.ics", &[10, 11, 30, 31, 75])?;
        Self::init_calendar(&bob, tag_b, "/tmp/bob.ics", &[10, 12, 30, 32, 90])?;

        // Capability grants: Alice sends a+; Bob sends b+ and b-.
        alice.task().write_capability(Capability::plus(tag_a), cap_tx_a)?;
        bob.task().write_capability(Capability::plus(tag_b), cap_tx_b)?;
        bob.task().write_capability(Capability::minus(tag_b), cap_tx_b)?;

        for fd in [cap_rx_a, cap_rx_b, cap_rx_b] {
            if sched_login.receive_capability(fd)?.is_none() {
                return Err(LaminarError::App("capability transfer lost".into()));
            }
        }

        // The scheduling work runs on its own thread-principal holding
        // exactly the received capabilities (a+, b+, b-).
        let mut sched_caps = CapSet::new();
        sched_caps.grant(Capability::plus(tag_a));
        sched_caps.grant(Capability::plus(tag_b));
        sched_caps.grant(Capability::minus(tag_b));
        // (create_tag-granted caps from the login shell stay behind.)
        let scheduler = sched_login.spawn_thread(Some(sched_caps))?;

        // Output file: labeled {S(a)} so Alice can read the meeting.
        let fd = scheduler.task().create_file_labeled(
            "/tmp/meeting_alice.txt",
            SecPair::secrecy_only(Label::singleton(tag_a)),
        )?;
        scheduler.task().close(fd)?;

        Ok(CalendarSystem { alice, bob, scheduler, tag_a, tag_b })
    }

    fn init_calendar(
        owner: &Principal,
        tag: Tag,
        path: &str,
        busy: &[u8],
    ) -> LaminarResult<()> {
        // Pre-create while unlabeled; the file name lives in /tmp which
        // is unlabeled, so creation reveals nothing.
        let fd = owner
            .task()
            .create_file_labeled(path, SecPair::secrecy_only(Label::singleton(tag)))?;
        owner.task().close(fd)?;
        // Fill it from inside a region carrying the file's label.
        let params = RegionParams::new()
            .secrecy(Label::singleton(tag))
            .grant(Capability::plus(tag));
        let path = path.to_string();
        let busy = busy.to_vec();
        owner
            .secure(
                &params,
                move |g| {
                    let os = g.os()?;
                    let fd = os.open(&path, OpenMode::Write)?;
                    os.write(fd, &busy)?;
                    os.close(fd)?;
                    Ok(())
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("calendar init suppressed".into()))
    }

    /// Marks a slot busy in a user's calendar (0 = Alice, 1 = Bob).
    ///
    /// # Errors
    /// Propagates region/OS failures.
    pub fn add_busy(&self, user: usize, slot: u8) -> LaminarResult<()> {
        let (p, tag, path) = if user == 0 {
            (&self.alice, self.tag_a, "/tmp/alice.ics")
        } else {
            (&self.bob, self.tag_b, "/tmp/bob.ics")
        };
        let params = RegionParams::new()
            .secrecy(Label::singleton(tag))
            .grant(Capability::plus(tag));
        p.secure(
            &params,
            move |g| {
                let os = g.os()?;
                let fd = os.open(path, OpenMode::ReadWrite)?;
                let mut data = os.read(fd, SLOTS as usize)?;
                os.close(fd)?;
                if !data.contains(&slot) {
                    data.push(slot);
                    let fd = os.open(path, OpenMode::Write)?;
                    os.write(fd, &data)?;
                    os.close(fd)?;
                }
                Ok(())
            },
            |_| {},
        )?
        .ok_or(LaminarError::App("add_busy suppressed".into()))
    }

    /// Schedules one meeting: reads both labeled calendars inside a
    /// region `{S(a,b)}`, finds the first common free slot at or after
    /// `earliest`, then — in a nested region `{S(a)}` whose entry
    /// declassifies Bob's contribution with `b-` — writes the slot to
    /// the `{S(a)}`-labeled output file. Returns the slot for test
    /// verification (via Alice, who may read the output).
    ///
    /// # Errors
    /// Propagates region/OS failures.
    pub fn schedule_meeting(&self, earliest: u8) -> LaminarResult<u8> {
        let tag_a = self.tag_a;
        let tag_b = self.tag_b;
        let both = Label::from_tags([tag_a, tag_b]);
        let outer = RegionParams::new()
            .secrecy(both)
            .grant(Capability::plus(tag_a))
            .grant(Capability::plus(tag_b))
            .grant(Capability::minus(tag_b));
        self.scheduler
            .secure(
                &outer,
                move |g| {
                    let os = g.os()?;
                    let fd = os.open("/tmp/alice.ics", OpenMode::Read)?;
                    let busy_a = os.read(fd, SLOTS as usize)?;
                    os.close(fd)?;
                    let fd = os.open("/tmp/bob.ics", OpenMode::Read)?;
                    let busy_b = os.read(fd, SLOTS as usize)?;
                    os.close(fd)?;

                    let slot = (earliest..SLOTS)
                        .find(|s| !busy_a.contains(s) && !busy_b.contains(s))
                        .ok_or_else(|| LaminarError::App("no free slot".into()))?;

                    // The slot derives from both calendars: it lives in a
                    // {S(a,b)} cell until explicitly declassified with b-
                    // (Fig. 4's L3–L5 pattern).
                    let joint = g.new_labeled(slot);
                    let a_only = g.copy_and_label(
                        &joint,
                        SecPair::secrecy_only(Label::singleton(tag_a)),
                    )?;

                    // Nested region {S(a)}: write the declassified slot
                    // to Alice's labeled output file.
                    let inner = RegionParams::new()
                        .secrecy(Label::singleton(tag_a))
                        .grant(Capability::plus(tag_a));
                    let written = g.secure(
                        &inner,
                        |g2| {
                            let v = a_only.read(g2, |v| *v)?;
                            let os = g2.os()?;
                            let fd =
                                os.open("/tmp/meeting_alice.txt", OpenMode::Write)?;
                            os.write(fd, &[v])?;
                            os.close(fd)?;
                            Ok(v)
                        },
                        |_| {},
                    )?;
                    written.ok_or(LaminarError::App("inner region suppressed".into()))
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("scheduling suppressed".into()))
    }

    /// Schedules `n` meetings with staggered earliest-slot constraints —
    /// the paper's experiment schedules 1,000 meetings — each surrounded
    /// by the iCalendar rendering/notification work the desktop app does
    /// per meeting. Returns a checksum of the chosen slots.
    ///
    /// # Errors
    /// Propagates the first failure.
    pub fn run_workload(&self, n: usize) -> LaminarResult<u64> {
        let mut check = 0u64;
        for k in 0..n {
            let earliest = (k % 200) as u8;
            let _ = crate::workload::request_work(&["VEVENT", "render"], REQUEST_UNITS);
            check = check.wrapping_add(u64::from(self.schedule_meeting(earliest)?));
        }
        Ok(check)
    }

    /// Alice reads the scheduled meeting from her labeled output file.
    ///
    /// # Errors
    /// Propagates region/OS failures.
    pub fn alice_read_meeting(&self) -> LaminarResult<u8> {
        let params = RegionParams::new()
            .secrecy(Label::singleton(self.tag_a))
            .grant(Capability::plus(self.tag_a))
            .grant(Capability::minus(self.tag_a));
        self.alice
            .secure(
                &params,
                |g| {
                    let os = g.os()?;
                    let fd = os.open("/tmp/meeting_alice.txt", OpenMode::Read)?;
                    let data = os.read(fd, 4)?;
                    os.close(fd)?;
                    Ok(*data.last().unwrap_or(&0))
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("meeting read suppressed".into()))
    }

    /// Aggregated statistics across all principals.
    #[must_use]
    pub fn stats(&self) -> AppStats {
        let mut s = self.scheduler.stats();
        s.merge(&self.alice.stats());
        s.merge(&self.bob.stats());
        AppStats::from_runtime("Calendar", &s)
    }

    /// Resets all principals' statistics.
    pub fn reset_stats(&self) {
        self.scheduler.reset_stats();
        self.alice.reset_stats();
        self.bob.reset_stats();
    }
}

/// The unsecured baseline: the same file traffic on unlabeled files, no
/// regions — the pre-retrofit k5nCal behaviour (any user could read any
/// calendar).
#[derive(Debug)]
pub struct BaselineCalendar {
    task: laminar_os::TaskHandle,
}

impl BaselineCalendar {
    /// Creates unlabeled calendar files with the same initial busy slots.
    ///
    /// # Errors
    /// Propagates OS failures.
    pub fn new(system: &Arc<Laminar>) -> LaminarResult<Self> {
        system.add_user(UserId(3100), "plainsched");
        let task = system.login_raw(UserId(3100))?;
        for (path, busy) in [
            ("/tmp/alice_plain.ics", vec![10u8, 11, 30, 31, 75]),
            ("/tmp/bob_plain.ics", vec![10u8, 12, 30, 32, 90]),
        ] {
            let fd = task.create(path)?;
            task.write(fd, &busy)?;
            task.close(fd)?;
        }
        let fd = task.create("/tmp/meeting_plain.txt")?;
        task.close(fd)?;
        Ok(BaselineCalendar { task })
    }

    /// One unsecured scheduling pass (same I/O shape).
    ///
    /// # Errors
    /// Propagates OS failures.
    pub fn schedule_meeting(&self, earliest: u8) -> LaminarResult<u8> {
        let fd = self.task.open("/tmp/alice_plain.ics", OpenMode::Read)?;
        let busy_a = self.task.read(fd, SLOTS as usize)?;
        self.task.close(fd)?;
        let fd = self.task.open("/tmp/bob_plain.ics", OpenMode::Read)?;
        let busy_b = self.task.read(fd, SLOTS as usize)?;
        self.task.close(fd)?;
        let slot = (earliest..SLOTS)
            .find(|s| !busy_a.contains(s) && !busy_b.contains(s))
            .ok_or_else(|| LaminarError::App("no free slot".into()))?;
        let fd = self.task.open("/tmp/meeting_plain.txt", OpenMode::Write)?;
        self.task.write(fd, &[slot])?;
        self.task.close(fd)?;
        Ok(slot)
    }

    /// Same workload shape as [`CalendarSystem::run_workload`],
    /// including the identical per-meeting rendering work.
    ///
    /// # Errors
    /// Propagates the first failure.
    pub fn run_workload(&self, n: usize) -> LaminarResult<u64> {
        let mut check = 0u64;
        for k in 0..n {
            let earliest = (k % 200) as u8;
            let _ = crate::workload::request_work(&["VEVENT", "render"], REQUEST_UNITS);
            check = check.wrapping_add(u64::from(self.schedule_meeting(earliest)?));
        }
        Ok(check)
    }
}

/// Per-meeting rendering work units (k5nCal spends ~1% of its time in
/// security regions, Table 3 — the app around the scheduler dominates).
const REQUEST_UNITS: u32 = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_finds_common_free_slot() {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        // Busy: alice {10,11,30,31,75}, bob {10,12,30,32,90} → first free ≥10 is 13.
        assert_eq!(cal.schedule_meeting(10).unwrap(), 13);
        // Alice can read the meeting from her labeled file.
        assert_eq!(cal.alice_read_meeting().unwrap(), 13);
    }

    #[test]
    fn add_busy_shifts_the_meeting() {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        cal.add_busy(0, 13).unwrap();
        cal.add_busy(1, 14).unwrap();
        assert_eq!(cal.schedule_meeting(10).unwrap(), 15);
    }

    #[test]
    fn bob_cannot_read_alices_meeting_file() {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        cal.schedule_meeting(0).unwrap();
        // Bob opens Alice's output file outside any region: denied.
        let err = cal.bob.task().open("/tmp/meeting_alice.txt", OpenMode::Read);
        assert!(err.is_err());
        // Even inside his own region {S(b)}: still denied (no a taint).
        let params = RegionParams::new()
            .secrecy(Label::singleton(cal.tag_b))
            .grant(Capability::plus(cal.tag_b));
        let out = cal
            .bob
            .secure(
                &params,
                |g| {
                    let os = g.os()?;
                    let fd = os.open("/tmp/meeting_alice.txt", OpenMode::Read)?;
                    let data = os.read(fd, 4)?;
                    os.close(fd)?;
                    Ok(data)
                },
                |_| {},
            )
            .unwrap();
        assert_eq!(out, None, "flow violation must be confined to the region");
    }

    #[test]
    fn secured_matches_baseline() {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        let base = BaselineCalendar::new(&sys).unwrap();
        assert_eq!(cal.run_workload(20).unwrap(), base.run_workload(20).unwrap());
    }

    #[test]
    fn lazy_sync_fires_for_file_io_regions() {
        let sys = Laminar::boot();
        let cal = CalendarSystem::new(&sys).unwrap();
        cal.reset_stats();
        cal.schedule_meeting(0).unwrap();
        let s = cal.stats();
        assert!(s.os_syncs > 0, "file I/O in regions must sync labels");
        assert!(s.regions_entered >= 2, "outer + nested regions");
        assert!(s.copies >= 1, "declassification via copy_and_label");
    }
}
