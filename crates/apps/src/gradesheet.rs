//! GradeSheet (§7.1): grade management with per-cell heterogeneous
//! labels — the Table 4 policy.
//!
//! The `(i, j)`-th cell of the grade matrix is guarded by secrecy tag
//! `s_i` (student *i*'s) and integrity tag `p_j` (project *j*'s):
//!
//! | Principal    | Capability set                                   |
//! |--------------|--------------------------------------------------|
//! | GradeCell(i,j)| labels `{S(s_i), I(p_j)}`                       |
//! | Student(i)   | `C(s_i+, s_i-)`                                  |
//! | TA(j)        | `C(s_1+..s_n+, p_j+, p_j-)`                      |
//! | Professor    | `C(s_i±, p_j±)` for all `i, j`                   |
//!
//! Students read (and declassify) only their own marks, for any project;
//! TAs read all marks but can endorse writes only for their own project;
//! the professor can do anything — including the average-marks
//! computation that Laminar exposed as an information leak in the
//! original policy (only the professor may declassify an average, since
//! it derives from every student's secret).

use crate::workload::AppStats;
use laminar::{Labeled, Laminar, LaminarError, LaminarResult, Principal, RegionParams};
use laminar_difc::{CapSet, Capability, Label, SecPair, Tag};
use laminar_os::UserId;
use std::sync::Arc;

/// The Laminar-secured GradeSheet.
#[derive(Debug)]
pub struct GradeSheet {
    students: Vec<Tag>,
    projects: Vec<Tag>,
    cells: Vec<Vec<Arc<Labeled<i64>>>>,
    professor: Principal,
    tas: Vec<Principal>,
    student_threads: Vec<Principal>,
    // Policy objects are built once at setup (the retrofit's labels are
    // static configuration, not per-request work).
    cell_params: Vec<Vec<RegionParams>>,
    student_params: Vec<RegionParams>,
    ta_read_params: Vec<RegionParams>,
    avg_params: RegionParams,
    project_integrity: Vec<SecPair>,
}

impl GradeSheet {
    /// Builds a gradesheet for `n` students and `m` projects, minting all
    /// tags and principals. The professor's account owns the tags; TAs
    /// and students receive exactly the Table 4 capability subsets.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from setup.
    pub fn new(system: &Arc<Laminar>, n: usize, m: usize) -> LaminarResult<Self> {
        system.add_user(UserId(1000), "professor");
        let professor = system.login(UserId(1000))?;

        let students: Vec<Tag> =
            (0..n).map(|_| professor.create_tag()).collect::<Result<_, _>>()?;
        let projects: Vec<Tag> =
            (0..m).map(|_| professor.create_tag()).collect::<Result<_, _>>()?;

        // TA(j): s_i+ for all i, plus p_j±.
        let tas: Vec<Principal> = (0..m)
            .map(|j| {
                let mut caps = CapSet::new();
                for &s in &students {
                    caps.grant(Capability::plus(s));
                }
                caps.grant_both(projects[j]);
                professor.spawn_thread(Some(caps))
            })
            .collect::<Result<_, _>>()?;

        // Student(i): s_i±.
        let student_threads: Vec<Principal> = (0..n)
            .map(|i| {
                let mut caps = CapSet::new();
                caps.grant_both(students[i]);
                professor.spawn_thread(Some(caps))
            })
            .collect::<Result<_, _>>()?;

        // The professor allocates every cell inside a region carrying the
        // cell's labels.
        let mut cells = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // i/j index students and
        // projects in lock-step with the cell grid being built
        for i in 0..n {
            let mut row = Vec::with_capacity(m);
            for j in 0..m {
                let params = RegionParams::new()
                    .secrecy(Label::singleton(students[i]))
                    .integrity(Label::singleton(projects[j]))
                    .grant(Capability::plus(students[i]))
                    .grant(Capability::plus(projects[j]));
                let cell = professor
                    .secure(&params, |g| Ok(Arc::new(g.new_labeled(0i64))), |_| {})?
                    .ok_or(LaminarError::App("cell allocation failed".into()))?;
                row.push(cell);
            }
            cells.push(row);
        }

        let cell_params: Vec<Vec<RegionParams>> = (0..n)
            .map(|i| {
                (0..m)
                    .map(|j| {
                        RegionParams::new()
                            .secrecy(Label::singleton(students[i]))
                            .integrity(Label::singleton(projects[j]))
                            .grant(Capability::plus(students[i]))
                            .grant(Capability::plus(projects[j]))
                    })
                    .collect()
            })
            .collect();
        let student_params: Vec<RegionParams> = (0..n)
            .map(|i| {
                RegionParams::new()
                    .secrecy(Label::singleton(students[i]))
                    .grant(Capability::plus(students[i]))
                    .grant(Capability::minus(students[i]))
            })
            .collect();
        let ta_read_params: Vec<RegionParams> = (0..n)
            .map(|i| {
                RegionParams::new()
                    .secrecy(Label::singleton(students[i]))
                    .grant(Capability::plus(students[i]))
            })
            .collect();
        let all = Label::from_tags(students.iter().copied());
        let mut avg_params = RegionParams::new().secrecy(all);
        for &st in &students {
            avg_params =
                avg_params.grant(Capability::plus(st)).grant(Capability::minus(st));
        }
        let project_integrity: Vec<SecPair> = (0..m)
            .map(|j| SecPair::integrity_only(Label::singleton(projects[j])))
            .collect();

        Ok(GradeSheet {
            students,
            projects,
            cells,
            professor,
            tas,
            student_threads,
            cell_params,
            student_params,
            ta_read_params,
            avg_params,
            project_integrity,
        })
    }

    /// Number of students.
    #[must_use]
    pub fn students(&self) -> usize {
        self.students.len()
    }

    /// Number of projects.
    #[must_use]
    pub fn projects(&self) -> usize {
        self.projects.len()
    }

    /// The professor sets any grade.
    ///
    /// # Errors
    /// Never for in-range indices (the professor holds all capabilities).
    pub fn professor_set(&self, i: usize, j: usize, v: i64) -> LaminarResult<()> {
        let params = &self.cell_params[i][j];
        let cell = &self.cells[i][j];
        self.professor
            .secure(params, |g| cell.write(g, |c| *c = v), |_| {})?
            .ok_or(LaminarError::App("professor write suppressed".into()))
    }

    /// TA `ta` sets student `i`'s grade on project `j`. Succeeds only for
    /// the TA's own project: writing the cell demands the `p_j` integrity
    /// endorsement, which other TAs cannot produce.
    ///
    /// # Errors
    /// [`LaminarError::RegionEntry`] when `ta != j` (no `p_j+`).
    pub fn ta_set(&self, ta: usize, i: usize, j: usize, v: i64) -> LaminarResult<()> {
        let params = &self.cell_params[i][j];
        let cell = &self.cells[i][j];
        self.tas[ta]
            .secure(params, |g| cell.write(g, |c| *c = v), |_| {})?
            .ok_or(LaminarError::App("ta write suppressed".into()))
    }

    /// TA `ta` reads student `i`'s grade on any project (TAs hold every
    /// `s_i+`; reading needs no integrity endorsement).
    ///
    /// # Errors
    /// Propagates region failures.
    pub fn ta_read(&self, ta: usize, i: usize, j: usize) -> LaminarResult<i64> {
        // No s_i- in these params: the TA cannot declassify.
        let params = &self.ta_read_params[i];
        let cell = &self.cells[i][j];
        // The TA may *inspect* the grade inside the region (e.g. to
        // verify grading), but cannot declassify it out; we return a
        // sanitised presence check instead of the raw mark.
        let seen = self.tas[ta]
            .secure(params, |g| cell.read(g, |c| *c >= 0), |_| {})?
            .ok_or(LaminarError::App("ta read suppressed".into()))?;
        Ok(i64::from(seen))
    }

    /// Student `i` reads their own mark on project `j`, declassifying it
    /// with their `s_i-` capability (the value legitimately leaves the
    /// region as an explicit declassification).
    ///
    /// # Errors
    /// Region failures; students other than `i` cannot perform this.
    pub fn student_read(&self, i: usize, j: usize) -> LaminarResult<i64> {
        let params = &self.student_params[i];
        let cell = &self.cells[i][j];
        // Declassify only the secrecy half with s_i-; the p_j integrity
        // endorsement stays on the copy (students hold no p_j-, and a
        // reader is free to keep trusting the endorsement).
        let target = self.project_integrity[j].clone();
        self.student_threads[i]
            .secure(
                params,
                |g| {
                    let public = g.copy_and_label(cell, target.clone())?;
                    public.read(g, |v| *v)
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("student read suppressed".into()))
    }

    /// Student `who` attempts to read student `victim`'s grade. Always
    /// fails: the region cannot even be entered without `s_victim+`.
    ///
    /// # Errors
    /// Always [`LaminarError::RegionEntry`] (for `who != victim`).
    pub fn student_read_other(
        &self,
        who: usize,
        victim: usize,
        j: usize,
    ) -> LaminarResult<i64> {
        let params = RegionParams::new()
            .secrecy(Label::singleton(self.students[victim]))
            .grant(Capability::plus(self.students[victim]));
        let cell = &self.cells[victim][j];
        match self.student_threads[who].secure(
            &params,
            |g| cell.read(g, |v| *v),
            |_| {},
        )? {
            Some(v) => Ok(v),
            None => Err(LaminarError::App("read suppressed".into())),
        }
    }

    /// The professor computes and declassifies the class average on
    /// project `j` — the operation Laminar's retrofit restricted to the
    /// professor, because the original policy leaked information about
    /// other students' marks through the average.
    ///
    /// # Errors
    /// Propagates region failures.
    pub fn professor_average(&self, j: usize) -> LaminarResult<i64> {
        // Region labeled with every student's tag (the average derives
        // from all of them), entered with all s_i± capabilities.
        let params = &self.avg_params;
        let cells: Vec<Arc<Labeled<i64>>> =
            (0..self.students.len()).map(|i| Arc::clone(&self.cells[i][j])).collect();
        let n = self.students.len() as i64;
        self.professor
            .secure(
                params,
                |g| {
                    let mut sum = 0i64;
                    for c in &cells {
                        sum += c.read(g, |v| *v)?;
                    }
                    let avg = g.new_labeled(sum / n.max(1));
                    // Declassify the aggregate with every s_i-.
                    let public = g.copy_and_label(&avg, SecPair::unlabeled())?;
                    public.read(g, |v| *v)
                },
                |_| {},
            )?
            .ok_or(LaminarError::App("average suppressed".into()))
    }

    /// Renders the Table 4 policy for the current sizes.
    #[must_use]
    pub fn policy_table(&self) -> String {
        let n = self.students.len();
        let m = self.projects.len();
        let mut out = String::new();
        out.push_str("Name          Security Set\n");
        out.push_str("GradeCell(i,j)  {S(s_i)}, {I(p_j)}\n");
        out.push_str("Student(i)      C(s_i+, s_i-)\n");
        out.push_str(&format!("TA(j)           C(s_1+..s_{n}+, p_j+, p_j-)\n"));
        out.push_str(&format!(
            "Professor       C(s_i+, s_i-, p_j+, p_j-)  for i in 1..{n}, j in 1..{m}\n"
        ));
        out
    }

    /// Aggregated runtime statistics across every principal.
    #[must_use]
    pub fn stats(&self) -> AppStats {
        let mut stats = self.professor.stats();
        for p in self.tas.iter().chain(&self.student_threads) {
            stats.merge(&p.stats());
        }
        AppStats::from_runtime("GradeSheet", &stats)
    }

    /// Resets every principal's statistics.
    pub fn reset_stats(&self) {
        self.professor.reset_stats();
        for p in self.tas.iter().chain(&self.student_threads) {
            p.reset_stats();
        }
    }

    /// A mixed query workload: `q` operations round-robinning student
    /// reads, TA updates and professor averages, each wrapped in the
    /// request parsing/rendering the grade *server* performs around the
    /// data access ([`crate::workload::request_work`]). Returns a
    /// checksum so the optimizer cannot elide work; the same workload
    /// runs on the baseline for overhead comparison.
    ///
    /// # Errors
    /// Propagates the first runtime error.
    pub fn run_workload(&self, q: usize) -> LaminarResult<i64> {
        let n = self.students.len();
        let m = self.projects.len();
        let mut check = 0i64;
        for k in 0..q {
            let i = k % n;
            let j = k % m;
            check = check.wrapping_add(
                crate::workload::request_work(
                    &["query", "student", "project"],
                    REQUEST_UNITS,
                ) as i64
                    & 0xff,
            );
            match k % 4 {
                0 => self.professor_set(i, j, (k % 100) as i64)?,
                1 => self.ta_set(j, i, j, (k % 100) as i64)?,
                2 => check += self.student_read(i, j)?,
                _ => check += self.professor_average(j)?,
            }
        }
        Ok(check)
    }
}

/// Per-request server work units (sized so the measured time inside
/// security regions matches Table 3's ~6% for GradeSheet).
const REQUEST_UNITS: u32 = 640;

/// The unsecured baseline: the original ad-hoc `if role == ...` checks.
#[derive(Debug)]
pub struct BaselineGradeSheet {
    cells: Vec<Vec<i64>>,
}

/// Roles in the baseline's ad-hoc authorization.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Role {
    /// Full access.
    Professor,
    /// TA for a given project.
    Ta(usize),
    /// A student.
    Student(usize),
}

impl BaselineGradeSheet {
    /// An `n × m` grade matrix.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        BaselineGradeSheet { cells: vec![vec![0; m]; n] }
    }

    /// Ad-hoc checked write.
    ///
    /// # Errors
    /// Returns a string error when the role may not write the cell.
    pub fn set(&mut self, role: Role, i: usize, j: usize, v: i64) -> Result<(), String> {
        match role {
            Role::Professor => {}
            Role::Ta(tj) if tj == j => {}
            _ => return Err("permission denied".into()),
        }
        self.cells[i][j] = v;
        Ok(())
    }

    /// Ad-hoc checked read.
    ///
    /// # Errors
    /// Returns a string error when the role may not read the cell.
    pub fn get(&self, role: Role, i: usize, j: usize) -> Result<i64, String> {
        match role {
            Role::Professor | Role::Ta(_) => {}
            Role::Student(si) if si == i => {}
            _ => return Err("permission denied".into()),
        }
        Ok(self.cells[i][j])
    }

    /// The (leaky, pre-Laminar) average — any student could call this in
    /// the original policy.
    #[must_use]
    pub fn average(&self, j: usize) -> i64 {
        let n = self.cells.len() as i64;
        let sum: i64 = self.cells.iter().map(|r| r[j]).sum();
        sum / n.max(1)
    }

    /// Same workload shape as [`GradeSheet::run_workload`], including
    /// the identical per-request server work.
    ///
    /// # Errors
    /// Never for in-range sizes; kept fallible for signature parity.
    pub fn run_workload(&mut self, q: usize) -> Result<i64, String> {
        let n = self.cells.len();
        let m = self.cells[0].len();
        let mut check = 0i64;
        for k in 0..q {
            let i = k % n;
            let j = k % m;
            check = check.wrapping_add(
                crate::workload::request_work(
                    &["query", "student", "project"],
                    REQUEST_UNITS,
                ) as i64
                    & 0xff,
            );
            match k % 4 {
                0 => self.set(Role::Professor, i, j, (k % 100) as i64)?,
                1 => self.set(Role::Ta(j), i, j, (k % 100) as i64)?,
                2 => check += self.get(Role::Student(i), i, j)?,
                _ => check += self.average(j),
            }
        }
        Ok(check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet() -> (Arc<Laminar>, GradeSheet) {
        let sys = Laminar::boot();
        let gs = GradeSheet::new(&sys, 4, 2).unwrap();
        (sys, gs)
    }

    #[test]
    fn professor_can_set_and_student_can_read_own() {
        let (_sys, gs) = sheet();
        gs.professor_set(1, 0, 88).unwrap();
        assert_eq!(gs.student_read(1, 0).unwrap(), 88);
    }

    #[test]
    fn student_cannot_read_others() {
        let (_sys, gs) = sheet();
        gs.professor_set(2, 0, 77).unwrap();
        let err = gs.student_read_other(1, 2, 0).unwrap_err();
        assert!(matches!(err, LaminarError::RegionEntry(_)), "{err}");
    }

    #[test]
    fn ta_updates_only_own_project() {
        let (_sys, gs) = sheet();
        gs.ta_set(0, 1, 0, 55).unwrap();
        assert_eq!(gs.student_read(1, 0).unwrap(), 55);
        // TA 0 cannot endorse project 1 writes.
        let err = gs.ta_set(0, 1, 1, 99).unwrap_err();
        assert!(matches!(err, LaminarError::RegionEntry(_)), "{err}");
        // And the grade is untouched.
        assert_eq!(gs.student_read(1, 1).unwrap(), 0);
    }

    #[test]
    fn ta_reads_any_student() {
        let (_sys, gs) = sheet();
        gs.professor_set(3, 1, 42).unwrap();
        assert_eq!(gs.ta_read(0, 3, 1).unwrap(), 1);
    }

    #[test]
    fn professor_average_declassifies() {
        let (_sys, gs) = sheet();
        for i in 0..4 {
            gs.professor_set(i, 0, 10 * (i as i64 + 1)).unwrap();
        }
        assert_eq!(gs.professor_average(0).unwrap(), 25);
    }

    #[test]
    fn workload_matches_baseline_semantics() {
        let (_sys, gs) = sheet();
        let secured = gs.run_workload(32).unwrap();
        let mut base = BaselineGradeSheet::new(4, 2);
        let baseline = base.run_workload(32).unwrap();
        assert_eq!(secured, baseline);
    }

    #[test]
    fn stats_observe_regions() {
        let (_sys, gs) = sheet();
        gs.reset_stats();
        gs.run_workload(16).unwrap();
        let stats = gs.stats();
        assert!(stats.regions_entered > 0);
        assert!(stats.labeled_reads + stats.labeled_writes > 0);
    }

    #[test]
    fn policy_table_mentions_all_principals() {
        let (_sys, gs) = sheet();
        let t = gs.policy_table();
        assert!(t.contains("GradeCell"));
        assert!(t.contains("Professor"));
        assert!(t.contains("TA(j)"));
    }
}
