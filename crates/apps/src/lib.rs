//! # laminar-apps — the four case studies of Laminar §7
//!
//! Reimplementations of the applications the paper retrofitted with DIFC
//! policies, each in two variants — the Laminar-secured port and the
//! original-style unsecured baseline — so that the Table 3 / Figure 9
//! measurements can be regenerated:
//!
//! | Module | App | Protected data | Policy highlight |
//! |---|---|---|---|
//! | [`gradesheet`] | GradeSheet | student grades | per-cell `{S(s_i), I(p_j)}`; professor-only average declassification (Table 4) |
//! | [`battleship`] | Battleship | ship locations | per-player tags; opponents declassify only hit/miss |
//! | [`calendar`]   | Calendar (k5nCal) | schedules | per-user tags on files *and* structures; scheduler holds `a+, b+, b-` |
//! | [`freecs`]     | FreeCS chat server | membership properties | roles as integrity tags; `banList` guarded by VIP + superuser tags |
//!
//! All four exercise **heterogeneously labeled data within one address
//! space** — the workload that separates Laminar from OS-only DIFC
//! systems (§7.5).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod battleship;
pub mod calendar;
pub mod freecs;
pub mod gradesheet;
pub mod workload;

pub use workload::AppStats;
