//! Driving the MiniVM from assembly text: the untrusted-frontend path.
//!
//! The paper's workflow compiles Java with an *untrusted* `javac`; only
//! the VM's verifier and barriers are trusted. Here the untrusted
//! frontend is `laminar_vm::assemble`, and the same program runs under
//! every barrier strategy — including the §5.1 production "cloning"
//! mode — with identical results.
//!
//! Run with: `cargo run --example minivm_assembly`

use laminar_difc::{CapSet, Label, SecPair, Tag};
use laminar_vm::{assemble, disassemble, BarrierMode, ClassId, Value, Vm};

const PROGRAM: &str = r"
; Sum the 'balance' field of an account while the secret threshold is
; consulted inside a security region; only the boolean verdict escapes
; via copyAndLabel.
.class Account 1      ; balance
.class Verdict 1      ; over-threshold flag
.pair  SECRET s=0
.pair  EMPTY
.region CHECK SECRET caps=0+,0-

.regionfn check 3 locals=3
    ; params: 0 = secret threshold cell, 1 = account, 2 = verdict out
    load 2
    load 1
    getfield 0
    load 0
    getfield 0
    lt                ; balance < threshold ?
    not               ; over-threshold
    putfield 0
    ret
.end

.func main 3 -> 1 locals=4
    load 0
    load 1
    load 2
    calls check CHECK
    load 2
    getfield 0
    ret
.end
";

fn main() -> Result<(), laminar_vm::VmError> {
    let program = assemble(PROGRAM)?;
    println!("assembled {} functions; disassembly:\n", program.functions.len());
    println!("{}", disassemble(&program));

    let secret_tag = Tag::from_raw(100);
    for mode in [BarrierMode::Static, BarrierMode::Dynamic, BarrierMode::Cloning] {
        let mut vm = Vm::new(program.clone(), vec![secret_tag], mode);
        let mut caps = CapSet::new();
        caps.grant_both(secret_tag);
        vm.set_thread_caps(caps);

        let secret_labels = SecPair::secrecy_only(Label::singleton(secret_tag));
        let threshold = vm.host_alloc_object(ClassId(0), Some(secret_labels))?;
        vm.host_put_field(threshold, 0, Value::Int(1_000))?;
        let account = vm.host_alloc_object(ClassId(0), None)?;
        vm.host_put_field(account, 0, Value::Int(1_500))?;
        let verdict = vm.host_alloc_object(ClassId(1), None)?;

        // The region may read the secret threshold; the unlabeled verdict
        // write would leak, so it is confined…
        let out = vm.call_by_name(
            "main",
            &[Value::Ref(threshold), Value::Ref(account), Value::Ref(verdict)],
        )?;
        println!(
            "{mode:?}: suppressed={} region result={:?} (leak prevented: verdict untouched={:?})",
            vm.stats().exceptions_suppressed,
            out,
            vm.host_get_field(verdict, 0)?,
        );
    }
    println!();
    println!("the write of the verdict is a flow violation (secret → public),");
    println!("so every mode confines it; a correct program would copyAndLabel");
    println!("the verdict with the 0- capability first.");
    Ok(())
}
