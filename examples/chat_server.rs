//! FreeCS chat server (§7.4): roles as integrity tags.
//!
//! The ban list carries two integrity tags — VIP and the group's
//! superuser — so only a principal holding *both* `+` capabilities can
//! write it. The authentication module hands out capabilities at login;
//! there is not a single `if role == ...` check left in the secured
//! command paths.
//!
//! Run with: `cargo run --example chat_server`

use laminar::{Laminar, LaminarError};
use laminar_apps::freecs::{ChatServer, CmdOutcome};

fn main() -> Result<(), LaminarError> {
    let system = Laminar::boot();
    let server = ChatServer::new(&system)?;

    // Users log in; capabilities are granted by role.
    server.login_user("root", true)?; // VIP
    server.login_user("mallory", false)?;
    server.login_user("carol", false)?;
    server.create_group("general", "root")?; // root is also superuser

    println!("users: root (VIP + superuser of #general), mallory, carol");

    for (who, cmd) in [("mallory", "join"), ("carol", "join")] {
        let out = server.join(who, "general")?;
        println!("{who} {cmd}s #general -> {out:?}");
    }
    println!("carol says hi -> {:?}", server.say("carol", "general", "hi all")?);

    // mallory misbehaves; only root can ban (VIP ∧ superuser).
    println!(
        "carol tries to ban mallory -> {:?}",
        server.ban("carol", "general", "mallory")?
    );
    println!("root bans mallory -> {:?}", server.ban("root", "general", "mallory")?);
    println!("mallory re-joins -> {:?} (banned)", server.join("mallory", "general")?);

    // Themes are superuser-protected; private messages are secrecy-labeled.
    println!("root sets theme -> {:?}", server.set_theme("root", "general", "midnight")?);
    println!("theme is now '{}'", server.theme("general")?);
    server.msg("carol", "root", "thanks for dealing with mallory")?;
    println!("root's inbox: {:?}", server.read_inbox("root")?);

    assert_eq!(server.join("mallory", "general")?, CmdOutcome::Denied);
    let stats = server.stats();
    println!();
    println!(
        "stats: {} regions, {} labeled writes, {} dynamic barrier dispatches",
        stats.regions_entered, stats.labeled_writes, stats.dynamic_dispatches
    );
    Ok(())
}
