//! The paper's running example (§3.3): Alice and Bob schedule a meeting
//! through a server they do not administer, while keeping their
//! calendars secret.
//!
//! * Alice's calendar file carries `{S(a)}`, Bob's `{S(b)}`.
//! * The scheduler receives `a+` from Alice (it may taint itself to read
//!   her calendar, but can never declassify her data) and `b+`/`b-` from
//!   Bob (his module declassifies his own availability).
//! * A thread tainted `{S(a,b)}` computes the common slot; the
//!   declassification to `{S(a)}` is localized to one small, auditable
//!   nested region.
//!
//! Run with: `cargo run --example calendar_scheduling`

use laminar::{Laminar, LaminarError};
use laminar_apps::calendar::CalendarSystem;

fn main() -> Result<(), LaminarError> {
    let system = Laminar::boot();
    let cal = CalendarSystem::new(&system)?;

    println!("calendars initialised (alice busy: 10,11,30,31,75; bob: 10,12,30,32,90)");

    let slot = cal.schedule_meeting(10)?;
    println!("scheduler found common slot {slot} (expected 13)");

    println!(
        "alice reads the meeting from her {{S(a)}} file: {}",
        cal.alice_read_meeting()?
    );

    // Make the morning busy and reschedule.
    cal.add_busy(0, 13)?;
    cal.add_busy(1, 14)?;
    let slot = cal.schedule_meeting(10)?;
    println!("after new appointments the next common slot is {slot} (expected 15)");

    let stats = cal.stats();
    println!();
    println!("runtime summary:");
    println!("  security regions entered : {}", stats.regions_entered);
    println!(
        "  labeled reads / writes   : {} / {}",
        stats.labeled_reads, stats.labeled_writes
    );
    println!("  declassifications        : {}", stats.copies);
    println!(
        "  VM->OS label syncs       : {} ({} elided by laziness)",
        stats.os_syncs, stats.os_syncs_elided
    );
    Ok(())
}
