//! Quickstart: the Laminar model in five minutes.
//!
//! Boots the system, mints a secrecy tag, labels a heap cell and a file,
//! and demonstrates the three core guarantees:
//!
//! 1. labeled data is only reachable inside security regions whose
//!    labels dominate it;
//! 2. a tainted region cannot write to public sinks (no write-down) —
//!    and violations are *confined*: the program keeps running;
//! 3. declassification is an explicit, capability-gated `copy_and_label`.
//!
//! Run with: `cargo run --example quickstart`

use laminar::{Laminar, LaminarError, RegionParams};
use laminar_difc::{Capability, Label, SecPair};
use laminar_os::{OpenMode, UserId};

fn main() -> Result<(), LaminarError> {
    // Boot the OS with the Laminar security module and log Alice in.
    let system = Laminar::boot();
    system.add_user(UserId(1), "alice");
    let alice = system.login(UserId(1))?;

    // Mint a tag: Alice now holds a+ (classify) and a- (declassify).
    let a = system.kernel(); // keep the kernel handy
    let tag = alice.create_tag()?;
    println!("alice minted tag {tag} (holds {tag}+ and {tag}-)");

    // A region carrying {S(a)} can create and use labeled data.
    let params = RegionParams::new()
        .secrecy(Label::singleton(tag))
        .grant(Capability::plus(tag))
        .grant(Capability::minus(tag));

    let diary = alice
        .secure(&params, |g| Ok(g.new_labeled(String::from("met bob at noon"))), |_| {})?
        .expect("region completed");
    println!("labeled cell created: {:?}", diary.labels());

    // (1) Outside a region the secret is unreachable.
    match diary.read_dyn(|d| d.clone()) {
        Err(LaminarError::NotInRegion) => {
            println!("outside any region: access denied, as required");
        }
        other => panic!("expected denial, got {other:?}"),
    }

    // (2) A tainted region cannot write a public file — and the failure
    // is confined to the region.
    let weaker =
        RegionParams::new().secrecy(Label::singleton(tag)).grant(Capability::plus(tag)); // note: no a- here
    let fd = alice.task().create("/tmp/public.txt")?;
    alice.task().close(fd)?;
    let outcome = alice.secure(
        &weaker,
        |g| {
            let os = g.os()?;
            let fd = os.open("/tmp/public.txt", OpenMode::Write)?;
            os.write(fd, b"leak!")?; // ← the kernel refuses this flow
            os.close(fd)?;
            Ok(())
        },
        |_| println!("catch block: restoring invariants"),
    )?;
    assert!(outcome.is_none(), "the violation must have been suppressed");
    println!("write-down denied and confined; execution continues");

    // (3) Explicit declassification with a-.
    let public = alice
        .secure(
            &params,
            |g| {
                let summary = g.new_labeled(String::from("alice is busy at noon"));
                let p = g.copy_and_label(&summary, SecPair::unlabeled())?;
                p.read(g, String::clone)
            },
            |_| {},
        )?
        .expect("declassification region completed");
    println!("declassified: {public}");

    println!(
        "kernel: {} LSM hook invocations under module '{}'",
        a.hook_calls(),
        a.module_name()
    );
    Ok(())
}
