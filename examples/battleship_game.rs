//! Battleship (§7.2): two mutually distrusting players, each with a
//! secrecy tag on her board; opponents learn exactly one declassified
//! bit (hit/miss) per shot.
//!
//! Run with: `cargo run --example battleship_game`

use laminar::{Laminar, LaminarError};
use laminar_apps::battleship::{BaselineBattleship, Battleship};

fn main() -> Result<(), LaminarError> {
    let system = Laminar::boot();
    let game = Battleship::new(&system, 2026, false)?;

    println!("boards placed; playing a full game under Laminar...");
    let result = game.play(7)?;
    println!(
        "player {} wins after {} shots ({} hits)",
        result.winner, result.shots, result.hits
    );

    // The unsecured original computes the identical game.
    let mut baseline = BaselineBattleship::new(&system, 2026, false)?;
    let base_result = baseline.play(7)?;
    assert_eq!(result, base_result, "secured game must match the original");
    println!("baseline (original JavaBattle-style) game agrees move for move");

    let stats = game.stats();
    println!();
    println!("what DIFC cost us:");
    println!("  security regions entered : {}", stats.regions_entered);
    println!("  labeled board updates    : {}", stats.labeled_writes);
    println!("  declassified bits        : {} copy_and_label calls", stats.copies);
    println!("  time inside regions      : {:.2} ms", stats.region_ns as f64 / 1e6);
    println!();
    println!("what DIFC bought us: neither player's process can read the");
    println!("other's board — only the declassified hit/miss bit crosses.");
    Ok(())
}
