//! GradeSheet (§7.1): the Table 4 policy in action — per-cell
//! heterogeneously labeled data, which OS-granularity DIFC systems
//! cannot express.
//!
//! Run with: `cargo run --example gradesheet_policy`

use laminar::{Laminar, LaminarError};
use laminar_apps::gradesheet::GradeSheet;

fn main() -> Result<(), LaminarError> {
    let system = Laminar::boot();
    let gs = GradeSheet::new(&system, 3, 2)?;

    println!("{}", gs.policy_table());

    // The professor grades everyone.
    for i in 0..3 {
        for j in 0..2 {
            gs.professor_set(i, j, 70 + (i * 10 + j) as i64)?;
        }
    }
    println!("professor entered all grades");

    // TA 0 regrades a submission for project 0 — her project.
    gs.ta_set(0, 1, 0, 95)?;
    println!("TA(0) regraded student 1 on project 0 -> allowed");

    // TA 0 cannot touch project 1 (no p_1 endorsement).
    match gs.ta_set(0, 1, 1, 0) {
        Err(e) => println!("TA(0) writing project 1 -> denied ({e})"),
        Ok(()) => panic!("policy violation!"),
    }

    // Students see exactly their own marks.
    println!("student 1 reads own project-0 mark: {}", gs.student_read(1, 0)?);
    match gs.student_read_other(0, 1, 0) {
        Err(e) => println!("student 0 reading student 1 -> denied ({e})"),
        Ok(_) => panic!("policy violation!"),
    }

    // Only the professor can compute (and declassify) the average — the
    // leak Laminar exposed in the original policy.
    println!(
        "professor's declassified class average (project 0): {}",
        gs.professor_average(0)?
    );
    Ok(())
}
