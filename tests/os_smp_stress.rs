//! SMP stress: seeded threads hammer *shared* kernel objects with
//! deliberately conflicting syscalls through [`Kernel::run_parallel`]
//! for about a second (PR 4).
//!
//! Unlike the concurrent conformance regime (disjoint task sets, every
//! outcome checked against the oracle), this test maximizes lock
//! contention on a handful of hot objects — one pipe, one labeled
//! file, one churned path, the tag registry — and checks global
//! invariants instead of per-op outcomes:
//!
//! * the run terminates (no deadlock among the shard locks — the
//!   footprint-restart protocol in `laminar_os::shard` is what makes
//!   this a theorem rather than luck);
//! * fault counters stay consistent: every observed
//!   [`OsError::Internal`] corresponds to exactly one journal rollback,
//!   and with no failpoints armed both counts are zero;
//! * conservation on the shared pipe: bytes read never exceed bytes
//!   written, and the residue queued in the buffer is within capacity;
//! * the flow-check cache is semantically invisible even after a
//!   storm of concurrent label changes: every cached verdict over the
//!   final labels equals the uncached structural recomputation.

use laminar_difc::{CapSet, Capability, Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, OsError, TaskHandle, UserId, PIPE_CAPACITY};
use laminar_util::SplitMix64;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

/// Per-worker tallies, merged after the storm.
#[derive(Default, Clone, Copy, Debug)]
struct Tally {
    ops: u64,
    ok: u64,
    denied: u64,
    internal: u64,
    pipe_written: u64,
    pipe_read: u64,
}

impl Tally {
    fn absorb<T>(&mut self, r: Result<T, OsError>) -> Option<T> {
        self.ops += 1;
        match r {
            Ok(v) => {
                self.ok += 1;
                Some(v)
            }
            Err(OsError::Internal) => {
                self.internal += 1;
                None
            }
            Err(_) => {
                self.denied += 1;
                None
            }
        }
    }
}

#[test]
fn conflicting_syscalls_hammering_shared_objects_stay_consistent() {
    let kernel = Kernel::boot(LaminarModule);
    kernel.add_user(UserId(1), "alice");
    let root = kernel.login(UserId(1)).expect("login");

    // The shared battleground: one unlabeled pipe, one secret file in a
    // secret dir, one churned path. Workers hold both capabilities for
    // the secrecy tag so they can taint and untaint at will; their
    // reads of the hot file race against each other's label changes.
    let tag = root.alloc_tag().expect("tag");
    let secret = SecPair::secrecy_only(Label::singleton(tag));
    kernel.install_dir("/tmp/vault", secret.clone()).expect("install");
    root.set_task_label(LabelType::Secrecy, Label::singleton(tag)).expect("taint");
    let fd = root.create_file_labeled("/tmp/vault/hot", secret).expect("create hot");
    root.write(fd, b"seed-contents").expect("seed write");
    root.close(fd).expect("close");
    root.set_task_label(LabelType::Secrecy, Label::empty()).expect("untaint");
    let (pr, pw) = root.pipe().expect("pipe");

    // Fork the workers *after* the pipe so the fd numbers are shared.
    let caps = CapSet::from_caps([Capability::plus(tag), Capability::minus(tag)]);
    let workers: Vec<Vec<TaskHandle>> = (0..WORKERS)
        .map(|_| vec![root.fork(Some(caps.clone())).expect("fork worker")])
        .collect();

    let rolled_back_before = laminar_os::syscalls_rolled_back();
    let hooks_before = kernel.hook_calls();
    let millis = std::env::var("LAMINAR_STRESS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000u64);
    let deadline = Instant::now() + Duration::from_millis(millis);

    let tallies: Vec<Tally> = kernel.run_parallel(workers, |w, own| {
        let me = &own[0];
        let mut rng = SplitMix64::new(0x57E5_5000 + w as u64);
        let mut t = Tally::default();
        while Instant::now() < deadline {
            match rng.next_u64() % 16 {
                // The shared pipe: every worker reads and writes the
                // same buffer (silent drops apply while tainted).
                0..=3 => {
                    const PAYLOAD: [u8; 48] = [0xA5; 48];
                    let n = 1 + (rng.next_u64() % 48) as usize;
                    if let Some(written) = t.absorb(me.write(pw, &PAYLOAD[..n])) {
                        t.pipe_written += written as u64;
                    }
                }
                4..=6 => {
                    if let Some(data) = t.absorb(me.read(pr, 64)) {
                        t.pipe_read += data.len() as u64;
                    }
                }
                // The hot labeled file: allowed or denied depending on
                // the worker's racing taint state.
                7..=8 => {
                    t.absorb(me.write_file_at("/tmp/vault/hot", &[w as u8; 16]));
                }
                9..=10 => {
                    t.absorb(me.read_file_at("/tmp/vault/hot", 64));
                }
                // Racing label flips on this worker's own task.
                11 => {
                    let l = if rng.next_u64().is_multiple_of(2) {
                        Label::singleton(tag)
                    } else {
                        Label::empty()
                    };
                    t.absorb(me.set_task_label(LabelType::Secrecy, l));
                }
                // Create/unlink churn on ONE shared name: Exists and
                // NotFound denials are the expected collision mode.
                12..=13 => {
                    if let Some(fd) =
                        t.absorb(me.create_file_labeled("/tmp/churn", SecPair::default()))
                    {
                        me.close(fd).ok();
                    }
                }
                14 => {
                    t.absorb(me.unlink("/tmp/churn"));
                }
                // Label inspection of the hot file (the traversal
                // races the other workers' label flips).
                _ => {
                    t.absorb(me.get_labels("/tmp/vault/hot"));
                }
            }
        }
        t
    });

    // The run terminating at all is the no-deadlock assertion; now the
    // consistency ones.
    let total: Tally = tallies.iter().fold(Tally::default(), |mut a, t| {
        a.ops += t.ops;
        a.ok += t.ok;
        a.denied += t.denied;
        a.internal += t.internal;
        a.pipe_written += t.pipe_written;
        a.pipe_read += t.pipe_read;
        a
    });
    assert!(total.ops > 0, "the storm must have run");
    assert!(total.ok > 0, "some syscalls must succeed under contention");
    assert!(total.denied > 0, "the conflict mix must provoke denials");

    // Every Internal error is a journal rollback and vice versa; with
    // no failpoints armed, the footprint-restart protocol guarantees
    // both are zero (restarts are internal retries, not rollbacks).
    let rollbacks = laminar_os::syscalls_rolled_back() - rolled_back_before;
    assert_eq!(
        total.internal, rollbacks,
        "observed Internal denials must match journal rollbacks"
    );
    assert_eq!(rollbacks, 0, "a clean stress run must not roll anything back");

    // Every op crossed the LSM hooks.
    assert!(kernel.hook_calls() > hooks_before);

    // Pipe conservation: every byte read or still queued was once
    // written (writes over-count — a silent drop or a full buffer
    // still reports success to the writer, by design), and the residue
    // fits the buffer.
    let queued = root.pipe_queued_for_test(pr).expect("queued") as u64;
    assert!(queued as usize <= PIPE_CAPACITY);
    assert!(
        total.pipe_read + queued <= total.pipe_written,
        "bytes read ({}) + queued ({queued}) exceed bytes written ({})",
        total.pipe_read,
        total.pipe_written
    );

    // Cache invisibility after the storm: for the final label of every
    // task and of the hot file, the memoized verdict must equal the
    // uncached structural recomputation, both directions, all pairs.
    let mut pairs: Vec<SecPair> = vec![root.current_labels().expect("root labels")];
    pairs.push(kernel.inspect_node_for_test("/tmp/vault/hot").expect("hot").0);
    // (Worker handles moved into run_parallel's task sets; their final
    // labels are one of the two values raced over — add both.)
    pairs.push(SecPair::secrecy_only(Label::singleton(tag)));
    pairs.push(SecPair::default());
    for a in &pairs {
        for b in &pairs {
            assert_eq!(
                a.flows_to_cached(b),
                a.flows_to(b),
                "cached verdict diverged from recomputation for {a:?} -> {b:?}"
            );
        }
    }
}
