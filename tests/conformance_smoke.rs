//! Workspace-level smoke test for the conformance testkit: a small
//! fixed exploration plus one committed trace, so `cargo test` at the
//! root exercises the oracle/kernel lockstep even when the full
//! `-p laminar-testkit` matrix is not run.

use laminar_testkit::{explore, ExploreConfig, FaultPlan, Op};

#[test]
fn a_small_fixed_exploration_finds_no_divergence() {
    laminar_difc::reset_flow_cache();
    let cfg = ExploreConfig {
        seeds: vec![0xD1FC_0001],
        traces_per_seed: 25,
        ops_per_trace: 24,
        plan: FaultPlan::none(),
    };
    if let Err(cex) = explore(&cfg) {
        panic!(
            "smoke conformance divergence (seed {:#018x}):\n{}\n\n{}",
            cex.seed,
            cex.divergence.detail,
            laminar_testkit::render_regression_test(&cex),
        );
    }
}

#[test]
fn a_committed_trace_replays_identically() {
    laminar_testkit::assert_conformance(&[
        Op::SetLabel { task: 1, secrecy: true, mask: 0b01 },
        Op::PipeWrite { task: 1, pipe: 1, len: 4 },
        Op::PipeRead { task: 2, pipe: 1, max: 8 },
        Op::CreateFile { task: 1, dir: 2, slot: 0, s_mask: 0b01, i_mask: 0 },
        Op::GetLabels { task: 1, dir: 2, slot: 0 },
    ]);
}
