//! MiniVM integration tests: the paper's figures as bytecode programs,
//! the static-barrier failure mode, lazy label sync over the real
//! kernel bridge, statics restrictions and `copyAndLabel`.

use laminar::KernelBridge;
use laminar_difc::{CapKind, CapSet, Capability, Label, SecPair, Tag};
use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
use laminar_vm::{BarrierMode, ClassId, ProgramBuilder, Value, Vm, VmError};

fn fresh_tag(n: u64) -> Tag {
    Tag::from_raw(n)
}

/// Figure 4: read a labeled calendar object in a `{S(a,b), I()}` region,
/// compute, then declassify inside a nested `{S(b)}` region using `a-`.
#[test]
fn figure4_calendar_flow() {
    let mut pb = ProgramBuilder::new();
    let cell = pb.add_class("Cell", 1);
    let _ = cell;

    // Inner region {S(b)} with C(a-): ret.val = copyAndLabel(s2, S(b)).
    let pair_b = pb.add_pair_spec(&[1], &[]);
    let inner = pb.region("declassify", 2, 3, |b| {
        // params: 0 = s2 (labeled {S(a,b)}), 1 = ret (labeled {S(b)})
        b.load(1); // ret
        b.load(0).copy_and_label(pair_b); // copy of s2 at {S(b)}
        b.get_field(0); // read the copy's field (labels {S(b)} ⊆ thread ✓)
        b.put_field(0); // ret.val = ...
        b.ret();
    });
    let inner_spec = pb.add_region_spec(pair_b, &[(0, CapKind::Minus)], None);

    // Outer region {S(a,b)} with C(a-).
    let pair_ab = pb.add_pair_spec(&[0, 1], &[]);
    let outer = pb.region("schedule", 2, 3, |b| {
        // params: 0 = cal {S(a,b)}, 1 = ret {S(b)}
        // s2 = new Cell (labels of region = {S(a,b)}); s2.val = cal.val * 2
        b.new_object(ClassId(0)).store(2);
        b.load(2);
        b.load(0).get_field(0).push_int(2).mul();
        b.put_field(0);
        b.load(2).load(1).call_secure(inner, inner_spec);
        b.ret();
    });
    let outer_spec = pb.add_region_spec(pair_ab, &[(0, CapKind::Minus)], None);

    pb.func("main", 2, false, 2, |b| {
        b.load(0).load(1).call_secure(outer, outer_spec).ret();
    });
    let program = pb.finish().unwrap();

    let (a, b) = (fresh_tag(1001), fresh_tag(1002));
    let mut vm = Vm::new(program, vec![a, b], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(a));
    caps.grant(Capability::plus(b));
    caps.grant(Capability::minus(a));
    vm.set_thread_caps(caps);

    let lab_ab = SecPair::secrecy_only(Label::from_tags([a, b]));
    let lab_b = SecPair::secrecy_only(Label::singleton(b));
    let cal = vm.host_alloc_object(ClassId(0), Some(lab_ab)).unwrap();
    vm.host_put_field(cal, 0, Value::Int(21)).unwrap();
    let ret = vm.host_alloc_object(ClassId(0), Some(lab_b.clone())).unwrap();

    vm.call_by_name("main", &[Value::Ref(cal), Value::Ref(ret)]).unwrap();
    assert_eq!(vm.host_get_field(ret, 0).unwrap(), Value::Int(42));
    assert!(vm.stats().copy_and_label == 1);
    assert_eq!(vm.stats().regions_entered, 2);
}

/// Figure 5 with the catch block: the invariant `y == 2x` is restored by
/// the catch after the implicit-flow exception.
#[test]
fn figure5_catch_restores_invariants() {
    // The paper's x, y live in the enclosing scope; our regions are
    // methods, so they live in a {S(h)}-labeled State{x, y} object the
    // region (and its catch) may freely update.
    let mut pb = ProgramBuilder::new();
    let _cell = pb.add_class("Cell", 1); // class 0: H and L holders
    let _state = pb.add_class("State", 2); // class 1: {x, y}

    // catch(H, L, state): y = 2 * x
    let catch = pb.region("catch", 3, 3, |b| {
        b.load(2);
        b.load(2).get_field(0).push_int(2).mul();
        b.put_field(1);
        b.ret();
    });
    // body(H, L, state): x++; if (H) L = true; y = 2*x
    let body = pb.region("body", 3, 3, |b| {
        b.load(2);
        b.load(2).get_field(0).push_int(1).add();
        b.put_field(0);
        b.load(0).get_field(0); // H.val (readable: region has S(h))
        let skip = b.new_label();
        b.jump_if_false(skip);
        b.load(1).push_bool(true).put_field(0); // L.val = true → violation
        b.bind(skip);
        b.load(2);
        b.load(2).get_field(0).push_int(2).mul();
        b.put_field(1);
        b.ret();
    });
    let pair_h = pb.add_pair_spec(&[0], &[]);
    let spec = pb.add_region_spec(pair_h, &[(0, CapKind::Plus)], Some(catch));
    pb.func("main", 3, false, 3, |b| {
        b.load(0).load(1).load(2).call_secure(body, spec).ret();
    });
    let program = pb.finish().unwrap();

    for h_value in [false, true] {
        let h = fresh_tag(7);
        let mut vm = Vm::new(program.clone(), vec![h], BarrierMode::Dynamic);
        let mut caps = CapSet::new();
        caps.grant(Capability::plus(h));
        vm.set_thread_caps(caps);
        let lab = SecPair::secrecy_only(Label::singleton(h));
        let h_obj = vm.host_alloc_object(ClassId(0), Some(lab.clone())).unwrap();
        vm.host_put_field(h_obj, 0, Value::Bool(h_value)).unwrap();
        let l_obj = vm.host_alloc_object(ClassId(0), None).unwrap();
        vm.host_put_field(l_obj, 0, Value::Bool(false)).unwrap();
        let state = vm.host_alloc_object(ClassId(1), Some(lab)).unwrap();
        vm.host_put_field(state, 0, Value::Int(10)).unwrap();
        vm.host_put_field(state, 1, Value::Int(20)).unwrap();

        vm.call_by_name(
            "main",
            &[Value::Ref(h_obj), Value::Ref(l_obj), Value::Ref(state)],
        )
        .unwrap();
        // Invariant y == 2x restored on both paths (via body or catch).
        let x = vm.host_get_field(state, 0).unwrap();
        let y = vm.host_get_field(state, 1).unwrap();
        assert_eq!(x, Value::Int(11), "H={h_value}");
        assert_eq!(y, Value::Int(22), "H={h_value}");
        // L never written.
        assert_eq!(vm.host_get_field(l_obj, 0).unwrap(), Value::Bool(false));
        // Exception suppressed exactly when H was true.
        assert_eq!(vm.stats().exceptions_suppressed > 0, h_value);
    }
}

/// Figure 7: reading two differently-labeled student records in a
/// `{S(s1,s2)}` region, then declassifying the sum with `s1-, s2-`.
#[test]
fn figure7_two_students() {
    let mut pb = ProgramBuilder::new();
    let _rec = pb.add_class("Rec", 1);

    let pair_empty = pb.add_pair_spec(&[], &[]);
    let inner = pb.region("declass", 2, 2, |b| {
        // params: 0 = obj {S(s1,s2)}, 1 = ret (unlabeled)
        b.load(1);
        b.load(0).copy_and_label(pair_empty);
        b.get_field(0);
        b.put_field(0);
        b.ret();
    });
    let inner_spec =
        pb.add_region_spec(pair_empty, &[(0, CapKind::Minus), (1, CapKind::Minus)], None);

    let pair_s12 = pb.add_pair_spec(&[0, 1], &[]);
    let outer = pb.region("sum", 3, 4, |b| {
        // params: 0 = student1, 1 = student2, 2 = ret
        b.new_object(ClassId(0)).store(3);
        b.load(3);
        b.load(0).get_field(0);
        b.load(1).get_field(0);
        b.add();
        b.put_field(0);
        b.load(3).load(2).call_secure(inner, inner_spec);
        b.ret();
    });
    let outer_spec = pb.add_region_spec(
        pair_s12,
        &[
            (0, CapKind::Plus),
            (1, CapKind::Plus),
            (0, CapKind::Minus),
            (1, CapKind::Minus),
        ],
        None,
    );
    pb.func("main", 3, false, 3, |b| {
        b.load(0).load(1).load(2).call_secure(outer, outer_spec).ret();
    });
    let program = pb.finish().unwrap();

    let (s1, s2) = (fresh_tag(11), fresh_tag(12));
    let mut vm = Vm::new(program, vec![s1, s2], BarrierMode::Static);
    let mut caps = CapSet::new();
    caps.grant_both(s1);
    caps.grant_both(s2);
    vm.set_thread_caps(caps);

    let m1 = vm
        .host_alloc_object(ClassId(0), Some(SecPair::secrecy_only(Label::singleton(s1))))
        .unwrap();
    vm.host_put_field(m1, 0, Value::Int(30)).unwrap();
    let m2 = vm
        .host_alloc_object(ClassId(0), Some(SecPair::secrecy_only(Label::singleton(s2))))
        .unwrap();
    vm.host_put_field(m2, 0, Value::Int(12)).unwrap();
    let ret = vm.host_alloc_object(ClassId(0), None).unwrap();

    vm.call_by_name("main", &[Value::Ref(m1), Value::Ref(m2), Value::Ref(ret)]).unwrap();
    assert_eq!(vm.host_get_field(ret, 0).unwrap(), Value::Int(42));
}

/// The static-barrier failure mode (§5.1): a method first compiled
/// outside a region, later called inside, is detected; dynamic barriers
/// handle the same program fine.
#[test]
fn static_barrier_context_mismatch() {
    let mut pb = ProgramBuilder::new();
    let _c = pb.add_class("C", 1);
    // A helper called from both contexts.
    let helper = pb.func("helper", 1, false, 1, |b| {
        b.load(0).get_field(0).pop().ret();
    });
    let body = pb.region("r", 1, 1, |b| {
        b.load(0).call(helper).ret();
    });
    let pair = pb.add_pair_spec(&[], &[]);
    let spec = pb.add_region_spec(pair, &[], None);
    pb.func("main", 1, false, 1, |b| {
        b.load(0).call(helper); // first call: compiled out-of-region
        b.load(0).call_secure(body, spec); // same method, now in-region
        b.ret();
    });
    let program = pb.finish().unwrap();

    let mk_obj = |vm: &mut Vm| {
        let o = vm.host_alloc_object(ClassId(0), None).unwrap();
        vm.host_put_field(o, 0, Value::Int(1)).unwrap();
        o
    };

    // Static mode: loud mismatch (the paper's approach would silently
    // run wrong barriers; we fail closed).
    let mut vm = Vm::new(program.clone(), vec![], BarrierMode::Static);
    let o = mk_obj(&mut vm);
    let err = vm.call_by_name("main", &[Value::Ref(o)]).unwrap_err();
    assert!(matches!(err, VmError::BarrierContextMismatch { .. }), "{err}");

    // Dynamic mode: fine.
    let mut vm = Vm::new(program.clone(), vec![], BarrierMode::Dynamic);
    let o = mk_obj(&mut vm);
    vm.call_by_name("main", &[Value::Ref(o)]).unwrap();
    assert!(vm.stats().dynamic_dispatches > 0);

    // Cloning mode (the §5.1 production design): also fine — the helper
    // is compiled once per context, with static-barrier dispatch and no
    // runtime context checks.
    let mut vm = Vm::new(program, vec![], BarrierMode::Cloning);
    let o = mk_obj(&mut vm);
    vm.call_by_name("main", &[Value::Ref(o)]).unwrap();
    assert_eq!(vm.stats().dynamic_dispatches, 0);
    // Two clones of `helper` plus the two callers were compiled.
    assert!(vm.stats().functions_compiled >= 4);
}

/// Labeled statics (the §5.1 "production implementation could support
/// labeling statics" extension): a `{S(g)}`-labeled static is writable
/// and readable only from regions whose labels permit the flow, and
/// inaccessible outside regions.
#[test]
fn labeled_statics_are_flow_checked() {
    let mut pb = ProgramBuilder::new();
    let pair_g = pb.add_pair_spec(&[0], &[]);
    let s = pb.add_static_labeled("secret_counter", pair_g);

    let bump = pb.region("bump", 0, 0, |b| {
        b.push_int(41).put_static(s);
        b.get_static(s).push_int(1).add().put_static(s).ret();
    });
    let spec_g = pb.add_region_spec(pair_g, &[(0, CapKind::Plus)], None);

    let leak = pb.region("leak", 0, 0, |b| {
        b.get_static(s).pop().ret();
    });
    let pair_empty = pb.add_pair_spec(&[], &[]);
    let spec_empty = pb.add_region_spec(pair_empty, &[], None);

    pb.func("init", 0, false, 0, |b| {
        // Outside any region a labeled static is unreachable; this
        // function exists to prove it (called under Dynamic mode).
        b.push_int(0).put_static(s).ret();
    });
    pb.func("run_bump", 0, false, 0, |b| {
        b.call_secure(bump, spec_g).ret();
    });
    pb.func("run_leak", 0, false, 0, |b| {
        b.call_secure(leak, spec_empty).ret();
    });
    let program = pb.finish().unwrap();

    let g = fresh_tag(77);
    let mut vm = Vm::new(program, vec![g], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(g));
    vm.set_thread_caps(caps);

    // Outside a region: denied (exception propagates to the host).
    let err = vm.call_by_name("init", &[]).unwrap_err();
    assert!(matches!(err, VmError::LabeledAccessOutsideRegion), "{err}");

    // Region carrying {S(g)}: read-modify-write succeeds.
    vm.call_by_name("run_bump", &[]).unwrap();
    assert_eq!(vm.stats().exceptions_suppressed, 0);

    // Unlabeled region: the read is a flow violation, confined.
    vm.call_by_name("run_leak", &[]).unwrap();
    assert_eq!(vm.stats().exceptions_suppressed, 1);
}

/// Statics restrictions (§5.1): secrecy regions may not write statics;
/// integrity regions may not read them.
#[test]
fn statics_restrictions_in_regions() {
    let mut pb = ProgramBuilder::new();
    let s = pb.add_static("g");
    let writer = pb.region("writer", 0, 0, |b| {
        b.push_int(1).put_static(s).ret();
    });
    let reader = pb.region("reader", 0, 0, |b| {
        b.get_static(s).pop().ret();
    });
    let secrecy = pb.add_pair_spec(&[0], &[]);
    let integrity = pb.add_pair_spec(&[], &[0]);
    let w_spec = pb.add_region_spec(secrecy, &[(0, CapKind::Plus)], None);
    let r_spec = pb.add_region_spec(integrity, &[(0, CapKind::Plus)], None);
    pb.func("main_w", 0, false, 0, |b| {
        b.call_secure(writer, w_spec).ret();
    });
    pb.func("main_r", 0, false, 0, |b| {
        b.call_secure(reader, r_spec).ret();
    });
    let program = pb.finish().unwrap();

    let t = fresh_tag(5);
    let mut vm = Vm::new(program, vec![t], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant_both(t);
    vm.set_thread_caps(caps);

    // Violations are suppressed at the region edge but counted.
    vm.call_by_name("main_w", &[]).unwrap();
    assert_eq!(vm.stats().exceptions_suppressed, 1);
    vm.call_by_name("main_r", &[]).unwrap();
    assert_eq!(vm.stats().exceptions_suppressed, 2);
}

/// Lazy VM→OS label sync over the real kernel (§4.4): a region that does
/// no syscall never touches the kernel; one that writes a file first
/// pushes its labels, and the kernel then enforces them.
#[test]
fn lazy_label_sync_through_kernel_bridge() {
    let kernel = Kernel::boot(LaminarModule);
    kernel.add_user(UserId(1), "vmuser");
    let task = kernel.login(UserId(1)).unwrap();
    kernel.bless_vm_process(&task).unwrap();
    let tcb = kernel.tcb_tag();
    let mut tcb_caps = CapSet::new();
    tcb_caps.grant_both(tcb);
    let vm_task = task.spawn_thread(Some(tcb_caps)).unwrap();
    vm_task
        .set_task_label(laminar_difc::LabelType::Integrity, Label::singleton(tcb))
        .unwrap();

    // Labeled destination file (pre-created) and a public one.
    let a = task.alloc_tag().unwrap();
    let sa = SecPair::secrecy_only(Label::singleton(a));
    let fd = task.create_file_labeled("secret.out", sa).unwrap();
    task.close(fd).unwrap();
    let fd = task.create("public.out").unwrap();
    task.close(fd).unwrap();

    let mut pb = ProgramBuilder::new();
    let secret_path = pb.add_string("secret.out");
    let public_path = pb.add_string("public.out");
    let quiet = pb.region("quiet", 0, 0, |b| {
        b.push_int(1).push_int(1).add().pop().ret();
    });
    let write_secret = pb.region("write_secret", 0, 0, |b| {
        b.push_int(42).os_write_byte(secret_path).ret();
    });
    let leak = pb.region("leak", 0, 0, |b| {
        b.push_int(9).os_write_byte(public_path).ret();
    });
    let pair_a = pb.add_pair_spec(&[0], &[]);
    let spec = pb.add_region_spec(pair_a, &[(0, CapKind::Plus)], None);
    pb.func("run_quiet", 0, false, 0, |b| {
        b.call_secure(quiet, spec).ret();
    });
    pb.func("run_write", 0, false, 0, |b| {
        b.call_secure(write_secret, spec).ret();
    });
    pb.func("run_leak", 0, false, 0, |b| {
        b.call_secure(leak, spec).ret();
    });
    let program = pb.finish().unwrap();

    let mut vm = Vm::new(program, vec![a], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(a));
    vm.set_thread_caps(caps);
    vm.set_bridge(Box::new(KernelBridge::new(task.clone(), vm_task.clone())));

    // Syscall-free region: zero kernel syncs.
    vm.call_by_name("run_quiet", &[]).unwrap();
    assert_eq!(vm.stats().os_label_syncs, 0);
    assert_eq!(vm.stats().os_label_syncs_elided, 1);

    // Region writing the labeled file: sync happens, write lands.
    vm.call_by_name("run_write", &[]).unwrap();
    assert_eq!(vm.stats().os_label_syncs, 1);
    task.set_task_label(laminar_difc::LabelType::Secrecy, Label::singleton(a)).unwrap();
    let fd = task.open("secret.out", OpenMode::Read).unwrap();
    assert_eq!(task.read(fd, 4).unwrap(), vec![42]);
    task.close(fd).unwrap();
    task.set_task_label(laminar_difc::LabelType::Secrecy, Label::empty()).unwrap();

    // Region trying to write the public file: the kernel denies it (the
    // sync carried the taint), and the exception is confined.
    vm.call_by_name("run_leak", &[]).unwrap();
    assert!(vm.stats().exceptions_suppressed >= 1);
    let fd = task.open("public.out", OpenMode::Read).unwrap();
    assert_eq!(task.read(fd, 4).unwrap(), Vec::<u8>::new());
    task.close(fd).unwrap();

    // After the regions, the kernel task is unlabeled again.
    assert!(task.current_labels().unwrap().is_unlabeled());
}

/// `copyAndLabel` alone cannot defeat the rules: label changes without
/// the minus capability raise (and are confined).
#[test]
fn copy_and_label_without_caps_fails() {
    let mut pb = ProgramBuilder::new();
    let _c = pb.add_class("C", 1);
    let pair_pub = pb.add_pair_spec(&[], &[]);
    let body = pb.region("steal", 1, 1, |b| {
        b.load(0).copy_and_label(pair_pub).pop().ret();
    });
    let pair_a = pb.add_pair_spec(&[0], &[]);
    // Region holds only a+ — classification, no declassification.
    let spec = pb.add_region_spec(pair_a, &[(0, CapKind::Plus)], None);
    pb.func("main", 1, false, 1, |b| {
        b.load(0).call_secure(body, spec).ret();
    });
    let program = pb.finish().unwrap();

    let a = fresh_tag(3);
    let mut vm = Vm::new(program, vec![a], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(a));
    vm.set_thread_caps(caps);
    let obj = vm
        .host_alloc_object(ClassId(0), Some(SecPair::secrecy_only(Label::singleton(a))))
        .unwrap();
    vm.call_by_name("main", &[Value::Ref(obj)]).unwrap();
    assert_eq!(vm.stats().exceptions_suppressed, 1);
    assert_eq!(vm.stats().copy_and_label, 0);
}

/// Secure termination (§4.3.3): a catchless region that faults after
/// mutating labeled state is *aborted* — every labeled write is rolled
/// back to the entry snapshot, so no partial update survives the fault.
#[test]
fn aborted_region_rolls_back_labeled_writes() {
    let mut pb = ProgramBuilder::new();
    let _state = pb.add_class("State", 2);
    // body(state): state.x = 99; state.y = 100; throw 7
    let body = pb.region("body", 1, 1, |b| {
        b.load(0).push_int(99).put_field(0);
        b.load(0).push_int(100).put_field(1);
        b.push_int(7).throw();
        b.ret();
    });
    let pair_h = pb.add_pair_spec(&[0], &[]);
    let spec = pb.add_region_spec(pair_h, &[(0, CapKind::Plus)], None);
    pb.func("main", 1, false, 1, |b| {
        b.load(0).call_secure(body, spec).ret();
    });
    let program = pb.finish().unwrap();

    let h = fresh_tag(41);
    let mut vm = Vm::new(program, vec![h], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(h));
    vm.set_thread_caps(caps);
    let lab = SecPair::secrecy_only(Label::singleton(h));
    let state = vm.host_alloc_object(ClassId(0), Some(lab)).unwrap();
    vm.host_put_field(state, 0, Value::Int(1)).unwrap();
    vm.host_put_field(state, 1, Value::Int(2)).unwrap();

    // Other tests in this binary abort regions concurrently, so assert a
    // monotonic delta on the global counter, not an absolute value.
    let global_before = laminar_vm::regions_aborted();
    vm.call_by_name("main", &[Value::Ref(state)]).unwrap();

    // The throw was suppressed at the boundary AND the region's writes
    // were undone: the labeled object is byte-for-byte as it was.
    assert_eq!(vm.stats().exceptions_suppressed, 1);
    assert_eq!(vm.stats().regions_aborted, 1);
    assert!(laminar_vm::regions_aborted() > global_before);
    assert_eq!(vm.host_get_field(state, 0).unwrap(), Value::Int(1));
    assert_eq!(vm.host_get_field(state, 1).unwrap(), Value::Int(2));
}

/// The catch-present contrast: with a catch block the region's writes
/// persist (the catch repairs invariants itself — Figure 5), so the undo
/// log must NOT fire.
#[test]
fn caught_region_keeps_writes_for_the_catch_to_repair() {
    let mut pb = ProgramBuilder::new();
    let _state = pb.add_class("State", 1);
    let catch = pb.region("catch", 1, 1, |b| {
        b.ret();
    });
    let body = pb.region("body", 1, 1, |b| {
        b.load(0).push_int(99).put_field(0);
        b.push_int(7).throw();
        b.ret();
    });
    let pair_h = pb.add_pair_spec(&[0], &[]);
    let spec = pb.add_region_spec(pair_h, &[(0, CapKind::Plus)], Some(catch));
    pb.func("main", 1, false, 1, |b| {
        b.load(0).call_secure(body, spec).ret();
    });
    let program = pb.finish().unwrap();

    let h = fresh_tag(42);
    let mut vm = Vm::new(program, vec![h], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(h));
    vm.set_thread_caps(caps);
    let lab = SecPair::secrecy_only(Label::singleton(h));
    let state = vm.host_alloc_object(ClassId(0), Some(lab)).unwrap();
    vm.host_put_field(state, 0, Value::Int(1)).unwrap();

    vm.call_by_name("main", &[Value::Ref(state)]).unwrap();
    assert_eq!(vm.stats().regions_aborted, 0);
    assert_eq!(vm.host_get_field(state, 0).unwrap(), Value::Int(99));
}

/// Nested regions: the inner region's normal exit commits its writes into
/// the outer scope, and an outer abort then rolls back *both* regions'
/// writes — the undo log is scoped per frame, not truncated on inner exit.
#[test]
fn outer_abort_undoes_committed_inner_region_writes() {
    let mut pb = ProgramBuilder::new();
    let _state = pb.add_class("State", 2);
    let pair_h = pb.add_pair_spec(&[0], &[]);
    // inner(state): state.y = 100 (runs to completion)
    let inner = pb.region("inner", 1, 1, |b| {
        b.load(0).push_int(100).put_field(1);
        b.ret();
    });
    let inner_spec = pb.add_region_spec(pair_h, &[(0, CapKind::Plus)], None);
    // outer(state): state.x = 99; inner(state); throw 7
    let outer = pb.region("outer", 1, 1, |b| {
        b.load(0).push_int(99).put_field(0);
        b.load(0).call_secure(inner, inner_spec);
        b.push_int(7).throw();
        b.ret();
    });
    let outer_spec = pb.add_region_spec(pair_h, &[(0, CapKind::Plus)], None);
    pb.func("main", 1, false, 1, |b| {
        b.load(0).call_secure(outer, outer_spec).ret();
    });
    let program = pb.finish().unwrap();

    let h = fresh_tag(43);
    let mut vm = Vm::new(program, vec![h], BarrierMode::Dynamic);
    let mut caps = CapSet::new();
    caps.grant(Capability::plus(h));
    vm.set_thread_caps(caps);
    let lab = SecPair::secrecy_only(Label::singleton(h));
    let state = vm.host_alloc_object(ClassId(0), Some(lab)).unwrap();
    vm.host_put_field(state, 0, Value::Int(1)).unwrap();
    vm.host_put_field(state, 1, Value::Int(2)).unwrap();

    vm.call_by_name("main", &[Value::Ref(state)]).unwrap();
    assert_eq!(vm.stats().regions_aborted, 1);
    assert_eq!(vm.host_get_field(state, 0).unwrap(), Value::Int(1));
    assert_eq!(vm.host_get_field(state, 1).unwrap(), Value::Int(2));
}

/// Region-entry failures terminate (propagate) rather than suppress
/// (§5.1: "the program terminates at L1").
#[test]
fn region_entry_failure_propagates() {
    let mut pb = ProgramBuilder::new();
    let body = pb.region("r", 0, 0, |b| {
        b.ret();
    });
    let pair = pb.add_pair_spec(&[0], &[]);
    let spec = pb.add_region_spec(pair, &[(0, CapKind::Plus)], None);
    pb.func("main", 0, false, 0, |b| {
        b.call_secure(body, spec).ret();
    });
    let program = pb.finish().unwrap();
    // Thread has NO capabilities.
    let mut vm = Vm::new(program, vec![fresh_tag(8)], BarrierMode::Dynamic);
    let err = vm.call_by_name("main", &[]).unwrap_err();
    assert!(matches!(err, VmError::RegionEntry(_)), "{err}");
}
