//! Property tests: the *enforcement layers* agree with the *model*.
//!
//! For arbitrary label assignments, the OS's file and pipe mediation and
//! the runtime's heap barriers must allow exactly the flows the DIFC
//! model (`laminar-difc`) allows — no enforcement gap in either
//! direction. Pipes additionally must never reveal a failure to the
//! writer (silent-drop semantics).
//!
//! Randomization is driven by the in-repo deterministic PRNG so the
//! suite runs with zero network access.

use laminar::{Laminar, RegionParams};
use laminar_difc::{CapSet, Label, LabelType, SecPair};
use laminar_os::{Kernel, LaminarModule, OpenMode, UserId};
use laminar_util::SplitMix64;

/// Cases per property (masks are sampled from the 4-tag universe).
const CASES: usize = 48;

/// A label over a 4-tag universe, as a random bitmask.
fn random_mask(rng: &mut SplitMix64) -> u8 {
    rng.below(16) as u8
}

fn label_from_mask(tags: &[laminar_difc::Tag], mask: u8) -> Label {
    Label::from_tags(
        tags.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &t)| t),
    )
}

/// File opens succeed exactly when the model's flow relation allows
/// them (secrecy dimension; integrity on paths is covered by
/// scenario tests).
#[test]
fn file_access_matches_model() {
    let mut rng = SplitMix64::new(0x1EAF);
    for _ in 0..CASES {
        let (fmask, tmask) = (random_mask(&mut rng), random_mask(&mut rng));
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "u");
        let task = k.login(UserId(1)).unwrap();
        let tags: Vec<_> = (0..4).map(|_| task.alloc_tag().unwrap()).collect();

        let flabel = label_from_mask(&tags, fmask);
        let tlabel = label_from_mask(&tags, tmask);
        let fpair = SecPair::secrecy_only(flabel.clone());
        let tpair = SecPair::secrecy_only(tlabel.clone());

        let fd = task.create_file_labeled("/tmp/f", fpair.clone()).unwrap();
        task.close(fd).unwrap();
        task.set_task_label(LabelType::Secrecy, tlabel).unwrap();

        let model_read = fpair.flows_to(&tpair);
        let model_write = tpair.flows_to(&fpair);
        assert_eq!(task.open("/tmp/f", OpenMode::Read).is_ok(), model_read);
        assert_eq!(task.open("/tmp/f", OpenMode::Write).is_ok(), model_write);
    }
}

/// Pipe delivery: a message arrives iff writer→pipe and pipe→reader
/// flows are both legal; the writer observes success regardless.
#[test]
fn pipe_delivery_matches_model() {
    let mut rng = SplitMix64::new(0x9199);
    for _ in 0..CASES {
        let wmask = random_mask(&mut rng);
        let pmask = random_mask(&mut rng);
        let rmask = random_mask(&mut rng);
        let k = Kernel::boot(LaminarModule);
        k.add_user(UserId(1), "u");
        let task = k.login(UserId(1)).unwrap();
        let tags: Vec<_> = (0..4).map(|_| task.alloc_tag().unwrap()).collect();

        let wl = label_from_mask(&tags, wmask);
        let pl = label_from_mask(&tags, pmask);
        let rl = label_from_mask(&tags, rmask);

        // Create the pipe while carrying the pipe's label.
        task.set_task_label(LabelType::Secrecy, pl.clone()).unwrap();
        let (r, w) = task.pipe().unwrap();

        // Write under the writer's label: always reports success.
        task.set_task_label(LabelType::Secrecy, wl.clone()).unwrap();
        assert_eq!(task.write(w, b"m").unwrap(), 1);

        // Read under the reader's label.
        task.set_task_label(LabelType::Secrecy, rl.clone()).unwrap();
        let wp = SecPair::secrecy_only(wl);
        let pp = SecPair::secrecy_only(pl);
        let rp = SecPair::secrecy_only(rl);
        let deliverable = wp.flows_to(&pp);
        match task.read(r, 4) {
            Ok(data) => {
                let readable = pp.flows_to(&rp);
                assert!(readable, "read succeeded though model forbids");
                assert_eq!(!data.is_empty(), deliverable);
            }
            Err(_) => {
                assert!(!pp.flows_to(&rp), "read denied though model allows");
            }
        }
    }
}

/// Heap barriers: inside a region with arbitrary labels, reads and
/// writes of an arbitrarily-labeled cell succeed exactly per model.
#[test]
fn labeled_cell_access_matches_model() {
    let mut rng = SplitMix64::new(0xCE11);
    for _ in 0..CASES {
        let (cell_s, cell_i) = (random_mask(&mut rng), random_mask(&mut rng));
        let (reg_s, reg_i) = (random_mask(&mut rng), random_mask(&mut rng));
        let sys = Laminar::boot();
        sys.add_user(UserId(1), "u");
        let p = sys.login(UserId(1)).unwrap();
        let tags: Vec<_> = (0..4).map(|_| p.create_tag().unwrap()).collect();
        let mut all_caps = CapSet::new();
        for &t in &tags {
            all_caps.grant_both(t);
        }

        let cell_pair =
            SecPair::new(label_from_mask(&tags, cell_s), label_from_mask(&tags, cell_i));
        let reg_pair =
            SecPair::new(label_from_mask(&tags, reg_s), label_from_mask(&tags, reg_i));

        // Mint the cell inside a region with exactly its labels.
        let mint = RegionParams::new()
            .secrecy(cell_pair.secrecy().clone())
            .integrity(cell_pair.integrity().clone())
            .grant_all(&all_caps);
        let cell = p.secure(&mint, |g| Ok(g.new_labeled(1u8)), |_| {}).unwrap().unwrap();

        let params = RegionParams::new()
            .secrecy(reg_pair.secrecy().clone())
            .integrity(reg_pair.integrity().clone())
            .grant_all(&all_caps);
        let read_ok =
            p.secure(&params, |g| cell.read(g, |v| *v), |_| {}).unwrap().is_some();
        let write_ok =
            p.secure(&params, |g| cell.write(g, |v| *v = 2), |_| {}).unwrap().is_some();

        assert_eq!(read_ok, cell_pair.flows_to(&reg_pair));
        assert_eq!(write_ok, reg_pair.flows_to(&cell_pair));
    }
}

/// Dynamic barriers agree with static barriers on every label pair.
#[test]
fn dynamic_and_static_barriers_agree() {
    let mut rng = SplitMix64::new(0xD1A);
    for _ in 0..CASES {
        let (cell_s, reg_s) = (random_mask(&mut rng), random_mask(&mut rng));
        let sys = Laminar::boot();
        sys.add_user(UserId(1), "u");
        let p = sys.login(UserId(1)).unwrap();
        let tags: Vec<_> = (0..4).map(|_| p.create_tag().unwrap()).collect();
        let mut all_caps = CapSet::new();
        for &t in &tags {
            all_caps.grant_both(t);
        }

        let mint = RegionParams::new()
            .secrecy(label_from_mask(&tags, cell_s))
            .grant_all(&all_caps);
        let cell = p.secure(&mint, |g| Ok(g.new_labeled(0i32)), |_| {}).unwrap().unwrap();

        let params = RegionParams::new()
            .secrecy(label_from_mask(&tags, reg_s))
            .grant_all(&all_caps);
        let (static_ok, dynamic_ok) = p
            .secure(
                &params,
                |g| {
                    let s = cell.read(g, |v| *v).is_ok();
                    let d = cell.read_dyn(|v| *v).is_ok();
                    Ok((s, d))
                },
                |_| {},
            )
            .unwrap()
            .unwrap();
        assert_eq!(static_ok, dynamic_ok);
    }
}
